"""Scenario generator benchmark: catalog cost and evaluation throughput.

Records ``results/BENCH_scenarios.json`` (uploaded by the CI bench-smoke
artifact step):

- catalog materialisation: parse + parameter-draw + registration cost
  for the full 41-entry default catalog (must stay trivially cheap --
  workers re-materialise catalogs per process);
- per-family kernel cost: simulated-seconds-per-wall-second for one
  scenario-day of each bug family, the number that decides how much
  catalog a fleet run can afford;
- full-catalog evaluation throughput: the complete `repro scenarios`
  pipeline (default catalog x vanilla+leaseos) in scenario-days per
  wall-second, plus a warm grid-cache re-run that must execute nothing
  and reproduce the report byte-for-byte.

It also regenerates ``results/scenarios_default.json``, the committed
default-catalog evaluation artifact.
"""

import json
import os
import time

from repro.experiments.grid import GridRunner
from repro.scenarios.catalog import default_catalog
from repro.scenarios.evaluate import (
    evaluate_catalog,
    render_report,
    report_json,
    scenario_day,
)

MINUTES = 10.0
SEED = 7


def test_bench_scenarios(results_path, artifact_writer, tmp_path):
    # Catalog materialisation: JSON -> params -> registered CaseSpecs.
    build_start = time.perf_counter()
    catalog = default_catalog()
    catalog_json = catalog.to_json()
    cases = catalog.instantiate()
    build_s = time.perf_counter() - build_start
    assert len(cases) == 41

    # Per-family single-day kernel cost (vanilla, one representative
    # entry per family: the first catalog index carrying it).
    first_entry = {}
    for index, entry in enumerate(catalog.entries):
        first_entry.setdefault(entry["family"], index)
    per_family = {}
    for family, index in sorted(first_entry.items()):
        start = time.perf_counter()
        scenario_day(catalog_json, index, "vanilla", minutes=MINUTES,
                     seed=SEED)
        wall = time.perf_counter() - start
        per_family[family] = round((MINUTES * 60.0) / wall, 1)

    # Full-catalog evaluation, cold then warm through the grid cache.
    cache_dir = str(tmp_path / "grid-cache")
    cold_runner = GridRunner(jobs=1, cache=cache_dir)
    start = time.perf_counter()
    report = evaluate_catalog(catalog, mitigations=("leaseos",),
                              minutes=MINUTES, seed=SEED,
                              runner=cold_runner)
    cold_s = time.perf_counter() - start
    scenario_days = len(cases) * 2  # vanilla + leaseos
    assert cold_runner.stats.executed == scenario_days

    warm_runner = GridRunner(jobs=1, cache=cache_dir)
    start = time.perf_counter()
    warm = evaluate_catalog(catalog, mitigations=("leaseos",),
                            minutes=MINUTES, seed=SEED,
                            runner=warm_runner)
    warm_s = time.perf_counter() - start
    assert warm_runner.stats.executed == 0
    assert report_json(warm) == report_json(report)

    payload = {
        "catalog": catalog.name,
        "catalog_fingerprint": catalog.fingerprint(),
        "entries": len(cases),
        "minutes_per_day": MINUTES,
        "catalog_build_s": round(build_s, 4),
        "kernel_sim_s_per_wall_s_by_family": per_family,
        "evaluation_days": scenario_days,
        "evaluation_cold_s": round(cold_s, 3),
        "evaluation_days_per_s": round(scenario_days / cold_s, 2),
        "evaluation_warm_s": round(warm_s, 3),
        "cache_speedup": round(cold_s / warm_s, 2),
        "cpu_count": os.cpu_count() or 1,
    }
    # Materialising a catalog must stay negligible next to one day.
    assert build_s < cold_s
    # The kernel must beat real time comfortably on every family.
    assert all(rate > 10.0 for rate in per_family.values()), per_family
    with open(results_path("BENCH_scenarios.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    # Regenerate the committed default-catalog artifacts.
    with open(results_path("scenarios_default.json"), "w") as handle:
        handle.write(report_json(report) + "\n")
    artifact_writer("scenarios_default.txt", render_report(report))
