"""Simulator throughput: how fast the substrate itself runs.

Not a paper artifact; a health metric for the reproduction. A 30-minute
Table 5 phone run must stay well under a second of wall clock, which
requires the engine to push hundreds of thousands of events per second.
"""

from repro.apps.buggy.cpu_apps import K9Mail
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS
from repro.sim.engine import Simulator


def test_bench_raw_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(50000):
            sim.schedule(i * 0.001, tick)
        sim.run()
        return count[0]

    fired = benchmark.pedantic(run_events, rounds=3, iterations=1)
    assert fired == 50000


def test_bench_full_phone_run(benchmark):
    def thirty_minutes():
        phone = Phone(seed=3, mitigation=LeaseOS(), connected=False)
        phone.install(K9Mail(scenario="disconnected"))
        phone.run_for(minutes=30.0)
        return phone.sim.now

    now = benchmark.pedantic(thirty_minutes, rounds=3, iterations=1)
    assert now == 1800.0
