"""Simulator throughput: how fast the substrate itself runs.

Not a paper artifact; a health metric for the reproduction. A 30-minute
Table 5 phone run must stay well under a second of wall clock, which
requires the engine to push hundreds of thousands of events per second.

Beyond the raw-throughput checks, this file measures the two kernel
overhauls directly and records the numbers into
``results/BENCH_engine.json``:

- **cancel-heavy workload** -- racing near-future timeouts (the
  ``any_of``/``Process.pause`` idiom: arm a batch, one wins, the rest
  are cancelled) on top of a standing backlog of armed far-future
  watchdogs, so every push and pop pays full heap depth. Run against an
  inline replica of the seed engine (Timer objects on the heap, Python
  ``__lt__`` comparisons, pure pop-skip lazy deletion) and against the
  production engine (tuple-keyed heap with C comparisons, cancellation
  accounting, threshold-triggered compaction). The production engine
  must be >=2x events/sec.
- **idle-device 3-day soak** -- the same phone run twice, once with a
  legacy-style 1 Hz polling power sampler (one dispatched event per
  sample) and once with the event-driven :class:`MonsoonMonitor`
  (samples synthesized lazily from rail-change notifications). The
  event-driven run must dispatch >=30% fewer events while producing the
  identical sample series.

Both measurements interleave best-of-N runs of the two engines, which
keeps the recorded ratio meaningful on noisy shared machines.
"""

import heapq
import json
import os
import time

from repro.apps.buggy.cpu_apps import K9Mail
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS
from repro.profiling.monsoon import MonsoonMonitor
from repro.sim.engine import Simulator


def test_bench_raw_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(50000):
            sim.schedule(i * 0.001, tick)
        sim.run()
        return count[0]

    fired = benchmark.pedantic(run_events, rounds=3, iterations=1)
    assert fired == 50000


def test_bench_full_phone_run(benchmark):
    def thirty_minutes():
        phone = Phone(seed=3, mitigation=LeaseOS(), connected=False)
        phone.install(K9Mail(scenario="disconnected"))
        phone.run_for(minutes=30.0)
        return phone.sim.now

    now = benchmark.pedantic(thirty_minutes, rounds=3, iterations=1)
    assert now == 1800.0


# -- the seed engine, inlined as the before-measurement baseline -------------

class _LegacyTimer:
    """Seed-engine timer: heap ordering via a Python ``__lt__`` call."""

    __slots__ = ("deadline", "seq", "callback", "cancelled", "fired")

    def __init__(self, deadline, seq, callback):
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.deadline, self.seq) < (other.deadline, other.seq)


class LegacySimulator:
    """Replica of the seed engine's hot loop: Timer objects directly on
    the heap, attribute loads inside the ``while``, and cancelled timers
    left in place until they surface at the top."""

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._seq = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, callback):
        timer = _LegacyTimer(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, timer)
        return timer

    def run_until(self, until):
        while self._queue and self._queue[0].deadline <= until:
            timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = timer.deadline
            timer.fired = True
            timer.callback()
        self._now = until


# -- cancel-heavy microbench -------------------------------------------------

CANCEL_TICKS = 20000
#: Racing timeouts armed per tick; one fires, the rest are cancelled.
CANCEL_FANOUT = 12
#: Standing population of armed far-future watchdogs: every heap
#: operation pays full tree depth, the way long scenarios with pending
#: alarms/timeouts do.
CANCEL_BACKLOG = 150000
BENCH_REPS = 5


def _cancel_heavy(make_sim, ticks=CANCEL_TICKS, fanout=CANCEL_FANOUT,
                  backlog=CANCEL_BACKLOG):
    """One timed run; returns dispatched-tick events per wall second."""
    sim = make_sim()

    def never():
        raise AssertionError("backlog watchdog fired")

    for j in range(backlog):
        sim.schedule(1.0e9 + j, never)
    state = {"ticks": 0, "batch": [], "wins": 0}

    def win():
        state["wins"] += 1

    def tick():
        state["ticks"] += 1
        for timer in state["batch"][1:]:
            timer.cancel()
        state["batch"] = [sim.schedule(2.0 + j * 1e-4, win)
                          for j in range(fanout)]
        if state["ticks"] < ticks:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    start = time.perf_counter()
    sim.run_until(ticks * 1.0 + 3.0)
    elapsed = time.perf_counter() - start
    assert state["ticks"] == ticks
    assert state["wins"] == ticks + fanout - 1
    return ticks / elapsed


# -- idle-device soak --------------------------------------------------------

SOAK_DAYS = 3.0


def _idle_soak(polling):
    """Three simulated days of an idle, lease-managed phone.

    ``polling=True`` attaches a legacy-style 1 Hz sampler (a periodic
    timer reading instantaneous power -- one dispatched event per
    sample); ``polling=False`` uses the event-driven MonsoonMonitor.
    Returns (dispatched events, wall seconds, sample series).
    """
    phone = Phone(seed=11, mitigation=LeaseOS(), connected=False)
    samples = []
    monsoon = None
    if polling:
        phone.sim.every(
            1.0,
            lambda: samples.append(
                (phone.sim.now, phone.monitor.instantaneous_power_mw())),
        )
    else:
        monsoon = MonsoonMonitor(phone, sample_interval_s=1.0)
        monsoon.start_sampling()
    start = time.perf_counter()
    phone.run_for(hours=24.0 * SOAK_DAYS)
    elapsed = time.perf_counter() - start
    if monsoon is not None:
        samples = monsoon.samples
    return phone.sim.dispatched, elapsed, samples


def test_bench_engine_hot_loop(results_path):
    legacy_eps = engine_eps = 0.0
    for __ in range(BENCH_REPS):  # interleaved best-of-N rides out noise
        legacy_eps = max(legacy_eps, _cancel_heavy(LegacySimulator))
        engine_eps = max(engine_eps, _cancel_heavy(Simulator))
    cancel_speedup = engine_eps / legacy_eps

    polled_events, polled_s, polled_samples = _idle_soak(polling=True)
    driven_events, driven_s, driven_samples = _idle_soak(polling=False)
    # The lazy synthesis is exact: identical series, zero poll events.
    assert driven_samples == polled_samples
    reduction = 1.0 - driven_events / polled_events

    payload = {
        "cancel_heavy": {
            "ticks": CANCEL_TICKS,
            "fanout": CANCEL_FANOUT,
            "backlog": CANCEL_BACKLOG,
            "reps": BENCH_REPS,
            "legacy_events_per_s": round(legacy_eps),
            "engine_events_per_s": round(engine_eps),
            "speedup": round(cancel_speedup, 2),
        },
        "idle_soak": {
            "days": SOAK_DAYS,
            "sample_interval_s": 1.0,
            "polling_dispatched": polled_events,
            "event_driven_dispatched": driven_events,
            "dispatched_reduction": round(reduction, 4),
            "polling_wall_s": round(polled_s, 3),
            "event_driven_wall_s": round(driven_s, 3),
            "samples": len(polled_samples),
        },
        "cpu_count": os.cpu_count(),
    }
    with open(results_path("BENCH_engine.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Acceptance gates: 2x on the cancel-heavy loop, 30% fewer events on
    # the idle soak (in practice the sampler was nearly all of them).
    assert cancel_speedup >= 2.0, payload["cancel_heavy"]
    assert reduction >= 0.30, payload["idle_soak"]
