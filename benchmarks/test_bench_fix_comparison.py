"""The developer-fix vs OS-mechanism 2x2 (Case I)."""

from repro.experiments import fix_comparison


def test_bench_fix_comparison(benchmark, artifact_writer):
    grid = benchmark.pedantic(fix_comparison.run, rounds=1, iterations=1)
    for label, __, __, __ in fix_comparison.PAIRS:
        blaze = grid[(label, "buggy", "vanilla")]
        contained = grid[(label, "buggy", "leaseos")]
        fixed = grid[(label, "fixed", "vanilla")]
        fixed_leased = grid[(label, "fixed", "leaseos")]
        # LeaseOS contains each bug to a small fraction of its blaze.
        assert contained < 0.1 * blaze, label
        # The fix is always cheaper than the unmitigated bug (by a lot);
        # note it can legitimately exceed the contained-bug draw when
        # the fixed app still uses the resource for real (Standup Timer
        # keeps the screen on through its actual meeting).
        assert fixed < 0.6 * blaze, label
        # Leases never add cost to a fixed app (at most trim residue).
        assert fixed_leased <= fixed + 0.5, label
    artifact_writer("fix_comparison.txt", fix_comparison.render(grid))
