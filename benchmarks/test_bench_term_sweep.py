"""Lease-term sensitivity sweep (the §5.1 trade-off, measured)."""

import math

import pytest

from repro.experiments import term_sweep


def test_bench_term_sweep(benchmark, artifact_writer):
    rows = benchmark.pedantic(term_sweep.run, rounds=1, iterations=1)
    # Reduction follows the closed form 1 - t/(t + tau) with tau = 25 s.
    for row in rows:
        expected = 100.0 * (1.0 - row.term_s / (row.term_s + 25.0))
        assert row.reduction_pct == pytest.approx(expected, abs=3.0), \
            row.term_s
    # Overhead on a normal app is exactly one update per term.
    for row in rows:
        assert row.normal_updates == pytest.approx(
            1800.0 / row.term_s, abs=2)
    # Detection latency equals the term (the first check catches it).
    for row in rows:
        assert not math.isnan(row.first_deferral_s)
        assert row.first_deferral_s == pytest.approx(row.term_s, abs=1.0)
    artifact_writer("term_sweep.txt", term_sweep.render(rows))
