"""Containment latency vs healthy-work preservation."""

from repro.experiments import containment


def test_bench_containment(benchmark, artifact_writer):
    results = benchmark.pedantic(containment.run, rounds=1, iterations=1)
    by_name = {r.mitigation: r for r in results}
    vanilla_cpu = by_name["vanilla"].healthy_cpu_s

    assert by_name["vanilla"].latency_s is None  # never contained
    lease = by_name["leaseos"]
    assert lease.latency_s is not None and lease.latency_s <= 120.0
    assert lease.work_preserved(vanilla_cpu) > 0.95  # no healthy cost
    # The blind baselines throttle the healthy phase too.
    assert by_name["doze"].work_preserved(vanilla_cpu) < 0.5
    assert by_name["defdroid"].work_preserved(vanilla_cpu) < 0.5
    artifact_writer("containment_latency.txt",
                    containment.render(results))
