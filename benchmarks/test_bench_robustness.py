"""Seed and hardware robustness of the headline result."""

from repro.experiments import robustness


def test_bench_seed_robustness(benchmark, artifact_writer):
    seed_results = benchmark.pedantic(robustness.seed_sweep, rounds=1,
                                      iterations=1)
    lease = [avg["leaseos"] for avg in seed_results.values()]
    # The ordering holds for every seed, with small dispersion.
    for seed, avg in seed_results.items():
        assert avg["leaseos"] > avg["doze"], seed
        assert avg["leaseos"] > avg["defdroid"], seed
    assert max(lease) - min(lease) < 5.0
    profile_results = robustness.profile_sweep()
    values = list(profile_results.values())
    assert max(values) - min(values) < 5.0  # hardware-invariant mechanism
    artifact_writer("robustness.txt",
                    robustness.render(seed_results, profile_results))
