"""Fleet benchmark: device-days/sec and aggregate-memory behaviour.

Records ``results/BENCH_fleet.json`` (uploaded by the CI bench-smoke
artifact step):

- throughput: simulated device-days per wall-second through the full
  shard pipeline (sampling + simulation + folding + checkpointing);
- the O(shards) memory claim, two ways: a tracemalloc peak for the
  in-process run, and the ratio of per-shard summary size between a
  1-device and a full shard (must be ~1x -- summaries are
  device-count-independent);
- a cold vs warm re-run through the grid cache (warm must execute no
  simulation), plus the ru_maxrss proxy for the whole process.

It also regenerates ``results/fleet_s2019_d32.json``, the committed
population-scale artifact.
"""

import json
import os
import resource
import time
import tracemalloc

from repro.experiments.grid import GridRunner
from repro.fleet import (
    FleetRunner,
    PopulationSpec,
    build_report,
    render,
    report_json,
    run_shard,
    simulate_device_day,
)

#: Small enough for CI, big enough to amortise per-shard overheads.
DEVICES = 32
SHARD_SIZE = 8
MINUTES = 10.0


def _population(seed=2019):
    return PopulationSpec(seed=seed, devices=DEVICES,
                          shard_size=SHARD_SIZE, minutes=MINUTES,
                          mitigations=("vanilla", "leaseos"))


def test_bench_fleet(results_path, artifact_writer, tmp_path):
    population = _population()
    cache_dir = str(tmp_path / "grid-cache")

    tracemalloc.start()
    start = time.perf_counter()
    cold = GridRunner(jobs=1, cache=cache_dir)
    runner = FleetRunner(population, runner=cold,
                         checkpoint_dir=str(tmp_path / "ck-cold"))
    merged = runner.run()
    cold_s = time.perf_counter() - start
    __, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert cold.stats.executed == population.shard_count

    device_days = population.devices * len(population.mitigations)
    report = build_report(population, merged)

    # Warm re-run: fresh checkpoint dir, warm grid cache -> zero
    # simulation, identical report bytes.
    start = time.perf_counter()
    warm_grid = GridRunner(jobs=1, cache=cache_dir)
    warm = FleetRunner(population, runner=warm_grid,
                       checkpoint_dir=str(tmp_path / "ck-warm"))
    warm_merged = warm.run()
    warm_s = time.perf_counter() - start
    assert warm_grid.stats.executed == 0
    assert report_json(build_report(population, warm_merged)) == \
        report_json(report)

    # Shard summaries must not scale with device count (the O(shards)
    # aggregate-memory guarantee): compare serialised sizes.
    one = len(json.dumps(run_shard(population.to_json(), 0, 1)))
    full = len(json.dumps(run_shard(population.to_json(), 0, SHARD_SIZE)))
    summary_ratio = full / one

    # Telemetry overhead: the same shard with the event stream on vs
    # off, paired and min-of-N so scheduler noise cancels. Telemetry
    # folds one Moments observation per device-day and time-gates its
    # progress snapshots, so throughput must stay within 3% of the
    # no-telemetry baseline (the bar in docs/observability.md).
    from repro.telemetry.emit import ENV_DIR, ENV_FP

    spec_json = population.to_json()
    run_shard(spec_json, 0, SHARD_SIZE)  # warm the kernel
    base_times, telem_times = [], []
    for __ in range(5):
        start = time.perf_counter()
        run_shard(spec_json, 0, SHARD_SIZE)
        base_times.append(time.perf_counter() - start)
        os.environ[ENV_DIR] = str(tmp_path / "telemetry")
        os.environ[ENV_FP] = population.fingerprint()[:12]
        try:
            start = time.perf_counter()
            run_shard(spec_json, 0, SHARD_SIZE)
            telem_times.append(time.perf_counter() - start)
        finally:
            del os.environ[ENV_DIR]
            del os.environ[ENV_FP]
    telemetry_overhead = min(telem_times) / min(base_times)

    # Per-mitigation kernel throughput: where the device-day budget
    # actually goes (a mitigation's bookkeeping shows up here).
    per_mitigation = {}
    for mitigation in population.mitigations:
        start = time.perf_counter()
        timed = 4
        for index in range(timed):
            simulate_device_day(population.device(index), mitigation,
                                MINUTES)
        per_mitigation[mitigation] = round(
            timed / (time.perf_counter() - start), 2)

    payload = {
        "devices": population.devices,
        "mitigations": list(population.mitigations),
        "device_days": device_days,
        "shards": population.shard_count,
        "minutes_per_device_day": MINUTES,
        "cold_s": round(cold_s, 3),
        "device_days_per_s": round(device_days / cold_s, 2),
        "kernel_device_days_per_s_by_mitigation": per_mitigation,
        "warm_cache_s": round(warm_s, 3),
        "cache_speedup": round(cold_s / warm_s, 2),
        "tracemalloc_peak_mb": round(traced_peak / 1e6, 2),
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1),
        "shard_summary_bytes_1_device": one,
        "shard_summary_bytes_full_shard": full,
        "shard_summary_size_ratio": round(summary_ratio, 2),
        "telemetry_shard_s": round(min(telem_times), 3),
        "no_telemetry_shard_s": round(min(base_times), 3),
        "telemetry_overhead_ratio": round(telemetry_overhead, 4),
        "cpu_count": os.cpu_count() or 1,
    }
    # A full shard's summary must be the same size class as a 1-device
    # shard's (accumulators, not per-device rows).
    assert summary_ratio < 2.0
    # Telemetry must stay off the hot path: within 3% of baseline.
    assert telemetry_overhead < 1.03
    with open(results_path("BENCH_fleet.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    # Regenerate the committed population artifacts.
    with open(results_path(
            "fleet_s{}_d{}.json".format(population.seed,
                                        population.devices)),
            "w") as handle:
        handle.write(report_json(report) + "\n")
    artifact_writer("fleet_comparison.txt", render(report))
