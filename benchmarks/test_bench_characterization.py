"""Figs. 1-4: the §2 characterization study, regenerated.

Each benchmark runs the buggy app under the 60 s Trepn-style sampler and
writes the per-minute series the figure plots.
"""

import statistics

from repro.experiments.characterization import (
    fig1_betterweather,
    fig2_k9_bad_server,
    fig3_kontalk,
    fig4_k9_disconnected,
    render_series,
)

MINUTES = 20.0


def test_bench_fig1_betterweather(benchmark, artifact_writer,
                                  results_path):
    samples = benchmark.pedantic(
        lambda: fig1_betterweather(minutes=MINUTES), rounds=1, iterations=1
    )
    assert sum(s.gps_fixes for s in samples) == 0
    assert statistics.mean(s.gps_search_time for s in samples) > 36.0
    artifact_writer(
        "fig01_betterweather_gps_try.txt",
        render_series(samples, ["gps_search_time", "gps_fixes"]),
    )
    from repro.experiments.export import samples_csv

    samples_csv(results_path("fig01_betterweather_gps_try.csv"), samples,
                ["gps_search_time", "gps_fixes"])


def test_bench_fig2_k9_bad_server(benchmark, artifact_writer):
    samples = benchmark.pedantic(
        lambda: fig2_k9_bad_server(minutes=MINUTES), rounds=1, iterations=1
    )
    mean_hold = statistics.mean(s.wakelock_time for s in samples)
    mean_cpu = statistics.mean(s.cpu_time for s in samples)
    assert mean_hold > 10.0 and mean_cpu / mean_hold < 0.05
    artifact_writer(
        "fig02_k9_bad_server.txt",
        render_series(samples, ["wakelock_time", "cpu_time"]),
    )


def test_bench_fig3_kontalk_two_phones(benchmark, artifact_writer):
    results = benchmark.pedantic(
        lambda: fig3_kontalk(minutes=MINUTES), rounds=1, iterations=1
    )
    text = []
    for name, samples in results.items():
        tail = samples[2:]
        assert all(s.cpu_over_wakelock < 0.02 for s in tail), name
        text.append(name)
        text.append(render_series(samples, ["wakelock_time",
                                            "cpu_over_wakelock"]))
    artifact_writer("fig03_kontalk_two_phones.txt", "\n".join(text))


def test_bench_five_phone_study(benchmark, artifact_writer):
    from repro.experiments.characterization import (
        five_phone_study,
        render_five_phone,
    )

    results = benchmark.pedantic(
        lambda: five_phone_study(minutes=15.0), rounds=1, iterations=1
    )
    assert len(results) == 5
    ratios = {name: cpu / hold for name, (hold, cpu) in results.items()}
    # Ultralow utilization everywhere (the pattern is ecosystem-
    # independent), with absolute CPU time ~2x higher on the low end.
    assert all(ratio < 0.05 for ratio in ratios.values())
    assert ratios["Motorola Moto G"] > 1.5 * ratios["Google Pixel XL"]
    artifact_writer("fig02b_five_phones.txt",
                    render_five_phone(results))


def test_bench_fig4_k9_disconnected(benchmark, artifact_writer):
    samples = benchmark.pedantic(
        lambda: fig4_k9_disconnected(minutes=12.0), rounds=1, iterations=1
    )
    assert all(s.cpu_over_wakelock > 1.0 for s in samples)
    artifact_writer(
        "fig04_k9_disconnected.txt",
        render_series(samples, ["wakelock_time", "cpu_time",
                                "cpu_over_wakelock"]),
    )
