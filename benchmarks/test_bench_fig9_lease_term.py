"""Fig. 9: holding time of the Long-Holding test app vs lease term."""

import pytest

from repro.experiments.lease_term import (
    PAPER_FIG9A,
    PAPER_FIG9B,
    render,
    run_fig9a,
    run_fig9b,
)


def test_bench_fig9(benchmark, artifact_writer):
    def both():
        return run_fig9a(), run_fig9b()

    results_a, results_b = benchmark.pedantic(both, rounds=1, iterations=1)
    for term, expected in PAPER_FIG9A.items():
        assert results_a[term] == pytest.approx(expected, rel=0.05)
    for term, expected in PAPER_FIG9B.items():
        assert results_b[term] == pytest.approx(expected, rel=0.05)
    artifact_writer("fig09_lease_term.txt", render(results_a, results_b))
