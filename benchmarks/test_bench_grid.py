"""Grid-runner benchmark: serial vs parallel vs warm-cache wall time.

Records the measurements into ``results/BENCH_grid.json``:

- the Table 5 grid at jobs=1 vs jobs=4 (the parallel speedup is bounded
  by the machine's core count -- ``cpu_count`` is recorded alongside so
  a 1-core box reporting ~1x is interpretable);
- a warm-cache re-run of the same grid (must be >=2x faster -- cache
  hits perform zero simulation);
- the ledger micro-benchmark: ``app_total_mj`` latency at 8 vs 512
  rails (running totals make it O(1), so it must not scale with rails).
"""

import json
import os
import time

from repro.apps.buggy import BUGGY_CASES
from repro.device.power import EnergyLedger
from repro.experiments import table5
from repro.experiments.grid import GridRunner

#: Simulated minutes per case: scaled up so per-job compute dominates
#: pool startup, mirroring production-size sweeps.
MINUTES = 150.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _ledger_query_latency(rail_count, queries=20000):
    ledger = EnergyLedger()
    for index in range(rail_count):
        ledger.add(1000, "rail{}".format(index), 1.0)
    ledger.add(7, "cpu", 1.0)
    start = time.perf_counter()
    for __ in range(queries):
        ledger.app_total_mj(7)
    return (time.perf_counter() - start) / queries


def test_bench_grid_speedup(results_path, tmp_path):
    cases = BUGGY_CASES
    cache_dir = str(tmp_path / "grid-cache")

    serial_rows, serial_s = _timed(
        lambda: table5.run(cases=cases, minutes=MINUTES,
                           runner=GridRunner(jobs=1)))

    cold = GridRunner(jobs=4, cache=cache_dir)
    parallel_rows, parallel_s = _timed(
        lambda: table5.run(cases=cases, minutes=MINUTES, runner=cold))
    assert table5.render(parallel_rows) == table5.render(serial_rows)
    assert cold.stats.executed == len(cases) * len(table5.MITIGATIONS)

    warm = GridRunner(jobs=4, cache=cache_dir)
    warm_rows, warm_s = _timed(
        lambda: table5.run(cases=cases, minutes=MINUTES, runner=warm))
    assert table5.render(warm_rows) == table5.render(serial_rows)
    assert warm.stats.executed == 0, "warm cache must run no simulations"

    small = _ledger_query_latency(8)
    large = _ledger_query_latency(512)

    cpu_count = os.cpu_count() or 1
    payload = {
        "grid": "table5",
        "cases": len(cases),
        "jobs_parallel": 4,
        "jobs_effective": cold.effective_jobs,
        "minutes_per_case": MINUTES,
        "cpu_count": cpu_count,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "warm_cache_s": round(warm_s, 3),
        "cache_speedup": round(serial_s / warm_s, 2),
        "ledger_app_total_us_8_rails": round(small * 1e6, 3),
        "ledger_app_total_us_512_rails": round(large * 1e6, 3),
        "ledger_scaling_ratio": round(large / small, 2),
    }
    if cpu_count == 1:
        # Fan-out is clamped to the single core (effective serial run),
        # so the "parallel" column measures pool-free execution, not a
        # speedup -- annotate rather than publish a misleading <1.0.
        payload["parallel_note"] = (
            "single-core machine: jobs clamped to 1, parallel_speedup "
            "is serial-vs-serial noise, not a fan-out measurement")
    with open(results_path("BENCH_grid.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # A warm cache re-runs nothing, so it must beat serial comfortably.
    assert serial_s / warm_s >= 2.0
    # O(1) running totals: latency must not scale with the rail count.
    assert large / small < 8.0
    # Fan-out only pays on multi-core hardware; gate there, record anywhere.
    if (os.cpu_count() or 1) >= 4 and cold.stats.pool_fallbacks == 0:
        assert serial_s / parallel_s >= 2.0
