"""Fast-path benchmark: replay throughput, validation, 10^5 smoke.

Records ``results/BENCH_fastpath.json`` (uploaded by the CI
fastpath-smoke artifact step):

- kernel vs table-replay device-days/sec at the canonical 30 sim-min
  day, and the speedup (the tentpole claim: >= 1000x, asserted);
- the table-build amortisation facts (probe count, build seconds);
- a full cross-validation run -- kernel vs fast on >= 50 seeded random
  device-days drawn from the *default* heterogeneous sampling law,
  judged against the frozen per-metric tolerances (pass asserted);
- a 10^5-device fleet smoke through ``FleetRunner(mode="auto")``:
  end-to-end wall time, throughput, and the fallback fraction.

The kernel baseline is timed over a handful of device-days (it is four
orders of magnitude slower); the replay side over thousands.
"""

import json
import os
import time

from repro.experiments.grid import GridRunner
from repro.fleet import FleetRunner, PopulationSpec, build_report
from repro.fleet.fastpath import build_table, cross_validate, replay_shard
from repro.fleet.shard import simulate_device_day
from repro.fleet.stats import _numpy

#: Narrow sampling pools keep the benchmark's transition table small
#: (the speedup is per *device-day*; class diversity only moves the
#: one-off table cost, which is reported separately).
BENCH_POOLS = dict(profiles=("Nexus 5X",), buggy_pool=("torch", "k9"),
                   max_apps=3)
MINUTES = 30.0

#: Kernel device-days timed for the baseline denominator.
KERNEL_SAMPLE_DEVICES = 3

#: Devices replayed for the throughput numerator.
REPLAY_DEVICES = 500

#: Cross-validation width (the acceptance floor is 50 specs).
XVAL_N = 50

#: The CI smoke's fleet size.
SMOKE_DEVICES = 100_000


def test_bench_fastpath(results_path, tmp_path):
    population = PopulationSpec(seed=2019, devices=2000, shard_size=500,
                                minutes=MINUTES,
                                mitigations=("vanilla", "leaseos"),
                                **BENCH_POOLS)

    # Kernel baseline: a few real event-loop device-days.
    start = time.perf_counter()
    kernel_days = 0
    for index in range(KERNEL_SAMPLE_DEVICES):
        for mitigation in population.mitigations:
            simulate_device_day(population.device(index), mitigation,
                                MINUTES)
            kernel_days += 1
    kernel_s = time.perf_counter() - start
    kernel_dd_s = kernel_days / kernel_s

    # One-off table build (uncached, honestly timed).
    start = time.perf_counter()
    table = build_table(population,
                        runner=GridRunner(jobs=1, cache=False))
    table_s = time.perf_counter() - start

    # Replay throughput: lookups + perturbation + batched folding.
    start = time.perf_counter()
    stats, __ = replay_shard(population, 0, REPLAY_DEVICES, table)
    replay_s = time.perf_counter() - start
    replay_days = REPLAY_DEVICES * len(population.mitigations)
    replay_dd_s = replay_days / replay_s
    speedup = replay_dd_s / kernel_dd_s
    for name in population.mitigations:
        assert stats[name].counters["fastpath_devices"] == REPLAY_DEVICES
        assert stats[name].counters.get("fastpath_fallbacks", 0) == 0

    # The tentpole claim, kernel-validated: >= 50 seeded random
    # device-days from the *default* (fully heterogeneous) law, judged
    # against the frozen tolerances.
    xval_pop = PopulationSpec(seed=2019, devices=2000, shard_size=500,
                              minutes=MINUTES,
                              mitigations=("vanilla", "leaseos"))
    start = time.perf_counter()
    validation = cross_validate(xval_pop, n=XVAL_N,
                                runner=GridRunner(jobs=1, cache=False))
    xval_s = time.perf_counter() - start
    assert validation["pass"], validation["violations"]
    assert validation["device_days_compared"] >= XVAL_N

    # 10^5-device CI smoke: the full sharded pipeline in auto mode.
    smoke_pop = PopulationSpec(seed=2019, devices=SMOKE_DEVICES,
                               shard_size=5000, minutes=5.0,
                               mitigations=("vanilla", "leaseos"),
                               profiles=("Nexus 5X", "Google Pixel XL"),
                               buggy_pool=("torch", "k9"), max_apps=3)
    start = time.perf_counter()
    smoke_runner = FleetRunner(
        smoke_pop, runner=GridRunner(jobs=1, cache=False), mode="auto",
        checkpoint_dir=str(tmp_path / "ck-smoke"))
    assert smoke_runner.mode == (
        "vector" if _numpy() is not None else "fast")
    smoke_merged = smoke_runner.run()
    smoke_s = time.perf_counter() - start
    smoke_days = smoke_pop.devices * len(smoke_pop.mitigations)
    fallbacks = sum(
        smoke_merged[name].counters.get("fastpath_fallbacks", 0)
        for name in smoke_pop.mitigations)
    for name in smoke_pop.mitigations:
        assert smoke_merged[name].counters["devices"] == SMOKE_DEVICES
    # An unseen tail class falls back to the kernel; at fleet scale it
    # must stay a rounding error.
    assert fallbacks <= 0.005 * smoke_days
    build_report(smoke_pop, smoke_merged,
                 execution=smoke_runner.run_summary())

    payload = {
        "minutes_per_device_day": MINUTES,
        "kernel_device_days_timed": kernel_days,
        "kernel_device_days_per_s": round(kernel_dd_s, 2),
        "table_probes": len(table.entries),
        "table_build_s": round(table_s, 2),
        "replay_device_days": replay_days,
        "replay_s": round(replay_s, 3),
        "replay_device_days_per_s": round(replay_dd_s, 1),
        "speedup_vs_kernel": round(speedup, 1),
        "cross_validation_s": round(xval_s, 1),
        "cross_validation": validation,
        "smoke": {
            "devices": smoke_pop.devices,
            "device_days": smoke_days,
            "minutes_per_device_day": smoke_pop.minutes,
            "shards": smoke_pop.shard_count,
            "total_s": round(smoke_s, 1),
            "device_days_per_s": round(smoke_days / smoke_s, 1),
            "fastpath_fallbacks": fallbacks,
            "mode": smoke_runner.mode,
            "table_fingerprint": smoke_runner.table_fingerprint,
        },
        "cpu_count": os.cpu_count() or 1,
    }
    assert speedup >= 1000.0, payload
    with open(results_path("BENCH_fastpath.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
