"""Tables 1 and 2: taxonomy and the 109-case prevalence study."""

from repro.study.cases import table2_counts
from repro.experiments import study_tables


def test_bench_table1_taxonomy(benchmark, artifact_writer):
    text = benchmark(study_tables.render_table1)
    assert "GPS" in text
    artifact_writer("table1_taxonomy.txt", text)


def test_bench_table2_prevalence(benchmark, artifact_writer):
    counts = benchmark(table2_counts)
    assert sum(row["total"] for row in counts.values()) == 109
    assert counts["LUB"]["total"] == 28
    artifact_writer("table2_prevalence.txt",
                    study_tables.render_table2())
