"""Fig. 12: waste-reduction ratio vs lambda over intermittent traces."""

import pytest

from repro.experiments import lambda_sweep


def test_bench_fig12(benchmark, artifact_writer, results_path):
    results = benchmark.pedantic(
        lambda: lambda_sweep.run(cases=200, slices_per_case=200),
        rounds=1, iterations=1,
    )
    for lam, expected in lambda_sweep.PAPER_FIG12.items():
        assert results[lam] == pytest.approx(expected, abs=0.04), lam
    values = [results[lam] for lam in sorted(results)]
    assert values == sorted(values)  # monotone in lambda
    artifact_writer("fig12_lambda_sweep.txt", lambda_sweep.render(results))
    from repro.experiments.export import lambda_csv

    lambda_csv(results_path("fig12_lambda_sweep.csv"), results)
