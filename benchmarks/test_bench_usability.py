"""§7.4: usability of normal heavy apps, LeaseOS vs pure throttling."""

from repro.experiments import usability


def test_bench_usability(benchmark, artifact_writer):
    rows = benchmark.pedantic(
        lambda: usability.run(minutes=30.0), rounds=1, iterations=1
    )
    assert all(r.leaseos_disruptions == 0 for r in rows)  # paper claim
    assert all(r.throttle_disruptions >= 1 for r in rows)
    artifact_writer("usability_7_4.txt", usability.render(rows))
