"""Vector-engine benchmark: columnar vs scalar fast-path throughput.

Records ``results/BENCH_vector.json`` (uploaded by the CI vector-smoke
artifact step):

- scalar fast-path vs columnar device-days/sec on a 10^5-device,
  4-mitigation fleet (the tentpole claim: >= 10x, asserted), with the
  fallback count asserted zero on *both* sides so the comparison is
  pure engine against pure engine;
- the same columnar throughput at 2 mitigations (the default law's
  width) for scaling context;
- a 10^6-device end-to-end replay -- sampling, class resolution,
  composition and folding over every shard, merged -- asserted under
  60 s (the ISSUE's fleet-scale wall-clock budget);
- the one-off table build, timed separately (it amortises across the
  whole fleet and is identical for both engines).

The bench law is app-rich (8..12 installed apps, four mitigations)
because that is where the scalar per-device Python walk hurts; the
buggy pool is narrowed to six cases and the buggy prevalence kept low
enough that no device in the 10^6 fleet is all-buggy (all-buggy
foreground probe combinations live outside the table's bounded probe
scan), so every merged-case environment is covered by the table and
neither engine takes a kernel fallback.
"""

import json
import os
import time

from repro.experiments.grid import GridRunner
from repro.fleet.fastpath import build_table, replay_shard
from repro.fleet.population import BUGGY_POOL, PopulationSpec
from repro.fleet.stats import FleetStats
from repro.fleet.vector import replay_shard_vector

MITIGATIONS = ("vanilla", "leaseos", "doze-aggressive", "defdroid")

#: The throughput-comparison fleet.
BENCH_DEVICES = 100_000

#: Devices the scalar side replays (it is ~10x slower per device-day;
#: a prefix keeps the benchmark honest *and* quick).
SCALAR_DEVICES = 2_500

#: The end-to-end fleet-scale smoke.
SMOKE_DEVICES = 1_000_000

#: Required columnar advantage over the scalar fast path.
MIN_SPEEDUP = 10.0

#: Fleet-scale wall-clock budget (seconds) for the 10^6 replay.
SMOKE_BUDGET_S = 60.0


def _population(devices, mitigations, shard_size):
    return PopulationSpec(
        devices=devices, seed=7, mitigations=mitigations,
        min_apps=8, max_apps=12, buggy_prevalence=0.15,
        buggy_pool=tuple(BUGGY_POOL[:6]), shard_size=shard_size)


def _fallbacks(stats):
    return max(fold.counters.get("fastpath_fallbacks", 0)
               for fold in stats.values())


def test_bench_vector(results_path):
    population = _population(BENCH_DEVICES, MITIGATIONS, 25_000)

    # One-off table build, shared by both engines (timed separately:
    # it amortises over the fleet and is identical either way).
    start = time.perf_counter()
    table = build_table(population,
                        runner=GridRunner(jobs=1, cache=False))
    table_s = time.perf_counter() - start

    # Scalar fast path: a device prefix, pure table replay.
    start = time.perf_counter()
    scalar_stats, __ = replay_shard(population, 0, SCALAR_DEVICES,
                                    table)
    scalar_s = time.perf_counter() - start
    scalar_days = SCALAR_DEVICES * len(MITIGATIONS)
    scalar_dd_s = scalar_days / scalar_s
    assert _fallbacks(scalar_stats) == 0

    # Columnar engine: one full shard.
    start = time.perf_counter()
    vector_stats, __ = replay_shard_vector(population, 0, 25_000,
                                           table)
    vector_s = time.perf_counter() - start
    vector_days = 25_000 * len(MITIGATIONS)
    vector_dd_s = vector_days / vector_s
    assert _fallbacks(vector_stats) == 0
    assert vector_stats["vanilla"].counters["vector_devices"] == 25_000
    speedup = vector_dd_s / scalar_dd_s

    # Scaling context: the same law at the default two-mitigation
    # width (same table -- sampling is mitigation-independent).
    narrow = _population(BENCH_DEVICES, ("vanilla", "leaseos"), 25_000)
    start = time.perf_counter()
    narrow_stats, __ = replay_shard_vector(narrow, 0, 25_000, table)
    narrow_s = time.perf_counter() - start
    narrow_dd_s = 25_000 * 2 / narrow_s
    assert _fallbacks(narrow_stats) == 0

    # Fleet scale: 10^6 devices end-to-end (sample, resolve, compose,
    # fold, merge) under the wall-clock budget.
    smoke_pop = _population(SMOKE_DEVICES, MITIGATIONS, 50_000)
    start = time.perf_counter()
    merged = {name: FleetStats() for name in MITIGATIONS}
    for shard in range(smoke_pop.shard_count):
        lo, hi = smoke_pop.shard_range(shard)
        stats, __ = replay_shard_vector(smoke_pop, lo, hi, table)
        merged = {name: merged[name].merge(stats[name])
                  for name in MITIGATIONS}
    smoke_s = time.perf_counter() - start
    smoke_days = SMOKE_DEVICES * len(MITIGATIONS)
    for name in MITIGATIONS:
        assert merged[name].counters["devices"] == SMOKE_DEVICES
    assert _fallbacks(merged) == 0

    payload = {
        "mitigations": list(MITIGATIONS),
        "app_slots": [8, 12],
        "buggy_pool_cases": 6,
        "buggy_prevalence": 0.15,
        "table_probes": len(table.entries),
        "table_build_s": round(table_s, 2),
        "scalar_device_days": scalar_days,
        "scalar_s": round(scalar_s, 3),
        "scalar_device_days_per_s": round(scalar_dd_s, 1),
        "vector_device_days": vector_days,
        "vector_s": round(vector_s, 3),
        "vector_device_days_per_s": round(vector_dd_s, 1),
        "speedup_vs_fast": round(speedup, 2),
        "vector_2mit_device_days_per_s": round(narrow_dd_s, 1),
        "smoke": {
            "devices": SMOKE_DEVICES,
            "device_days": smoke_days,
            "shards": smoke_pop.shard_count,
            "replay_s": round(smoke_s, 1),
            "device_days_per_s": round(smoke_days / smoke_s, 1),
            "budget_s": SMOKE_BUDGET_S,
        },
        "cpu_count": os.cpu_count() or 1,
    }
    with open(results_path("BENCH_vector.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    assert speedup >= MIN_SPEEDUP, payload
    assert smoke_s < SMOKE_BUDGET_S, payload
