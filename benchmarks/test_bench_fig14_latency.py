"""Fig. 14: end-to-end interaction latency with and without leases."""

from repro.experiments import latency


def test_bench_fig14(benchmark, artifact_writer):
    results = benchmark.pedantic(
        lambda: latency.run(touches=12), rounds=1, iterations=1
    )
    for kind, (without, with_lease) in results.items():
        assert without > 0, kind
        overhead_pct = abs(with_lease - without) / without
        assert overhead_pct < 0.02, kind  # leases off the critical path
    artifact_writer("fig14_latency.txt", latency.render(results))
