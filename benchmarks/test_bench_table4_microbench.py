"""Table 4: latency of the major lease operations.

These use pytest-benchmark properly (many rounds) on the live manager
entry points of a phone mid-simulation, reproducing the paper's
create/check/update shape: checks are the cheapest, the per-term stat
update costs several times more.
"""

from repro.experiments.microbench import (
    build_bench_phone,
    modelled_latencies_ms,
    render,
)

_RESULTS = {}


def _setup():
    phone, manager, app = build_bench_phone()
    lease = next(iter(manager.leases.values()))
    return phone, manager, app, lease


def test_bench_table4_check_accept(benchmark):
    __, manager, __, lease = _setup()
    benchmark(lambda: manager.check(lease.descriptor))
    _RESULTS["check_accept"] = benchmark.stats.stats.mean * 1000.0


def test_bench_table4_check_reject(benchmark):
    __, manager, __, __ = _setup()
    benchmark(lambda: manager.check(-1))
    _RESULTS["check_reject"] = benchmark.stats.stats.mean * 1000.0


def test_bench_table4_renew(benchmark):
    __, manager, __, lease = _setup()
    benchmark(lambda: manager.renew(lease.descriptor))
    _RESULTS["renew"] = benchmark.stats.stats.mean * 1000.0


def test_bench_table4_update(benchmark):
    __, manager, __, lease = _setup()
    benchmark(lambda: manager._collect(lease))
    _RESULTS["update"] = benchmark.stats.stats.mean * 1000.0


def test_bench_table4_create(benchmark):
    __, manager, app, lease = _setup()
    record = lease.record

    def create_remove():
        created = manager.create(record.rtype, app.uid, record,
                                 lease.proxy)
        manager.remove(created.descriptor)

    benchmark(create_remove)
    _RESULTS["create"] = benchmark.stats.stats.mean * 1000.0 / 2.0


def test_bench_table4_report(benchmark, artifact_writer):
    """Summarize (runs last within this module's execution order)."""
    if {"check_accept", "update"} <= set(_RESULTS):
        assert _RESULTS["update"] > _RESULTS["check_accept"]
    text = benchmark.pedantic(
        lambda: render(_RESULTS), rounds=1, iterations=1
    )
    text += "\n\nmodelled (paper) latencies ms: {}".format(
        modelled_latencies_ms()
    )
    artifact_writer("table4_lease_ops.txt", text)
