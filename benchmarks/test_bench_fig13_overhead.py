"""Fig. 13: system power overhead of LeaseOS under five settings."""

from repro.experiments import overhead


def test_bench_fig13(benchmark, artifact_writer):
    rows = benchmark.pedantic(
        lambda: overhead.run(repeats=3), rounds=1, iterations=1
    )
    assert len(rows) == 5
    for setting, base, lease in rows:
        pct = 100.0 * (lease - base) / base if base else 0.0
        assert abs(pct) < 1.0, (setting.key, pct)  # paper: < 1%
    artifact_writer("fig13_overhead.txt", overhead.render(rows))
