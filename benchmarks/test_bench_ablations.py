"""Design-choice ablations (DESIGN.md §6)."""

from repro.experiments import ablations


def _value(rows, name, variant_substring):
    for row in rows:
        if row.name == name and variant_substring in row.variant:
            return row.value
    raise AssertionError("missing {} / {}".format(name, variant_substring))


def test_bench_ablation_escalation(benchmark, artifact_writer):
    rows = benchmark.pedantic(ablations.ablate_escalation, rounds=1,
                              iterations=1)
    fixed = _value(rows, "escalation", "fixed")
    escalating = _value(rows, "escalation", "escalating")
    assert escalating > fixed + 5.0  # escalation buys the paper's ~98%
    artifact_writer("ablation_escalation.txt", ablations.render(rows))


def test_bench_ablation_adaptive_terms(benchmark, artifact_writer):
    rows = benchmark.pedantic(ablations.ablate_adaptive_terms, rounds=1,
                              iterations=1)
    fixed = _value(rows, "adaptive terms", "fixed")
    adaptive = _value(rows, "adaptive terms", "adaptive")
    assert adaptive < fixed / 3.0  # far fewer stat updates
    artifact_writer("ablation_adaptive_terms.txt", ablations.render(rows))


def test_bench_ablation_custom_utility_guard(benchmark, artifact_writer):
    rows = benchmark.pedantic(ablations.ablate_custom_utility_guard,
                              rounds=1, iterations=1)
    guarded = _value(rows, "custom-utility guard", "guard on")
    unguarded = _value(rows, "custom-utility guard", "guard off")
    assert guarded >= 1  # the lying app still gets deferred
    assert unguarded == 0  # without the guard it whitewashes itself
    artifact_writer("ablation_custom_guard.txt", ablations.render(rows))


def test_bench_ablation_smoothing(benchmark, artifact_writer):
    rows = benchmark.pedantic(ablations.ablate_smoothing, rounds=1,
                              iterations=1)
    rough = _value(rows, "utility smoothing", "no smoothing")
    smoothed = _value(rows, "utility smoothing", "smoothing (12")
    assert smoothed == 0  # no wrongful deferrals with smoothing
    assert rough > smoothed
    artifact_writer("ablation_smoothing.txt", ablations.render(rows))
