"""§2.3's core argument as one table: holding time misleads, utility
does not."""

from repro.experiments import misleading_classifier


def test_bench_misleading_classifier(benchmark, artifact_writer):
    rows = benchmark.pedantic(misleading_classifier.run, rounds=1,
                              iterations=1)
    by_name = {r.name: r for r in rows}
    # Every subject holds essentially all the time: indistinguishable to
    # a holding-time classifier...
    assert all(r.hold_fraction > 0.9 for r in rows)
    assert all(r.defdroid_throttled for r in rows)
    # ...while the utilitarian lease separates them exactly.
    for name, row in by_name.items():
        if "(buggy)" in name:
            assert row.lease_deferrals > 0, name
        else:
            assert row.lease_deferrals == 0, name
    artifact_writer("misleading_classifier_2_3.txt",
                    misleading_classifier.render(rows))
