"""The reproduction scorecard: every paper claim graded in one run."""

from repro.experiments import verdict


def test_bench_verdict_all_claims_pass(benchmark, artifact_writer):
    claims = benchmark.pedantic(verdict.run, rounds=1, iterations=1)
    text = verdict.render(claims)
    artifact_writer("verdict.txt", text)
    failed = [c for c in claims if not c.passed]
    assert not failed, "failed claims: {}".format(
        [(c.section, c.statement) for c in failed]
    )
    assert len(claims) >= 15
