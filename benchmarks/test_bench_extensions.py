"""The §8 future-work extensions, exercised end to end."""

from repro.experiments import extensions


def test_bench_dvfs_repricing(benchmark):
    results = benchmark.pedantic(extensions.run_dvfs, rounds=1,
                                 iterations=1)
    assert results["energy-based"] > results["time-based"] * 1.5


def test_bench_dynamic_policy(benchmark):
    lengths = benchmark.pedantic(extensions.run_dynamic_policy, rounds=1,
                                 iterations=1)
    reputable = lengths["reputable (2 min clean)"]
    chronic = lengths["chronic (bad from boot)"]
    assert reputable < chronic


def test_bench_extensions_report(benchmark, artifact_writer):
    text = benchmark.pedantic(extensions.render, rounds=1, iterations=1)
    assert "DVFS-aware" in text
    artifact_writer("extensions_s8.txt", text)
