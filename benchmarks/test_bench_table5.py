"""Table 5: the main evaluation -- 20 buggy apps x 4 regimes.

The full grid (80 thirty-minute phone runs) regenerates the paper's
headline numbers; the assertions pin the shape the paper reports:
LeaseOS ~90%+ average reduction and clearly ahead of Doze (~70%) and
DefDroid (~60%), Doze near-zero on screen bugs, DefDroid weakest on GPS.
"""

import statistics

from repro.experiments import table5


def test_bench_table5_full_grid(benchmark, artifact_writer, results_path):
    rows = benchmark.pedantic(
        lambda: table5.run(minutes=30.0), rounds=1, iterations=1
    )
    assert len(rows) == 20
    avg = table5.averages(rows)

    # Headline shape (paper: 92.6 / 69.6 / 62.0).
    assert avg["leaseos"] > 85.0
    assert 50.0 < avg["doze"] < avg["leaseos"] - 15.0
    assert 50.0 < avg["defdroid"] < avg["leaseos"] - 15.0

    by_key = {r.case.key: r for r in rows}
    # Doze cannot mitigate screen-wakelock bugs (paper: 0.57% / 4.33%).
    assert by_key["connectbot-screen"].doze_reduction < 5.0
    assert by_key["standup-timer"].doze_reduction < 5.0
    # DefDroid is weakest on the GPS rows (paper: 26-65%).
    gps_rows = [r for r in rows if r.case.resource.value == "gps"]
    assert statistics.mean(r.defdroid_reduction for r in gps_rows) < 55.0
    # LeaseOS never loses to a baseline by a wide margin on any row.
    for row in rows:
        assert row.leaseos_reduction > row.defdroid_reduction - 10.0

    artifact_writer("table5_buggy_apps.txt", table5.render(rows))
    from repro.experiments.export import table5_csv

    table5_csv(results_path("table5_buggy_apps.csv"), rows)


def test_bench_table5_behaviors_confirmed(benchmark):
    """Every case is classified with the paper's behaviour label."""
    from repro.apps.buggy import BUGGY_CASES

    rows = benchmark.pedantic(
        lambda: table5.run(cases=BUGGY_CASES[:6], minutes=10.0),
        rounds=1, iterations=1,
    )
    for row in rows:
        assert row.behavior_confirmed, row.case.key
