"""The mitigation zoo: every mechanism's blind spot in one table."""

from repro.experiments import baseline_zoo


def test_bench_baseline_zoo(benchmark, artifact_writer):
    grid = benchmark.pedantic(baseline_zoo.run, rounds=1, iterations=1)

    def reduction(case, name):
        vanilla = grid[(case, "vanilla")]
        return 100.0 * (1.0 - grid[(case, name)] / vanilla)

    # LeaseOS contains every class.
    for case in baseline_zoo.CASE_KEYS:
        assert reduction(case, "LeaseOS") > 90.0, case
    # Each other mechanism has its documented blind spot.
    assert reduction("torch", "Amplify") < 5.0  # holds, not acquires
    assert reduction("torch", "BatterySaver") < 5.0  # battery is full
    assert reduction("connectbot-screen", "Doze*") < 5.0  # no screen
    assert reduction("betterweather", "DefDroid") < 60.0  # gentle GPS
    # TimedThrottle contains but (per 7.4) breaks legitimate apps.
    assert reduction("torch", "TimedThrottle") > 50.0

    artifact_writer("baseline_zoo.txt", baseline_zoo.render(grid))
