"""Fig. 11: active leases over one hour of normal usage."""

from repro.experiments import lease_activity


def test_bench_fig11(benchmark, artifact_writer, results_path):
    result = benchmark.pedantic(lease_activity.run, rounds=1, iterations=1)
    # Paper: 160 leases created; most short-lived; avg 4 terms.
    assert 60 <= result.created_total <= 400
    active_half = [c for t, c in result.samples if t <= 1800.0]
    idle_half = [c for t, c in result.samples if t > 1800.0]
    assert max(active_half) >= max(idle_half)
    assert result.mean_terms >= 1.0
    artifact_writer("fig11_lease_activity.txt",
                    lease_activity.render(result))
    from repro.experiments.export import lease_activity_csv

    lease_activity_csv(results_path("fig11_lease_activity.csv"), result)
