"""Deployment estimate over a simulated device population."""

from repro.experiments import deployment


def test_bench_deployment_estimate(benchmark, artifact_writer):
    estimate = benchmark.pedantic(deployment.run, rounds=1, iterations=1)
    # Heavy-tailed: the p95 device saves far more than the mean, and a
    # meaningful share of the population sees no change at all.
    assert estimate.p95_savings_mw > 2.0 * estimate.mean_savings_mw
    assert 0.2 < estimate.share_with_savings < 0.95
    assert estimate.mean_savings_mw > 10.0
    artifact_writer("deployment_estimate.txt",
                    deployment.render(estimate))
