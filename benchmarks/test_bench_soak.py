"""Multi-day soak: the §7.4 anecdote, simulated.

The paper's primary author daily-drove a LeaseOS phone for 10+ days with
no visible side effects. We soak a phone with a fleet of normal apps
(plus the §7.4 trio) through three simulated days of daily-usage cycles
and assert: zero disruptions anywhere, zero deferrals for any normal
app, and a lease table that stays bounded (the GC sweep works).
"""

from repro.apps.normal.background import Haven, RunKeeper, Spotify
from repro.apps.normal.interactive import popular_apps
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS


def test_bench_three_day_soak(benchmark, artifact_writer):
    def soak():
        mitigation = LeaseOS()
        phone = Phone(seed=71, mitigation=mitigation, gps_quality=0.95,
                      movement_mps=1.0)
        fleet = popular_apps(6)
        for app in fleet:
            phone.install(app)
        background = [phone.install(Spotify()), phone.install(Haven()),
                      phone.install(RunKeeper())]
        uids = [a.uid for a in fleet]

        def day():
            while True:
                # Morning, midday, evening sessions; sleep in between.
                for __ in range(3):
                    yield from phone.user.active_session(
                        uids, 30 * 60.0, touch_interval=10.0)
                    yield from phone.user.idle_session(7 * 3600.0 / 3)

        phone.sim.spawn(day(), name="soak.user")
        phone.run_for(hours=72.0)
        return phone, mitigation, fleet + background

    phone, mitigation, apps = benchmark.pedantic(soak, rounds=1,
                                                 iterations=1)
    disruptions = sum(len(a.disruptions) for a in apps)
    deferrals = sum(
        lease.deferral_count
        for a in apps
        for lease in mitigation.manager.leases_for(a.uid)
    )
    # The paper's claim is *no visible side effects* over a 10+-day
    # daily drive; a handful of deferrals of genuinely sloppy post-touch
    # holds is fine (and correct) as long as nothing user-visible broke
    # and the always-on background trio was never touched.
    assert disruptions == 0
    assert deferrals < 20
    trio_uids = {a.uid for a in apps if a.foreground_service}
    trio_deferrals = sum(
        lease.deferral_count
        for uid in trio_uids
        for lease in mitigation.manager.leases_for(uid)
    )
    assert trio_deferrals == 0
    # The lease table stays bounded over days (GC sweeps idle leases).
    assert len(mitigation.manager.leases) < 250
    assert mitigation.manager.gc_removed > 0

    summary = (
        "Three-day soak (fleet of {} apps):\n"
        "  disruptions: {}\n  deferrals for normal apps: {}\n"
        "  leases created: {}, live table: {}, GC-swept: {}\n"
        "  lease-stat updates: {}\n"
        "  deep sleep: {:.0f}% of uptime"
    ).format(
        len(apps), disruptions, deferrals,
        mitigation.manager.created_total, len(mitigation.manager.leases),
        mitigation.manager.gc_removed,
        mitigation.manager.op_counts["update"],
        100.0 * phone.suspend.suspended_time() / phone.sim.now,
    )
    artifact_writer("soak_three_days.txt", summary)
