"""§7.6 end-to-end battery test: ~12 h vanilla vs ~15 h LeaseOS."""

from repro.experiments import battery_life


def test_bench_battery_life(benchmark, artifact_writer):
    result = benchmark.pedantic(
        lambda: battery_life.run(with_saver=True), rounds=1, iterations=1
    )
    assert result.hours_vanilla < result.hours_leaseos
    assert 8.0 < result.hours_vanilla < 16.0  # calibrated near 12 h
    assert result.extension_pct > 15.0  # paper: +25%
    # Battery Saver (threshold-triggered, utility-blind) helps, but less
    # than the always-on utilitarian lease.
    assert result.hours_vanilla < result.hours_saver < result.hours_leaseos
    artifact_writer("battery_life_7_6.txt", battery_life.render(result))
