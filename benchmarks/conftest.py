"""Benchmark plumbing: artifact directory + result writer.

Every benchmark regenerates its paper artifact (the table/series text)
under ``results/`` so a ``pytest benchmarks/ --benchmark-only`` run
leaves the full set of reproduced tables and figures on disk.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


@pytest.fixture(scope="session")
def artifact_writer():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name, text):
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return path

    return write


@pytest.fixture(scope="session")
def results_path():
    """Absolute path builder into results/ (for CSV exports)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def build(name):
        return os.path.join(RESULTS_DIR, name)

    return build
