"""Setuptools shim; metadata lives in pyproject.toml.

Kept so legacy editable installs (``python setup.py develop``) work in
offline environments without the ``wheel`` package.
"""

from setuptools import setup

setup()
