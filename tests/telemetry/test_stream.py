"""Emission determinism: stream goldens, resume continuation, gates.

The contract under test: with the progress time-gate removed
(``REPRO_TELEMETRY_PROGRESS_S=0``), a shard's stream is a pure
function of (population, shard boundaries, mode) once wall-clock
fields are stripped -- independent of dispatch order and of which
process emitted it.
"""

import io
import json

from contextlib import redirect_stdout

from repro.cli import main
from repro.fleet.population import PopulationSpec
from repro.fleet.shard import run_shard
from repro.telemetry.emit import ENV_DIR, ENV_FP, ENV_PROGRESS
from repro.telemetry.schema import (
    canonical_json,
    load_stream_dir,
    validate_stream_dir,
)

POP = PopulationSpec(seed=23, devices=8, shard_size=3, minutes=2.0,
                     mitigations=("vanilla", "leaseos"))


def _emit_shards(monkeypatch, directory, order):
    monkeypatch.setenv(ENV_DIR, str(directory))
    monkeypatch.setenv(ENV_FP, POP.fingerprint()[:12])
    monkeypatch.setenv(ENV_PROGRESS, "0")  # snapshot per device
    for shard in order:
        start, stop = POP.shard_range(shard)
        run_shard(POP.to_json(), start, stop)


def test_shard_streams_are_order_independent_goldens(tmp_path,
                                                     monkeypatch):
    a, b = tmp_path / "a", tmp_path / "b"
    _emit_shards(monkeypatch, a, [0, 1, 2])
    _emit_shards(monkeypatch, b, [2, 0, 1])
    events_a, problems_a = load_stream_dir(str(a))
    events_b, problems_b = load_stream_dir(str(b))
    assert problems_a == problems_b == []
    assert validate_stream_dir(str(a)) == []
    # Timestamp-stripped canonical bytes are identical across dispatch
    # orders -- the stream golden.
    assert canonical_json(events_a) == canonical_json(events_b)


def test_progress_snapshots_carry_mergeable_partials(tmp_path,
                                                     monkeypatch):
    _emit_shards(monkeypatch, tmp_path, [0])
    events, __ = load_stream_dir(str(tmp_path))
    progress = [e for e in events if e["event"] == "shard_progress"]
    # One snapshot per device plus the forced final one.
    assert len(progress) == 4
    last = progress[-1]
    assert last["devices_done"] == last["devices_total"] == 3
    # Kernel path: every mitigation's day is folded.
    assert last["device_days"] == 3 * len(POP.mitigations)
    assert last["energy_mw"]["count"] == last["device_days"]
    assert last["elapsed_s"] >= 0


def test_negative_progress_interval_disables_snapshots(tmp_path,
                                                       monkeypatch):
    monkeypatch.setenv(ENV_PROGRESS, "-1")
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    monkeypatch.setenv(ENV_FP, POP.fingerprint()[:12])
    start, stop = POP.shard_range(0)
    run_shard(POP.to_json(), start, stop)
    events, __ = load_stream_dir(str(tmp_path))
    kinds = {e["event"] for e in events}
    assert "shard_progress" not in kinds
    assert "shard_started" in kinds


def test_foreign_fingerprint_keeps_the_worker_silent(tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    monkeypatch.setenv(ENV_FP, "0" * 12)  # some other run's stream
    start, stop = POP.shard_range(0)
    run_shard(POP.to_json(), start, stop)
    events, __ = (load_stream_dir(str(tmp_path))
                  if list(tmp_path.iterdir()) else ([], []))
    assert events == []


def test_fallback_events_share_the_warn_once_gate(tmp_path,
                                                  monkeypatch):
    from repro.fleet.fastpath import (
        _log_fallback_once,
        reset_fallback_warnings,
    )
    from repro.telemetry.emit import shard_telemetry

    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    monkeypatch.setenv(ENV_FP, POP.fingerprint()[:12])
    reset_fallback_warnings()
    telem = shard_telemetry(POP, 0, 0, 3, "fast")
    try:
        _log_fallback_once("fault-plan-armed", 0)
        _log_fallback_once("fault-plan-armed", 1)
        _log_fallback_once("probe-crashed", 2)
    finally:
        reset_fallback_warnings()
        telem.close()
    events, __ = load_stream_dir(str(tmp_path))
    fallbacks = [e for e in events if e["event"] == "fallback"]
    # Every occurrence is counted, but only the first per reason is an
    # event -- the same gating as the stderr warning.
    assert [e["reason"] for e in fallbacks] == ["fault-plan-armed",
                                                "probe-crashed"]
    assert telem.fallbacks == 3


# -- kill-and-resume continuation (CLI) --------------------------------------

def _fleet_argv(tmp_path, extra=()):
    return [
        "fleet", "--devices", "6", "--shard-size", "2", "--minutes", "2",
        "--seed", "5", "--no-cache",
        "--checkpoint-dir", str(tmp_path / "ck"),
        "--report-json", str(tmp_path / "fleet.json"),
        "--telemetry-dir", str(tmp_path / "stream"),
    ] + list(extra)


def _run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_resume_continues_the_stream_without_reemitting(tmp_path):
    stream = str(tmp_path / "stream")
    code, __ = _run_cli(_fleet_argv(tmp_path, ["--max-shards", "2"]))
    assert code == 0
    events, problems = load_stream_dir(stream)
    assert problems == []
    kinds = [e["event"] for e in events]
    assert kinds.count("run_started") == 1
    assert "run_finished" not in kinds  # still in flight
    assert kinds.count("shard_finished") == 2

    code, __ = _run_cli(_fleet_argv(tmp_path))
    assert code == 0
    assert validate_stream_dir(stream, require_finished=True) == []
    events, __ = load_stream_dir(stream)
    resumed = [e for e in events if e["event"] == "run_resumed"]
    assert len(resumed) == 1
    assert resumed[0]["shards_resumed"] == 2
    # Finished shards are never re-emitted: 3 shards, 3 announcements
    # across the whole directory.
    finished = [e["shard"] for e in events
                if e["event"] == "shard_finished"]
    assert sorted(finished) == [0, 1, 2]
    terminal = [e for e in events if e["event"] == "run_finished"]
    assert len(terminal) == 1
    assert terminal[0]["shards_resumed"] == 2
    assert terminal[0]["report_sha256"]
    # The stream's aggregate equals the canonical report byte-for-byte.
    from repro.telemetry.watch import check_report, load_view

    view, __ = load_view(stream)
    assert check_report(view, str(tmp_path / "fleet.json")) is None


def test_two_runs_in_one_process_emit_identical_shard_streams(
        tmp_path, monkeypatch):
    a, b = tmp_path / "a", tmp_path / "b"
    _emit_shards(monkeypatch, a, [0, 1, 2])
    _emit_shards(monkeypatch, b, [0, 1, 2])
    events_a, __ = load_stream_dir(str(a))
    events_b, __ = load_stream_dir(str(b))
    assert canonical_json(events_a) == canonical_json(events_b)
    payload = canonical_json(events_a)
    # Spot-check the canonical form: stripped of wall-clock, compact.
    first = json.loads(payload.splitlines()[0])
    assert "t_wall" not in first and "elapsed_s" not in first
