"""The watch aggregator: bitwise report agreement and rendering."""

import io
import json
import os

from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.fleet.population import PopulationSpec
from repro.fleet.report import report_json
from repro.fleet.shard import FleetRunner
from repro.telemetry.watch import (
    RunView,
    check_report,
    follow,
    load_view,
    reconstruct_report,
    render_snapshot,
    resolve_run,
)

POP = PopulationSpec(seed=5, devices=6, shard_size=2, minutes=2.0,
                     mitigations=("vanilla", "leaseos"))


def _run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@pytest.fixture(scope="module")
def finished_run(tmp_path_factory):
    """One finished telemetry-enabled CLI fleet run."""
    root = tmp_path_factory.mktemp("watch")
    stream = str(root / "stream")
    report = str(root / "fleet.json")
    code, __ = _run_cli([
        "fleet", "--devices", "6", "--shard-size", "2", "--minutes",
        "2", "--seed", "5", "--no-cache",
        "--checkpoint-dir", str(root / "ck"),
        "--report-json", report, "--telemetry-dir", stream,
    ])
    assert code == 0
    return stream, report, str(root / "ck")


def test_merged_stats_match_the_runners_fold(finished_run):
    stream, __, ck = finished_run
    view, problems = load_view(stream)
    assert problems == []
    merged, missing = view.merged_stats()
    assert missing == []
    runner = FleetRunner(POP, checkpoint_dir=ck)
    expected = runner.merged_stats()
    assert set(merged) == set(expected)
    for name in expected:
        assert merged[name].to_dict() == expected[name].to_dict()


def test_reconstructed_report_equals_the_artifact_bytes(finished_run):
    stream, report_path, __ = finished_run
    view, __ = load_view(stream)
    with open(report_path) as handle:
        on_disk = handle.read().rstrip("\n")
    assert report_json(reconstruct_report(view)) == on_disk
    assert check_report(view, report_path) is None


def test_check_report_catches_a_tampered_artifact(finished_run,
                                                  tmp_path):
    stream, report_path, __ = finished_run
    view, __ = load_view(stream)
    tampered = json.loads(open(report_path).read())
    tampered["devices"] += 1
    other = tmp_path / "tampered.json"
    other.write_text(json.dumps(tampered, sort_keys=True,
                                separators=(",", ":")) + "\n")
    problem = check_report(view, str(other))
    assert problem is not None and "disagrees" in problem


def test_render_snapshot_shows_the_fleet_table(finished_run):
    stream, __, ___ = finished_run
    view, __ = load_view(stream)
    text = render_snapshot(view, stream)
    assert "[finished]" in text
    assert "vanilla" in text and "leaseos" in text
    assert "run_finished: 3 executed" in text


def test_render_snapshot_before_any_run_record(tmp_path):
    assert "no run_started" in render_snapshot(RunView([]),
                                               str(tmp_path))


def test_partial_totals_from_progress_snapshots():
    progress = {"v": 1, "event": "shard_progress", "stream":
                "shard-000001", "seq": 1, "fp": "ab" * 6, "t_wall": 1.0,
                "shard": 1, "devices_done": 2, "devices_total": 4,
                "device_days": 4, "fallbacks": 1, "crashed": 0,
                "energy_mw": {"count": 4, "mean": 700.0, "m2": 10.0,
                              "min": 650.0, "max": 750.0}}
    view = RunView([progress])
    devices, days, fallbacks, crashed, energy = view.partial_totals()
    assert (devices, days, fallbacks, crashed) == (2, 4, 1, 0)
    assert energy.count == 4 and energy.mean == 700.0
    # Retries restart from zero: an older, further snapshot wins.
    earlier = dict(progress, seq=0, devices_done=1, device_days=2)
    view = RunView([progress, earlier])
    assert view.progress[1]["devices_done"] == 2


def test_resolve_run_by_prefix_and_recency(finished_run, tmp_path):
    stream, __, ___ = finished_run
    # A directory path resolves to itself.
    assert resolve_run(stream) == stream
    # Prefix match under a root.
    root = tmp_path / "root"
    os.makedirs(str(root / "abc123"))
    os.makedirs(str(root / "abd456"))
    assert resolve_run("abc", root=str(root)).endswith("abc123")
    with pytest.raises(ValueError):
        resolve_run("ab", root=str(root))
    with pytest.raises(FileNotFoundError):
        resolve_run("zzz", root=str(root))
    # No argument: the most recently modified run wins.
    os.utime(str(root / "abc123"), (1, 1))
    assert resolve_run(root=str(root)).endswith("abd456")
    with pytest.raises(FileNotFoundError):
        resolve_run(root=str(tmp_path / "absent"))


def test_follow_returns_once_the_run_finishes(finished_run):
    stream, __, ___ = finished_run
    renders = []
    view = follow(stream, interval=0.0, render=renders.append,
                  sleep=lambda s: None)
    assert view.run_finished is not None
    assert len(renders) == 1 and "[finished]" in renders[0]


def test_watch_cli_snapshot_and_check_report(finished_run, tmp_path):
    stream, report_path, __ = finished_run
    code, text = _run_cli(["watch", stream, "--snapshot",
                           "--check-report", report_path])
    assert code == 0
    assert "agrees with" in text
    # Tampered report: non-zero exit.
    bad = tmp_path / "bad.json"
    bad.write_text("{}\n")
    code, text = _run_cli(["watch", stream, "--check-report",
                           str(bad)])
    assert code == 1
    assert "check-report FAILED" in text
    # Unresolvable run: non-zero exit, no traceback.
    code, text = _run_cli(["watch", "--telemetry-root",
                           str(tmp_path / "nothing")])
    assert code == 1 and "watch:" in text


def test_watch_merges_partials_for_an_unfinished_run(tmp_path):
    # A run stopped early still renders fleet-level numbers from the
    # finished shards, and reconstruct_report refuses (no terminal
    # record yet).
    root = tmp_path
    stream = str(root / "stream")
    code, __ = _run_cli([
        "fleet", "--devices", "6", "--shard-size", "2", "--minutes",
        "2", "--seed", "5", "--no-cache", "--max-shards", "2",
        "--checkpoint-dir", str(root / "ck"),
        "--report-json", str(root / "fleet.json"),
        "--telemetry-dir", stream,
    ])
    assert code == 0
    view, problems = load_view(stream)
    assert problems == []
    merged, missing = view.merged_stats()
    assert missing == [2]
    assert merged["vanilla"].counters["devices"] == 4
    text = render_snapshot(view, stream)
    assert "[running]" in text and "shards 2/3 done" in text
    with pytest.raises(ValueError):
        reconstruct_report(view)
