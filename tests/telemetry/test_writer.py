"""The crash-safe append-only stream writer."""

import json

from repro.telemetry.schema import validate_stream_file
from repro.telemetry.writer import TelemetryWriter


def _records(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


def test_records_carry_the_envelope_and_gapless_seq(tmp_path):
    with TelemetryWriter(str(tmp_path), "run", "ab" * 6) as writer:
        writer.emit("run_started", population="{}", mode="kernel",
                    requested_mode="kernel", devices=4, shards=1)
        writer.emit("run_finished", shards_total=1, shards_run=1,
                    shards_resumed=0, shards_quarantined=0, devices=4,
                    execution={}, report_sha256="")
        path = writer.path
    records = _records(path)
    assert [r["seq"] for r in records] == [0, 1]
    assert all(r["stream"] == "run" and r["fp"] == "ab" * 6
               for r in records)
    assert validate_stream_file(path, require_finished=True) == []


def test_each_record_is_one_sorted_compact_line(tmp_path):
    writer = TelemetryWriter(str(tmp_path), "run", "ab" * 6)
    writer.emit("fallback", shard=0, reason="x", device=3)
    writer.close()
    with open(writer.path) as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert lines[0] == json.dumps(record, sort_keys=True,
                                  separators=(",", ":"))


def test_two_writers_for_one_stream_never_share_a_file(tmp_path):
    # Two runs in one process (same pid): the per-process counter in
    # the file name keeps their seq spaces disjoint.
    first = TelemetryWriter(str(tmp_path), "run", "ab" * 6)
    second = TelemetryWriter(str(tmp_path), "run", "ab" * 6)
    assert first.path != second.path
    first.emit("budget", label="a", attempt=1, error="")
    second.emit("budget", label="b", attempt=1, error="")
    first.close()
    second.close()
    assert _records(first.path)[0]["seq"] == 0
    assert _records(second.path)[0]["seq"] == 0


def test_emit_after_close_is_a_noop(tmp_path):
    writer = TelemetryWriter(str(tmp_path), "run", "ab" * 6)
    writer.emit("budget", label="a", attempt=1, error="")
    writer.close()
    writer.emit("budget", label="b", attempt=2, error="")
    writer.close()  # idempotent
    assert len(_records(writer.path)) == 1


def test_records_are_flushed_per_emit_without_close(tmp_path):
    # Line buffering: a crash (never calling close) loses nothing
    # already emitted.
    writer = TelemetryWriter(str(tmp_path), "run", "ab" * 6)
    writer.emit("budget", label="a", attempt=1, error="")
    assert len(_records(writer.path)) == 1
