"""The telemetry event schema and its validator."""

import json
import os

from repro.telemetry.schema import (
    SCHEMA_VERSION,
    canonical_events,
    canonical_json,
    parse_lines,
    strip_wallclock,
    validate_event,
    validate_events,
    validate_stream_file,
)

EXAMPLE = os.path.join(os.path.dirname(__file__), "..", "data",
                       "telemetry_example.jsonl")


def _event(**overrides):
    base = {"v": SCHEMA_VERSION, "event": "shard_started",
            "stream": "shard-000000", "seq": 0, "fp": "ab" * 6,
            "t_wall": 1.0, "shard": 0, "start": 0, "stop": 4,
            "mode": "kernel"}
    base.update(overrides)
    return base


def test_valid_event_has_no_problems():
    assert validate_event(_event()) == []


def test_unknown_event_type_is_a_problem():
    problems = validate_event(_event(event="shard_imploded"))
    assert any("unknown event type" in p for p in problems)


def test_missing_required_field_is_a_problem():
    event = _event()
    del event["stop"]
    problems = validate_event(event)
    assert any("'stop'" in p for p in problems)


def test_missing_envelope_field_is_a_problem():
    event = _event()
    del event["seq"]
    assert any("envelope" in p for p in validate_event(event))


def test_schema_version_mismatch_is_a_problem():
    problems = validate_event(_event(v=SCHEMA_VERSION + 1))
    assert any("schema version" in p for p in problems)


def test_extra_fields_are_allowed():
    # The schema is open for additions: extra payload fields must not
    # fail old validators.
    assert validate_event(_event(experimental_field=1)) == []


def test_seq_gap_is_detected():
    events = [_event(seq=0), _event(seq=2)]
    problems = validate_events(events)
    assert any("gap or reorder" in p for p in problems)


def test_gapless_interleaved_streams_are_fine():
    events = [_event(seq=0),
              _event(seq=0, stream="run", event="run_started",
                     population="{}", mode="kernel",
                     requested_mode="kernel", devices=4, shards=1),
              _event(seq=1)]
    assert validate_events(events) == []


def test_mixed_fingerprints_are_a_problem():
    events = [_event(seq=0), _event(seq=1, fp="cd" * 6)]
    assert any("mixed run fingerprints" in p
               for p in validate_events(events))


def test_parse_lines_flags_torn_lines():
    events, problems = parse_lines(
        [json.dumps(_event()), '{"v": 1, "trunc'])
    assert len(events) == 1
    assert any("unparsable" in p for p in problems)


def test_strip_wallclock_removes_only_tagged_fields():
    event = _event(elapsed_s=1.5, rate_dd_s=4.0)
    stripped = strip_wallclock(event)
    assert "t_wall" not in stripped and "elapsed_s" not in stripped
    assert stripped["shard"] == 0 and stripped["seq"] == 0


def test_canonical_events_sorts_by_stream_and_seq():
    events = [_event(stream="shard-000001", seq=1),
              _event(stream="run", seq=0, event="run_finished",
                     shards_total=1, shards_run=1, shards_resumed=0,
                     shards_quarantined=0, devices=4, execution={},
                     report_sha256=""),
              _event(stream="shard-000001", seq=0)]
    ordered = canonical_events(events)
    assert [(e["stream"], e["seq"]) for e in ordered] == [
        ("run", 0), ("shard-000001", 0), ("shard-000001", 1)]
    assert all("t_wall" not in e for e in ordered)
    # Canonical bytes are stable across input permutations.
    assert canonical_json(events) == canonical_json(events[::-1])


def test_committed_example_stream_validates_as_finished():
    assert validate_stream_file(EXAMPLE, require_finished=True) == []


def test_lint_tool_passes_the_example_and_fails_garbage(tmp_path,
                                                        capsys):
    import importlib.util

    tool = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                        "check_telemetry_schema.py")
    spec = importlib.util.spec_from_file_location("check_schema", tool)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--require-finished", EXAMPLE]) == 0
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"v": 1, "event": "nope"}\n')
    assert module.main([str(bad)]) == 1
    assert module.main([str(tmp_path / "absent.jsonl")]) == 1
    capsys.readouterr()
