"""Tests for the declarative Scenario builder."""

import pytest

from repro.apps.buggy.cpu_apps import K9Mail, Torch
from repro.mitigation import LeaseOS
from repro.scenario import Scenario


def test_basic_install_and_measure():
    scenario = (
        Scenario(seed=5)
        .install("torch", Torch)
        .measure("all", start_min=0)
    )
    result = scenario.run(minutes=10)
    assert result.power("all", "torch") == pytest.approx(
        result.phone.profile.cpu_awake_idle_mw, rel=0.05
    )
    assert result.power("all") >= result.power("all", "torch")


def test_environment_steps_fire_at_the_right_time():
    scenario = (
        Scenario(seed=5, connected=True)
        .install("k9", K9Mail, scenario="bad_server")
        .at(minutes=4).server("mail-server", "error")
        .measure("healthy-phase", start_min=0, end_min=4)
        .measure("error-phase", start_min=4, end_min=10)
    )
    result = scenario.run(minutes=10)
    # Against the healthy server each alarm-driven sync is short; once
    # the server starts erroring, the retry path holds the lock much
    # longer per sync.
    assert result.power("error-phase", "k9") > \
        1.2 * result.power("healthy-phase", "k9")


def test_same_timeline_replays_under_mitigations():
    def build():
        return (
            Scenario(seed=9, gps_quality=0.95)
            .install("torch", Torch)
            .measure("all", start_min=0)
        )

    vanilla = build().run(minutes=10)
    leased = build().run(minutes=10, mitigation=LeaseOS())
    assert leased.power("all", "torch") < \
        0.2 * vanilla.power("all", "torch")


def test_user_session_and_touch():
    scenario = (
        Scenario(seed=5)
        .install("torch", Torch)
        .at(minutes=1).user_session(["torch"], minutes=2)
        .at(minutes=4).touch("torch")
        .measure("all")
    )
    result = scenario.run(minutes=5)
    assert len(result.app("torch").interaction_times) >= 5


def test_kill_step():
    scenario = (
        Scenario(seed=5)
        .install("torch", Torch)
        .at(minutes=2).kill("torch")
        .measure("after-kill", start_min=2)
    )
    result = scenario.run(minutes=10)
    assert result.power("after-kill", "torch") == pytest.approx(0.0,
                                                                abs=0.5)


def test_duplicate_names_rejected():
    scenario = Scenario().install("a", Torch)
    with pytest.raises(ValueError):
        scenario.install("a", Torch)
    scenario.measure("w")
    with pytest.raises(ValueError):
        scenario.measure("w")


def test_unmeasured_window_raises():
    result = Scenario(seed=5).install("t", Torch).run(minutes=1)
    with pytest.raises(KeyError):
        result.power("nope")


def test_install_at_mid_run():
    from repro.droid.app import App

    class Burner(App):
        app_name = "burner"

        def run(self):
            lock = self.ctx.power.new_wakelock(self, "b")
            lock.acquire()
            while True:
                yield from self.compute(0.8)
                yield self.sleep(0.2)

    scenario = (
        Scenario(seed=5)
        .install("early", Torch)
        .at(minutes=5).install_at("late", Burner)
        .measure("first-half", start_min=0, end_min=5)
        .measure("second-half", start_min=5, end_min=10)
    )
    result = scenario.run(minutes=10)
    # The burner's compute shows up only in the second window.
    assert result.power("second-half") > result.power("first-half") + 100.0
    assert result.app("late").started


def test_scenario_replay_is_deterministic():
    def once():
        return (
            Scenario(seed=13)
            .install("k9", K9Mail, scenario="bad_server")
            .at(minutes=2).server("mail-server", "error")
            .measure("all")
            .run(minutes=8)
        )

    a, b = once(), once()
    assert a.power("all", "k9") == b.power("all", "k9")
    assert a.power("all") == b.power("all")


def test_scenario_fuzz_never_crashes():
    from hypothesis import given, settings, strategies as st

    step_strategy = st.sampled_from(
        ["network_off", "network_on", "gps_weak", "gps_good", "touch"]
    )

    @settings(max_examples=15, deadline=None)
    @given(steps=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=9.5), step_strategy),
        max_size=12,
    ))
    def run_fuzz(steps):
        scenario = Scenario(seed=3).install("t", Torch).measure("all")
        for minute, kind in steps:
            scenario.at(minutes=minute)
            if kind == "network_off":
                scenario.network(False)
            elif kind == "network_on":
                scenario.network(True)
            elif kind == "gps_weak":
                scenario.gps_quality(0.05)
            elif kind == "gps_good":
                scenario.gps_quality(0.9)
            else:
                scenario.touch("t")
        result = scenario.run(minutes=10)
        assert result.power("all") >= 0.0

    run_fuzz()
