"""Byte-identical output goldens across the kernel overhaul.

Every optimisation in the hot-loop PR (lazy deletion + compaction,
timer reuse, O(1) power totals, event-driven samplers, dirty-flag
governor scans, lease-GC early-out) claims to be *observationally
exact*: not "close", identical. These tests pin sha256 digests of
formatted experiment output captured on the seed engine, so any future
"optimisation" that perturbs float summation order, dispatch order, or
sampling cadence fails loudly instead of silently drifting the paper's
numbers.

If a digest changes because of an *intentional* semantic change, re-pin
it in the same commit and call that out in the commit message.
"""

import hashlib

from repro.apps.buggy import BUGGY_CASES
from repro.apps.normal.background import Haven, RunKeeper, Spotify
from repro.apps.normal.interactive import popular_apps
from repro.droid.phone import Phone
from repro.experiments import characterization, overhead, table5
from repro.experiments.runner import run_case
from repro.mitigation import BatterySaver, DefDroid, Doze, LeaseOS, TimedThrottle


def _digest(text):
    return hashlib.sha256(text.encode()).hexdigest()


def test_golden_fig1_betterweather():
    text = "\n".join(
        "{:.1f},{:.6f},{:.6f}".format(r.time, r.gps_search_time, r.power_mw)
        for r in characterization.fig1_betterweather())
    assert _digest(text) == (
        "cc8213a7a1cc6b0e6d208959750b2b1c4bb5c0487eb1ac37ef1b5f9c65aa922a")


def test_golden_fig2_k9_bad_server():
    text = "\n".join(
        "{:.1f},{:.6f},{:.6f},{:.6f}".format(
            r.time, r.wakelock_time, r.cpu_time, r.power_mw)
        for r in characterization.fig2_k9_bad_server())
    assert _digest(text) == (
        "f7f335029a5ee48c79e427a02ea6faff8f06e0a71b596b36c6ec862d94e0a54d")


def test_golden_table5_rendered():
    text = table5.render(table5.run(cases=BUGGY_CASES[:6], minutes=10.0))
    assert _digest(text) == (
        "6828ec214efe4c0c58b6e31856b86795bc12a09a839f2f87433830e443e74ed9")


def test_golden_overhead_sweep():
    rows = overhead.run(settings=overhead.SETTINGS[:3], repeats=1)
    text = "\n".join(
        "{}|{:.9f}|{:.9f}".format(s.key, a, b) for s, a, b in rows)
    assert _digest(text) == (
        "2d71423a42a6f55724074713ffd07c188864de65cbe4110742586cdd397e6a47")


def test_golden_mitigation_scan_matrix():
    # Exercises every dirty-flag scan path: Doze (plain + aggressive),
    # DefDroid's per-service thresholds, TimedThrottle, BatterySaver.
    factories = (Doze, lambda: Doze(aggressive=True), DefDroid,
                 TimedThrottle, BatterySaver)
    lines = []
    for factory in factories:
        for case in BUGGY_CASES[:4]:
            r = run_case(case, factory, minutes=20.0)
            lines.append("{}|{}|{:.9f}|{:.9f}|{}".format(
                r.case_key, r.mitigation, r.app_power_mw,
                r.system_power_mw, r.disruptions))
    assert _digest("\n".join(lines)) == (
        "4a01df1f0fcf19a2c7a081e0c3fda8733f0e50c520c7085ea8767ff5662fe797")


def test_golden_six_hour_leaseos_soak():
    # A busy mixed workload: interactive fleet with touch-driven
    # sessions plus three background apps, under full lease management.
    # Covers the GC early-out, the INACTIVE counter, and the running
    # power total over tens of thousands of rail changes.
    mit = LeaseOS()
    phone = Phone(seed=71, mitigation=mit, gps_quality=0.95,
                  movement_mps=1.0)
    fleet = popular_apps(6)
    for app in fleet:
        phone.install(app)
    bg = [phone.install(Spotify()), phone.install(Haven()),
          phone.install(RunKeeper())]
    uids = [a.uid for a in fleet]

    def day():
        while True:
            for __ in range(3):
                yield from phone.user.active_session(
                    uids, 30 * 60.0, touch_interval=10.0)
                yield from phone.user.idle_session(7 * 3600.0 / 3)

    phone.sim.spawn(day(), name="soak.user")
    phone.run_for(hours=6.0)
    text = "{:.9f}|{}|{}|{}|{}".format(
        phone.monitor.ledger.total_mj(), mit.manager.created_total,
        mit.manager.op_counts["update"], mit.manager.gc_removed,
        sum(len(a.disruptions) for a in fleet + bg))
    assert _digest(text) == (
        "58c76fe325f0db1c57e21b430faa40f849c3c34525764d89592090e913f6c794")


def test_golden_sampled_fault_plan():
    # Fault plans are drawn from random.Random(seed) alone; a seed number
    # in a CI log must describe the same chaos on every machine and
    # Python version. Pins the JSON of one sampled plan.
    from repro.faults.plan import FaultPlan

    text = FaultPlan.sample(1, horizon_s=3600.0).to_json()
    assert _digest(text) == (
        "8afafc46bce9cc3d0cb41a2fde009ebbfb346a419440f9c6e08987ee2ee3f748")


def test_golden_fleet_report(tmp_path):
    # The whole fleet pipeline -- population sampling, device-day
    # simulation (with chaos armed on half the fleet), shard folding,
    # checkpointed merge, canonical report JSON -- must be bit-identical
    # across processes, machines and Python versions. This is the same
    # guarantee the fleet-smoke CI job checks via kill-and-resume.
    from repro.experiments.grid import GridRunner
    from repro.fleet import (
        FleetRunner,
        PopulationSpec,
        build_report,
        report_json,
    )

    population = PopulationSpec(
        seed=77, devices=6, shard_size=2, minutes=3.0,
        mitigations=("vanilla", "leaseos"), chaos_rate=0.5)
    runner = FleetRunner(population, runner=GridRunner(jobs=1, cache=False),
                         checkpoint_dir=str(tmp_path / "ck"))
    text = report_json(build_report(population, runner.run()))
    assert _digest(text) == (
        "6c0ed3f4f98a7fdb33c9cdcb6a4b5744b525ac256a4731394dbc707e43ce5776")


def test_golden_chaos_case_fingerprint():
    # Fault injection must be exactly deterministic: the same (scenario,
    # fault plan, seed) produces a bit-identical run. The fingerprint
    # hashes every observable scalar of the perturbed simulation.
    from repro.experiments.chaos import run_chaos_case
    from repro.faults.plan import FaultPlan

    kwargs = dict(case_key="torch", mitigation="leaseos", minutes=5.0,
                  seed=7, plan_json=FaultPlan.sample(1, 300.0).to_json())
    first = run_chaos_case(**kwargs)
    second = run_chaos_case(**kwargs)
    assert first == second  # in-process repeatability of the full result
    assert first["violations"] == []
    assert first["faults_applied"] > 0
    assert first["fingerprint"] == (
        "8605d6cadbf14bc7814b49eb8db7e20265a3aa9167abb39af082873a0a6aa57b")
