"""Tests for the network environment."""

import random

import pytest

from repro.env.network import NetworkEnvironment, ServerMode
from repro.sim.engine import Simulator


@pytest.fixture
def net():
    return NetworkEnvironment(Simulator())


def test_defaults_connected_wifi(net):
    assert net.connected
    assert net.kind == "wifi"


def test_disconnect_clears_kind(net):
    net.set_connected(False)
    assert not net.connected
    assert net.kind is None


def test_change_listener_fires_on_transition(net):
    events = []
    net.on_change(lambda c, k: events.append((c, k)))
    net.set_connected(False)
    net.set_connected(False)  # no change, no event
    net.set_connected(True, kind="cellular")
    assert events == [(False, None), (True, "cellular")]


def test_kind_change_while_connected_fires(net):
    events = []
    net.on_change(lambda c, k: events.append(k))
    net.set_connected(True, kind="cellular")
    assert events == ["cellular"]


def test_server_mode_defaults_ok(net):
    assert net.server_mode("anything") is ServerMode.OK


def test_set_server_requires_enum(net):
    with pytest.raises(TypeError):
        net.set_server("s", "error")


def test_ok_request_outcome(net):
    rng = random.Random(1)
    outcome = net.request_outcome("server", rng, payload_s=1.0)
    assert outcome.ok
    assert outcome.duration >= 1.0


def test_error_server_outcome(net):
    net.set_server("bad", ServerMode.ERROR)
    outcome = net.request_outcome("bad", random.Random(1))
    assert outcome.status == "error"
    assert not outcome.ok
    assert 0 < outcome.duration < 1.0


def test_down_server_times_out(net):
    net.set_server("dead", ServerMode.DOWN)
    outcome = net.request_outcome("dead", random.Random(1))
    assert outcome.status == "timeout"
    assert outcome.duration == NetworkEnvironment.TIMEOUT


def test_disconnected_fails_fast(net):
    net.set_connected(False)
    outcome = net.request_outcome("server", random.Random(1))
    assert outcome.status == "no_network"
    assert outcome.duration < 0.1
