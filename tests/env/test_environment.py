"""Tests for the Environment composite and scheduled scenario changes."""

from repro.env.environment import Environment
from repro.sim.engine import Simulator


def test_defaults():
    env = Environment(Simulator())
    assert env.network.connected
    assert env.gps.quality == 0.9
    assert env.gps.speed_mps == 0.0


def test_constructor_overrides():
    env = Environment(Simulator(), connected=False, gps_quality=0.2,
                      movement_mps=1.5)
    assert not env.network.connected
    assert env.gps.quality == 0.2
    assert env.gps.speed_mps == 1.5


def test_scheduled_network_change():
    sim = Simulator()
    env = Environment(sim, connected=True)
    env.schedule_network_change(10.0, False)
    env.schedule_network_change(20.0, True, kind="cellular")
    sim.run_until(15.0)
    assert not env.network.connected
    sim.run_until(25.0)
    assert env.network.connected
    assert env.network.kind == "cellular"


def test_scheduled_gps_quality():
    sim = Simulator()
    env = Environment(sim, gps_quality=0.9)
    env.schedule_gps_quality(30.0, 0.1)
    sim.run_until(31.0)
    assert env.gps.quality == 0.1
    assert not env.gps.lock_possible
