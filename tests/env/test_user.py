"""Tests for the stochastic user model."""

import random

from repro.env.user import UserModel
from repro.sim.engine import Simulator


class FakePhone:
    def __init__(self):
        self.log = []

    def screen_on(self):
        self.log.append("screen_on")

    def screen_off(self):
        self.log.append("screen_off")

    def set_foreground(self, uid):
        self.log.append(("fg", uid))

    def touch(self, uid):
        self.log.append(("touch", uid))


def run_session(seed=5, uids=(1, 2), duration=120.0, **kwargs):
    sim = Simulator()
    phone = FakePhone()
    user = UserModel(sim, phone, random.Random(seed))
    sim.spawn(user.active_session(list(uids), duration, **kwargs))
    sim.run_until(duration + 1.0)
    return phone.log


def test_session_turns_screen_on_then_off():
    log = run_session()
    assert log[0] == "screen_on"
    assert log[-1] == "screen_off"
    assert ("fg", None) in log


def test_session_touches_foreground_app():
    log = run_session(duration=60.0, touch_interval=5.0)
    touches = [entry for entry in log if isinstance(entry, tuple)
               and entry[0] == "touch"]
    assert len(touches) >= 5
    assert all(t[1] in (1, 2) for t in touches)


def test_session_switches_apps():
    log = run_session(duration=300.0, switch_interval=20.0)
    foregrounds = {entry[1] for entry in log
                   if isinstance(entry, tuple) and entry[0] == "fg"}
    assert {1, 2, None} <= foregrounds


def test_single_app_never_switches():
    log = run_session(uids=(9,), duration=200.0, switch_interval=10.0)
    foregrounds = [entry[1] for entry in log
                   if isinstance(entry, tuple) and entry[0] == "fg"]
    assert set(foregrounds) == {9, None}


def test_deterministic_under_seed():
    assert run_session(seed=11) == run_session(seed=11)
    assert run_session(seed=11) != run_session(seed=12)


def test_empty_uids_rejected():
    import pytest

    sim = Simulator()
    user = UserModel(sim, FakePhone(), random.Random(1))
    with pytest.raises(ValueError):
        list(user.active_session([], 10.0))


def test_idle_session_turns_screen_off():
    sim = Simulator()
    phone = FakePhone()
    user = UserModel(sim, phone, random.Random(1))
    sim.spawn(user.idle_session(60.0))
    sim.run_until(61.0)
    assert phone.log == ["screen_off"]
