"""Tests for the GPS signal environment."""

import random

import pytest

from repro.env.gps import GpsEnvironment
from repro.sim.engine import Simulator


def make_gps(quality=0.9, speed=0.0):
    return GpsEnvironment(Simulator(), quality=quality, speed_mps=speed)


def test_good_signal_locks():
    gps = make_gps(0.9)
    assert gps.lock_possible
    ttf = gps.time_to_fix(random.Random(1))
    assert ttf is not None
    assert 0 < ttf < 20.0


def test_weak_signal_never_locks():
    gps = make_gps(0.1)
    assert not gps.lock_possible
    assert gps.time_to_fix(random.Random(1)) is None


def test_quality_bounds_enforced():
    gps = make_gps()
    with pytest.raises(ValueError):
        gps.set_quality(1.5)
    with pytest.raises(ValueError):
        gps.set_quality(-0.1)


def test_worse_signal_means_slower_fix():
    rng_values = [random.Random(7), random.Random(7)]
    fast = make_gps(1.0).time_to_fix(rng_values[0])
    slow = make_gps(0.4).time_to_fix(rng_values[1])
    assert slow > fast


def test_distance_moved_scales_with_speed():
    gps = make_gps(speed=2.0)
    assert gps.distance_moved(10.0) == pytest.approx(20.0)
    gps.speed_mps = 0.0
    assert gps.distance_moved(10.0) == 0.0


def test_threshold_boundary():
    gps = make_gps(GpsEnvironment.LOCK_THRESHOLD)
    assert gps.lock_possible
