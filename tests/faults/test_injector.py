"""The fault injector: every kind applies, restores, and is deterministic."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.env.network import ServerMode
from repro.faults.injector import FaultInjector
from repro.faults.jitter import DispatchJitter
from repro.faults.plan import FaultEvent, FaultPlan


def build_phone(case_key="torch"):
    case = CASES_BY_KEY[case_key]
    phone = case.build_phone(mitigation=None, seed=7)
    app = case.make_app()
    phone.install(app)
    return phone, app


def arm(phone, *events, **kwargs):
    injector = FaultInjector(phone, FaultPlan(events), **kwargs)
    return injector.arm()


# -- binder IPC --------------------------------------------------------------

def test_ipc_latency_window_applies_and_restores():
    phone, __ = build_phone()
    arm(phone, FaultEvent("ipc_latency", 10.0, 20.0, param=0.02))
    phone.sim.run_until(15.0)
    assert phone.ipc.fault_extra_latency_s == pytest.approx(0.02)
    phone.sim.run_until(45.0)
    assert phone.ipc.fault_extra_latency_s == 0.0


def test_overlapping_ipc_windows_compose_and_unwind():
    phone, __ = build_phone()
    arm(phone,
        FaultEvent("ipc_latency", 10.0, 30.0, param=0.01),
        FaultEvent("ipc_latency", 20.0, 10.0, param=0.02))
    phone.sim.run_until(25.0)
    assert phone.ipc.fault_extra_latency_s == pytest.approx(0.03)
    phone.sim.run_until(35.0)  # inner window closed, outer still open
    assert phone.ipc.fault_extra_latency_s == pytest.approx(0.01)
    phone.sim.run_until(50.0)
    assert phone.ipc.fault_extra_latency_s == 0.0


def test_ipc_failure_window_sets_rate_and_counts_failures():
    phone, __ = build_phone("k9")  # binder-heavy workload
    injector = arm(phone, FaultEvent("ipc_failure", 10.0, 120.0, param=1.0))
    phone.sim.run_until(60.0)
    assert phone.ipc.fault_failure_rate == 1.0
    assert phone.ipc.failed_calls > 0  # every call in the window fails
    phone.sim.run_until(200.0)
    assert phone.ipc.fault_failure_rate == 0.0
    assert injector.applied == [(10.0, "ipc_failure")]


# -- GPS ---------------------------------------------------------------------

def test_gps_dropout_zeroes_quality_then_restores():
    phone, __ = build_phone("betterweather")
    before = phone.env.gps.quality
    assert before > 0.0
    arm(phone, FaultEvent("gps_dropout", 10.0, 30.0))
    phone.sim.run_until(20.0)
    assert phone.env.gps.quality == 0.0
    assert not phone.env.gps.lock_possible
    phone.sim.run_until(60.0)
    assert phone.env.gps.quality == before


def test_gps_degraded_sets_param_quality():
    phone, __ = build_phone("betterweather")
    before = phone.env.gps.quality
    arm(phone, FaultEvent("gps_degraded", 10.0, 30.0, param=0.1))
    phone.sim.run_until(20.0)
    assert phone.env.gps.quality == pytest.approx(0.1)
    phone.sim.run_until(60.0)
    assert phone.env.gps.quality == before


# -- network -----------------------------------------------------------------

def test_net_flap_disconnects_then_reconnects_same_kind():
    phone, __ = build_phone()
    kind = phone.env.network.kind
    assert phone.env.network.connected
    arm(phone, FaultEvent("net_flap", 10.0, 20.0))
    phone.sim.run_until(15.0)
    assert not phone.env.network.connected
    phone.sim.run_until(45.0)
    assert phone.env.network.connected
    assert phone.env.network.kind == kind


def test_net_flap_does_not_reconnect_an_already_down_network():
    phone, __ = build_phone()
    phone.env.network.set_connected(False)
    arm(phone, FaultEvent("net_flap", 10.0, 20.0))
    phone.sim.run_until(45.0)
    assert not phone.env.network.connected


def test_server_storm_errors_every_known_server_then_restores():
    phone, __ = build_phone()
    network = phone.env.network
    network.set_server("imap.example", ServerMode.OK)
    network.set_server("api.example", ServerMode.DOWN)
    arm(phone, FaultEvent("server_storm", 10.0, 20.0, param=0.0))
    phone.sim.run_until(15.0)
    assert network.server_mode("imap.example") is ServerMode.ERROR
    assert network.server_mode("api.example") is ServerMode.ERROR
    phone.sim.run_until(45.0)
    assert network.server_mode("imap.example") is ServerMode.OK
    assert network.server_mode("api.example") is ServerMode.DOWN


def test_server_storm_param_one_takes_servers_down():
    phone, __ = build_phone()
    phone.env.network.set_server("imap.example", ServerMode.OK)
    arm(phone, FaultEvent("server_storm", 10.0, 20.0, param=1.0))
    phone.sim.run_until(15.0)
    assert phone.env.network.server_mode("imap.example") is ServerMode.DOWN


# -- app lifecycle -----------------------------------------------------------

def test_app_crash_kills_then_restarts_the_target():
    phone, app = build_phone()
    assert app.started
    arm(phone, FaultEvent("app_crash", 10.0, 15.0), target_uid=app.uid)
    phone.sim.run_until(12.0)
    assert not app.started
    # kill_app cleaned the kernel objects: nothing honoured for the uid
    assert all(r.uid != app.uid for r in phone.power.honoured_records())
    phone.sim.run_until(60.0)
    assert app.started


def test_app_crash_on_a_dead_app_is_a_no_op():
    phone, app = build_phone()
    arm(phone,
        FaultEvent("app_crash", 10.0, 40.0),
        FaultEvent("app_crash", 20.0, 5.0), target_uid=app.uid)
    phone.sim.run_until(22.0)  # second crash fired while app was down
    assert not app.started
    phone.sim.run_until(80.0)
    assert app.started


# -- power model -------------------------------------------------------------

def test_rail_noise_adds_spurious_draw_then_restores():
    phone, __ = build_phone()
    arm(phone, FaultEvent("rail_noise", 10.0, 20.0, param=35.0))
    phone.sim.run_until(15.0)
    assert phone.monitor.rail_power(
        FaultInjector.NOISE_RAIL) == pytest.approx(35.0)
    phone.sim.run_until(45.0)
    assert phone.monitor.rail_power(FaultInjector.NOISE_RAIL) == 0.0


def test_battery_jitter_books_energy_through_the_ledger():
    phone, __ = build_phone()
    arm(phone, FaultEvent("battery_jitter", 10.0, param=250.0))
    phone.sim.run_until(20.0)
    phone.monitor.settle()
    assert phone.monitor.ledger.rail_total_mj(
        FaultInjector.JITTER_RAIL) == pytest.approx(250.0)
    # booked as modelled energy, so the ledger still self-agrees
    assert phone.monitor.ledger.consistency_error_mj() < 1e-6


# -- engine ------------------------------------------------------------------

def test_event_jitter_installs_and_removes_the_interposer():
    phone, __ = build_phone()
    assert phone.sim.trace is None
    arm(phone, FaultEvent("event_jitter", 10.0, 20.0, param=0.5))
    phone.sim.run_until(15.0)
    assert isinstance(phone.sim.trace, DispatchJitter)
    phone.sim.run_until(60.0)
    assert phone.sim.trace is None


def test_nested_event_jitter_windows_restore_at_depth_zero():
    phone, __ = build_phone()
    arm(phone,
        FaultEvent("event_jitter", 10.0, 40.0, param=0.3),
        FaultEvent("event_jitter", 20.0, 10.0, param=0.3))
    phone.sim.run_until(35.0)  # inner closed; outer still jittering
    assert isinstance(phone.sim.trace, DispatchJitter)
    phone.sim.run_until(80.0)
    assert phone.sim.trace is None


def test_event_jitter_chains_to_a_preinstalled_trace():
    from repro.sim import KernelTrace

    phone, __ = build_phone()
    profiler = phone.sim.set_trace(KernelTrace())
    arm(phone, FaultEvent("event_jitter", 10.0, 20.0, param=0.2))
    phone.sim.run_until(15.0)
    assert phone.sim.trace.inner is profiler
    phone.sim.run_until(60.0)
    assert phone.sim.trace is profiler  # restored, profiling continues


# -- determinism -------------------------------------------------------------

def test_same_plan_and_seed_apply_identically():
    plan = FaultPlan.sample(5, horizon_s=600.0)
    logs = []
    for __ in range(2):
        phone, app = build_phone("k9")
        injector = FaultInjector(phone, plan, seed=7,
                                 target_uid=app.uid).arm()
        phone.run_for(minutes=10.0)
        logs.append((tuple(injector.applied), phone.ipc.failed_calls,
                     phone.sim.dispatched))
    assert logs[0] == logs[1]


def test_arm_is_idempotent():
    phone, __ = build_phone()
    injector = FaultInjector(
        phone, FaultPlan([FaultEvent("net_flap", 10.0, 5.0)]))
    injector.arm().arm()
    phone.sim.run_until(30.0)
    assert injector.applied == [(10.0, "net_flap")]
    assert phone.env.network.connected
