"""The chaos experiment harness and its CLI plumbing."""

import pytest

from repro import cli
from repro.experiments import chaos
from repro.experiments.grid import GridRunner
from repro.faults.plan import FaultPlan

SMALL = dict(case_keys=("torch",), plan_seeds=(1,), minutes=2.0)


def small_report():
    return chaos.run(runner=GridRunner(), **SMALL)


def test_run_produces_a_complete_grid():
    report = small_report()
    expected_cells = {("torch", m) for m in chaos.MITIGATIONS}
    assert set(report.baseline) == expected_cells
    assert set(report.by_plan) == {1}
    assert set(report.by_plan[1]) == expected_cells
    assert report.plans[1] == FaultPlan.sample(1, horizon_s=2.0 * 60.0)
    for result in report.baseline.values():
        assert result["plan_seed"] is None
        assert result["faults_applied"] == 0
    assert report.total_violations == 0
    assert report.violating_runs() == []


def test_run_goes_through_the_grid_runner_and_caches(tmp_path):
    runner = GridRunner(cache=str(tmp_path / "cache"))
    first = chaos.render(chaos.run(runner=runner, **SMALL))
    submitted = runner.stats.submitted
    assert submitted == 2 * len(chaos.MITIGATIONS)  # baseline + 1 plan
    warm = GridRunner(cache=str(tmp_path / "cache"))
    second = chaos.render(chaos.run(runner=warm, **SMALL))
    assert second == first
    assert warm.stats.cache_hits == submitted
    assert warm.stats.executed == 0


def test_render_layout_mentions_plans_and_verdicts():
    text = chaos.render(small_report())
    assert "plan 1:" in text
    assert "Verdicts" in text
    assert "invariants: all held" in text
    for mitigation in chaos.MITIGATIONS[1:]:
        assert mitigation in text


def test_flips_compare_against_the_same_condition_baseline():
    report = small_report()
    for case_key, mitigation, plan_seed, base, under in report.flips():
        assert case_key in report.case_keys
        assert mitigation in chaos.MITIGATIONS[1:]
        assert plan_seed in report.by_plan
        assert base != under


def test_write_bundles_covers_every_violating_run(tmp_path):
    report = small_report()
    # No violations on main -> no bundles; force one synthetically.
    assert report.write_bundles(str(tmp_path)) == []
    victim = report.by_plan[1][("torch", "vanilla")]
    victim["violations"].append(
        {"invariant": "energy_conservation", "time": 1.0,
         "detail": "synthetic", "data": {}})
    paths = report.write_bundles(str(tmp_path))
    assert len(paths) == 1
    from repro.faults.bundle import load_bundle

    payload = load_bundle(paths[0])
    assert payload["kwargs"]["plan_json"] == report.plans[1].to_json()
    assert payload["violations"][0]["detail"] == "synthetic"


# -- CLI ---------------------------------------------------------------------

def test_cli_chaos_runs_and_exits_zero(capsys):
    code = cli.main(["chaos", "--seeds", "1", "--minutes", "2"])
    out = capsys.readouterr()
    assert code == 0
    assert "Verdicts" in out.out
    assert "fault-plan seeds [1]" in out.err


def test_cli_chaos_base_seed_rotates_the_plans(capsys):
    cli.main(["chaos", "--seeds", "2", "--base-seed", "5",
              "--minutes", "2"])
    out = capsys.readouterr()
    assert "fault-plan seeds [5, 6]" in out.err
    assert "plan 5:" in out.out and "plan 6:" in out.out


def test_cli_chaos_is_excluded_from_all():
    assert "chaos" in cli.EXCLUDE_FROM_ALL
    assert "chaos" in cli.COMMANDS


def test_cli_chaos_replay_of_a_clean_bundle(tmp_path, capsys):
    from repro.experiments.chaos import run_chaos_case
    from repro.faults.bundle import write_bundle

    kwargs = dict(case_key="torch", mitigation="vanilla", minutes=2.0,
                  seed=7, plan_json=FaultPlan.sample(1, 120.0).to_json())
    path = write_bundle(str(tmp_path), kwargs, run_chaos_case(**kwargs))
    code = cli.main(["chaos", "--replay", path])
    out = capsys.readouterr()
    assert code == 0
    assert "matches the original run" in out.out


def test_effective_threshold_is_the_documented_default():
    assert chaos.EFFECTIVE_THRESHOLD_PCT == pytest.approx(40.0)
    assert chaos.DEFAULT_SUBSET == ("torch", "k9", "connectbot-screen",
                                    "betterweather", "tapandturn")


def test_bundle_records_armed_harness_faults(tmp_path, monkeypatch):
    import os

    from repro.faults.bundle import (_restored_faults, load_bundle,
                                     write_bundle)
    from repro.resilience.hooks import ENV_VAR

    spec = '{"storage": {"corrupt": [3]}}'
    monkeypatch.setenv(ENV_VAR, spec)
    path = write_bundle(str(tmp_path),
                        dict(case_key="torch", mitigation="vanilla",
                             minutes=2.0, seed=7, plan_json=""),
                        {"violations": [], "fingerprint": "f" * 8})
    assert load_bundle(path)["harness_faults"] == spec
    # A bundle written without faults armed records none at all.
    monkeypatch.delenv(ENV_VAR)
    clean = write_bundle(str(tmp_path / "clean"),
                         dict(case_key="torch", mitigation="vanilla",
                              minutes=2.0, seed=8, plan_json=""),
                         {"violations": [], "fingerprint": "f" * 8})
    assert "harness_faults" not in load_bundle(clean)
    # The restore context re-arms a recorded spec and, for bundles with
    # none, clears any stray spec from the operator's shell.
    with _restored_faults(spec):
        assert os.environ[ENV_VAR] == spec
    assert ENV_VAR not in os.environ
    monkeypatch.setenv(ENV_VAR, spec)
    with _restored_faults(""):
        assert ENV_VAR not in os.environ
    assert os.environ[ENV_VAR] == spec


def test_replay_rearms_recorded_harness_faults(tmp_path, monkeypatch,
                                               capsys):
    import os

    from repro.experiments.chaos import run_chaos_case
    from repro.faults.bundle import write_bundle
    from repro.resilience.hooks import ENV_VAR

    spec = '{"storage": {"corrupt": [999]}}'
    monkeypatch.setenv(ENV_VAR, spec)
    kwargs = dict(case_key="torch", mitigation="vanilla", minutes=2.0,
                  seed=7, plan_json=FaultPlan.sample(1, 120.0).to_json())
    path = write_bundle(str(tmp_path), kwargs, run_chaos_case(**kwargs))
    monkeypatch.delenv(ENV_VAR)
    code = cli.main(["chaos", "--replay", path])
    out = capsys.readouterr().out
    assert code == 0
    assert "harness faults re-armed: " + spec in out
    assert "matches the original run" in out
    assert ENV_VAR not in os.environ
