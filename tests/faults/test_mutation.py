"""Mutation test: a deliberately injected lease-state bug must be caught.

This is the acceptance check for the whole chaos layer: plant a bug that
mutates ``lease.state`` directly (bypassing ``transition()`` and the
Fig. 5 rules), run the ordinary chaos harness over it, and require that

1. the invariant suite reports ``lease_state_machine`` violations,
2. a minimal repro bundle can be written, and
3. replaying the bundle reproduces the same violations bit-identically.
"""

import pytest

from repro.core.lease import LeaseState
from repro.core.manager import LeaseManager
from repro.experiments.chaos import run_chaos_case
from repro.faults.bundle import load_bundle, replay_bundle, write_bundle
from repro.faults.plan import FaultPlan

KWARGS = dict(case_key="torch", mitigation="leaseos", minutes=10.0,
              seed=7, plan_json=FaultPlan.sample(2, 600.0).to_json())


@pytest.fixture
def buggy_lease_manager(monkeypatch):
    """Re-activation that skips transition() -- the planted bug."""

    def _end_deferral_buggy(self, lease):
        if lease.dead or lease.state is not LeaseState.DEFERRED:
            return
        lease.state = LeaseState.ACTIVE  # bypasses the state machine
        lease.proxy.on_renew(lease)
        self._start_term(lease, self.policy.initial_term_s)
        lease.proxy.refresh_snapshot(lease)

    monkeypatch.setattr(LeaseManager, "_end_deferral", _end_deferral_buggy)


def test_planted_lease_bug_is_caught_and_replayable(tmp_path,
                                                    buggy_lease_manager):
    result = run_chaos_case(**KWARGS)
    caught = [v for v in result["violations"]
              if v["invariant"] == "lease_state_machine"]
    assert caught, "the planted state-machine bypass went undetected"
    assert any("mutated" in v["detail"] for v in caught)

    path = write_bundle(str(tmp_path), KWARGS, result)
    payload = load_bundle(path)
    assert payload["kwargs"] == KWARGS
    assert payload["fingerprint"] == result["fingerprint"]

    replayed, report = replay_bundle(path)
    # Lease descriptors come from a process-global counter, so an
    # in-process replay shifts the numbers embedded in the detail text;
    # everything observable -- which invariants fired, when, and the run
    # fingerprint -- must reproduce exactly.
    assert [(v["invariant"], v["time"]) for v in replayed["violations"]] \
        == [(v["invariant"], v["time"]) for v in result["violations"]]
    assert replayed["fingerprint"] == result["fingerprint"]
    assert "matches the original run" in report
    assert "violations reproduced" in report


def test_healthy_manager_passes_the_same_scenario():
    result = run_chaos_case(**KWARGS)
    assert result["violations"] == []
