"""The invariant suite: silent on clean runs, loud on tampering."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.core import lease as lease_mod
from repro.core.behavior import ResourceType
from repro.core.lease import Lease, LeaseState
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import FaultPlan


def build_phone(case_key="torch", mitigation_key=None):
    from repro.experiments.grid import resolve_mitigation_factory

    case = CASES_BY_KEY[case_key]
    factory = resolve_mitigation_factory(mitigation_key) \
        if mitigation_key else None
    phone = case.build_phone(mitigation=factory() if factory else None,
                             seed=7)
    app = case.make_app()
    phone.install(app)
    return phone, app


# -- clean runs --------------------------------------------------------------

@pytest.mark.parametrize("mitigation_key", [None, "leaseos"])
def test_clean_run_holds_every_invariant(mitigation_key):
    phone, __ = build_phone(mitigation_key=mitigation_key)
    checker = InvariantChecker(phone, interval_s=15.0)
    phone.run_for(minutes=5.0)
    checker.check_now()
    checker.detach()
    assert checker.ok, checker.summary()
    assert checker.checks_run >= 5.0 * 60.0 / 15.0
    assert "OK" in checker.summary()


def test_clean_run_under_faults_holds_every_invariant():
    phone, app = build_phone("k9", mitigation_key="leaseos")
    checker = InvariantChecker(phone, interval_s=15.0)
    plan = FaultPlan.sample(3, horizon_s=600.0)
    FaultInjector(phone, plan, seed=7, checker=checker,
                  target_uid=app.uid).arm()
    phone.run_for(minutes=10.0)
    checker.check_now()
    checker.detach()
    assert checker.ok, checker.summary()


# -- energy conservation -----------------------------------------------------

def test_ledger_total_tampering_is_detected():
    phone, __ = build_phone()
    checker = InvariantChecker(phone)
    phone.run_for(minutes=1.0)
    phone.monitor.ledger._total_mj += 5.0  # corrupt the running total
    checker.check_now()
    checker.detach()
    assert any(v.invariant == "energy_conservation"
               for v in checker.violations)


def test_unaccounted_battery_drain_is_detected():
    phone, __ = build_phone()
    checker = InvariantChecker(phone)
    phone.run_for(minutes=1.0)
    phone.battery.remaining_mj -= 500.0  # drain bypassing the ledger
    checker.check_now()
    checker.detach()
    violations = [v for v in checker.violations
                  if v.invariant == "energy_conservation"]
    assert violations
    assert "battery drained" in violations[0].detail


# -- monotonic time ----------------------------------------------------------

def test_backwards_time_is_detected():
    phone, __ = build_phone()
    checker = InvariantChecker(phone)
    checker._last_now = phone.sim.now + 100.0  # as if time rewound
    checker.check_now()
    checker.detach()
    assert any(v.invariant == "monotonic_time" for v in checker.violations)


# -- lease state machine -----------------------------------------------------

def make_lease():
    return Lease(uid=10001, rtype=ResourceType.WAKELOCK, record=None,
                 proxy=None, created_at=0.0)


def test_direct_state_mutation_is_caught_by_the_hook():
    phone, __ = build_phone(mitigation_key="leaseos")
    checker = InvariantChecker(phone)
    phone.run_for(minutes=2.0)  # leases exist and are shadowed
    manager = phone.lease_manager
    assert manager.leases, "expected live leases under leaseos"
    lease = next(iter(manager.leases.values()))
    lease.state = LeaseState.DEFERRED if lease.state is LeaseState.ACTIVE \
        else LeaseState.ACTIVE  # bypass transition()
    checker.check_now()
    checker.detach()
    assert any(v.invariant == "lease_state_machine"
               for v in checker.violations)


def test_hook_sees_illegal_transition_even_if_table_is_corrupted():
    phone, __ = build_phone(mitigation_key="leaseos")
    checker = InvariantChecker(phone)
    lease = make_lease()
    checker._shadow[id(lease)] = (lease, lease.state)
    # Simulate core/lease.py enforcement being broken: feed the hook an
    # illegal move directly.
    checker._on_lease_transition(lease, LeaseState.INACTIVE,
                                 LeaseState.DEFERRED)
    checker.detach()
    assert any(v.invariant == "lease_state_machine"
               and "illegal" in v.detail for v in checker.violations)


def test_transition_hooks_add_remove_roundtrip():
    seen = []
    hook = lease_mod.add_transition_hook(
        lambda lease, old, new: seen.append((old, new)))
    try:
        lease = make_lease()
        lease.transition(LeaseState.DEFERRED)
        assert seen == [(LeaseState.ACTIVE, LeaseState.DEFERRED)]
    finally:
        lease_mod.remove_transition_hook(hook)
    lease.transition(LeaseState.ACTIVE)
    assert len(seen) == 1  # removed hooks stop firing
    lease_mod.remove_transition_hook(hook)  # double-remove is safe


# -- wakelocks after death ---------------------------------------------------

def test_honoured_wakelock_of_dead_uid_is_a_violation():
    phone, app = build_phone()
    checker = InvariantChecker(phone)
    lock = phone.power.new_wakelock(app, "leaky")
    lock.acquire()
    assert any(r.uid == app.uid for r in phone.power.honoured_records())
    checker.note_app_dead(app.uid)  # killed without kernel cleanup
    checker.detach()
    assert any(v.invariant == "wakelock_after_death"
               for v in checker.violations)


def test_kill_app_cleanup_satisfies_the_wakelock_invariant():
    phone, app = build_phone()
    checker = InvariantChecker(phone)
    lock = phone.power.new_wakelock(app, "leaky")
    lock.acquire()
    phone.kill_app(app.uid)
    checker.note_app_dead(app.uid)
    checker.check_now()
    assert checker.ok, checker.summary()
    checker.note_app_alive(app.uid)
    checker.detach()
    assert checker.ok


# -- plumbing ----------------------------------------------------------------

def test_detach_is_idempotent_and_stops_sampling():
    phone, __ = build_phone()
    checker = InvariantChecker(phone, interval_s=10.0)
    phone.run_for(minutes=1.0)
    checker.detach()
    checker.detach()
    runs = checker.checks_run
    phone.run_for(minutes=2.0)
    assert checker.checks_run == runs  # timer cancelled


def test_violation_as_dict_round_trips():
    violation = InvariantViolation("energy_conservation", 12.5,
                                   "drifted", {"drift_mj": 4.2})
    payload = violation.as_dict()
    assert payload == {"invariant": "energy_conservation", "time": 12.5,
                       "detail": "drifted", "data": {"drift_mj": 4.2}}
    assert "energy_conservation" in repr(violation)
