"""Fault plans: sampling determinism, serialisation, validation."""

import json

import pytest

from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan


# -- events ------------------------------------------------------------------

def test_event_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultEvent("meteor_strike", 1.0)


def test_event_rejects_negative_times():
    with pytest.raises(ValueError):
        FaultEvent("net_flap", -1.0)
    with pytest.raises(ValueError):
        FaultEvent("net_flap", 1.0, duration_s=-0.5)


def test_event_round_trips_through_dict():
    event = FaultEvent("ipc_latency", 12.5, 30.0, param=0.02)
    assert FaultEvent(**event.as_dict()) == event


# -- plans -------------------------------------------------------------------

def test_plan_orders_events_by_time_then_kind():
    late = FaultEvent("net_flap", 50.0)
    early = FaultEvent("gps_dropout", 10.0)
    tied = FaultEvent("app_crash", 10.0)
    plan = FaultPlan([late, early, tied])
    assert plan.events == (tied, early, late)  # app_crash < gps_dropout


def test_plan_equality_and_hash_ignore_the_seed_annotation():
    events = [FaultEvent("net_flap", 10.0, 20.0)]
    assert FaultPlan(events, seed=1) == FaultPlan(events, seed=2)
    assert hash(FaultPlan(events, seed=1)) == hash(FaultPlan(events))


def test_plan_json_round_trip_preserves_events_and_seed():
    plan = FaultPlan.sample(3, horizon_s=3600.0)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.seed == plan.seed
    assert clone.to_json() == plan.to_json()


def test_plan_json_is_compact_and_key_sorted():
    plan = FaultPlan([FaultEvent("rail_noise", 5.0, 10.0, param=42.0)])
    text = plan.to_json()
    assert ": " not in text and ", " not in text  # cache-key friendly
    payload = json.loads(text)
    assert list(payload["events"][0]) == sorted(payload["events"][0])


def test_kinds_lists_distinct_sorted_kinds():
    plan = FaultPlan([FaultEvent("net_flap", 1.0),
                      FaultEvent("net_flap", 2.0),
                      FaultEvent("app_crash", 3.0)])
    assert plan.kinds() == ("app_crash", "net_flap")


def test_repr_summarises_kind_counts():
    plan = FaultPlan([FaultEvent("net_flap", 1.0),
                      FaultEvent("net_flap", 2.0)], seed=9)
    assert "2xnet_flap" in repr(plan)
    assert "seed=9" in repr(plan)


# -- sampling ----------------------------------------------------------------

def test_sample_is_deterministic_per_seed():
    a = FaultPlan.sample(42, horizon_s=1800.0)
    b = FaultPlan.sample(42, horizon_s=1800.0)
    assert a == b and a.to_json() == b.to_json()
    assert FaultPlan.sample(43, horizon_s=1800.0) != a


def test_sample_density_scales_with_horizon():
    assert len(FaultPlan.sample(1, horizon_s=3600.0)) == 12
    assert len(FaultPlan.sample(1, horizon_s=7200.0)) == 24
    # even a tiny horizon draws at least one event
    assert len(FaultPlan.sample(1, horizon_s=30.0)) == 1


def test_sample_rejects_non_positive_horizon():
    with pytest.raises(ValueError):
        FaultPlan.sample(1, horizon_s=0.0)


def test_sample_respects_kind_filter_and_horizon():
    plan = FaultPlan.sample(7, horizon_s=3600.0,
                            kinds=("net_flap", "gps_dropout"))
    assert set(plan.kinds()) <= {"net_flap", "gps_dropout"}
    for event in plan:
        assert 0.0 <= event.at_s <= 0.9 * 3600.0


def test_sample_covers_every_kind_eventually():
    seen = set()
    for seed in range(40):
        seen.update(FaultPlan.sample(seed, horizon_s=3600.0).kinds())
    assert seen == set(FAULT_KINDS)
