"""Tests for the Trepn-like sampler and Monsoon-like monitor."""

import pytest

from repro.apps.buggy.cpu_apps import Torch
from repro.profiling.monsoon import MonsoonMonitor
from repro.profiling.trepn import TrepnSampler

from tests.conftest import make_phone


def test_trepn_samples_wakelock_and_cpu_deltas():
    phone = make_phone()
    app = phone.install(Torch())
    sampler = TrepnSampler(phone, [app.uid], interval_s=60.0).start()
    phone.run_for(minutes=5.0)
    sampler.stop()
    rows = sampler.rows(app.uid)
    assert len(rows) == 5
    for row in rows:
        assert row.wakelock_time == pytest.approx(60.0, abs=0.5)
        assert row.cpu_time == pytest.approx(0.0, abs=0.2)
        assert row.power_mw > 0


def test_trepn_ratio_handles_zero_wakelock():
    phone = make_phone()
    from repro.droid.app import App

    class NoLock(App):
        app_name = "nolock"

    app = phone.install(NoLock())
    sampler = TrepnSampler(phone, [app.uid], interval_s=30.0).start()
    phone.run_for(minutes=1.0)
    for row in sampler.rows(app.uid):
        assert row.cpu_over_wakelock == 0.0


def test_trepn_stop_halts_sampling():
    phone = make_phone()
    app = phone.install(Torch())
    sampler = TrepnSampler(phone, [app.uid], interval_s=10.0).start()
    phone.run_for(seconds=30.0)
    sampler.stop()
    count = len(sampler.rows(app.uid))
    phone.run_for(seconds=60.0)
    assert len(sampler.rows(app.uid)) == count


def test_monsoon_exact_interval_average():
    phone = make_phone()
    phone.monitor.set_rail("x", 200.0, ())
    monsoon = MonsoonMonitor(phone)
    mark = monsoon.mark()
    phone.run_for(seconds=50.0)
    measured = monsoon.average_power_mw(mark)
    # 200 mW rail + idle baselines
    assert measured == pytest.approx(
        200.0 + phone.monitor.instantaneous_power_mw() - 200.0, rel=0.01
    )


def test_monsoon_sampler_collects_series():
    phone = make_phone()
    monsoon = MonsoonMonitor(phone, sample_interval_s=1.0).start_sampling()
    phone.run_for(seconds=10.0)
    monsoon.stop_sampling()
    assert len(monsoon.samples) == 10
    times = [t for t, __ in monsoon.samples]
    assert times == sorted(times)
