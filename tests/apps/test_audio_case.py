"""The §1 audio-session-leak case, end to end through the audio proxy."""

import pytest

from repro.apps.buggy.audio_apps import AUDIO_EXTRA_CASES, FacebookAudioLeak
from repro.core.behavior import BehaviorType
from repro.core.lease import LeaseState
from repro.droid.resources import ResourceType
from repro.env.network import ServerMode
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def leaky_phone(mitigation=None):
    phone = make_phone(mitigation=mitigation)
    phone.env.network.set_server("facebook-av", ServerMode.ERROR)
    app = phone.install(FacebookAudioLeak())
    return phone, app


def test_session_leaked_on_vanilla():
    phone, app = leaky_phone()
    phone.run_for(minutes=10.0)
    assert app.session.record.app_held  # never closed
    record = app.session.record
    record.settle_playback(phone.sim.now)
    # Played ~20 s, held ~600 s: the leak.
    assert record.playback_time == pytest.approx(20.0, abs=1.0)


def test_leaseos_judges_audio_lease_lhb():
    mitigation = LeaseOS()
    phone, app = leaky_phone(mitigation)
    phone.run_for(minutes=10.0)
    audio_leases = [
        l for l in mitigation.manager.leases_for(app.uid)
        if l.rtype is ResourceType.AUDIO
    ]
    assert len(audio_leases) == 1
    behaviors = {
        d.behavior for d in mitigation.manager.decisions
        if d.lease is audio_leases[0] and d.behavior.is_misbehavior
    }
    assert BehaviorType.LHB in behaviors
    assert audio_leases[0].deferral_count >= 1


def test_leaseos_contains_both_halves_of_the_leak():
    vanilla_phone, vanilla_app = leaky_phone()
    mark = vanilla_phone.energy_mark()
    vanilla_phone.run_for(minutes=15.0)
    vanilla_mw = vanilla_phone.power_since(mark, vanilla_app.uid)

    mitigation = LeaseOS()
    phone, app = leaky_phone(mitigation)
    mark = phone.energy_mark()
    phone.run_for(minutes=15.0)
    leased_mw = phone.power_since(mark, app.uid)

    assert vanilla_mw > 30.0  # CPU spin + keepalive chatter
    assert leased_mw < 0.25 * vanilla_mw
    # Both the audio session lease and the wakelock lease got deferred.
    deferred_types = {
        l.rtype for l in mitigation.manager.leases_for(app.uid)
        if l.deferral_count > 0
    }
    assert ResourceType.WAKELOCK in deferred_types


def test_extension_case_spec():
    case = AUDIO_EXTRA_CASES[0]
    assert case.resource is ResourceType.AUDIO
    phone = case.build_phone(seed=3)
    assert phone.env.network.server_mode("facebook-av") is ServerMode.ERROR
