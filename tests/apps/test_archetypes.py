"""Tests for the extra well-behaved archetypes, including the headline
"LeaseOS approximates the developer fix" comparison."""

import pytest

from repro.apps.buggy.cpu_apps import K9Mail
from repro.apps.normal.archetypes import (
    K9MailFixed,
    NavigationApp,
    PodcastPlayer,
    SmartwatchCompanion,
)
from repro.core.behavior import BehaviorType
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def test_fixed_k9_backs_off_when_disconnected():
    phone = make_phone(connected=False)
    app = phone.install(K9MailFixed())
    mark = phone.energy_mark()
    phone.run_for(minutes=20.0)
    power = phone.power_since(mark, app.uid)
    # With backoff + prompt release the fixed app barely draws anything.
    assert power < 3.0
    assert app.synced == 0
    assert app.last_backoff_s >= 2 * app.SYNC_PERIOD_S  # ladder climbed


def test_fixed_k9_syncs_normally_when_healthy():
    phone = make_phone(connected=True)
    app = phone.install(K9MailFixed())
    phone.run_for(minutes=10.0)
    assert app.synced >= 15


def test_leaseos_approximates_the_developer_fix():
    """The paper's implicit claim: running the *buggy* K-9 under LeaseOS
    lands in the same power regime as running the *fixed* K-9 on
    vanilla Android -- the OS supplies the discipline the developer
    forgot."""
    phone_fixed = make_phone(connected=False)
    fixed = phone_fixed.install(K9MailFixed())
    mark_fixed = phone_fixed.energy_mark()
    phone_fixed.run_for(minutes=30.0)
    fixed_mw = phone_fixed.power_since(mark_fixed, fixed.uid)

    phone_buggy = make_phone(connected=False, mitigation=LeaseOS())
    buggy = phone_buggy.install(K9Mail(scenario="disconnected"))
    mark_buggy = phone_buggy.energy_mark()
    phone_buggy.run_for(minutes=30.0)
    leased_mw = phone_buggy.power_since(mark_buggy, buggy.uid)

    # Both land within a few percent of the ~900 mW unmitigated blaze;
    # the hand-written fix is better still (it never spins at all).
    assert fixed_mw < 5.0
    assert leased_mw < 45.0  # < 5% of the bug's draw
    assert fixed_mw < leased_mw


def test_navigation_app_is_eub_not_misbehavior():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.95,
                       movement_mps=15.0)  # driving
    app = phone.install(NavigationApp())
    phone.run_for(minutes=10.0)
    decisions = [d for d in mitigation.manager.decisions
                 if d.lease.uid == app.uid]
    assert any(d.behavior is BehaviorType.EUB for d in decisions)
    assert all(not d.behavior.is_misbehavior for d in decisions)
    deferrals = sum(l.deferral_count
                    for l in mitigation.manager.leases_for(app.uid))
    assert deferrals == 0
    assert app.fixes > 300  # navigation never skipped a beat


def test_podcast_player_downloads_and_plays(phone_factory):
    phone = phone_factory()
    app = phone.install(PodcastPlayer())
    phone.run_for(minutes=25.0)
    assert app.downloaded >= 2
    phone.screen_on()
    phone.touch(app.uid)
    phone.run_for(minutes=1.0)
    assert app._playing
    phone.run_for(minutes=4.0)
    assert not app._playing


def test_smartwatch_companion_clean_under_leaseos():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    app = phone.install(SmartwatchCompanion())
    phone.run_for(minutes=20.0)
    assert app.synced_batches >= 8
    deferrals = sum(l.deferral_count
                    for l in mitigation.manager.leases_for(app.uid))
    assert deferrals == 0
    # The connection (not discovery) draw is the cheap one.
    record = app.session.record
    rail = "bluetooth:{}".format(record.token.id)
    assert phone.monitor.rail_power(rail) == \
        phone.profile.bluetooth_connected_mw


def test_fixed_apps_are_frugal_and_functional():
    from repro.apps.normal.fixed_apps import (
        BetterWeatherFixed,
        KontalkFixed,
        StandupTimerFixed,
    )

    # Kontalk fixed: authenticates, then the CPU sleeps.
    phone = make_phone()
    kontalk = phone.install(KontalkFixed())
    mark = phone.energy_mark()
    phone.run_for(minutes=10.0)
    assert phone.power_since(mark, kontalk.uid) < 2.0

    # BetterWeather fixed: gives up the hopeless search within a minute.
    phone = make_phone(gps_quality=0.10)
    weather = phone.install(BetterWeatherFixed())
    phone.run_for(minutes=10.0)
    from repro.droid.location import GpsState

    assert phone.location.state is GpsState.OFF
    assert weather.registration is None

    # Standup Timer fixed: screen released once the meeting ends.
    phone = make_phone()
    timer = phone.install(StandupTimerFixed())
    phone.run_for(minutes=20.0)
    assert not timer.lock.held
    assert not phone.display.screen_on
