"""Tests for CaseSpec scenario construction."""

from repro.apps.buggy import CASES_BY_KEY
from repro.apps.spec import CaseSpec, build_phone_for
from repro.droid.app import App
from repro.droid.resources import ResourceType
from repro.core.behavior import BehaviorType
from repro.env.network import ServerMode


def test_build_phone_applies_environment():
    case = CASES_BY_KEY["k9"]  # disconnected scenario
    phone = case.build_phone(seed=1)
    assert not phone.env.network.connected


def test_build_phone_applies_servers():
    case = CASES_BY_KEY["servalmesh"]
    phone = case.build_phone(seed=1)
    assert phone.env.network.server_mode("serval-peer") is ServerMode.ERROR


def test_build_phone_override_wins():
    case = CASES_BY_KEY["k9"]
    phone = case.build_phone(seed=1, connected=True)
    assert phone.env.network.connected


def test_server_modes_accept_strings():
    spec = CaseSpec(
        key="x", app_factory=App, category="t",
        resource=ResourceType.WAKELOCK, behavior=BehaviorType.LHB,
        servers={"s": "error"},
    )
    phone = spec.build_phone(seed=1)
    assert phone.env.network.server_mode("s") is ServerMode.ERROR


def test_make_app_builds_fresh_instances():
    case = CASES_BY_KEY["torch"]
    a, b = case.make_app(), case.make_app()
    assert a is not b
    assert a.uid != b.uid


def test_build_phone_for_helper():
    phone = build_phone_for(CASES_BY_KEY["betterweather"], seed=2)
    assert phone.env.gps.quality == 0.10
