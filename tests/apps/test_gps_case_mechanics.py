"""Mechanical details of the GPS buggy cases (beyond the power numbers)."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.apps.buggy.gps_apps import MozStumbler, OpenGPSTracker, Where
from repro.core.lease import LeaseState
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def test_where_recycles_registrations():
    phone = make_phone(gps_quality=0.12)
    app = phone.install(Where())
    phone.run_for(minutes=5.0)
    records = [r for r in phone.location.records if r.uid == app.uid]
    # A fresh registration every 30 s: ~10 in 5 minutes.
    assert len(records) >= 8
    live = [r for r in records if r.app_held]
    assert len(live) == 1  # the old ones were removed


def test_where_under_leaseos_creates_many_leases():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.12)
    app = phone.install(Where())
    phone.run_for(minutes=5.0)
    assert mitigation.manager.created_total >= 8
    # Old registrations' kernel objects are merely released (not dead),
    # so their leases park INACTIVE rather than being removed.
    states = {l.state for l in mitigation.manager.leases_for(app.uid)}
    assert LeaseState.INACTIVE in states


def test_mozstumbler_duty_cycles_its_consumer():
    phone = make_phone(gps_quality=0.95)
    app = phone.install(MozStumbler())
    phone.run_for(minutes=10.0)
    record = app.registration.record
    phone.location.settle_stats()
    duty = record.consumer_active_time / record.active_time
    # ~50 s scanning per 120 s period.
    assert 0.25 < duty < 0.6
    assert app.data_write_times  # stumbling reports during scans


def test_opengpstracker_cascade_under_leaseos():
    """Deferring the GPS lease starves the processing loop, which then
    drops the wakelock's utilization and gets it deferred too."""
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.95)
    app = phone.install(OpenGPSTracker())
    phone.run_for(minutes=10.0)
    leases = mitigation.manager.leases_for(app.uid)
    by_rtype = {l.rtype.value: l for l in leases}
    assert by_rtype["gps"].deferral_count >= 1
    assert by_rtype["wakelock"].deferral_count >= 1


def test_stationary_lub_cases_still_deliver_fixes_on_vanilla():
    for key in ("aimsicd", "opensciencemap"):
        case = CASES_BY_KEY[key]
        phone = case.build_phone(seed=3, ambient=False)
        app = case.make_app()
        phone.install(app)
        phone.run_for(minutes=3.0)
        record = app.registration.record
        assert record.fixes_delivered > 20, key  # GPS works fine...
        assert record.distance_moved == pytest.approx(0.0), key  # ...uselessly


def test_betterweather_fab_detection_latency():
    """FAB needs the windowed ask evidence: detection lands after the
    first term but within the first few."""
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.10)
    app = phone.install(CASES_BY_KEY["betterweather"].make_app())
    phone.run_for(minutes=2.0)
    fab_defers = [d for d in mitigation.manager.decisions
                  if d.lease.uid == app.uid and d.action == "defer"]
    assert fab_defers
    assert 5.0 < fab_defers[0].time <= 30.0
