"""Tests for the normal background and interactive apps."""

import pytest

from repro.apps.normal.background import (
    Haven,
    RunKeeper,
    Spotify,
    TrepnProfiler,
)
from repro.apps.normal.interactive import (
    InteractiveApp,
    LatencyProbeApp,
    popular_apps,
)
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def test_runkeeper_tracks_and_writes(phone_factory):
    phone = phone_factory(gps_quality=0.95, movement_mps=2.5)
    app = phone.install(RunKeeper())
    phone.run_for(minutes=5.0)
    assert app.data_write_times  # track points persisted
    assert app.ui_update_times
    assert not app.disruptions


def test_runkeeper_watchdog_detects_gps_loss(phone_factory):
    phone = phone_factory(gps_quality=0.95, movement_mps=2.5)
    app = phone.install(RunKeeper())
    phone.run_for(minutes=2.0)
    phone.location.kill_app_registrations(app.uid)
    phone.run_for(minutes=2.0)
    assert app.disruptions


def test_spotify_streams_without_disruption(phone_factory):
    phone = phone_factory()
    app = phone.install(Spotify())
    phone.run_for(minutes=5.0)
    assert not app.disruptions


def test_haven_monitors_and_logs_motion(phone_factory):
    phone = phone_factory()
    app = phone.install(Haven())
    phone.run_for(minutes=5.0)
    assert app.data_write_times
    assert not app.disruptions


def test_trepn_app_samples_steadily(phone_factory):
    phone = phone_factory()
    app = phone.install(TrepnProfiler())
    phone.run_for(minutes=3.0)
    assert len(app.data_write_times) > 50
    assert not app.disruptions


def test_usability_trio_clean_under_leaseos(phone_factory):
    for factory, kwargs in [
        (RunKeeper, dict(gps_quality=0.95, movement_mps=2.5)),
        (Spotify, {}),
        (Haven, {}),
    ]:
        mitigation = LeaseOS()
        phone = phone_factory(mitigation=mitigation, **kwargs)
        app = phone.install(factory())
        phone.run_for(minutes=10.0)
        assert not app.disruptions, (factory.__name__, app.disruptions)
        deferrals = sum(
            l.deferral_count
            for l in mitigation.manager.leases_for(app.uid)
        )
        assert deferrals == 0, factory.__name__


def test_popular_apps_unique_names():
    apps = popular_apps(25)
    assert len(apps) == 25
    assert len({a.name for a in apps}) == 25


def test_interactive_touch_produces_ui_update(phone_factory):
    phone = phone_factory()
    app = phone.install(InteractiveApp("Probe", sync_interval_s=None))
    phone.screen_on()
    phone.touch(app.uid)
    phone.run_for(seconds=10.0)
    assert app.ui_update_times


def test_interactive_sync_releases_wakelock(phone_factory):
    phone = phone_factory()
    app = phone.install(InteractiveApp("Syncer", sync_interval_s=30.0))
    phone.screen_on()  # keep the device awake so the loop runs
    phone.run_for(minutes=3.0)
    phone.power.settle_stats()
    records = [r for r in phone.power.records if r.uid == app.uid]
    assert records
    assert all(not r.app_held for r in records)  # all released promptly


def test_media_streaming_starts_and_stops(phone_factory):
    phone = phone_factory()
    app = phone.install(InteractiveApp("Tube", media_streaming=True,
                                       sync_interval_s=None))
    phone.screen_on()
    phone.touch(app.uid)
    phone.run_for(seconds=10.0)
    assert app._streaming
    phone.run_for(seconds=90.0)
    assert not app._streaming  # 60 s stream ended


def test_latency_probe_measures_flows(phone_factory):
    phone = phone_factory(gps_quality=0.9)
    probe = phone.install(LatencyProbeApp("wakelock"))
    phone.screen_on()
    phone.set_foreground(probe.uid)
    phone.touch(probe.uid)
    phone.run_for(seconds=30.0)
    assert len(probe.flow_latencies) == 1
    assert probe.mean_latency_ms() > 0


def test_latency_probe_rejects_unknown_kind():
    with pytest.raises(ValueError):
        LatencyProbeApp("bogus")


def test_nextcloud_syncs_via_jobscheduler(phone_factory):
    from repro.apps.normal.background import NextcloudSync

    phone = phone_factory()
    app = phone.install(NextcloudSync())
    phone.run_for(minutes=10.0)
    assert app.synced >= 3
    # The last run may still be in flight at the measurement instant.
    assert app.job.run_count - app.synced <= 1
    # The app never held its own wakelock; the scheduler's job locks
    # were all released (modulo that same possible in-flight run).
    phone.power.settle_stats()
    records = [r for r in phone.power.records if r.uid == app.uid]
    assert records
    assert sum(1 for r in records if r.app_held) <= 1


def test_nextcloud_clean_under_leaseos(phone_factory):
    from repro.apps.normal.background import NextcloudSync
    from repro.mitigation import LeaseOS

    mitigation = LeaseOS()
    phone = phone_factory(mitigation=mitigation)
    app = phone.install(NextcloudSync())
    phone.run_for(minutes=15.0)
    assert app.synced >= 5
    deferrals = sum(l.deferral_count
                    for l in mitigation.manager.leases_for(app.uid))
    assert deferrals == 0


def test_killed_mid_stream_releases_resources(phone_factory):
    phone = phone_factory()
    app = phone.install(InteractiveApp("Tube", media_streaming=True,
                                       sync_interval_s=None))
    phone.screen_on()
    phone.touch(app.uid)
    phone.run_for(seconds=10.0)
    assert app._streaming
    phone.kill_app(app.uid)
    # The stream generator's finally-clause ran on kill: the media lock
    # is released and the session closed (no lingering audio rail).
    phone.power.settle_stats()
    for record in phone.power.records:
        if record.uid == app.uid:
            assert not record.os_active
    for record in phone.audio.records:
        if record.uid == app.uid:
            assert phone.monitor.rail_power(
                "audio:{}".format(record.token.id)) == 0.0


def test_heavy_holders_clean_under_leaseos(phone_factory):
    """The 2.3 named normal long-holders never get deferred."""
    from repro.apps.normal.heavy_holders import Flym, Pandora, Transdroid

    for factory in (Pandora, Transdroid, Flym):
        mitigation = LeaseOS()
        phone = phone_factory(mitigation=mitigation)
        app = phone.install(factory())
        phone.run_for(minutes=15.0)
        deferrals = sum(l.deferral_count
                        for l in mitigation.manager.leases_for(app.uid))
        assert deferrals == 0, factory.__name__
