"""Tests for the synthetic test apps (§5.1 / §7.5)."""

import random

import pytest

from repro.apps.synthetic import (
    IntermittentApp,
    LongHoldingTestApp,
    random_slices,
)
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def test_long_holding_app_holds_without_lease():
    phone = make_phone()
    app = phone.install(LongHoldingTestApp(hold_duration_s=600.0))
    phone.run_for(minutes=10.0)
    assert app.holding_time() == pytest.approx(600.0, abs=1.0)


def test_long_holding_app_cut_by_leases():
    phone = make_phone(mitigation=LeaseOS())
    app = phone.install(LongHoldingTestApp(hold_duration_s=600.0))
    phone.run_for(minutes=10.0)
    assert app.holding_time() < 200.0


def test_random_slices_structure():
    rng = random.Random(3)
    slices = random_slices(rng, 10, max_slice_s=100.0)
    assert len(slices) == 20
    kinds = [k for k, __ in slices]
    assert kinds[::2] == ["misbehavior"] * 10
    assert kinds[1::2] == ["normal"] * 10
    assert all(0 < d <= 100.0 for __, d in slices)


def test_intermittent_app_alternates_behavior():
    slices = [("misbehavior", 60.0), ("normal", 60.0),
              ("misbehavior", 60.0)]
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    app = phone.install(IntermittentApp(slices))
    phone.run_for(minutes=4.0)
    decisions = [d for d in mitigation.manager.decisions
                 if d.lease.uid == app.uid]
    behaviors = {d.behavior.value for d in decisions}
    assert "long-holding" in behaviors  # misbehaving slices caught
    deferrals = sum(1 for d in decisions if d.action == "defer")
    assert deferrals >= 1


def test_intermittent_app_releases_at_end():
    slices = [("misbehavior", 30.0)]
    phone = make_phone()
    app = phone.install(IntermittentApp(slices))
    phone.run_for(minutes=2.0)
    records = [r for r in phone.power.records if r.uid == app.uid]
    assert records and not records[0].app_held
