"""Tests over the 20 Table 5 cases: triggers, classification, mitigation.

These are behavioural checks: each case's app, run in its triggering
environment under LeaseOS, must be classified with the behaviour the
paper assigns it, and LeaseOS must cut its power substantially while a
vanilla run burns at the expected scale.
"""

import pytest

from repro.apps.buggy import BUGGY_CASES, CASES_BY_KEY
from repro.core.behavior import BehaviorType
from repro.experiments.runner import run_case
from repro.mitigation import LeaseOS


def test_registry_has_all_twenty_rows():
    assert len(BUGGY_CASES) == 20
    assert len(CASES_BY_KEY) == 20
    resources = {case.resource.value for case in BUGGY_CASES}
    assert resources == {"wakelock", "screen", "wifi", "gps", "sensor"}


def test_every_case_has_paper_reference_powers():
    for case in BUGGY_CASES:
        assert set(case.paper_power) == {"vanilla", "leaseos", "doze",
                                         "defdroid"}
        assert case.paper_power["leaseos"] < case.paper_power["vanilla"]


@pytest.mark.parametrize("case", BUGGY_CASES, ids=lambda c: c.key)
def test_case_triggers_expected_behavior_under_leaseos(case):
    mitigation = LeaseOS()
    phone = case.build_phone(mitigation=mitigation, seed=9)
    app = case.make_app()
    phone.install(app)
    phone.run_for(minutes=5.0)
    manager = mitigation.manager
    observed = {
        d.behavior
        for d in manager.decisions
        if d.lease.uid == app.uid and d.behavior.is_misbehavior
    }
    assert case.behavior in observed, (
        "{} should exhibit {}, saw {}".format(
            case.key, case.behavior.value, [b.value for b in observed])
    )


@pytest.mark.parametrize("case", BUGGY_CASES, ids=lambda c: c.key)
def test_leaseos_cuts_case_power_substantially(case):
    vanilla = run_case(case, None, minutes=10.0, seed=9)
    leased = run_case(case, LeaseOS, minutes=10.0, seed=9)
    assert vanilla.app_power_mw > 5.0  # the bug burns real power
    reduction = 1.0 - leased.app_power_mw / vanilla.app_power_mw
    assert reduction > 0.55, (
        "{}: only {:.0%} reduction".format(case.key, reduction)
    )


def test_vanilla_power_magnitudes_roughly_in_paper_range():
    """Spot-check three calibration anchors (generous tolerance)."""
    for key, lo, hi in [
        ("torch", 25.0, 45.0),  # awake-idle holding
        ("betterweather", 100.0, 135.0),  # GPS search rail
        ("connectbot-screen", 450.0, 700.0),  # bright screen
    ]:
        result = run_case(CASES_BY_KEY[key], None, minutes=5.0, seed=9)
        assert lo < result.app_power_mw < hi, (
            key, result.app_power_mw)


def test_k9_disconnected_ratio_exceeds_one():
    """The Fig. 4 signature: CPU over wakelock time > 100%."""
    case = CASES_BY_KEY["k9"]
    phone = case.build_phone(seed=9)
    app = case.make_app()
    phone.install(app)
    phone.run_for(minutes=5.0)
    record = app.lock._record
    record.settle()
    cpu = phone.cpu.cpu_time(app.uid)
    assert cpu / record.active_time > 1.0


def test_betterweather_never_gets_a_fix():
    case = CASES_BY_KEY["betterweather"]
    phone = case.build_phone(seed=9)
    app = case.make_app()
    phone.install(app)
    phone.run_for(minutes=10.0)
    assert app.fixes == 0
    record = app.registration.record
    phone.location.settle_stats()
    assert record.search_time == pytest.approx(600.0, rel=0.1)


def test_kontalk_utilization_collapses_after_auth():
    case = CASES_BY_KEY["kontalk"]
    phone = case.build_phone(seed=9)
    app = case.make_app()
    phone.install(app)
    phone.run_for(minutes=5.0)
    record = [r for r in phone.power.records if r.uid == app.uid][0]
    record.settle()
    cpu = phone.cpu.cpu_time(app.uid)
    assert cpu / record.active_time < 0.05  # ultralow utilization (§2.3)


def test_tapandturn_custom_counter_reports_click_ratio():
    from repro.apps.buggy.sensor_apps import ClickUtility, OrientationEvent

    counter = ClickUtility()
    assert counter.get_score() == 50.0  # no events yet (Fig. 6)
    counter.events.append(OrientationEvent(0.0, True))
    counter.events.append(OrientationEvent(1.0, False))
    assert counter.get_score() == 50.0
    counter.events.append(OrientationEvent(2.0, False))
    counter.events.append(OrientationEvent(3.0, False))
    assert counter.get_score() == 25.0
