"""Cross-module integration scenarios exercising the whole stack."""

import pytest

from repro.apps.buggy.cpu_apps import K9Mail, Torch
from repro.apps.buggy.gps_apps import BetterWeather
from repro.apps.normal.background import RunKeeper, Spotify
from repro.core.lease import LeaseState
from repro.mitigation import DefDroid, Doze, LeaseOS

from tests.conftest import make_phone


def test_mixed_device_buggy_and_normal_apps_coexist():
    """One phone, one buggy and two healthy apps, LeaseOS installed:
    the buggy app is contained, the healthy ones untouched."""
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.95,
                       movement_mps=2.0)
    torch = phone.install(Torch())
    runkeeper = phone.install(RunKeeper())
    spotify = phone.install(Spotify())
    mark = phone.energy_mark()
    phone.run_for(minutes=20.0)

    assert not runkeeper.disruptions
    assert not spotify.disruptions
    manager = mitigation.manager
    torch_deferrals = sum(
        l.deferral_count for l in manager.leases_for(torch.uid))
    healthy_deferrals = sum(
        l.deferral_count
        for uid in (runkeeper.uid, spotify.uid)
        for l in manager.leases_for(uid)
    )
    assert torch_deferrals >= 3
    assert healthy_deferrals == 0
    # Torch's residual power is a sliver of the awake-idle cost.
    assert phone.power_since(mark, torch.uid) < 5.0


def test_environment_recovery_restores_app():
    """K-9's misbehaviour stops when the network returns (§4.5): the
    lease returns to normal renewals -- continuous examine-renew, not
    one-shot throttling."""
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, connected=False)
    app = phone.install(K9Mail(scenario="disconnected"))
    phone.run_for(minutes=5.0)
    lease = mitigation.manager.leases_for(app.uid)[0]
    assert lease.deferral_count >= 2
    deferrals_before = lease.deferral_count

    recovery_time = phone.sim.now
    phone.env.network.set_connected(True)
    phone.run_for(minutes=6.0)
    # After recovery the app finishes its sync and releases the lock:
    # once the (escalated) deferral drains, the lease settles into
    # renew/inactive decisions instead of endless deferrals.
    later = [d for d in mitigation.manager.decisions
             if d.lease is lease and d.time > recovery_time]
    assert any(d.action in ("renew", "inactive") for d in later)
    recent_deferrals = sum(1 for d in later if d.action == "defer")
    assert recent_deferrals <= 1
    assert lease.deferral_count >= deferrals_before
    assert lease.state is not LeaseState.DEFERRED


def test_all_mitigations_on_same_seed_are_reproducible():
    powers = {}
    for run in range(2):
        for name, factory in [("lease", LeaseOS),
                              ("doze", lambda: Doze(aggressive=True)),
                              ("defdroid", DefDroid)]:
            phone = make_phone(mitigation=factory(), gps_quality=0.1)
            app = phone.install(BetterWeather())
            mark = phone.energy_mark()
            phone.run_for(minutes=10.0)
            key = (name, run)
            powers[key] = phone.power_since(mark, app.uid)
    for name in ("lease", "doze", "defdroid"):
        assert powers[(name, 0)] == pytest.approx(powers[(name, 1)])


def test_lease_lifecycle_end_to_end():
    """Create -> renew -> defer -> restore -> inactive -> dead."""
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    app = phone.install(Torch())
    phone.run_for(seconds=6.0)
    lease = mitigation.manager.leases_for(app.uid)[0]
    assert lease.state is LeaseState.DEFERRED
    phone.run_for(minutes=2.0)
    assert lease.deferral_count >= 2
    phone.kill_app(app.uid)
    assert mitigation.manager.leases_for(app.uid) == []


def test_energy_conservation_across_full_stack():
    """Total ledger energy equals the battery drain, and per-app energy
    sums to the total."""
    from repro.device.battery import Battery

    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.95)
    start_battery = phone.battery.remaining_mj
    phone.install(Torch())
    phone.install(Spotify())
    phone.run_for(minutes=10.0)
    phone.monitor.settle()
    total = phone.monitor.ledger.total_mj()
    drained = start_battery - phone.battery.remaining_mj
    assert drained == pytest.approx(total, rel=1e-9)
    assert sum(phone.monitor.ledger.by_app().values()) == \
        pytest.approx(total, rel=1e-9)


def test_dumpsys_views_after_mixed_run():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, gps_quality=0.95)
    phone.install(Torch())
    phone.install(Spotify())
    phone.run_for(minutes=10.0)
    battery_report = phone.dumpsys_batterystats()
    assert "Spotify" in battery_report and "Torch" in battery_report
    lease_report = mitigation.manager.dump_table()
    assert "Torch" in lease_report
    assert "deferrals=" in lease_report
