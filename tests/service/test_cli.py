"""``repro service``: run / inspect / verify / compact round trips."""

import os

from repro import cli
from repro.cli import EXIT_DEGRADED
from repro.service import JournalStorage, LeaseService
from repro.service.storage import JOURNAL_NAME


def _run(tmp_path, capsys, *argv):
    code = cli.main(list(argv))
    out = capsys.readouterr().out
    return code, out


def _journal(tmp_path):
    return str(tmp_path / "journal")


def _seed_day(tmp_path, capsys, ops=40):
    journal = _journal(tmp_path)
    code, out = _run(tmp_path, capsys, "service", "run",
                     "--journal", journal, "--ops", str(ops))
    assert code == 0
    return journal, out


def test_run_writes_a_recoverable_journal(tmp_path, capsys):
    journal, out = _seed_day(tmp_path, capsys)
    assert "state fingerprint: " in out
    fingerprint = out.split("state fingerprint: ")[1].split()[0]
    service = LeaseService.recover(JournalStorage(journal), seed=7)
    assert service.fingerprint() == fingerprint


def test_run_refuses_to_clobber_without_resume(tmp_path, capsys):
    journal, __ = _seed_day(tmp_path, capsys)
    code, out = _run(tmp_path, capsys, "service", "run",
                     "--journal", journal)
    assert code == 2
    assert "--resume" in out


def test_resume_continues_to_the_uninterrupted_fingerprint(tmp_path,
                                                           capsys):
    full_journal = str(tmp_path / "full")
    __, full_out = _run(tmp_path, capsys, "service", "run",
                        "--journal", full_journal, "--ops", "40")
    expected = full_out.split("state fingerprint: ")[1].split()[0]

    journal = _journal(tmp_path)
    _run(tmp_path, capsys, "service", "run", "--journal", journal,
         "--ops", "15")
    code, out = _run(tmp_path, capsys, "service", "run", "--resume",
                     "--journal", journal, "--ops", "40")
    assert code == 0
    assert out.split("state fingerprint: ")[1].split()[0] == expected


def test_verify_reports_invariants_hold(tmp_path, capsys):
    journal, __ = _seed_day(tmp_path, capsys)
    code, out = _run(tmp_path, capsys, "service", "verify",
                     "--journal", journal)
    assert code == 0
    assert "recovery invariants hold" in out
    assert "DEGRADED" not in out


def test_verify_exits_75_on_degraded_recovery(tmp_path, capsys):
    journal, __ = _seed_day(tmp_path, capsys)
    path = os.path.join(journal, JOURNAL_NAME)
    with open(path) as handle:
        lines = handle.read().splitlines()
    with open(path, "w") as handle:
        handle.write("\n".join(lines[:-1]) + "\n" + lines[-1][:12])
    code, out = _run(tmp_path, capsys, "service", "verify",
                     "--journal", journal)
    assert code == EXIT_DEGRADED
    assert "DEGRADED (torn_tail)" in out
    assert "recovery invariants hold (DEGRADED: torn_tail)" in out


def test_inspect_summarises_the_lease_table(tmp_path, capsys):
    journal, __ = _seed_day(tmp_path, capsys)
    code, out = _run(tmp_path, capsys, "service", "inspect",
                     "--journal", journal)
    assert code == 0
    assert "consumers: " in out
    assert "sweeps: " in out


def test_compact_then_verify_recovers_from_the_snapshot(tmp_path,
                                                        capsys):
    journal, run_out = _seed_day(tmp_path, capsys)
    fingerprint = run_out.split("state fingerprint: ")[1].split()[0]
    code, out = _run(tmp_path, capsys, "service", "compact",
                     "--journal", journal)
    assert code == 0
    assert "compacted: snapshot " in out
    code, out = _run(tmp_path, capsys, "service", "verify",
                     "--journal", journal)
    assert code == 0
    # Everything now lives in the snapshot: nothing left to replay.
    assert "0 record(s) replayed, 0 dropped" in out
    assert fingerprint in out


def test_run_refuses_to_clobber_a_compacted_directory(tmp_path, capsys):
    """After `compact` the journal file is empty but a snapshot holds
    the whole state: a fresh seq-0 run on top of it would be silently
    shadowed by that snapshot on the next recovery."""
    journal, run_out = _seed_day(tmp_path, capsys)
    fingerprint = run_out.split("state fingerprint: ")[1].split()[0]
    code, __ = _run(tmp_path, capsys, "service", "compact",
                    "--journal", journal)
    assert code == 0
    code, out = _run(tmp_path, capsys, "service", "run",
                     "--journal", journal)
    assert code == 2
    assert "--resume" in out
    # --resume recovers from the snapshot and continues cleanly.
    code, out = _run(tmp_path, capsys, "service", "run", "--resume",
                     "--journal", journal, "--ops", "40")
    assert code == 0
    assert out.split("state fingerprint: ")[1].split()[0] == fingerprint


def test_compact_reports_the_kept_record_count(tmp_path, capsys):
    journal, __ = _seed_day(tmp_path, capsys)
    code, out = _run(tmp_path, capsys, "service", "compact",
                     "--journal", journal)
    assert code == 0
    assert "journal truncated to 0 record(s)" in out


def test_actions_other_than_run_require_a_journal(tmp_path, capsys):
    code, out = _run(tmp_path, capsys, "service", "verify")
    assert code == 2
    assert "--journal DIR is required" in out


def test_verify_of_a_missing_journal_fails_cleanly(tmp_path, capsys):
    code, out = _run(tmp_path, capsys, "service", "verify",
                     "--journal", str(tmp_path / "nope"))
    assert code == 1
    assert "no journal directory" in out


def test_service_is_excluded_from_all():
    assert "service" in cli.COMMANDS
    assert "service" in cli.EXCLUDE_FROM_ALL
