"""The LeaseService facade: API, sweeper cadence, recovery contract."""

import os

import pytest

from repro.service import (
    InMemoryStorage,
    JournalStorage,
    LeaseService,
    ServiceError,
)
from repro.service.scripted import run_scripted_day


def test_acquire_requires_registration():
    service = LeaseService()
    with pytest.raises(ServiceError):
        service.acquire("ghost", "gps")


def test_lease_lifecycle_through_the_facade():
    service = LeaseService()
    service.register("app0")
    lease_id = service.acquire("app0", "gps", t=1.0, term_s=60.0)
    assert lease_id == 1
    service.renew(lease_id, t=30.0, term_s=120.0)
    service.note_utility(lease_id, 0.8, t=40.0)
    service.release(lease_id, t=50.0, utility=0.9)
    lease = service.state.lease(lease_id)
    assert lease["state"] == "released"
    assert lease["renewals"] == 1
    assert service.state.stats["app0|gps"].count == 2


def test_context_manager_auto_registers_and_releases():
    service = LeaseService()
    with service.lease("app0", "wakelock", t=0.0, term_s=60.0) as handle:
        assert handle.active
        handle.note(0.5, t=10.0)
    assert service.state.lease(handle.id)["state"] == "released"
    # The handle's last-touched time is the release time.
    assert service.state.lease(handle.id)["released_t"] == 10.0


def test_context_manager_respects_explicit_release():
    service = LeaseService()
    with service.lease("app0", "gps", t=0.0) as handle:
        handle.release(t=5.0, utility=1.0)
    assert service.state.counts["release"] == 1


def test_rejected_ops_never_reach_the_journal(tmp_path):
    """A refused op must leave no journal record behind: a dead record
    would poison replay (StateError at its seq) and its seq would be
    reused by the next committed op."""
    from repro.service.storage import JOURNAL_NAME, decode_record

    directory = str(tmp_path / "reject")
    service = LeaseService(JournalStorage(directory), seed=7)
    service.register("app0")
    lease_id = service.acquire("app0", "gps", t=0.0, term_s=60.0)
    service.release(lease_id, t=1.0, utility=0.5)
    with pytest.raises(ServiceError):
        service.release(lease_id, t=2.0)   # double release
    with pytest.raises(ServiceError):
        service.renew(lease_id, t=2.0)     # renew of a RELEASED lease
    service.acquire("app0", "net", t=3.0, term_s=60.0)
    fingerprint = service.fingerprint()
    service.close()

    with open(os.path.join(directory, JOURNAL_NAME)) as handle:
        records = [decode_record(line) for line in handle]
    assert [r["op"] for r in records] == [
        "register", "acquire", "release", "acquire"]
    assert [r["seq"] for r in records] == list(range(len(records)))

    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    assert recovered.fingerprint() == fingerprint
    assert recovered.violations == []
    assert not recovered.recovery.degraded


def test_sweep_cadence_is_a_pure_function_of_seed_and_index():
    a = LeaseService(seed=11)
    b = LeaseService(seed=11)
    c = LeaseService(seed=12)
    dues_a = [a.sweep_due(k) for k in range(5)]
    assert dues_a == [b.sweep_due(k) for k in range(5)]
    assert dues_a != [c.sweep_due(k) for k in range(5)]
    assert all(later > earlier
               for earlier, later in zip(dues_a, dues_a[1:]))


def test_maybe_sweep_expires_lapsed_leases_only():
    service = LeaseService(seed=0)
    service.register("app0")
    short = service.acquire("app0", "gps", t=0.0, term_s=10.0)
    long = service.acquire("app0", "net", t=0.0, term_s=10_000.0)
    service.maybe_sweep(500.0)
    assert service.state.lease(short)["state"] == "expired"
    assert service.state.lease(long)["state"] == "active"
    assert service.state.sweep_index > 0


def test_force_sweep_does_not_advance_the_cadence():
    service = LeaseService(seed=0)
    service.register("app0")
    service.acquire("app0", "gps", t=0.0, term_s=1.0)
    swept = service.force_sweep(50.0)
    assert swept == 1
    assert service.state.sweep_index == 0


def test_snapshot_every_writes_automatic_snapshots(tmp_path):
    directory = str(tmp_path / "auto")
    service = LeaseService(JournalStorage(directory), seed=7,
                           snapshot_every=10)
    run_scripted_day(service, seed=7, apps=2, ops=20)
    service.close()
    assert JournalStorage(directory).snapshot_files()
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    assert recovered.fingerprint() == service.fingerprint()
    assert recovered.recovery.snapshot_seq > 0


def test_recover_is_byte_identical_and_emits_no_violations(tmp_path):
    directory = str(tmp_path / "clean")
    service = LeaseService(JournalStorage(directory), seed=7)
    summary = run_scripted_day(service, seed=7, apps=3, ops=60)
    service.close()
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    assert recovered.fingerprint() == summary["fingerprint"]
    assert recovered.violations == []
    assert not recovered.recovery.degraded


def test_recovered_service_continues_the_scripted_day(tmp_path):
    reference = LeaseService(InMemoryStorage(), seed=7)
    expected = run_scripted_day(reference, seed=7, apps=3, ops=60)

    directory = str(tmp_path / "half")
    service = LeaseService(JournalStorage(directory), seed=7)
    run_scripted_day(service, seed=7, apps=3, ops=25)
    service.close()
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    resumed = run_scripted_day(recovered, seed=7, apps=3, ops=60)
    recovered.close()
    assert resumed["fingerprint"] == expected["fingerprint"]


def test_journal_and_memory_backends_agree_bitwise(tmp_path):
    memory = LeaseService(InMemoryStorage(), seed=7)
    disk = LeaseService(JournalStorage(str(tmp_path / "disk")), seed=7)
    a = run_scripted_day(memory, seed=7, apps=3, ops=60)
    b = run_scripted_day(disk, seed=7, apps=3, ops=60)
    disk.close()
    assert a["fingerprint"] == b["fingerprint"]


def test_recovery_emits_service_recovered_telemetry(tmp_path,
                                                   monkeypatch):
    from repro.telemetry.emit import ENV_DIR
    from repro.telemetry.schema import validate_stream_file

    directory = str(tmp_path / "tele")
    service = LeaseService(JournalStorage(directory), seed=7)
    run_scripted_day(service, seed=7, apps=2, ops=10)
    service.close()
    stream_dir = str(tmp_path / "stream")
    os.makedirs(stream_dir)
    monkeypatch.setenv(ENV_DIR, stream_dir)
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    recovered.maybe_sweep(10_000.0)
    recovered.close()
    files = [name for name in os.listdir(stream_dir)
             if name.endswith(".jsonl")]
    assert files
    path = os.path.join(stream_dir, files[0])
    assert validate_stream_file(path) == []
    with open(path) as handle:
        kinds = [__import__("json").loads(line)["event"]
                 for line in handle]
    assert "service_recovered" in kinds
    assert "service_sweep" in kinds
