"""Storage backends: journal encoding, snapshots, salvage semantics."""

import json
import os

import pytest

from repro.service import (
    InMemoryStorage,
    JournalRecoveryError,
    JournalStorage,
    LeaseService,
)
from repro.service.scripted import run_scripted_day
from repro.service.storage import (
    JOURNAL_NAME,
    decode_record,
    encode_record,
    record_crc,
)


def test_record_encoding_round_trips_with_valid_crc():
    line = encode_record(3, "acquire", 1.5,
                         {"consumer": "a", "resource": "gps",
                          "term_s": 60.0})
    record = decode_record(line)
    assert record["seq"] == 3
    assert record["op"] == "acquire"
    assert record["crc"] == record_crc(3, "acquire", 1.5,
                                       record["data"])


def test_decode_rejects_bad_crc_and_missing_fields():
    line = encode_record(0, "register", 0.0, {"name": "a"})
    tampered = line.replace('"name":"a"', '"name":"b"')
    with pytest.raises(ValueError):
        decode_record(tampered)
    with pytest.raises(ValueError):
        decode_record('{"seq": 0, "op": "register"}')
    with pytest.raises(ValueError):
        decode_record("not json")


def test_in_memory_storage_load_returns_clean_info():
    storage = InMemoryStorage()
    storage.append(0, "register", 0.0, {"name": "a"})
    snapshot, records, info = storage.load()
    assert snapshot is None
    assert [r["seq"] for r in records] == [0]
    assert not info.degraded


def _journaled_day(tmp_path, name="day", ops=40):
    directory = str(tmp_path / name)
    service = LeaseService(JournalStorage(directory), seed=7)
    summary = run_scripted_day(service, seed=7, apps=3, ops=ops)
    service.close()
    return directory, summary


def test_journal_is_one_valid_record_per_line_with_gapless_seqs(tmp_path):
    directory, summary = _journaled_day(tmp_path)
    with open(os.path.join(directory, JOURNAL_NAME)) as handle:
        records = [decode_record(line) for line in handle]
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert len(records) == summary["op_seq"]


def test_journal_bytes_are_deterministic(tmp_path):
    d1, __ = _journaled_day(tmp_path, "one")
    d2, __ = _journaled_day(tmp_path, "two")
    with open(os.path.join(d1, JOURNAL_NAME), "rb") as handle:
        first = handle.read()
    with open(os.path.join(d2, JOURNAL_NAME), "rb") as handle:
        second = handle.read()
    assert first == second


def test_load_replays_from_latest_valid_snapshot(tmp_path):
    directory = str(tmp_path / "snap")
    service = LeaseService(JournalStorage(directory), seed=7)
    run_scripted_day(service, seed=7, apps=3, ops=30)
    service.checkpoint()
    fp = service.fingerprint()
    seq = service.state.op_seq
    service.close()
    snapshot, records, info = JournalStorage(directory).load()
    assert info.snapshot_seq == seq
    assert records == []  # everything covered by the snapshot
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    assert recovered.fingerprint() == fp


def test_load_falls_back_past_an_invalid_snapshot(tmp_path):
    directory = str(tmp_path / "snapfall")
    service = LeaseService(JournalStorage(directory), seed=7)
    run_scripted_day(service, seed=7, apps=3, ops=30)
    fp = service.fingerprint()
    service.checkpoint()
    service.close()
    # Corrupt the (only) snapshot: recovery must fall back to a full
    # journal replay and flag the rot.
    snapshots = JournalStorage(directory).snapshot_files()
    with open(snapshots[0], "r+") as handle:
        payload = json.load(handle)
        payload["crc"] = "00000000"
        handle.seek(0)
        json.dump(payload, handle)
        handle.truncate()
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    assert recovered.fingerprint() == fp
    assert recovered.recovery.snapshots_invalid == 1
    assert recovered.recovery.degraded
    assert recovered.recovery.reason == "invalid_snapshots"


def test_compact_truncates_journal_but_preserves_state(tmp_path):
    directory, summary = _journaled_day(tmp_path)
    service = LeaseService.recover(JournalStorage(directory), seed=7)
    service.compact()
    service.close()
    with open(os.path.join(directory, JOURNAL_NAME)) as handle:
        assert handle.read() == ""
    recovered = LeaseService.recover(JournalStorage(directory), seed=7)
    assert recovered.fingerprint() == summary["fingerprint"]
    assert recovered.recovery.snapshot_seq == summary["op_seq"]


def test_torn_tail_is_dropped_and_degraded(tmp_path):
    directory, __ = _journaled_day(tmp_path)
    path = os.path.join(directory, JOURNAL_NAME)
    with open(path) as handle:
        lines = handle.read().splitlines()
    with open(path, "w") as handle:
        handle.write("\n".join(lines[:10]) + "\n" + lines[10][:20])
    snapshot, records, info = JournalStorage(directory).load()
    assert len(records) == 10
    assert info.degraded
    assert info.reason == "torn_tail"
    assert info.records_dropped == 1


def test_corrupt_mid_journal_drops_everything_after(tmp_path):
    directory, __ = _journaled_day(tmp_path)
    path = os.path.join(directory, JOURNAL_NAME)
    with open(path) as handle:
        lines = handle.read().splitlines()
    record = json.loads(lines[5])
    record["crc"] = "00000000"
    lines[5] = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    __, records, info = JournalStorage(directory).load()
    assert len(records) == 5
    assert info.degraded
    assert info.reason == "corrupt_record"
    assert info.records_dropped == len(lines) - 5


def test_corrupt_crc_on_the_final_record_is_bitrot_not_a_tear(tmp_path):
    """A fully-written record with a bad crc parses as JSON: that is
    bitrot (`corrupt_record`) even on the last line -- `torn_tail` is
    reserved for a genuine partial write."""
    directory, __ = _journaled_day(tmp_path)
    path = os.path.join(directory, JOURNAL_NAME)
    with open(path) as handle:
        lines = handle.read().splitlines()
    record = json.loads(lines[-1])
    record["crc"] = "00000000"
    lines[-1] = json.dumps(record, sort_keys=True,
                           separators=(",", ":"))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    __, records, info = JournalStorage(directory).load()
    assert len(records) == len(lines) - 1
    assert info.degraded
    assert info.reason == "corrupt_record"
    assert info.records_dropped == 1
    assert info.records_total == len(lines)


def test_blank_tail_lines_are_not_counted_as_records(tmp_path):
    directory, __ = _journaled_day(tmp_path)
    path = os.path.join(directory, JOURNAL_NAME)
    with open(path) as handle:
        lines = handle.read().splitlines()
    with open(path, "w") as handle:
        # A torn half-record followed by stray blank lines.
        handle.write("\n".join(lines[:10]) + "\n"
                     + lines[10][:20] + "\n\n\n")
    __, records, info = JournalStorage(directory).load()
    assert len(records) == 10
    assert info.degraded
    assert info.reason == "torn_tail"
    assert info.records_dropped == 1
    assert info.records_total == 11


def test_compact_reports_kept_records_not_appended(tmp_path):
    """`compact_kept` is the records surviving compaction (normally 0),
    independent of how many this process happened to append."""
    directory, __ = _journaled_day(tmp_path)
    service = LeaseService.recover(JournalStorage(directory), seed=7)
    run_scripted_day(service, seed=7, apps=3, ops=50)
    assert service.storage.appended > 0
    service.compact()
    assert service.storage.compact_kept == 0
    service.close()


def test_sequence_gap_stops_replay_degraded(tmp_path):
    directory, __ = _journaled_day(tmp_path)
    path = os.path.join(directory, JOURNAL_NAME)
    with open(path) as handle:
        lines = handle.read().splitlines()
    del lines[7]  # a missing middle record is a gap, not a tail
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    __, records, info = JournalStorage(directory).load()
    assert len(records) == 7
    assert info.degraded
    assert info.reason == "sequence_gap"


def test_missing_directory_raises_recovery_error(tmp_path):
    storage = JournalStorage.__new__(JournalStorage)
    storage.directory = str(tmp_path / "nope")
    storage.path = os.path.join(storage.directory, JOURNAL_NAME)
    with pytest.raises(JournalRecoveryError):
        storage.load()


def test_journal_without_genesis_and_no_snapshot_raises(tmp_path):
    directory = str(tmp_path / "headless")
    os.makedirs(directory)
    line = encode_record(5, "register", 0.0, {"name": "a"})
    with open(os.path.join(directory, JOURNAL_NAME), "w") as handle:
        handle.write(line + "\n")
    with pytest.raises(JournalRecoveryError):
        JournalStorage(directory).load()
