"""The committed journal example and its schema lint tool."""

import importlib.util
import json
import os

from repro.service import JournalStorage, LeaseService
from repro.service.storage import JOURNAL_NAME

EXAMPLE = os.path.join(os.path.dirname(__file__), "..", "data",
                       "service_journal_example.jsonl")


def _tool():
    path = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                        "check_journal_schema.py")
    spec = importlib.util.spec_from_file_location("check_journal", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_example_recovers_cleanly(tmp_path):
    directory = str(tmp_path / "j")
    os.makedirs(directory)
    with open(EXAMPLE) as src, \
            open(os.path.join(directory, JOURNAL_NAME), "w") as dst:
        dst.write(src.read())
    service = LeaseService.recover(JournalStorage(directory), seed=7)
    assert service.violations == []
    assert not service.recovery.degraded
    assert service.state.op_seq == 20


def test_lint_tool_passes_the_example_and_fails_garbage(tmp_path,
                                                        capsys):
    module = _tool()
    assert module.main(["--replay", EXAMPLE]) == 0
    out = capsys.readouterr().out
    assert "fingerprint" in out

    with open(EXAMPLE) as handle:
        lines = handle.read().splitlines()
    record = json.loads(lines[3])
    record["op"] = "frobnicate"
    lines[3] = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
    bad = tmp_path / "bad.jsonl"
    bad.write_text("\n".join(lines) + "\n")
    assert module.main([str(bad)]) == 1  # crc no longer matches

    gap = tmp_path / "gap.jsonl"
    gap.write_text("\n".join(lines[:3] + lines[5:6]) + "\n")
    assert module.main([str(gap)]) == 1
    assert module.main([str(tmp_path / "absent.jsonl")]) == 1
    capsys.readouterr()
