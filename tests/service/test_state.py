"""The service state reducer: ops, queries, canonical form."""

import pytest

from repro.service.state import ServiceState, StateError


def _basic_state():
    state = ServiceState()
    state.apply("register", 0.0, {"name": "app0"})
    state.apply("acquire", 1.0, {"consumer": "app0", "resource": "gps",
                                 "term_s": 60.0})
    return state


def test_acquire_assigns_monotonic_ids_from_one():
    state = _basic_state()
    state.apply("acquire", 2.0, {"consumer": "app0",
                                 "resource": "wakelock", "term_s": 30.0})
    ids = [lease["id"] for lease in state.active_leases()]
    assert ids == [1, 2]
    assert state.next_lease_id == 3


def test_register_twice_is_an_error():
    state = _basic_state()
    with pytest.raises(StateError):
        state.apply("register", 2.0, {"name": "app0"})


def test_acquire_unknown_consumer_is_an_error():
    state = _basic_state()
    with pytest.raises(StateError):
        state.apply("acquire", 2.0, {"consumer": "ghost",
                                     "resource": "gps", "term_s": 1.0})


def test_renew_extends_expiry_from_renew_time():
    state = _basic_state()
    state.apply("renew", 30.0, {"lease": 1, "term_s": 100.0})
    lease = state.lease(1)
    assert lease["expires_t"] == 130.0
    assert lease["renewals"] == 1


def test_release_folds_utility_into_stats():
    state = _basic_state()
    state.apply("release", 10.0, {"lease": 1, "utility": 0.75})
    assert state.lease(1)["state"] == "released"
    assert state.stats["app0|gps"].count == 1
    assert state.stats["app0|gps"].mean == 0.75
    assert state.stats_all.count == 1


def test_release_twice_is_an_error():
    state = _basic_state()
    state.apply("release", 10.0, {"lease": 1})
    with pytest.raises(StateError):
        state.apply("release", 11.0, {"lease": 1})


def test_note_utility_counts_misbehaviors():
    state = _basic_state()
    state.apply("note_utility", 5.0,
                {"lease": 1, "value": 0.2, "misbehavior": True})
    state.apply("note_utility", 6.0, {"lease": 1, "value": 0.9})
    assert state.counts["misbehaviors"] == 1
    assert state.stats_all.count == 2


def test_sweep_expires_listed_leases_and_tracks_cadence():
    state = _basic_state()
    assert state.expired_by(61.0) == [1]
    state.apply("sweep", 61.0, {"expired": [1], "scheduled": True})
    assert state.lease(1)["state"] == "expired"
    assert state.sweep_index == 1
    assert state.swept_total == 1
    # Forced sweeps never advance the scheduled cadence position.
    state.apply("sweep", 62.0, {"expired": [], "scheduled": False})
    assert state.sweep_index == 1


def test_sweep_of_non_active_lease_is_an_error():
    state = _basic_state()
    state.apply("release", 5.0, {"lease": 1})
    with pytest.raises(StateError):
        state.apply("sweep", 61.0, {"expired": [1], "scheduled": True})


def test_rejected_op_leaves_the_state_untouched():
    """`check` runs before any mutation: a sweep listing one bad lease
    among good ones must not half-apply (no expired leases, no op_seq
    bump)."""
    state = _basic_state()
    state.apply("acquire", 1.0, {"consumer": "app0", "resource": "net",
                                 "term_s": 60.0})
    state.apply("release", 5.0, {"lease": 2})
    before = state.fingerprint()
    with pytest.raises(StateError):
        state.apply("sweep", 61.0, {"expired": [1, 2],
                                    "scheduled": True})
    assert state.fingerprint() == before
    assert state.lease(1)["state"] == "active"


def test_check_is_pure_and_matches_apply():
    state = _basic_state()
    before = state.fingerprint()
    state.check("renew", 30.0, {"lease": 1, "term_s": 100.0})
    with pytest.raises(StateError):
        state.check("release", 1.0, {"lease": 99})
    with pytest.raises(StateError):
        state.check("renew", 1.0, {"lease": 1})  # missing term_s
    assert state.fingerprint() == before


def test_unknown_op_is_an_error():
    state = _basic_state()
    with pytest.raises(StateError):
        state.apply("frobnicate", 1.0, {})


def test_canonical_round_trip_is_byte_identical():
    state = _basic_state()
    state.apply("note_utility", 5.0, {"lease": 1, "value": 0.4})
    state.apply("sweep", 61.0, {"expired": [1], "scheduled": True})
    again = ServiceState.from_canonical(state.to_canonical())
    assert again.to_json() == state.to_json()
    assert again.fingerprint() == state.fingerprint()


def test_from_canonical_rejects_wrong_schema():
    payload = _basic_state().to_canonical()
    payload["schema"] = 99
    with pytest.raises(StateError):
        ServiceState.from_canonical(payload)


def test_fingerprint_changes_with_any_op():
    state = _basic_state()
    before = state.fingerprint()
    state.apply("note_utility", 5.0, {"lease": 1, "value": 0.4})
    assert state.fingerprint() != before
