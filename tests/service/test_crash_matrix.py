"""The crash matrix: recovery is byte-identical at *every* boundary.

The seeded 3-app scripted day is run once, live, with the state
fingerprint captured after every single op. Then, for every journal
record boundary k:

- **kill** -- a journal truncated to exactly k records (each record is
  one atomic line write, so this is what a SIGKILL between appends
  leaves behind) must recover to fingerprint[k], byte for byte;
- **torn tail** -- k records plus half of record k+1 (a kill mid-write)
  must drop the tail, flag degraded, and still recover fingerprint[k];
- **corrupt crc** -- k records plus record k+1 with a flipped crc must
  refuse the bad record and recover fingerprint[k].

A handful of *real* process kills (the ``storage`` target of
``REPRO_HARNESS_FAULTS`` exiting with code 86) pin that the in-process
truncation matrix is a faithful stand-in for actual crashes, and the
hypothesis property generalises the prefix claim: any prefix of a
valid journal recovers to a valid, invariant-clean state.
"""

import json
import os
import subprocess
import sys

import pytest

from hypothesis import given, settings, strategies as st

from repro.service import JournalStorage, LeaseService
from repro.service.scripted import run_scripted_day
from repro.service.storage import JOURNAL_NAME

SEED, APPS, OPS = 7, 3, 40


class _TracingService(LeaseService):
    """Captures the live fingerprint after every committed op."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fingerprints = [self.state.fingerprint()]

    def _commit(self, op, t, data):
        seq = super()._commit(op, t, data)
        self.fingerprints.append(self.state.fingerprint())
        return seq


@pytest.fixture(scope="module")
def scripted_run(tmp_path_factory):
    """One live scripted day: journal lines + per-op fingerprints."""
    directory = str(tmp_path_factory.mktemp("matrix") / "day")
    service = _TracingService(JournalStorage(directory), seed=SEED,
                              snapshot_every=0)
    run_scripted_day(service, seed=SEED, apps=APPS, ops=OPS)
    service.close()
    with open(os.path.join(directory, JOURNAL_NAME)) as handle:
        lines = handle.read().splitlines()
    assert len(lines) == len(service.fingerprints) - 1
    return {"lines": lines, "fingerprints": service.fingerprints}


def _recover_dir(tmp_path, content):
    directory = str(tmp_path / "r")
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, JOURNAL_NAME), "w") as handle:
        handle.write(content)
    return LeaseService.recover(JournalStorage(directory), seed=SEED)


def _boundaries(scripted_run):
    return range(len(scripted_run["lines"]) + 1)


def test_kill_at_every_record_boundary_recovers_byte_identically(
        scripted_run, tmp_path):
    lines = scripted_run["lines"]
    fingerprints = scripted_run["fingerprints"]
    for k in _boundaries(scripted_run):
        content = "".join(line + "\n" for line in lines[:k])
        service = _recover_dir(tmp_path, content)
        assert service.fingerprint() == fingerprints[k], \
            "kill at record boundary {} diverged".format(k)
        assert service.violations == []
        assert not service.recovery.degraded


def test_torn_tail_at_every_boundary_recovers_the_prefix(
        scripted_run, tmp_path):
    lines = scripted_run["lines"]
    fingerprints = scripted_run["fingerprints"]
    for k in range(len(lines)):
        torn = lines[k][:max(len(lines[k]) // 2, 1)]
        content = "".join(line + "\n" for line in lines[:k]) + torn
        service = _recover_dir(tmp_path, content)
        assert service.fingerprint() == fingerprints[k], \
            "torn tail after record {} diverged".format(k)
        assert service.violations == []
        assert service.recovery.degraded
        assert service.recovery.reason == "torn_tail"


def test_corrupt_crc_tail_at_every_boundary_recovers_the_prefix(
        scripted_run, tmp_path):
    lines = scripted_run["lines"]
    fingerprints = scripted_run["fingerprints"]
    for k in range(len(lines)):
        record = json.loads(lines[k])
        record["crc"] = "{:08x}".format(
            int(record["crc"], 16) ^ 0xFFFFFFFF)
        bad = json.dumps(record, sort_keys=True, separators=(",", ":"))
        content = "".join(line + "\n" for line in lines[:k]) + bad + "\n"
        service = _recover_dir(tmp_path, content)
        assert service.fingerprint() == fingerprints[k], \
            "corrupt crc at record {} diverged".format(k)
        assert service.violations == []
        assert service.recovery.degraded
        # A fully-written record with a bad crc is bitrot, not a torn
        # write -- even when it is the last line of the journal.
        assert service.recovery.reason == "corrupt_record"
        assert service.recovery.records_dropped == 1


@settings(max_examples=40, deadline=None)
@given(prefix=st.integers(min_value=0, max_value=OPS))
def test_any_journal_prefix_recovers_to_a_valid_state(
        scripted_run, tmp_path_factory, prefix):
    """Hypothesis property: every prefix is a valid recoverable state."""
    lines = scripted_run["lines"]
    k = min(prefix * 2, len(lines))  # spread draws across the journal
    tmp_path = tmp_path_factory.mktemp("prefix")
    content = "".join(line + "\n" for line in lines[:k])
    service = _recover_dir(tmp_path, content)
    assert service.fingerprint() == scripted_run["fingerprints"][k]
    assert service.violations == []
    assert service.state.op_seq == k
    # A recovered prefix must also be *continuable*: finishing the
    # scripted day lands on the uninterrupted run's final fingerprint.
    run_scripted_day(service, seed=SEED, apps=APPS, ops=OPS)
    assert service.fingerprint() == scripted_run["fingerprints"][-1]


def _run_scripted_subprocess(directory, faults):
    code = ("from repro.service import LeaseService, JournalStorage\n"
            "from repro.service.scripted import run_scripted_day\n"
            "service = LeaseService(JournalStorage({!r}), seed={},\n"
            "                       snapshot_every=0)\n"
            "run_scripted_day(service, seed={}, apps={}, ops={})\n"
            "service.close()\n".format(directory, SEED, SEED, APPS, OPS))
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_HARNESS_FAULTS=faults)
    return subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(__file__)))).returncode


@pytest.mark.parametrize("seq", [0, 7, 23])
def test_real_process_crash_matches_the_truncation_matrix(
        scripted_run, tmp_path, seq):
    """An actual os._exit mid-run leaves exactly a k-record journal."""
    from repro.resilience.hooks import CRASH_EXIT_CODE

    directory = str(tmp_path / "crash")
    rc = _run_scripted_subprocess(
        directory, json.dumps({"storage": {"crash": [seq]}}))
    assert rc == CRASH_EXIT_CODE
    service = LeaseService.recover(JournalStorage(directory), seed=SEED)
    # "crash" fires after record seq is durable: seq+1 records survive.
    assert service.state.op_seq == seq + 1
    assert service.fingerprint() == \
        scripted_run["fingerprints"][seq + 1]
    assert not service.recovery.degraded
    # Resuming the killed run reproduces the uninterrupted day.
    run_scripted_day(service, seed=SEED, apps=APPS, ops=OPS)
    assert service.fingerprint() == scripted_run["fingerprints"][-1]
    service.close()


def test_real_torn_write_crash_recovers_degraded(scripted_run, tmp_path):
    from repro.resilience.hooks import CRASH_EXIT_CODE

    directory = str(tmp_path / "torn")
    rc = _run_scripted_subprocess(
        directory, json.dumps({"storage": {"torn": [15]}}))
    assert rc == CRASH_EXIT_CODE
    service = LeaseService.recover(JournalStorage(directory), seed=SEED)
    assert service.state.op_seq == 15
    assert service.fingerprint() == scripted_run["fingerprints"][15]
    assert service.recovery.degraded
    assert service.recovery.reason == "torn_tail"


def test_real_corrupt_crc_write_is_caught_on_recovery(scripted_run,
                                                      tmp_path):
    directory = str(tmp_path / "corrupt")
    rc = _run_scripted_subprocess(
        directory, json.dumps({"storage": {"corrupt": [20]}}))
    assert rc == 0  # silent bitrot: the writer never notices
    service = LeaseService.recover(JournalStorage(directory), seed=SEED)
    assert service.state.op_seq == 20
    assert service.fingerprint() == scripted_run["fingerprints"][20]
    assert service.recovery.degraded
    assert service.recovery.reason == "corrupt_record"
    assert service.recovery.records_dropped > 1
