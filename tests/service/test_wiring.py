"""Env-armed mirroring of the LeaseManager into a journaled service."""

from repro.mitigation import LeaseOS
from repro.service import JournalStorage, LeaseService
from repro.service.storage import ENV_JOURNAL

from tests.conftest import make_phone
from tests.core.test_manager_proxy import BusyHolder, PoliteApp


def _armed_phone(monkeypatch, root):
    monkeypatch.setenv(ENV_JOURNAL, root)
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    return phone, mitigation.manager


def test_persistence_is_off_by_default(monkeypatch):
    monkeypatch.delenv(ENV_JOURNAL, raising=False)
    mitigation = LeaseOS()
    make_phone(mitigation=mitigation)
    assert mitigation.manager.persistence is None


def test_armed_manager_mirrors_lifecycle_and_recovers_bitwise(
        monkeypatch, tmp_path):
    phone, manager = _armed_phone(monkeypatch, str(tmp_path / "j"))
    app = phone.install(BusyHolder())
    phone.run_for(seconds=30.0)
    persistence = manager.persistence
    assert persistence is not None
    service = persistence.service
    assert service.state.counts["acquire"] >= 1
    # End-of-term decisions carry metrics: utility lands in the stats
    # moments under the namespaced consumer|resource key.
    keys = [key for key in service.state.stats
            if key.endswith(":uid:{}|wakelock".format(app.uid))]
    assert keys
    service.flush()
    recovered = LeaseService.recover(
        JournalStorage(service.storage.directory))
    assert recovered.fingerprint() == service.fingerprint()
    assert recovered.violations == []
    assert not recovered.recovery.degraded


def test_manager_remove_releases_the_mirrored_lease(monkeypatch,
                                                    tmp_path):
    phone, manager = _armed_phone(monkeypatch, str(tmp_path / "j"))
    app = phone.install(PoliteApp())
    phone.run_for(seconds=10.0)
    persistence = manager.persistence
    lease = manager.leases_for(app.uid)[0]
    lease_id = persistence.lease_ids[lease.descriptor]
    manager.remove(lease.descriptor)
    assert lease.descriptor not in persistence.lease_ids
    assert persistence.service.state.lease(lease_id)["state"] in (
        "released", "expired")


def test_swept_service_lease_renews_as_a_fresh_grant(monkeypatch,
                                                     tmp_path):
    phone, manager = _armed_phone(monkeypatch, str(tmp_path / "j"))
    app = phone.install(BusyHolder())
    phone.run_for(seconds=2.0)
    persistence = manager.persistence
    lease = manager.leases_for(app.uid)[0]
    old_id = persistence.lease_ids[lease.descriptor]
    # The service-side sweeper expires the mirror while the manager
    # lease idles; the next renewal must be a *fresh* monotonic grant,
    # never a resurrection of the expired record.
    persistence.service.force_sweep(persistence.service.state.lease(
        old_id)["expires_t"] + 1.0)
    assert persistence.service.state.lease(old_id)["state"] == "expired"
    persistence.on_renew(lease)
    new_id = persistence.lease_ids[lease.descriptor]
    assert new_id > old_id
    assert persistence.service.state.lease(old_id)["state"] == "expired"
    assert persistence.service.state.lease(new_id)["state"] == "active"


def test_each_manager_gets_its_own_namespace(monkeypatch, tmp_path):
    __, first = _armed_phone(monkeypatch, str(tmp_path / "j"))
    __, second = _armed_phone(monkeypatch, str(tmp_path / "j"))
    assert first.persistence.namespace != second.persistence.namespace
    # Both managers in one process share the per-process service.
    assert first.persistence.service is second.persistence.service
