"""Cross-cutting invariants of the lease machinery."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.apps.buggy.cpu_apps import Torch
from repro.apps.synthetic import random_slices
from repro.core.policy import LeasePolicy
from repro.droid.app import App
from repro.experiments.lambda_sweep import trace_reduction
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


class SteadyWorker(App):
    """Always-normal app: 50% duty compute under a wakelock."""

    app_name = "steady"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "s")
        lock.acquire()
        while True:
            yield from self.compute(0.5)
            yield self.sleep(0.5)


def test_update_count_bounded_by_time_over_term():
    """With adaptive terms off, a normal app is checked exactly once per
    term length."""
    policy = LeasePolicy(adaptive_enabled=False)
    mitigation = LeaseOS(policy=policy)
    phone = make_phone(mitigation=mitigation)
    phone.install(SteadyWorker())
    phone.run_for(minutes=5.0)
    updates = mitigation.manager.op_counts["update"]
    assert updates == pytest.approx(300.0 / policy.initial_term_s, abs=2)


def test_adaptive_terms_cut_update_count():
    counts = {}
    for adaptive in (False, True):
        policy = LeasePolicy(adaptive_enabled=adaptive)
        mitigation = LeaseOS(policy=policy)
        phone = make_phone(mitigation=mitigation)
        phone.install(SteadyWorker())
        phone.run_for(minutes=10.0)
        counts[adaptive] = mitigation.manager.op_counts["update"]
    assert counts[True] < counts[False] / 3


def test_deferral_never_exceeds_cap():
    policy = LeasePolicy()
    mitigation = LeaseOS(policy=policy)
    phone = make_phone(mitigation=mitigation)
    phone.install(Torch())
    phone.run_for(minutes=30.0)
    defers = [d for d in mitigation.manager.decisions
              if d.action == "defer"]
    assert len(defers) >= 3
    # Gaps between consecutive decisions never exceed cap + max term.
    times = sorted(d.time for d in mitigation.manager.decisions)
    max_gap = max(b - a for a, b in zip(times, times[1:]))
    assert max_gap <= policy.deferral_max_s + 300.0 + 1.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    count=st.integers(min_value=1, max_value=30),
    term=st.floats(min_value=1.0, max_value=60.0),
    deferral=st.floats(min_value=0.0, max_value=600.0),
)
def test_trace_reduction_bounded(seed, count, term, deferral):
    import random

    slices = random_slices(random.Random(seed), count, max_slice_s=300.0)
    reduction = trace_reduction(slices, term, deferral)
    assert 0.0 <= reduction <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    term=st.floats(min_value=2.0, max_value=30.0),
)
def test_trace_reduction_monotone_in_deferral(seed, term):
    import random

    slices = random_slices(random.Random(seed), 20, max_slice_s=300.0)
    low = trace_reduction(slices, term, term * 1.0)
    high = trace_reduction(slices, term, term * 5.0)
    assert high >= low - 1e-9


def test_decisions_are_time_ordered():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    phone.install(Torch())
    phone.install(SteadyWorker())
    phone.run_for(minutes=10.0)
    times = [d.time for d in mitigation.manager.decisions]
    assert times == sorted(times)
    assert len(times) > 5


def test_intermittency_soft_cap_preserves_useful_windows():
    """An app alternating 2 min useful / 2 min idle keeps producing
    output under LeaseOS (the escalation soft cap), while a permanently
    idle holder escalates to the full deferral cap."""
    from repro.apps.synthetic import IntermittentApp

    slices = [("normal", 120.0), ("misbehavior", 120.0)] * 5
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    app = phone.install(IntermittentApp(slices))
    phone.run_for(minutes=20.0)
    # Useful windows kept producing UI updates throughout the run.
    late_updates = app.ui_updates_in(10 * 60.0, 20 * 60.0)
    assert late_updates > 10
    # And the idle halves were still mitigated.
    lease = mitigation.manager.leases_for(app.uid)[0]
    assert lease.deferral_count >= 3
