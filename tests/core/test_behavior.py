"""Tests for the FAB/LHB/LUB/EUB classifier (§2.4)."""

import pytest

from repro.core.behavior import BehaviorType, classify_term
from repro.core.policy import LeasePolicy
from repro.core.stats import UtilityMetrics
from repro.droid.resources import ResourceType


@pytest.fixture
def policy():
    return LeasePolicy()


def metrics(**kwargs):
    defaults = dict(held=True, held_time=5.0, active_time=5.0,
                    completed_terms=10)
    defaults.update(kwargs)
    return UtilityMetrics(**defaults)


def test_idle_term_is_normal(policy):
    m = metrics(held_time=0.1, active_time=0.1, utilization=0.0,
                utility_score=0.0)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.NORMAL


def test_low_utilization_is_lhb(policy):
    m = metrics(utilization=0.01)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.LHB


def test_high_utilization_low_utility_is_lub(policy):
    m = metrics(utilization=0.9, utility_score=5.0)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.LUB


def test_lub_respects_grace_terms(policy):
    m = metrics(utilization=0.9, utility_score=5.0, completed_terms=0)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.NORMAL


def test_healthy_term_is_normal(policy):
    m = metrics(utilization=0.5, utility_score=80.0)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.NORMAL


def test_heavy_useful_term_is_eub(policy):
    m = metrics(utilization=0.95, utility_score=90.0, active_time=5.0)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.EUB
    assert not BehaviorType.EUB.is_misbehavior


def test_only_gps_can_be_fab(policy):
    m = metrics(ask_time=5.0, ask_window_time=15.0, success_ratio=0.0,
                utilization=1.0)
    assert classify_term(ResourceType.GPS, m, policy) is BehaviorType.FAB
    # A wakelock with the same stats cannot be FAB (Table 1).
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is not BehaviorType.FAB


def test_legitimate_ttff_is_not_fab(policy):
    m = metrics(ask_time=4.0, ask_window_time=4.0, success_ratio=0.0,
                utilization=1.0)
    assert classify_term(ResourceType.GPS, m, policy) \
        is BehaviorType.NORMAL


def test_ask_phase_shields_lub_not_lhb(policy):
    # Searching with a dead consumer is still Long-Holding.
    m = metrics(ask_time=4.0, ask_window_time=4.0, success_ratio=0.0,
                utilization=0.0)
    assert classify_term(ResourceType.GPS, m, policy) is BehaviorType.LHB
    # Searching with a live consumer and low utility is not yet LUB.
    m = metrics(ask_time=4.0, ask_window_time=4.0, success_ratio=0.0,
                utilization=1.0, utility_score=0.0)
    assert classify_term(ResourceType.GPS, m, policy) \
        is BehaviorType.NORMAL


def test_fab_checked_before_lhb(policy):
    m = metrics(ask_time=5.0, ask_window_time=20.0, success_ratio=0.0,
                utilization=0.0)
    assert classify_term(ResourceType.GPS, m, policy) is BehaviorType.FAB


def test_misbehavior_flag():
    assert BehaviorType.FAB.is_misbehavior
    assert BehaviorType.LHB.is_misbehavior
    assert BehaviorType.LUB.is_misbehavior
    assert not BehaviorType.EUB.is_misbehavior
    assert not BehaviorType.NORMAL.is_misbehavior


def test_listener_resources_use_higher_utilization_threshold(policy):
    # Consumer alive 40% of the time: fine for a wakelock, LHB for GPS.
    m = metrics(utilization=0.4)
    assert classify_term(ResourceType.WAKELOCK, m, policy) \
        is BehaviorType.NORMAL
    assert classify_term(ResourceType.GPS, m, policy) is BehaviorType.LHB
