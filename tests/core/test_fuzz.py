"""Stateful fuzzing of the full LeaseOS stack with hypothesis.

Random interleavings of app resource operations, user activity,
environment changes and time advances must never violate the core
invariants: energy conservation, valid lease states, app-view vs OS-view
consistency, and non-negative battery.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.lease import LeaseState
from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.sensors import SensorType
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


class FuzzApp(App):
    app_name = "fuzz"

    def __init__(self):
        super().__init__()
        self.lock = None
        self.registration = None
        self.sensor = None

    def on_start(self):
        self.lock = self.ctx.power.new_wakelock(self, "fuzz")


_OPS = st.sampled_from([
    "acquire", "release", "gps_on", "gps_off", "sensor_on", "sensor_off",
    "touch", "screen_on", "screen_off", "net_drop", "net_back",
    "gps_weak", "gps_good", "compute",
])


def _apply(phone, app, op):
    if op == "acquire":
        if not app.lock.held:
            app.lock.acquire()
    elif op == "release":
        if app.lock.held:
            app.lock.release()
    elif op == "gps_on":
        if app.registration is None:
            app.registration = phone.location.request_location_updates(
                app, lambda loc: None, interval=3.0)
    elif op == "gps_off":
        if app.registration is not None:
            app.registration.remove()
            app.registration = None
    elif op == "sensor_on":
        if app.sensor is None:
            app.sensor = phone.sensors.register_listener(
                app, SensorType.ACCELEROMETER, lambda r: None)
    elif op == "sensor_off":
        if app.sensor is not None:
            app.sensor.unregister()
            app.sensor = None
    elif op == "touch":
        phone.touch(app.uid)
    elif op == "screen_on":
        phone.screen_on()
    elif op == "screen_off":
        phone.screen_off()
    elif op == "net_drop":
        phone.env.network.set_connected(False)
    elif op == "net_back":
        phone.env.network.set_connected(True)
    elif op == "gps_weak":
        phone.env.gps.set_quality(0.05)
    elif op == "gps_good":
        phone.env.gps.set_quality(0.95)
    elif op == "compute":
        app.spawn(app.compute(0.5))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    script=st.lists(st.tuples(_OPS,
                              st.floats(min_value=0.1, max_value=60.0)),
                    min_size=1, max_size=25),
)
def test_random_interleavings_preserve_invariants(seed, script):
    mitigation = LeaseOS()
    phone = make_phone(seed=seed, mitigation=mitigation)
    app = phone.install(FuzzApp())
    start_battery = phone.battery.remaining_mj

    for op, delay in script:
        _apply(phone, app, op)
        phone.run_for(seconds=delay)

    phone.monitor.settle()
    # Energy conservation: ledger total == battery drain, per-app sums.
    total = phone.monitor.ledger.total_mj()
    drained = start_battery - phone.battery.remaining_mj
    assert drained == pytest.approx(total, rel=1e-9, abs=1e-6)
    assert sum(phone.monitor.ledger.by_app().values()) == pytest.approx(
        total, rel=1e-9, abs=1e-6)
    # No rail may be left with a negative or absurd draw.
    for rail, state in phone.monitor._rails.items():
        assert state.power_mw >= 0.0, rail
    # Lease invariants.
    for lease in mitigation.manager.leases.values():
        assert isinstance(lease.state, LeaseState)
        record = lease.record
        if lease.state is LeaseState.DEFERRED:
            assert not record.os_active  # revoked while deferred
        if record.os_active:
            assert record.app_held or record.dead is False
    # Kernel-object accounting can never run backwards.
    for record in phone.power.records:
        record.settle()
        assert record.active_time <= record.held_time + 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_fuzz_app_with_network_loop_never_crashes(seed):
    """A network-looping app under random connectivity flapping."""

    class Looper(App):
        app_name = "looper"

        def run(self):
            lock = self.ctx.power.new_wakelock(self, "loop")
            lock.acquire()
            while True:
                try:
                    yield from self.http("flaky-server")
                except NetworkException as exc:
                    self.note_exception(exc)
                yield self.sleep(2.0)

    phone = make_phone(seed=seed, mitigation=LeaseOS())
    phone.install(Looper())
    import random

    rng = random.Random(seed)
    for __ in range(10):
        phone.env.network.set_connected(rng.random() < 0.5)
        phone.run_for(seconds=rng.uniform(1.0, 30.0))
    phone.monitor.settle()
    assert phone.monitor.ledger.total_mj() > 0
