"""§3.1 degenerate lease terms: zero-length and infinite.

"A lease term can range from zero to infinity. A zero-length term means
every access needs to be checked by the OS. A lease with infinity term
means the OS will not do any check after the resource is granted to the
app, which essentially degrades to the existing ask-use-release model."
"""

import pytest

from repro.apps.buggy.cpu_apps import Torch
from repro.core.lease import LeaseState
from repro.core.policy import LeasePolicy
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def leased_phone(policy):
    mitigation = LeaseOS(policy=policy)
    phone = make_phone(mitigation=mitigation)
    return phone, mitigation.manager


def test_infinite_term_degrades_to_ask_use_release():
    policy = LeasePolicy(initial_term_s=float("inf"),
                         adaptive_enabled=False)
    phone, manager = leased_phone(policy)
    app = phone.install(Torch())
    mark = phone.energy_mark()
    phone.run_for(minutes=20.0)
    lease = manager.leases_for(app.uid)[0]
    # No checks ever ran: term 1 forever, no deferrals, full draw.
    assert lease.term_index == 1
    assert lease.deferral_count == 0
    assert lease.state is LeaseState.ACTIVE
    assert manager.op_counts["update"] == 0
    assert phone.power_since(mark, app.uid) == pytest.approx(
        phone.profile.cpu_awake_idle_mw
    )


def test_tiny_term_checks_continuously_without_wedging():
    policy = LeasePolicy(initial_term_s=0.0, adaptive_enabled=False,
                         escalation_enabled=False)
    phone, manager = leased_phone(policy)
    app = phone.install(Torch())
    phone.run_for(seconds=30.0)
    # The clamp keeps the event loop alive; checks are effectively
    # continuous (many updates in a short window).
    assert manager.op_counts["update"] > 100
    lease = manager.leases_for(app.uid)[0]
    assert isinstance(lease.state, LeaseState)


def test_dump_table_lists_leases():
    phone, manager = leased_phone(LeasePolicy())
    app = phone.install(Torch())
    phone.run_for(seconds=10.0)
    dump = manager.dump_table()
    assert "Torch" in dump
    assert "wakelock" in dump
    phone.kill_app(app.uid)
    assert manager.dump_table() == "lease table: empty"
