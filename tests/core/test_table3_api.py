"""Conformance tests for the paper's Table 3 lease-manager interface.

Table 3 defines: create, check, renew, remove, noteEvent, setUtility,
registerProxy, unregisterProxy. This module pins the whole surface.
"""

import pytest

from repro.apps.buggy.cpu_apps import Torch
from repro.core.utility import UtilityCounter
from repro.droid.resources import ResourceType
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


@pytest.fixture
def stack():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    app = phone.install(Torch())
    phone.run_for(seconds=1.0)
    manager = mitigation.manager
    lease = manager.leases_for(app.uid)[0]
    return phone, manager, app, lease


def test_surface_is_complete(stack):
    __, manager, __, __ = stack
    for method in ("create", "check", "renew", "remove", "note_event",
                   "set_utility", "register_proxy", "unregister_proxy"):
        assert callable(getattr(manager, method)), method


def test_create_returns_lease_with_descriptor(stack):
    __, manager, app, lease = stack
    created = manager.create(lease.rtype, app.uid, lease.record,
                             lease.proxy)
    assert created.descriptor != lease.descriptor
    assert manager.remove(created.descriptor)


def test_check_reports_active_state(stack):
    __, manager, __, lease = stack
    assert manager.check(lease.descriptor) is True
    assert manager.check(424242) is False


def test_note_event_logged_on_lease(stack):
    phone, manager, __, lease = stack
    assert manager.note_event(lease.descriptor, "custom-event")
    assert not manager.note_event(999999, "nope")
    events = lease.events_in(0.0, phone.sim.now + 1.0, "custom-event")
    assert len(events) == 1


def test_acquire_release_events_flow_through_proxy(stack):
    phone, manager, app, lease = stack
    # Torch acquired once at startup.
    acquires = lease.events_in(0.0, phone.sim.now + 1.0, "acquire")
    assert len(acquires) == 1


def test_set_utility_registers_counter(stack):
    __, manager, app, lease = stack

    class Fixed(UtilityCounter):
        def get_score(self):
            return 77.0

    manager.set_utility(app.uid, ResourceType.WAKELOCK, Fixed())
    assert lease.custom_counter is not None
    assert lease.custom_counter.get_score() == 77.0


def test_remove_cleans_table(stack):
    __, manager, __, lease = stack
    assert manager.remove(lease.descriptor)
    assert manager.check(lease.descriptor) is False
    assert not manager.remove(lease.descriptor)  # idempotent-ish: False


def test_register_unregister_proxy(stack):
    __, manager, __, __ = stack

    class DummyProxy:
        pass

    proxy = DummyProxy()
    assert manager.register_proxy(proxy)
    assert manager.unregister_proxy(proxy)
    assert not manager.unregister_proxy(proxy)


def test_wakelock_timeout_variant(stack):
    """The Android acquire(timeout) overload self-releases."""
    phone, manager, app, lease = stack
    from repro.droid.app import App

    polite = phone.install(App(name="polite"), start=False)
    lock = phone.power.new_wakelock(polite, "timed")
    lock.acquire(timeout_s=10.0)
    assert lock.held
    phone.run_for(seconds=11.0)
    assert not lock.held
    assert not lock._record.os_active


def test_listener_proxies_note_release_events(stack):
    phone, manager, app, __ = stack
    registration = phone.location.request_location_updates(
        app, lambda loc: None, interval=5.0
    )
    loc_lease = [l for l in manager.leases_for(app.uid)
                 if l.rtype is ResourceType.GPS][0]
    registration.remove()
    events = loc_lease.events_in(0.0, phone.sim.now + 1.0, "release")
    assert len(events) == 1
