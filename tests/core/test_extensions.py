"""Tests for the §8 extensions: DVFS-aware metrics, dynamic policy,
and the Excessive-Use advisor."""

import pytest

from repro.core.adaptive import DynamicPolicyTuner
from repro.core.eub import ExcessiveUseAdvisor
from repro.core.policy import LeasePolicy
from repro.device.dvfs import DEFAULT_LADDER, DvfsGovernor
from repro.droid.app import App
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


# -- DVFS governor ------------------------------------------------------------

def test_ladder_sorted_and_monotone():
    governor = DvfsGovernor()
    freqs = [l.freq_ghz for l in governor.ladder]
    scales = [l.power_scale for l in governor.ladder]
    assert freqs == sorted(freqs)
    assert scales == sorted(scales)


def test_governor_picks_higher_levels_for_higher_load():
    governor = DvfsGovernor()
    low = governor.level_for_load(0.1)
    high = governor.level_for_load(1.0)
    assert low.freq_ghz < high.freq_ghz
    assert high is governor.ladder[-1]


def test_governor_rejects_bad_input():
    with pytest.raises(ValueError):
        DvfsGovernor(ladder=())
    with pytest.raises(ValueError):
        DvfsGovernor().level_for_load(-0.1)


def test_dvfs_scales_compute_power():
    phone_plain = make_phone()
    phone_dvfs = make_phone(dvfs=DvfsGovernor())

    class Burner(App):
        app_name = "burner"

        def run(self):
            lock = self.ctx.power.new_wakelock(self, "b")
            lock.acquire()
            while True:
                yield from self.compute(5.0, cores=4.0)

    energies = {}
    for label, phone in (("plain", phone_plain), ("dvfs", phone_dvfs)):
        app = phone.install(Burner())
        phone.run_for(seconds=20.0)
        energies[label] = phone.cpu.cpu_energy_mj(app.uid)
    # Full-load DVFS runs at the top operating point (scale 2.4).
    assert energies["dvfs"] > 1.8 * energies["plain"]


def test_dvfs_aware_utilization_reprices_bursts():
    """A bursty app just below the time-utilization threshold is not
    LHB when each burst runs at an expensive operating point."""

    class Burst(App):
        app_name = "burst"

        def run(self):
            lock = self.ctx.power.new_wakelock(self, "burst")
            lock.acquire()
            while True:
                yield from self.compute(0.05, cores=4.0)  # intense blip
                yield self.sleep(0.95)

    def deferrals(dvfs_aware):
        mitigation = LeaseOS(policy=LeasePolicy(dvfs_aware=dvfs_aware))
        phone = make_phone(dvfs=DvfsGovernor(), mitigation=mitigation)
        app = phone.install(Burst())
        phone.run_for(minutes=5.0)
        return sum(l.deferral_count
                   for l in mitigation.manager.leases_for(app.uid))

    # Time-based: 0.05 s * 4 cores / 1 s = 20% -- fine either way; make
    # the margin real by checking the computed utilization directly.
    mitigation = LeaseOS(policy=LeasePolicy(dvfs_aware=True))
    phone = make_phone(dvfs=DvfsGovernor(), mitigation=mitigation)
    app = phone.install(Burst())
    phone.run_for(seconds=30.0)
    lease = mitigation.manager.leases_for(app.uid)[0]
    aware_util = lease.history[-1].metrics.utilization

    mitigation2 = LeaseOS(policy=LeasePolicy(dvfs_aware=False))
    phone2 = make_phone(dvfs=DvfsGovernor(), mitigation=mitigation2)
    app2 = phone2.install(Burst())
    phone2.run_for(seconds=30.0)
    lease2 = mitigation2.manager.leases_for(app2.uid)[0]
    blind_util = lease2.history[-1].metrics.utilization

    # Energy-aware utilization prices the expensive bursts higher.
    assert aware_util > blind_util * 1.5


# -- dynamic policy tuner -----------------------------------------------------------


class TurnsBad(App):
    """Healthy for a configurable time, then an idle holder."""

    app_name = "turnsbad"

    def __init__(self, healthy_s):
        super().__init__()
        self.healthy_s = healthy_s

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "tb")
        lock.acquire()
        end = self.ctx.sim.now + self.healthy_s
        while self.ctx.sim.now < end:
            yield from self.compute(0.5)
            yield self.sleep(0.5)
        while True:
            yield self.sleep(600.0)


def _first_deferral_interval(healthy_s, with_tuner):
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    if with_tuner:
        DynamicPolicyTuner().attach(mitigation.manager)
    app = phone.install(TurnsBad(healthy_s))
    phone.run_for(minutes=12.0)
    lease = mitigation.manager.leases_for(app.uid)[0]
    assert lease.deferral_count >= 1
    # Reconstruct the first deferral length from the decision log: time
    # between the first defer decision and the next decision.
    defers = [d for d in mitigation.manager.decisions
              if d.lease is lease and d.action == "defer"]
    first = defers[0].time
    later = [d.time for d in mitigation.manager.decisions
             if d.lease is lease and d.time > first]
    assert later
    return later[0] - first


def test_reputable_app_gets_gentler_first_deferral():
    baseline = _first_deferral_interval(120.0, with_tuner=False)
    tuned = _first_deferral_interval(120.0, with_tuner=True)
    assert tuned < baseline * 0.8


def test_reputation_tracks_behavior():
    tuner = DynamicPolicyTuner()
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    tuner.attach(mitigation.manager)
    app = phone.install(TurnsBad(0.0))  # misbehaves from the start
    phone.run_for(minutes=10.0)
    assert tuner.reputation(app.uid) < 0.5


# -- EUB advisor --------------------------------------------------------------------


class HeavyGame(App):
    """Full-tilt but useful: the canonical Excessive-Use app."""

    app_name = "AngryBirdsUltra"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "game")
        lock.acquire()
        while True:
            yield from self.compute(0.9)
            self.post_ui_update()
            yield self.sleep(0.1)


def test_eub_advisor_reports_heavy_useful_apps():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    advisor = ExcessiveUseAdvisor(phone).attach(mitigation.manager)
    game = phone.install(HeavyGame())
    phone.run_for(minutes=5.0)
    report = advisor.report()
    assert report
    assert report[0].uid == game.uid
    assert report[0].eub_terms >= 3
    assert report[0].estimated_mw > 100.0
    # EUB is surfaced, never mitigated: no deferrals happened.
    assert all(l.deferral_count == 0
               for l in mitigation.manager.leases_for(game.uid))
    assert "AngryBirdsUltra" in advisor.render()


def test_eub_advisor_silent_without_eub():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    advisor = ExcessiveUseAdvisor(phone).attach(mitigation.manager)
    phone.run_for(minutes=2.0)
    assert advisor.report() == []
    assert "No apps" in advisor.render()


def test_eub_entry_mah_framing():
    from repro.core.eub import EubEntry

    entry = EubEntry(uid=1, app_name="g", eub_terms=2, eub_seconds=10.0,
                     estimated_mw=385.0)
    assert entry.estimated_mah_per_hour() == pytest.approx(100.0)
    assert entry.estimated_mah_per_hour(voltage=7.7) == pytest.approx(50.0)
