"""Integration-flavoured tests for the lease manager and proxies."""

import pytest

from repro.core.behavior import BehaviorType
from repro.core.lease import LeaseState
from repro.core.policy import LeasePolicy
from repro.core.utility import UtilityCounter
from repro.droid.app import App
from repro.droid.resources import ResourceType
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


class IdleHolder(App):
    """Acquires a wakelock and does nothing: textbook LHB."""

    app_name = "idle-holder"

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "hold")
        self.lock.acquire()
        while True:
            yield self.sleep(300.0)


class BusyHolder(App):
    """Acquires a wakelock and uses the CPU well: normal."""

    app_name = "busy-holder"

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "work")
        self.lock.acquire()
        while True:
            yield from self.compute(0.5)
            yield self.sleep(0.5)


class PoliteApp(App):
    """Acquires, works briefly, releases -- re-acquiring on an alarm
    (the device deep-sleeps between rounds, like a real sync service)."""

    app_name = "polite"

    def on_start(self):
        self.lock = self.ctx.power.new_wakelock(self, "polite")
        self.ctx.alarms.set_repeating(self.uid, 40.0, self._alarm)
        self.spawn(self._work_once())

    def _alarm(self):
        self.spawn(self._work_once())

    def _work_once(self):
        self.lock.acquire()
        yield from self.compute(1.0)
        self.lock.release()


def leased_phone(policy=None, **kwargs):
    mitigation = LeaseOS(policy=policy)
    phone = make_phone(mitigation=mitigation, **kwargs)
    return phone, mitigation.manager


def test_lease_created_on_first_access():
    phone, manager = leased_phone()
    app = phone.install(IdleHolder())
    phone.run_for(seconds=1.0)
    leases = manager.leases_for(app.uid)
    assert len(leases) == 1
    assert leases[0].rtype is ResourceType.WAKELOCK
    assert leases[0].state is LeaseState.ACTIVE


def test_idle_holder_gets_deferred_and_restored():
    phone, manager = leased_phone()
    app = phone.install(IdleHolder())
    phone.run_for(seconds=6.0)  # first 5 s term ended
    lease = manager.leases_for(app.uid)[0]
    assert lease.state is LeaseState.DEFERRED
    assert not app.lock._record.os_active
    assert app.lock.held  # app-oblivious
    phone.run_for(seconds=25.0)  # deferral over
    assert lease.state is LeaseState.ACTIVE
    assert app.lock._record.os_active


def test_busy_holder_keeps_renewing():
    phone, manager = leased_phone()
    app = phone.install(BusyHolder())
    phone.run_for(minutes=3.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.deferral_count == 0
    assert lease.term_index > 3
    assert all(
        d.behavior in (BehaviorType.NORMAL, BehaviorType.EUB)
        for d in manager.decisions if d.lease is lease
    )


def test_adaptive_terms_grow_for_normal_apps():
    phone, manager = leased_phone()
    app = phone.install(BusyHolder())
    phone.run_for(minutes=3.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.term_length == 60.0  # grew after 12 normal terms


def test_released_lease_goes_inactive_then_renews_on_reacquire():
    phone, manager = leased_phone()
    app = phone.install(PoliteApp())
    phone.run_for(seconds=10.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.state is LeaseState.INACTIVE
    phone.run_for(seconds=60.0)  # next acquire happened
    assert lease.state in (LeaseState.ACTIVE, LeaseState.INACTIVE)
    assert lease.renew_count >= 1
    assert lease.deferral_count == 0


def test_reacquire_during_deferral_pretends_success():
    phone, manager = leased_phone()
    app = phone.install(IdleHolder())
    phone.run_for(seconds=6.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.state is LeaseState.DEFERRED
    # The app releases and re-acquires during tau: acquire IPC pretends.
    app.lock.release()
    app.lock.acquire()
    assert app.lock.held
    assert not app.lock._record.os_active
    assert lease.state is LeaseState.DEFERRED


def test_deferral_escalates_with_persistent_misbehavior():
    phone, manager = leased_phone()
    app = phone.install(IdleHolder())
    phone.run_for(minutes=10.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.deferral_count >= 3
    assert lease.misbehavior_streak >= 3
    record = app.lock._record
    record.settle()
    # With escalation, honoured time collapses well below the fixed-tau
    # 1/(1+lambda) = 1/6 bound.
    assert record.active_time < 600.0 / 6.0


def test_dead_kernel_object_removes_lease():
    phone, manager = leased_phone()
    app = phone.install(IdleHolder())
    phone.run_for(seconds=2.0)
    assert len(manager.leases_for(app.uid)) == 1
    phone.kill_app(app.uid)
    assert manager.leases_for(app.uid) == []


def test_check_api_counts_ops():
    phone, manager = leased_phone()
    app = phone.install(IdleHolder())
    phone.run_for(seconds=1.0)
    lease = manager.leases_for(app.uid)[0]
    assert manager.check(lease.descriptor)
    assert not manager.check(999999)
    assert manager.op_counts["check_accept"] >= 1
    assert manager.op_counts["check_reject"] >= 1


def test_lease_update_energy_accounted():
    phone, manager = leased_phone()
    phone.install(IdleHolder())
    phone.run_for(minutes=2.0)
    lease_energy = phone.monitor.ledger.rail_total_mj("lease_mgmt")
    assert lease_energy > 0.0
    # ... but tiny compared with everything else (paper: <1%).
    assert lease_energy < 0.01 * phone.monitor.ledger.total_mj()


class _FixedCounter(UtilityCounter):
    def __init__(self, score):
        self.score = score

    def get_score(self):
        return self.score


def test_custom_counter_attached_to_existing_and_future_leases():
    phone, manager = leased_phone()
    app = phone.install(BusyHolder())
    phone.run_for(seconds=1.0)
    counter = _FixedCounter(88.0)
    manager.set_utility(app.uid, ResourceType.WAKELOCK, counter)
    phone.run_for(seconds=6.0)
    lease = manager.leases_for(app.uid)[0]
    last = lease.history[-1]
    assert last.metrics.custom_utility == 88.0


def test_unregister_proxy():
    phone, manager = leased_phone()
    proxy = manager.proxies[0]
    assert manager.unregister_proxy(proxy)
    assert not manager.unregister_proxy(proxy)


def test_gc_sweeps_long_idle_inactive_leases():
    from repro.core.policy import LeasePolicy

    policy = LeasePolicy(gc_idle_s=600.0, gc_sweep_interval_s=60.0)
    phone, manager = leased_phone(policy=policy)
    app = phone.install(IdleHolder())
    phone.run_for(seconds=6.0)
    app.lock.release()  # lease parks INACTIVE
    phone.run_for(minutes=15.0)
    assert manager.gc_removed >= 1
    assert manager.leases_for(app.uid) == []
    # A re-acquire transparently gets a fresh lease.
    app.lock.acquire()
    phone.run_for(seconds=1.0)
    leases = manager.leases_for(app.uid)
    assert len(leases) == 1
    assert leases[0].active


def test_gc_never_touches_held_leases():
    from repro.core.policy import LeasePolicy

    policy = LeasePolicy(gc_idle_s=60.0, gc_sweep_interval_s=30.0)
    phone, manager = leased_phone(policy=policy)
    app = phone.install(BusyHolder())
    phone.run_for(minutes=10.0)
    assert manager.gc_removed == 0
    assert len(manager.leases_for(app.uid)) == 1
