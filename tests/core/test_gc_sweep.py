"""``sweep_expired``: one sweep routine for the GC timer and callers."""

from repro.core.policy import LeasePolicy
from repro.droid.app import App
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


class OneShot(App):
    """Works once, releases, then idles forever: GC bait."""

    app_name = "one-shot"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "once")
        lock.acquire()
        yield from self.compute(1.0)
        lock.release()
        while True:
            yield self.sleep(1000.0)


def _idle_phone(gc_sweep_interval_s):
    policy = LeasePolicy(gc_idle_s=100.0,
                         gc_sweep_interval_s=gc_sweep_interval_s)
    mitigation = LeaseOS(policy=policy)
    phone = make_phone(mitigation=mitigation)
    phone.install(OneShot())
    return phone, mitigation.manager


def test_explicit_sweep_matches_the_periodic_timer_exactly():
    timed_phone, timed = _idle_phone(gc_sweep_interval_s=120.0)
    timed_phone.run_for(seconds=600.0)

    manual_phone, manual = _idle_phone(gc_sweep_interval_s=0.0)
    manual_phone.run_for(seconds=600.0)
    assert len(manual.leases) == 1  # timer off: nothing collected yet
    removed = manual.sweep_expired()

    assert removed == 1
    assert timed.gc_removed == manual.gc_removed == 1
    assert len(timed.leases) == len(manual.leases) == 0


def test_sweep_expired_spares_busy_and_young_leases():
    phone, manager = _idle_phone(gc_sweep_interval_s=0.0)
    phone.run_for(seconds=50.0)  # released, but not idle long enough
    assert manager.sweep_expired() == 0
    assert len(manager.leases) == 1


def test_sweep_expired_accepts_an_external_clock():
    phone, manager = _idle_phone(gc_sweep_interval_s=0.0)
    phone.run_for(seconds=50.0)
    # An external sweeper (the service cadence) evaluates idleness at
    # its own time without advancing the simulation.
    assert manager.sweep_expired(now=phone.sim.now + 200.0) == 1
    assert manager.gc_removed == 1
