"""Failure-injection tests: deaths, races, and odd orderings must not
wedge the lease machinery."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.apps.buggy.cpu_apps import Torch
from repro.core.behavior import BehaviorType, classify_term
from repro.core.lease import LeaseState
from repro.core.policy import LeasePolicy
from repro.core.stats import UtilityMetrics
from repro.droid.app import App
from repro.droid.resources import ResourceType
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def leased_phone(**kwargs):
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation, **kwargs)
    return phone, mitigation.manager


def test_app_killed_mid_deferral_cleans_up():
    phone, manager = leased_phone()
    app = phone.install(Torch())
    phone.run_for(seconds=6.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.state is LeaseState.DEFERRED
    phone.kill_app(app.uid)
    assert manager.leases_for(app.uid) == []
    # The pending deferral/term timers must not fire on the dead lease.
    phone.run_for(minutes=5.0)  # would blow up on a stale callback


def test_release_during_deferral_then_term_end():
    phone, manager = leased_phone()
    app = phone.install(Torch())
    phone.run_for(seconds=6.0)
    lease = manager.leases_for(app.uid)[0]
    assert lease.state is LeaseState.DEFERRED
    app.lock.release()
    phone.run_for(minutes=2.0)
    # Restored-then-checked: nothing held, so the lease parks INACTIVE.
    assert lease.state is LeaseState.INACTIVE
    assert not app.lock._record.os_active


def test_reacquire_after_deferral_and_release():
    phone, manager = leased_phone()
    app = phone.install(Torch())
    phone.run_for(seconds=6.0)
    app.lock.release()
    phone.run_for(minutes=2.0)
    lease = manager.leases_for(app.uid)[0]
    app.lock.acquire()  # renewal check through the gate
    assert lease.state is LeaseState.ACTIVE
    assert app.lock._record.os_active


def test_renew_on_removed_lease_is_false():
    phone, manager = leased_phone()
    app = phone.install(Torch())
    phone.run_for(seconds=2.0)
    lease = manager.leases_for(app.uid)[0]
    descriptor = lease.descriptor
    manager.remove(descriptor)
    assert manager.renew(descriptor) is False
    assert manager.check(descriptor) is False


def test_double_kill_app_is_safe():
    phone, manager = leased_phone()
    app = phone.install(Torch())
    phone.run_for(seconds=2.0)
    phone.kill_app(app.uid)
    phone.power.kill_app_locks(app.uid)  # again, directly
    phone.run_for(minutes=1.0)


def test_uninstalled_uid_missing_app_signals():
    """A lease for an app the Phone no longer knows about must still be
    collectible (app fields default to zero)."""
    phone, manager = leased_phone()
    app = phone.install(Torch())
    phone.run_for(seconds=2.0)
    lease = manager.leases_for(app.uid)[0]
    del phone.apps[app.uid]  # simulate a racey uninstall
    metrics = manager._collect(lease)
    assert metrics.ui_updates == 0
    assert 0.0 <= metrics.utility_score <= 100.0


class SelfReleasingApp(App):
    """Acquires with the timeout overload only."""

    app_name = "timeouts"

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "t")
        while True:
            self.lock.acquire(timeout_s=3.0)
            yield from self.compute(1.0)
            yield self.sleep(20.0)


def test_timeout_locks_never_misjudged():
    phone, manager = leased_phone()
    app = phone.install(SelfReleasingApp())
    phone.run_for(minutes=5.0)
    deferrals = sum(l.deferral_count for l in manager.leases_for(app.uid))
    assert deferrals == 0


# -- classifier totality -------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(
    rtype=st.sampled_from(list(ResourceType)),
    held_time=st.floats(min_value=0.0, max_value=600.0),
    active_time=st.floats(min_value=0.0, max_value=600.0),
    ask_time=st.floats(min_value=0.0, max_value=600.0),
    ask_window=st.floats(min_value=0.0, max_value=1800.0),
    success=st.floats(min_value=0.0, max_value=1.0),
    utilization=st.floats(min_value=0.0, max_value=5.0),
    score=st.floats(min_value=0.0, max_value=100.0),
    completed=st.integers(min_value=0, max_value=500),
)
def test_classifier_is_total(rtype, held_time, active_time, ask_time,
                             ask_window, success, utilization, score,
                             completed):
    metrics = UtilityMetrics(
        held=True, held_time=held_time, active_time=active_time,
        ask_time=ask_time, ask_window_time=ask_window,
        success_ratio=success, utilization=utilization,
        utility_score=score, completed_terms=completed,
    )
    result = classify_term(rtype, metrics, LeasePolicy())
    assert isinstance(result, BehaviorType)
    if rtype is not ResourceType.GPS:
        assert result is not BehaviorType.FAB  # Table 1
