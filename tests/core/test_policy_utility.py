"""Tests for the lease policy and utility scoring."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.policy import LeasePolicy, waste_reduction_ratio
from repro.core.utility import (
    UtilityCounter,
    clamp_score,
    combine_utility,
    generic_utility,
)
from repro.droid.resources import ResourceType


# -- policy ---------------------------------------------------------------

def test_paper_defaults():
    policy = LeasePolicy()
    assert policy.initial_term_s == 5.0
    assert policy.deferral_s == 25.0
    assert policy.lam == pytest.approx(5.0)


def test_adaptive_term_growth_steps():
    policy = LeasePolicy()
    assert policy.next_term_length(0) == 5.0
    assert policy.next_term_length(11) == 5.0
    assert policy.next_term_length(12) == 60.0
    assert policy.next_term_length(119) == 60.0
    assert policy.next_term_length(120) == 300.0


def test_adaptive_disabled_pins_initial_term():
    policy = LeasePolicy(adaptive_enabled=False)
    assert policy.next_term_length(1000) == 5.0


def test_deferral_escalation_doubles_and_caps():
    policy = LeasePolicy()
    assert policy.deferral_for(1) == 25.0
    assert policy.deferral_for(2) == 50.0
    assert policy.deferral_for(3) == 100.0
    assert policy.deferral_for(10) == policy.deferral_max_s


def test_deferral_escalation_disabled():
    policy = LeasePolicy(escalation_enabled=False)
    assert policy.deferral_for(10) == 25.0


def test_waste_reduction_closed_form():
    assert waste_reduction_ratio(0) == 0.0
    assert waste_reduction_ratio(1) == pytest.approx(0.5)
    assert waste_reduction_ratio(5) == pytest.approx(5.0 / 6.0)
    with pytest.raises(ValueError):
        waste_reduction_ratio(-1)


@settings(max_examples=50, deadline=None)
@given(lam=st.floats(min_value=0.0, max_value=100.0))
def test_waste_reduction_monotone_and_bounded(lam):
    r = waste_reduction_ratio(lam)
    assert 0.0 <= r < 1.0
    assert waste_reduction_ratio(lam + 1.0) > r


# -- generic utility ----------------------------------------------------------

def test_neutral_base_for_wakelock():
    assert generic_utility(ResourceType.WAKELOCK, 60.0) == 50.0


def test_exceptions_tank_the_score():
    score = generic_utility(ResourceType.WAKELOCK, 5.0, exceptions=4)
    assert score == 0.0


def test_exception_rate_normalized_by_duration():
    # One exception in 5 minutes is a hiccup, not misbehaviour.
    score = generic_utility(ResourceType.WAKELOCK, 300.0, exceptions=1)
    assert score > 45.0


def test_ui_and_interaction_credits():
    score = generic_utility(ResourceType.WAKELOCK, 60.0, ui_updates=2,
                            interactions=1)
    assert score == pytest.approx(50.0 + 20.0 + 15.0)


def test_gps_distance_drives_base():
    stationary = generic_utility(ResourceType.GPS, 60.0, distance_m=0.0)
    walking = generic_utility(ResourceType.GPS, 60.0, distance_m=84.0)
    assert stationary == 0.0
    assert walking == pytest.approx(70.0)


def test_sensor_base_low_without_visible_value():
    assert generic_utility(ResourceType.SENSOR, 60.0) == 10.0
    busy = generic_utility(ResourceType.SENSOR, 60.0, data_writes=8)
    assert busy > 70.0


def test_scores_always_clamped():
    huge = generic_utility(ResourceType.WAKELOCK, 1.0, ui_updates=1000)
    assert huge == 100.0
    assert clamp_score(-5) == 0.0
    assert clamp_score(105) == 100.0


@settings(max_examples=60, deadline=None)
@given(
    duration=st.floats(min_value=0.5, max_value=600.0),
    ui=st.integers(min_value=0, max_value=50),
    inter=st.integers(min_value=0, max_value=50),
    exc=st.integers(min_value=0, max_value=50),
    writes=st.integers(min_value=0, max_value=50),
    distance=st.floats(min_value=0.0, max_value=1000.0),
    rtype=st.sampled_from(list(ResourceType)),
)
def test_generic_utility_bounded_property(duration, ui, inter, exc,
                                          writes, distance, rtype):
    score = generic_utility(rtype, duration, ui_updates=ui,
                            interactions=inter, exceptions=exc,
                            data_writes=writes, distance_m=distance)
    assert 0.0 <= score <= 100.0


# -- custom utility guard ---------------------------------------------------------

def test_combine_honours_custom_above_floor():
    assert combine_utility(50.0, 90.0, floor=20.0) == 90.0
    assert combine_utility(50.0, 10.0, floor=20.0) == 10.0  # self-report low


def test_combine_ignores_custom_below_floor():
    assert combine_utility(5.0, 100.0, floor=20.0) == 5.0


def test_combine_without_custom_returns_generic():
    assert combine_utility(42.0, None, floor=20.0) == 42.0


def test_utility_counter_is_abstract():
    with pytest.raises(NotImplementedError):
        UtilityCounter().get_score()
