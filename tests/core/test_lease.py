"""Tests for the lease abstraction and the Fig. 5 state machine."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.lease import Lease, LeaseState, LeaseTransitionError
from repro.droid.resources import ResourceType


def make_lease():
    return Lease(uid=10001, rtype=ResourceType.WAKELOCK, record=None,
                 proxy=None, created_at=0.0)


def test_new_lease_is_active_with_unique_descriptor():
    a, b = make_lease(), make_lease()
    assert a.state is LeaseState.ACTIVE
    assert a.descriptor != b.descriptor
    assert a.active
    assert not a.dead


def test_legal_transitions():
    lease = make_lease()
    lease.transition(LeaseState.DEFERRED)
    lease.transition(LeaseState.ACTIVE)
    lease.transition(LeaseState.INACTIVE)
    lease.transition(LeaseState.ACTIVE)
    lease.transition(LeaseState.DEAD)
    assert lease.dead


def test_illegal_transitions_rejected():
    lease = make_lease()
    lease.transition(LeaseState.DEFERRED)
    with pytest.raises(LeaseTransitionError):
        lease.transition(LeaseState.INACTIVE)  # deferred -> inactive
    lease.transition(LeaseState.ACTIVE)
    lease.transition(LeaseState.INACTIVE)
    with pytest.raises(LeaseTransitionError):
        lease.transition(LeaseState.DEFERRED)  # inactive -> deferred


def test_dead_is_terminal():
    lease = make_lease()
    lease.transition(LeaseState.DEAD)
    with pytest.raises(LeaseTransitionError):
        lease.transition(LeaseState.ACTIVE)


def test_any_state_may_die():
    for intermediate in (LeaseState.DEFERRED, LeaseState.INACTIVE):
        lease = make_lease()
        lease.transition(intermediate)
        lease.transition(LeaseState.DEAD)
        assert lease.dead


def test_history_is_bounded():
    lease = Lease(uid=1, rtype=ResourceType.GPS, record=None, proxy=None,
                  created_at=0.0, history_size=4)
    for index in range(10):
        lease.record_term(index)
    assert list(lease.history) == [6, 7, 8, 9]
    assert lease.recent_terms(2) == [8, 9]
    assert lease.recent_terms(100) == [6, 7, 8, 9]
    assert lease.recent_terms(0) == []


_STATE_STRATEGY = st.lists(
    st.sampled_from([LeaseState.ACTIVE, LeaseState.DEFERRED,
                     LeaseState.INACTIVE, LeaseState.DEAD]),
    max_size=12,
)


@settings(max_examples=200, deadline=None)
@given(sequence=_STATE_STRATEGY)
def test_state_machine_never_leaves_dead_and_rejects_cleanly(sequence):
    """Property: arbitrary transition attempts either succeed per Fig. 5
    or raise, and the lease state always remains a valid enum member;
    once DEAD, everything raises."""
    lease = make_lease()
    for target in sequence:
        was_dead = lease.dead
        try:
            lease.transition(target)
        except LeaseTransitionError:
            assert was_dead or (lease.state, target) not in {
                (LeaseState.ACTIVE, LeaseState.ACTIVE),
                (LeaseState.ACTIVE, LeaseState.DEFERRED),
                (LeaseState.ACTIVE, LeaseState.INACTIVE),
                (LeaseState.DEFERRED, LeaseState.ACTIVE),
                (LeaseState.INACTIVE, LeaseState.ACTIVE),
            }
        if was_dead:
            assert lease.dead
        assert isinstance(lease.state, LeaseState)
