"""Golden-output tests: deterministic artifacts rendered verbatim.

Everything here is seed- and float-deterministic, so the rendered text
must be byte-stable across runs and platforms. If one of these fails
after an intentional change, re-bless by updating the expected strings.
"""

from repro.core.policy import waste_reduction_ratio
from repro.experiments.runner import format_table
from repro.experiments.study_tables import render_table1


def test_golden_table1():
    expected = (
        "Table 1: energy misbehaviour applicability per resource "
        "(yes* = different semantic)\n"
        "Resource                         FAB  LHB   LUB  EUB  Normal\n"
        "-------------------------------  ---  ----  ---  ---  ------\n"
        "CPU, Screen, Wi-Fi radio, Audio  no   yes   yes  yes  yes   \n"
        "GPS                              yes  yes*  yes  yes  yes   \n"
        "Sensors, Bluetooth               no   yes*  yes  yes  yes   "
    )
    assert render_table1() == expected


def test_golden_format_table():
    expected = (
        "a    bee \n"
        "---  ----\n"
        "1    2.50\n"
        "xyz  4.00"
    )
    assert format_table(["a", "bee"], [[1, 2.5], ["xyz", 4.0]]) == expected


def test_golden_closed_form_values():
    assert "{:.6f}".format(waste_reduction_ratio(1)) == "0.500000"
    assert "{:.6f}".format(waste_reduction_ratio(5)) == "0.833333"


def test_golden_study_counts_stable():
    from repro.study.cases import CASES

    fingerprint = ",".join(
        "{}:{}:{}".format(c.case_id, c.behavior.value if c.behavior
                          else "na", c.root_cause.value)
        for c in CASES[:5]
    )
    assert fingerprint == (
        "1:low-utility:bug,2:long-holding:bug,3:frequent-ask:bug,"
        "4:long-holding:bug,5:long-holding:bug"
    )
