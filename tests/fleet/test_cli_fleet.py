"""The `repro fleet` subcommand and the CLI exit-code audit."""

import io
import json
import os

from contextlib import redirect_stdout

from repro.cli import main


def _run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def _fleet_argv(tmp_path, extra=()):
    return [
        "fleet", "--devices", "4", "--shard-size", "2", "--minutes", "2",
        "--seed", "5", "--no-cache",
        "--checkpoint-dir", str(tmp_path / "ck"),
        "--report-json", str(tmp_path / "fleet.json"),
    ] + list(extra)


def test_fleet_cli_end_to_end(tmp_path):
    code, text = _run_cli(_fleet_argv(tmp_path))
    assert code == 0
    assert "Fleet comparison: 4 devices" in text
    report = json.loads((tmp_path / "fleet.json").read_text())
    assert report["kind"] == "fleet_report"
    assert report["devices"] == 4
    assert set(report["mitigations"]) == {"vanilla", "leaseos"}


def test_fleet_cli_max_shards_then_resume(tmp_path):
    code, text = _run_cli(_fleet_argv(tmp_path, ["--max-shards", "1"]))
    assert code == 0
    assert "still pending" in text
    assert not (tmp_path / "fleet.json").exists()
    code, text = _run_cli(_fleet_argv(tmp_path))
    assert code == 0
    assert "Fleet comparison" in text
    assert (tmp_path / "fleet.json").exists()


def test_chaos_replay_exit_nonzero_on_fingerprint_mismatch(tmp_path):
    from repro.faults.bundle import write_bundle
    from repro.faults.plan import FaultPlan

    kwargs = dict(case_key="torch", mitigation="vanilla", minutes=1.0,
                  seed=7, plan_json=FaultPlan.sample(1, 60.0).to_json())
    # A bundle whose recorded fingerprint cannot match: replay must
    # report the drift AND exit non-zero so CI can gate on it.
    fake = {"violations": [], "fingerprint": "0" * 64}
    path = write_bundle(str(tmp_path), kwargs, fake)
    code, text = _run_cli(["chaos", "--replay", path])
    assert code == 1
    assert "DIFFERS" in text


def test_chaos_replay_exit_zero_on_clean_match(tmp_path):
    from repro.experiments.chaos import run_chaos_case
    from repro.faults.bundle import write_bundle
    from repro.faults.plan import FaultPlan

    kwargs = dict(case_key="torch", mitigation="vanilla", minutes=1.0,
                  seed=7, plan_json=FaultPlan.sample(1, 60.0).to_json())
    result = run_chaos_case(**kwargs)
    assert not result["violations"]
    path = write_bundle(str(tmp_path), kwargs, result)
    code, text = _run_cli(["chaos", "--replay", path])
    assert code == 0
    assert "matches the original run" in text


def test_fleet_cli_fast_path_end_to_end(tmp_path):
    code, text = _run_cli(_fleet_argv(tmp_path, ["--fast-path"]))
    assert code == 0
    assert "Fleet comparison: 4 devices" in text
    assert "execution: fast path" in text
    report = json.loads((tmp_path / "fleet.json").read_text())
    execution = report["execution"]
    assert execution["mode"] == "fast"
    assert execution["requested_mode"] == "fast"
    assert len(execution["table_fingerprint"]) == 64


def test_fleet_cli_cross_validation_block_and_exit_code(tmp_path):
    code, text = _run_cli(_fleet_argv(
        tmp_path, ["--fast-path", "--cross-validate", "2"]))
    report = json.loads((tmp_path / "fleet.json").read_text())
    validation = report["execution"]["cross_validation"]
    assert validation["kind"] == "fastpath_cross_validation"
    assert validation["n"] == 2
    assert "tolerances" in validation and "metrics" in validation
    # The exit code gates on the verdict, so CI can trust a green run.
    assert code == (0 if validation["pass"] else 1)
    assert "cross-validation" in text


def test_fleet_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["fleet"])
    assert args.devices == 200
    assert args.shard_size == 50
    assert args.mitigations == "vanilla,leaseos"
    assert args.max_shards is None
    assert args.minutes == 15.0
    assert args.mode == "kernel"
    assert args.cross_validate == 0
    fast = build_parser().parse_args(["fleet", "--fast-path"])
    assert fast.mode == "fast"


def test_fleet_excluded_from_all():
    from repro.cli import EXCLUDE_FROM_ALL

    assert "fleet" in EXCLUDE_FROM_ALL


def test_fleet_checkpoints_land_under_results_by_default(tmp_path,
                                                         monkeypatch):
    from repro.fleet.population import PopulationSpec
    from repro.fleet.shard import FleetRunner

    monkeypatch.chdir(tmp_path)
    population = PopulationSpec(seed=1, devices=4, shard_size=2)
    runner = FleetRunner(population)
    expected = os.path.join("results", ".fleet",
                            population.fingerprint()[:12])
    assert runner.checkpoint_dir == expected
