"""Population sampling: determinism, independence, serialisation."""

import json

import pytest

from repro.fleet.population import (
    BUGGY_POOL,
    NORMAL_ARCHETYPES,
    PopulationSpec,
    normal_app_factory,
)


def test_same_seed_same_population_json():
    a = PopulationSpec(seed=42, devices=100)
    b = PopulationSpec(seed=42, devices=100)
    assert a.to_json() == b.to_json()
    assert a.fingerprint() == b.fingerprint()


def test_same_seed_identical_devices_and_sub_seeds():
    a = PopulationSpec(seed=42, devices=50, chaos_rate=0.3)
    b = PopulationSpec(seed=42, devices=50, chaos_rate=0.3)
    for index in range(50):
        assert a.sub_seed(index) == b.sub_seed(index)
        assert a.device(index) == b.device(index)


def test_different_indices_independent_streams():
    spec = PopulationSpec(seed=7, devices=200)
    sub_seeds = [spec.sub_seed(i) for i in range(200)]
    assert len(set(sub_seeds)) == 200, "sub-seed collision"
    # The sampled configurations actually vary across the population.
    devices = [spec.device(i) for i in range(40)]
    assert len({d.profile for d in devices}) > 1
    assert len({d.normal_apps for d in devices}) > 1
    assert len({d.touch_interval_s for d in devices}) > 1


def test_different_seed_different_fingerprint_and_devices():
    a = PopulationSpec(seed=1, devices=30)
    b = PopulationSpec(seed=2, devices=30)
    assert a.fingerprint() != b.fingerprint()
    assert any(a.device(i) != b.device(i) for i in range(30))


def test_json_roundtrip_preserves_spec():
    spec = PopulationSpec(seed=9, devices=77, shard_size=10,
                          mitigations=("vanilla", "leaseos", "doze"),
                          buggy_prevalence=0.4, chaos_rate=0.1)
    again = PopulationSpec.from_json(spec.to_json())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    # Canonical form: key-sorted and compact.
    payload = json.loads(spec.to_json())
    assert list(payload) == sorted(payload)


def test_vanilla_always_included_first():
    spec = PopulationSpec(seed=1, devices=10, mitigations=("leaseos",))
    assert spec.mitigations[0] == "vanilla"
    assert "leaseos" in spec.mitigations


def test_shard_ranges_partition_population():
    spec = PopulationSpec(seed=1, devices=103, shard_size=25)
    assert spec.shard_count == 5
    covered = []
    for shard in range(spec.shard_count):
        start, stop = spec.shard_range(shard)
        covered.extend(range(start, stop))
    assert covered == list(range(103))
    with pytest.raises(IndexError):
        spec.shard_range(5)


def test_device_index_bounds():
    spec = PopulationSpec(seed=1, devices=5)
    with pytest.raises(IndexError):
        spec.device(5)
    with pytest.raises(IndexError):
        spec.device(-1)


def test_chaos_rate_arms_some_devices_deterministically():
    spec = PopulationSpec(seed=13, devices=60, chaos_rate=0.5)
    armed = [i for i in range(60) if spec.device(i).fault_plan_json]
    assert armed, "chaos_rate=0.5 should arm some devices"
    assert len(armed) < 60, "chaos_rate=0.5 should spare some devices"
    again = [i for i in range(60)
             if spec.device(i).fault_plan_json]
    assert armed == again


def test_every_archetype_buildable():
    for name in NORMAL_ARCHETYPES:
        app = normal_app_factory(name)
        assert app.name


def test_buggy_pool_is_full_table5():
    from repro.apps.buggy import CASES_BY_KEY

    assert BUGGY_POOL == tuple(sorted(CASES_BY_KEY))


def test_app_mix_respects_prevalence_extremes():
    none = PopulationSpec(seed=3, devices=20, buggy_prevalence=0.0)
    assert all(not none.device(i).buggy_apps for i in range(20))
    allbugs = PopulationSpec(seed=3, devices=20, buggy_prevalence=1.0)
    assert all(not allbugs.device(i).normal_apps for i in range(20))
    assert all(allbugs.device(i).buggy_apps for i in range(20))
