"""Mergeable statistics: exactness, commutativity, serialisation."""

import json
import random
import statistics

import pytest

from repro.fleet.stats import (
    FleetStats,
    Histogram,
    MetricSummary,
    Moments,
    QuantileDigest,
    wilson_interval,
)


def _serialised(obj):
    return json.dumps(obj.to_dict(), sort_keys=True)


# -- Moments ------------------------------------------------------------------

def test_moments_match_statistics_module():
    values = [random.Random(1).gauss(10.0, 3.0) for __ in range(500)]
    m = Moments()
    for v in values:
        m.add(v)
    assert m.count == 500
    assert m.mean == pytest.approx(statistics.fmean(values), rel=1e-12)
    assert m.variance == pytest.approx(statistics.pvariance(values),
                                       rel=1e-9)
    assert m.min == min(values) and m.max == max(values)


def test_moments_merge_bitwise_commutative():
    rng = random.Random(2)
    a, b = Moments(), Moments()
    for __ in range(313):
        a.add(rng.uniform(-5, 50))
    for __ in range(178):
        b.add(rng.gauss(100, 7))
    assert _serialised(a.merge(b)) == _serialised(b.merge(a))


def test_moments_merge_matches_sequential_statistically():
    rng = random.Random(3)
    values = [rng.gauss(0, 1) for __ in range(400)]
    whole = Moments()
    for v in values:
        whole.add(v)
    left, right = Moments(), Moments()
    for v in values[:170]:
        left.add(v)
    for v in values[170:]:
        right.add(v)
    merged = left.merge(right)
    assert merged.count == whole.count
    assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
    assert merged.m2 == pytest.approx(whole.m2, rel=1e-9)


def test_moments_merge_empty_identity():
    m = Moments()
    m.add(4.0)
    m.add(8.0)
    assert _serialised(Moments().merge(m)) == _serialised(m)
    assert _serialised(m.merge(Moments())) == _serialised(m)
    assert Moments().merge(Moments()).count == 0


def test_moments_json_roundtrip_bit_for_bit():
    m = Moments()
    for v in (0.1, 0.2, 0.3, 1e-17, 1e17):
        m.add(v)
    again = Moments.from_dict(json.loads(json.dumps(m.to_dict())))
    assert _serialised(again) == _serialised(m)


# -- Histogram ----------------------------------------------------------------

def test_histogram_bins_and_flows():
    h = Histogram(0.0, 10.0, 10)
    for v in (-1.0, 0.0, 0.5, 5.0, 9.999, 10.0, 42.0):
        h.add(v)
    assert h.underflow == 1
    assert h.overflow == 2
    assert h.bins[0] == 2 and h.bins[5] == 1 and h.bins[9] == 1
    assert h.total == 7


def test_histogram_merge_exact_and_commutative():
    rng = random.Random(4)
    a, b = Histogram(0, 100, 20), Histogram(0, 100, 20)
    for __ in range(500):
        a.add(rng.uniform(-10, 110))
        b.add(rng.uniform(0, 100))
    assert _serialised(a.merge(b)) == _serialised(b.merge(a))
    assert a.merge(b).total == a.total + b.total
    with pytest.raises(ValueError):
        a.merge(Histogram(0, 50, 20))


# -- QuantileDigest -----------------------------------------------------------

def test_digest_exact_when_small():
    d = QuantileDigest(capacity=64)
    for v in range(100):
        d.add(float(v))
    assert d.quantile(0.0) == 0.0
    assert d.quantile(0.5) == pytest.approx(50.0, abs=1.0)
    assert d.quantile(1.0) == 99.0


def test_digest_bounded_size_and_accuracy():
    d = QuantileDigest(capacity=64)
    rng = random.Random(5)
    values = [rng.uniform(0, 1000) for __ in range(20000)]
    for v in values:
        d.add(v)
    assert len(d.entries) <= 2 * d.capacity
    ordered = sorted(values)
    for q in (0.05, 0.25, 0.5, 0.75, 0.95):
        exact = ordered[int(q * (len(ordered) - 1))]
        assert d.quantile(q) == pytest.approx(exact, abs=50.0)


def test_digest_merge_commutative_bit_for_bit():
    rng = random.Random(6)
    a, b = QuantileDigest(capacity=32), QuantileDigest(capacity=32)
    for __ in range(3000):
        a.add(rng.gauss(50, 10))
    for __ in range(700):
        b.add(rng.uniform(0, 200))
    assert _serialised(a.merge(b)) == _serialised(b.merge(a))


def test_digest_deterministic_compaction():
    def build():
        d = QuantileDigest(capacity=16)
        for v in range(1000):
            d.add(float((v * 37) % 501))
        return d

    assert _serialised(build()) == _serialised(build())


# -- FleetStats ---------------------------------------------------------------

def _sample_stats(seed, n, metrics=("battery_life_h", "x")):
    stats = FleetStats()
    rng = random.Random(seed)
    for __ in range(n):
        for name in metrics:
            stats.observe(name, rng.uniform(0, 40))
        stats.count("devices")
        stats.count("renewals", rng.randint(0, 9))
    return stats


def test_fleet_stats_merge_commutative_bit_for_bit():
    a = _sample_stats(1, 230)
    b = _sample_stats(2, 117)
    assert _serialised(a.merge(b)) == _serialised(b.merge(a))


def test_fleet_stats_merge_union_of_metrics_and_counters():
    a = _sample_stats(1, 10, metrics=("battery_life_h",))
    b = _sample_stats(2, 5, metrics=("waste_reduction_pct",))
    merged = a.merge(b)
    assert set(merged.metrics) == {"battery_life_h", "waste_reduction_pct"}
    assert merged.counters["devices"] == 15


def test_fleet_stats_json_roundtrip_bit_for_bit():
    stats = _sample_stats(3, 64)
    again = FleetStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert _serialised(again) == _serialised(stats)


def test_metric_summary_uses_declared_bounds():
    summary = MetricSummary("waste_reduction_pct")
    assert summary.histogram.lo == -100.0
    assert summary.histogram.hi == 100.0


# -- Wilson interval ----------------------------------------------------------

def test_wilson_interval_sanity():
    rate, lo, hi = wilson_interval(5, 100)
    assert lo < rate < hi
    assert 0.0 <= lo and hi <= 1.0
    assert wilson_interval(0, 0) == (0.0, 0.0, 0.0)
    __, lo_all, hi_all = wilson_interval(100, 100)
    assert hi_all > 0.99 and lo_all > 0.9


def test_wilson_interval_narrows_with_trials():
    __, lo_small, hi_small = wilson_interval(5, 50)
    __, lo_big, hi_big = wilson_interval(500, 5000)
    assert (hi_big - lo_big) < (hi_small - lo_small)
