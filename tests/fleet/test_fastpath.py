"""Fast-path transition table: build, replay, fallback, mode wiring."""

import json

import pytest

from repro.experiments.grid import FuncSpec, GridRunner, ResultCache
from repro.fleet import fastpath
from repro.fleet.fastpath import (
    AUTO_MIN_DEVICES,
    TransitionTable,
    _device_guard,
    build_table,
    cross_validate,
    device_env_json,
    fast_summary,
    replay_shard,
)
from repro.fleet.population import PopulationSpec
from repro.fleet.report import build_report, report_json
from repro.fleet.shard import FleetRunner, run_shard
from repro.fleet.stats import FleetStats

#: Small-but-real population shared by the tests below. The table
#: probes and shard jobs flow through one module-scoped *cached* grid
#: runner, so the table is simulated once and loaded everywhere else.
POP = PopulationSpec(seed=23, devices=6, shard_size=2, minutes=2.0,
                     mitigations=("vanilla", "leaseos"))

#: Same law, every device carrying an armed fault plan -- the
#: guaranteed per-device kernel-fallback population.
CHAOS = PopulationSpec(seed=23, devices=2, shard_size=2, minutes=2.0,
                       mitigations=("vanilla", "leaseos"),
                       chaos_rate=1.0)


@pytest.fixture(scope="module")
def grid(tmp_path_factory):
    return GridRunner(jobs=1,
                      cache=str(tmp_path_factory.mktemp("grid-cache")))


@pytest.fixture(scope="module")
def table(grid):
    return build_table(POP, runner=grid)


@pytest.fixture(scope="module")
def fast_full(grid, tmp_path_factory):
    """One uninterrupted fast-mode run: (runner, merged, report bytes)."""
    ck = str(tmp_path_factory.mktemp("fleet-fast"))
    runner = FleetRunner(POP, runner=grid, mode="fast",
                         checkpoint_dir=ck)
    merged = runner.run()
    payload = report_json(build_report(POP, merged))
    return runner, merged, payload


# -- the table -----------------------------------------------------------------

def test_entry_key_includes_merged_case_environment():
    plain = TransitionTable.entry_key("buggy", "torch", "flagship",
                                      "leaseos", "bg", "{}")
    pinned = TransitionTable.entry_key("buggy", "torch", "flagship",
                                       "leaseos", "bg",
                                       '{"gps_quality":"urban"}')
    assert plain != pinned
    device = POP.device(0)
    env = device_env_json(device)
    assert env == json.dumps(json.loads(env), sort_keys=True,
                             separators=(",", ":"))


def test_table_covers_population_and_roundtrips(table):
    assert table.entries, "no probes were built"
    assert all(key.split("|", 1)[0] in ("base", "normal", "buggy")
               for key in table.entries)
    # Every device in the population replays from the table directly.
    for index in range(POP.devices):
        assert _device_guard(POP.device(index), POP.mitigations,
                             table) is None
    clone = TransitionTable.from_json(table.to_json())
    assert clone.entries == table.entries
    assert clone.fingerprint() == table.fingerprint()
    # The fingerprint is sensitive to any entry: a replayed checkpoint
    # can never silently pair with a different table.
    mutated = TransitionTable.from_json(table.to_json())
    key = sorted(mutated.entries)[0]
    mutated.entries[key] = dict(mutated.entries[key],
                                system_power_mw=1e9)
    assert mutated.fingerprint() != table.fingerprint()


def test_fast_summary_shape_and_determinism(table):
    device = POP.device(0)
    first = fast_summary(device, "leaseos", table, POP.minutes)
    second = fast_summary(device, "leaseos", table, POP.minutes)
    assert first == second
    # Everything the shard fold reads must be present.
    needed = {"index", "mitigation", "system_power_mw",
              "buggy_power_mw", "battery_life_h", "disruptions",
              "renewals", "deferrals", "revocations", "fp_apps",
              "fn_apps", "crashed", "crash_error", "faults_applied",
              "normal_installed", "buggy_installed"}
    assert needed <= set(first)
    assert first["system_power_mw"] > 0
    assert first["battery_life_h"] > 0


def test_empty_table_routes_every_device_to_kernel():
    empty = TransitionTable(POP.minutes)
    reason = _device_guard(POP.device(0), POP.mitigations, empty)
    assert reason.startswith("missing-probe:")


# -- replay --------------------------------------------------------------------

def _replay_dicts(population, start, stop, table):
    stats, crashes = replay_shard(population, start, stop, table)
    return {name: s.to_dict() for name, s in stats.items()}, crashes


def test_replay_bitwise_identical_across_shard_orders(table):
    ranges = [(0, 2), (2, 4), (4, 6)]
    forward = [_replay_dicts(POP, a, b, table)[0] for a, b in ranges]
    backward = [_replay_dicts(POP, a, b, table)[0]
                for a, b in reversed(ranges)]
    backward.reverse()
    assert forward == backward
    # Merging in index order is execution-order independent, bit for
    # bit -- the same guarantee the kernel path's checkpoints give.

    def merge(shards):
        merged = {name: FleetStats() for name in POP.mitigations}
        for shard in shards:
            for name, data in shard.items():
                merged[name] = merged[name].merge(
                    FleetStats.from_dict(data))
        return {name: json.dumps(s.to_dict(), sort_keys=True)
                for name, s in merged.items()}

    assert merge(forward) == merge(backward)


def test_fallback_devices_fold_kernel_values(monkeypatch):
    # Every CHAOS device carries a fault plan, so the fast path must
    # reroute all of them to the kernel: the *observations* folded are
    # the kernel's own summaries -- digest entries, histogram bins,
    # counters and count/min/max match the kernel shard exactly. The
    # fold algebra differs by design: fast shards use the batch-merge
    # fold (the frozen vector-engine contract, one batch per metric
    # per shard) instead of the kernel's sequential Welford, so
    # mean/m2 agree to float rounding, not bit-for-bit. Modes never
    # share checkpoints (they are mode-tagged), so nothing depends on
    # cross-mode byte equality.
    monkeypatch.setattr(fastpath, "_LOGGED_FALLBACKS", set())
    empty = TransitionTable(CHAOS.minutes)
    stats, crashes = replay_shard(CHAOS, 0, 2, empty)
    kernel = run_shard(CHAOS.to_json(), 0, 2)
    assert crashes == kernel["crashes"]
    for name in CHAOS.mitigations:
        fast = stats[name].to_dict()
        assert fast["counters"].pop("fastpath_devices") == 2
        assert fast["counters"].pop("fastpath_fallbacks") == 2
        want = kernel["stats"][name]
        assert fast["counters"] == want["counters"]
        assert set(fast["metrics"]) == set(want["metrics"])
        for metric, got in fast["metrics"].items():
            expected = want["metrics"][metric]
            assert got["digest"] == expected["digest"]
            assert got["histogram"] == expected["histogram"]
            gm, wm = got["moments"], expected["moments"]
            assert (gm["count"], gm["min"], gm["max"]) \
                == (wm["count"], wm["min"], wm["max"])
            assert gm["mean"] == pytest.approx(wm["mean"],
                                               rel=1e-12, abs=1e-12)
            assert gm["m2"] == pytest.approx(wm["m2"],
                                             rel=1e-9, abs=1e-12)


def test_fallback_warns_once_per_reason_structured(monkeypatch, capsys):
    monkeypatch.setattr(fastpath, "_LOGGED_FALLBACKS", set())
    replay_shard(CHAOS, 0, 2, TransitionTable(CHAOS.minutes))
    lines = [line for line in capsys.readouterr().err.splitlines()
             if "fastpath_fallback" in line]
    # Two devices fell back for the same reason: one warning, not two.
    assert len(lines) == 1
    event = json.loads(lines[0])
    assert event["event"] == "fastpath_fallback"
    assert event["reason"] == "fault-plan-armed"


# -- mode wiring ---------------------------------------------------------------

def test_fast_run_counts_devices_and_reports_table(fast_full):
    runner, merged, __ = fast_full
    for name in POP.mitigations:
        counters = merged[name].counters
        assert counters["devices"] == POP.devices
        assert counters["fastpath_devices"] == POP.devices
        assert counters.get("fastpath_fallbacks", 0) == 0
    summary = runner.run_summary()
    assert summary["mode"] == "fast"
    assert summary["table_fingerprint"] == runner.table_fingerprint
    assert len(runner.table_fingerprint) == 64


def test_fast_run_resumes_byte_identical(fast_full, grid, tmp_path):
    __, __, uninterrupted = fast_full
    ck = str(tmp_path / "fleet-fast-resume")
    first = FleetRunner(POP, runner=grid, mode="fast",
                        checkpoint_dir=ck)
    assert first.run(limit=1) is None
    second = FleetRunner(POP, runner=grid, mode="fast",
                         checkpoint_dir=ck)
    merged = second.run()
    assert second.shards_resumed == 1
    assert report_json(build_report(POP, merged)) == uninterrupted


def test_mode_mismatched_checkpoints_rejected(fast_full, grid,
                                              tmp_path):
    fast_runner, __, __ = fast_full
    # A fast-mode runner must not serve kernel checkpoints...
    ck = str(tmp_path / "fleet-kernel")
    kernel_runner = FleetRunner(POP, runner=grid, checkpoint_dir=ck)
    kernel_runner.run_shards(limit=1)
    probe = FleetRunner(POP, runner=grid, mode="fast",
                        checkpoint_dir=ck)
    assert probe.pending_shards() == list(range(POP.shard_count))
    assert 0 in probe.rejected_shards
    # ... and a kernel runner must not serve fast ones.
    probe = FleetRunner(POP, runner=grid,
                        checkpoint_dir=fast_runner.checkpoint_dir)
    assert probe.pending_shards() == list(range(POP.shard_count))
    assert probe.checkpoints_rejected == POP.shard_count


def test_fast_and_kernel_shards_never_share_cache_keys(table):
    population_json = POP.to_json()
    kernel_spec = FuncSpec.make(run_shard,
                                population_json=population_json,
                                start=0, stop=2)
    fast_spec = FuncSpec.make(run_shard,
                              population_json=population_json,
                              start=0, stop=2, mode="fast",
                              table_json=table.to_json())
    # The kernel dispatch omits the fast kwargs entirely, so its cache
    # keys are byte-identical to what they were before the fast path
    # existed.
    assert dict(kernel_spec.kwargs).keys() == \
        {"population_json", "start", "stop"}
    cache = ResultCache(directory="unused-for-key-derivation", salt="")
    assert cache.key_for(kernel_spec) != cache.key_for(fast_spec)
    # A different table means different fast keys too.
    other = TransitionTable.from_json(table.to_json())
    key = sorted(other.entries)[0]
    other.entries[key] = dict(other.entries[key], system_power_mw=1.0)
    other_spec = FuncSpec.make(run_shard,
                               population_json=population_json,
                               start=0, stop=2, mode="fast",
                               table_json=other.to_json())
    assert cache.key_for(fast_spec) != cache.key_for(other_spec)


def test_auto_mode_resolves_on_population_size():
    small = FleetRunner(POP, mode="auto")
    assert (small.requested_mode, small.mode) == ("auto", "kernel")
    big_pop = PopulationSpec(seed=1, devices=AUTO_MIN_DEVICES,
                             shard_size=128)
    big = FleetRunner(big_pop, mode="auto")
    # Auto resolves to the columnar engine when numpy is importable
    # and degrades to the scalar fast path otherwise.
    from repro.fleet.stats import _numpy

    expected = "vector" if _numpy() is not None else "fast"
    assert (big.requested_mode, big.mode) == ("auto", expected)
    assert big.checkpoint_dir.endswith("-" + expected)
    with pytest.raises(ValueError):
        FleetRunner(POP, mode="warp")


# -- cross-validation ----------------------------------------------------------

def test_cross_validate_small_passes_and_is_deterministic(grid):
    first = cross_validate(POP, n=3, runner=grid)
    assert first["kind"] == "fastpath_cross_validation"
    assert first["device_days_compared"] + first["fallbacks"] \
        + first["crashed_skipped"] == 3 * len(POP.mitigations)
    assert first["device_days_compared"] > 0
    assert first["pass"], first["violations"]
    for entry in first["metrics"].values():
        assert entry["max_abs_delta"] >= entry["mean_abs_delta"] >= 0
    second = cross_validate(POP, n=3, runner=grid)
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)
