"""Columnar vector engine: sampling parity, bitwise replay, fallbacks.

The contract under test is strong: for every device the columnar
composition must be *bit-identical* to the scalar fast path (same
IEEE-754 op sequence), the pure-python backend must match the numpy
backend byte for byte, and every fallback tier (fault plans, missing
probes, non-finite compositions) must route through the kernel with
the scalar path's exact reason strings and counters.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.grid import GridRunner
from repro.fleet import fastpath
from repro.fleet.fastpath import (
    JITTER,
    build_table,
    jitter_unit,
    replay_shard,
)
from repro.fleet.population import PopulationSpec
from repro.fleet.shard import FleetRunner
from repro.fleet.stats import FleetStats, numpy_backend
from repro.fleet.vector import (
    _jitter_factors,
    _ShardClasses,
    compose_shard,
    cross_validate,
    replay_shard_vector,
)

#: Small-but-real mixed population; its table is built once through a
#: module-scoped cached grid runner (the test_fastpath idiom).
POP = PopulationSpec(seed=31, devices=10, shard_size=4, minutes=2.0,
                     mitigations=("vanilla", "leaseos"))

#: Same law, every device carrying an armed fault plan.
CHAOS = PopulationSpec(seed=31, devices=3, shard_size=3, minutes=2.0,
                       mitigations=("vanilla", "leaseos"),
                       chaos_rate=1.0)

#: All-buggy devices: exercises the foreground (no-normal-apps)
#: composition branch.
FG = PopulationSpec(seed=31, devices=4, shard_size=4, minutes=2.0,
                    mitigations=("vanilla", "leaseos"),
                    buggy_prevalence=1.0)


@pytest.fixture(scope="module")
def grid(tmp_path_factory):
    return GridRunner(jobs=1,
                      cache=str(tmp_path_factory.mktemp("grid-cache")))


@pytest.fixture(scope="module")
def table(grid):
    return build_table(POP, runner=grid)


@pytest.fixture(scope="module")
def fg_table(grid):
    return build_table(FG, runner=grid)


def _stats_dicts(stats, drop_vector_counter=False):
    out = {}
    for name, fold in stats.items():
        data = fold.to_dict()
        if drop_vector_counter:
            data["counters"].pop("vector_devices", None)
        out[name] = data
    return json.dumps(out, sort_keys=True)


def _assert_bitwise_match(population, table, start=None, stop=None):
    """Fast and vector replays agree byte-for-byte on a range."""
    if start is None:
        start, stop = 0, population.devices
    fastpath.reset_fallback_warnings()
    fast_stats, fast_crashes = replay_shard(population, start, stop,
                                            table)
    fastpath.reset_fallback_warnings()
    vec_stats, vec_crashes = replay_shard_vector(population, start,
                                                 stop, table)
    assert _stats_dicts(fast_stats) == _stats_dicts(
        vec_stats, drop_vector_counter=True)
    assert fast_crashes == vec_crashes
    return vec_stats


# -- batched sampling ----------------------------------------------------------

def test_sample_columns_matches_device_exactly():
    for population in (POP, CHAOS, FG):
        columns = population.sample_columns(0, population.devices)
        assert len(columns) == population.devices
        for row in range(population.devices):
            assert columns.spec(row, population) \
                == population.device(row)


def test_sample_columns_records_fault_arming_without_plans():
    columns = CHAOS.sample_columns(0, CHAOS.devices)
    assert all(columns.has_fault)
    # The plan JSON itself is only sampled on materialisation.
    spec = columns.spec(0, CHAOS)
    assert spec.fault_plan_json


def test_jitter_factors_bitwise_across_backends():
    np = numpy_backend()
    columns = POP.sample_columns(0, POP.devices)
    rows = list(range(len(columns)))
    pure = _jitter_factors(columns, rows, np=None)
    expected = [1.0 + JITTER
                * (2.0 * jitter_unit(columns.sub_seed[row]) - 1.0)
                for row in rows]
    assert pure == expected
    if np is not None:
        vec = _jitter_factors(columns, rows, np=np)
        assert [float(v) for v in vec] == expected


# -- bitwise replay equivalence ------------------------------------------------

def test_vector_replay_matches_fast_bitwise(table):
    vec_stats = _assert_bitwise_match(POP, table)
    for name in POP.mitigations:
        counters = vec_stats[name].counters
        assert counters["vector_devices"] == POP.devices
        assert counters.get("fastpath_fallbacks", 0) == 0


def test_all_buggy_population_composes_columnar(fg_table):
    vec_stats = _assert_bitwise_match(FG, fg_table)
    for name in FG.mitigations:
        assert vec_stats[name].counters["vector_devices"] == FG.devices


def test_pure_python_backend_is_byte_identical(table, monkeypatch):
    fastpath.reset_fallback_warnings()
    with_numpy, __ = replay_shard_vector(POP, 0, POP.devices, table)
    monkeypatch.setenv("REPRO_FASTPATH_NUMPY", "0")
    fastpath.reset_fallback_warnings()
    pure, __ = replay_shard_vector(POP, 0, POP.devices, table)
    assert _stats_dicts(with_numpy) == _stats_dicts(pure)
    monkeypatch.delenv("REPRO_FASTPATH_NUMPY")
    _assert_bitwise_match(POP, table)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_any_shard_range_replays_identically(table, data):
    start = data.draw(st.integers(0, POP.devices - 1))
    stop = data.draw(st.integers(start + 1, POP.devices))
    _assert_bitwise_match(POP, table, start, stop)


# -- fallback tiers ------------------------------------------------------------

def test_fault_plans_route_every_device_to_kernel(table, capsys):
    fastpath.reset_fallback_warnings()
    vec_stats, __ = replay_shard_vector(CHAOS, 0, CHAOS.devices, table)
    for name in CHAOS.mitigations:
        counters = vec_stats[name].counters
        assert counters["vector_devices"] == 0
        assert counters["fastpath_fallbacks"] == CHAOS.devices
    err = capsys.readouterr().err
    assert err.count("fault-plan-armed") == 1  # warned once, not 3x
    replay_shard_vector(CHAOS, 0, CHAOS.devices, table)
    assert "fault-plan-armed" not in capsys.readouterr().err
    fastpath.reset_fallback_warnings()
    replay_shard_vector(CHAOS, 0, CHAOS.devices, table)
    assert capsys.readouterr().err.count("fault-plan-armed") == 1


def test_chaos_replay_still_matches_fast_bitwise(table):
    _assert_bitwise_match(CHAOS, table)


def test_missing_probes_fall_back_per_device(table):
    # Cripple the table: every probe of device 0's first normal app
    # disappears, so exactly the devices carrying that app fall back
    # (with the guard's missing-probe reason) while the rest stay
    # columnar -- and the stats still match the fast path bitwise.
    crippled = fastpath.TransitionTable.from_json(table.to_json())
    victim = POP.device(0).normal_apps[0]
    dropped = [key for key in crippled.entries
               if key.startswith("normal|{}|".format(victim))]
    assert dropped
    for key in dropped:
        del crippled.entries[key]
    vec_stats = _assert_bitwise_match(POP, crippled)
    carriers = sum(1 for index in range(POP.devices)
                   if victim in POP.device(index).normal_apps)
    for name in POP.mitigations:
        counters = vec_stats[name].counters
        assert counters["fastpath_fallbacks"] == carriers
        assert counters["vector_devices"] == POP.devices - carriers
    assert 0 < carriers < POP.devices


def test_compose_shard_reports_fallback_reasons(table):
    columns = CHAOS.sample_columns(0, CHAOS.devices)
    classes = _ShardClasses(table, CHAOS.mitigations)
    comp = compose_shard(CHAOS, columns, classes, np=numpy_backend())
    assert comp.vector_rows == []
    assert set(comp.fallback.values()) == {"fault-plan-armed"}


# -- cross-validation ----------------------------------------------------------

def test_cross_validate_is_exact_and_deterministic(grid):
    first = cross_validate(POP, n=3, runner=grid)
    assert first["kind"] == "vector_cross_validation"
    assert first["pass"], first["violations"]
    assert first["device_days_compared"] > 0
    # The columnar composition is designed bit-identical, and this is
    # where that claim is enforced: zero delta, not merely in-band.
    for entry in first["metrics"].values():
        assert entry["max_abs_delta"] == 0.0
        assert entry["mean_abs_delta"] == 0.0
    second = cross_validate(POP, n=3, runner=grid)
    assert json.dumps(first, sort_keys=True) \
        == json.dumps(second, sort_keys=True)


def test_cross_validate_pure_backend(grid, monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH_NUMPY", "0")
    result = cross_validate(POP, n=2, runner=grid)
    assert result["backend"] == "python"
    assert result["pass"], result["violations"]
    for entry in result["metrics"].values():
        assert entry["max_abs_delta"] == 0.0


# -- batch folds ---------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(values=st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200))
def test_batch_fold_backends_bitwise(values):
    import os

    a = FleetStats()
    a.observe_many("metric", values)
    previous = os.environ.get("REPRO_FASTPATH_NUMPY")
    os.environ["REPRO_FASTPATH_NUMPY"] = "0"
    try:
        b = FleetStats()
        b.observe_many("metric", values)
    finally:
        if previous is None:
            del os.environ["REPRO_FASTPATH_NUMPY"]
        else:
            os.environ["REPRO_FASTPATH_NUMPY"] = previous
    assert json.dumps(a.to_dict(), sort_keys=True) \
        == json.dumps(b.to_dict(), sort_keys=True)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_batch_fold_split_merge_is_consistent(data):
    values = data.draw(st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=120))
    cut = data.draw(st.integers(1, len(values) - 1))
    whole = FleetStats()
    whole.observe_many("metric", values)
    left = FleetStats()
    left.observe_many("metric", values[:cut])
    right = FleetStats()
    right.observe_many("metric", values[cut:])
    combined = left.merge(right)
    wm = whole.metrics["metric"].moments
    lm = combined.metrics["metric"].moments
    # Shard boundaries are part of the frozen fold contract, so the
    # split is not bitwise -- but count/min/max are exact and the
    # merged moments agree to float rounding.
    assert (lm.count, lm.min, lm.max) == (wm.count, wm.min, wm.max)
    assert lm.mean == pytest.approx(wm.mean, rel=1e-9, abs=1e-9)
    assert lm.m2 == pytest.approx(wm.m2, rel=1e-6, abs=1e-6)


# -- runner integration --------------------------------------------------------

def test_runner_vector_mode_checkpoints_and_resumes(grid, table,
                                                    tmp_path):
    ck = str(tmp_path / "fleet-vector")
    runner = FleetRunner(POP, runner=grid, mode="vector",
                         checkpoint_dir=ck)
    merged = runner.run()
    first = _stats_dicts(merged)
    summary = runner.run_summary()
    assert summary["mode"] == "vector"
    assert summary["shards_resumed"] == 0
    # A fresh runner over the same spec resumes every shard from disk
    # and merges to the byte-identical result.
    resumed = FleetRunner(POP, runner=grid, mode="vector",
                          checkpoint_dir=ck)
    again = resumed.run()
    assert _stats_dicts(again) == first
    assert resumed.run_summary()["shards_resumed"] \
        == POP.shard_count
    for name in POP.mitigations:
        assert merged[name].counters["vector_devices"] == POP.devices
