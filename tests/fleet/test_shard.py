"""Shard execution and checkpoint/resume semantics."""

import json
import os

import pytest

from repro.experiments.grid import GridRunner
from repro.fleet.population import PopulationSpec
from repro.fleet.report import build_report, report_json
from repro.fleet.shard import FleetRunner, run_shard, simulate_device_day

#: Small-but-real population shared by the tests below (module-scoped
#: fixtures keep the suite fast: one simulation, many assertions).
POP = PopulationSpec(seed=23, devices=8, shard_size=3, minutes=3.0,
                     mitigations=("vanilla", "leaseos"))


def _uncached_runner():
    return GridRunner(jobs=1, cache=False)


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One uninterrupted run: (runner, merged stats, report bytes)."""
    ck = str(tmp_path_factory.mktemp("fleet-full"))
    runner = FleetRunner(POP, runner=_uncached_runner(), checkpoint_dir=ck)
    merged = runner.run()
    payload = report_json(build_report(POP, merged))
    return runner, merged, payload


def test_device_day_returns_scalars_only():
    device = POP.device(0)
    summary = simulate_device_day(device, "vanilla", minutes=2.0)
    assert all(isinstance(v, (int, float, str)) for v in summary.values())
    assert summary["system_power_mw"] > 0
    assert summary["battery_life_h"] > 0


def test_device_day_deterministic():
    device = POP.device(1)
    first = simulate_device_day(device, "leaseos", minutes=2.0)
    second = simulate_device_day(device, "leaseos", minutes=2.0)
    assert first == second


def test_run_shard_summary_shape_is_device_count_independent():
    small = run_shard(POP.to_json(), 0, 1)
    large = run_shard(POP.to_json(), 0, 3)
    assert small["population"] == POP.fingerprint()
    assert (large["start"], large["stop"]) == (0, 3)
    # O(1) in devices: same keys, same per-metric accumulator sizes
    # (histogram bins are fixed) -- only the counts grow.
    assert set(small["stats"]) == set(large["stats"])
    for name in small["stats"]:
        s_bins = small["stats"][name]["metrics"]["battery_life_h"][
            "histogram"]["bins"]
        l_bins = large["stats"][name]["metrics"]["battery_life_h"][
            "histogram"]["bins"]
        assert len(s_bins) == len(l_bins)
    assert large["stats"]["vanilla"]["counters"]["devices"] == 3


def test_fleet_run_completes_and_counts_devices(full_run):
    __, merged, __ = full_run
    for name in POP.mitigations:
        assert merged[name].counters["devices"] == POP.devices


def test_checkpoint_files_one_per_shard(full_run):
    runner, __, __ = full_run
    names = sorted(os.listdir(runner.checkpoint_dir))
    assert names == ["shard_{:06d}.json".format(i)
                     for i in range(POP.shard_count)]


def test_interrupted_run_resumes_byte_identical(full_run, tmp_path):
    __, __, uninterrupted = full_run
    ck = str(tmp_path / "fleet-resume")
    # "Kill" after 1 of 3 shards...
    first = FleetRunner(POP, runner=_uncached_runner(), checkpoint_dir=ck)
    assert first.run(limit=1) is None
    assert len(first.pending_shards()) == POP.shard_count - 1
    # ... then resume with a brand-new runner (fresh process stand-in).
    second = FleetRunner(POP, runner=_uncached_runner(),
                         checkpoint_dir=ck)
    merged = second.run()
    assert second.shards_resumed == 1
    assert second.shards_run == POP.shard_count - 1
    assert report_json(build_report(POP, merged)) == uninterrupted


def test_completed_run_resumes_without_rerunning(full_run):
    runner, __, uninterrupted = full_run
    again = FleetRunner(POP, runner=_uncached_runner(),
                        checkpoint_dir=runner.checkpoint_dir)
    merged = again.run()
    assert again.shards_run == 0
    assert again.shards_resumed == POP.shard_count
    assert report_json(build_report(POP, merged)) == uninterrupted


def test_stale_checkpoints_rejected_not_served(full_run, tmp_path):
    runner, __, __ = full_run
    ck = str(tmp_path / "fleet-stale")
    os.makedirs(ck)
    source = os.path.join(runner.checkpoint_dir, "shard_000000.json")
    with open(source) as handle:
        payload = json.load(handle)

    # Wrong population fingerprint -> ignored.
    bad = json.loads(json.dumps(payload))
    bad["summary"]["population"] = "0" * 64
    with open(os.path.join(ck, "shard_000000.json"), "w") as handle:
        json.dump(bad, handle)
    # Wrong package version -> ignored.
    bad = json.loads(json.dumps(payload))
    bad["version"] = "0.0.0"
    with open(os.path.join(ck, "shard_000001.json"), "w") as handle:
        json.dump(bad, handle)
    # Corrupt JSON -> ignored.
    with open(os.path.join(ck, "shard_000002.json"), "w") as handle:
        handle.write("{not json")

    probe = FleetRunner(POP, runner=_uncached_runner(), checkpoint_dir=ck)
    assert probe.pending_shards() == list(range(POP.shard_count))
    assert probe.checkpoints_rejected >= 2


def test_merged_stats_requires_every_shard(tmp_path):
    runner = FleetRunner(POP, runner=_uncached_runner(),
                         checkpoint_dir=str(tmp_path / "incomplete"))
    runner.run_shards(limit=1)
    with pytest.raises(RuntimeError):
        runner.merged_stats()


def test_shard_jobs_flow_through_grid_cache(tmp_path):
    cache_dir = str(tmp_path / "grid-cache")
    cold = GridRunner(jobs=1, cache=cache_dir)
    a = FleetRunner(POP, runner=cold,
                    checkpoint_dir=str(tmp_path / "ck-a"))
    merged_a = a.run()
    assert cold.stats.executed == POP.shard_count
    # Same population, empty checkpoint dir, warm grid cache: every
    # shard is a cache hit, zero fresh simulation, identical report.
    warm = GridRunner(jobs=1, cache=cache_dir)
    b = FleetRunner(POP, runner=warm,
                    checkpoint_dir=str(tmp_path / "ck-b"))
    merged_b = b.run()
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == POP.shard_count
    assert report_json(build_report(POP, merged_a)) == \
        report_json(build_report(POP, merged_b))
