"""The grid runner: determinism, caching, fallback, codec, opt-outs."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.core.behavior import BehaviorType
from repro.experiments import grid, table5
from repro.experiments.grid import (
    FuncSpec,
    GridRunner,
    JobResult,
    JobSpec,
    ResultCache,
    decode_result,
    encode_result,
)

SUBSET = ("torch", "connectbot-screen")


def subset_cases():
    return [CASES_BY_KEY[key] for key in SUBSET]


# -- specs -------------------------------------------------------------------

def test_jobspec_is_hashable_and_stable():
    a = JobSpec.make("torch", mitigation="leaseos", minutes=5.0, seed=7)
    b = JobSpec.make(CASES_BY_KEY["torch"], mitigation="leaseos",
                     minutes=5.0, seed=7)
    assert a == b
    assert hash(a) == hash(b)
    assert ResultCache("unused").key_for(a) == \
        ResultCache("unused").key_for(b)


def test_jobspec_normalizes_profile_objects():
    from repro.device.profiles import MOTO_G

    spec = JobSpec.make("torch", profile=MOTO_G)
    assert spec.phone_overrides == (("profile", MOTO_G.name),)
    # and execution resolves the name back to the profile object
    assert spec._resolved_overrides()["profile"] is MOTO_G


def test_jobspec_rejects_live_objects():
    with pytest.raises(TypeError):
        JobSpec.make("torch", mitigation_obj=object())


def test_funcspec_requires_importable_function():
    with pytest.raises(ValueError):
        FuncSpec.make(lambda: 1)


def test_unknown_mitigation_is_an_error():
    with pytest.raises(KeyError):
        GridRunner().run_one(JobSpec.make("torch", mitigation="nope",
                                          minutes=1.0))


# -- the codec ---------------------------------------------------------------

def test_codec_round_trips_rich_results():
    result = JobResult(
        case_key="torch", mitigation="leaseos", app_power_mw=1.5,
        system_power_mw=2.5, disruptions=3,
        observed_behaviors=frozenset({BehaviorType.LHB, BehaviorType.FAB}),
    )
    payload = {
        "rows": [result],
        "pair": (1, "two"),
        "by_uid": {1000: 4.2},
        "missing": float("nan"),
    }
    decoded = decode_result(encode_result(payload))
    assert decoded["rows"] == [result]
    assert decoded["pair"] == (1, "two")
    assert decoded["by_uid"] == {1000: 4.2}
    assert decoded["missing"] != decoded["missing"]  # NaN survives


# -- parallel determinism (satellite acceptance) -----------------------------

def test_parallel_table5_matches_serial_byte_identical():
    cases = subset_cases()
    serial = table5.render(table5.run(cases=cases, minutes=2.0))
    runner = GridRunner(jobs=2)
    parallel = table5.render(
        table5.run(cases=cases, minutes=2.0, runner=runner))
    assert parallel == serial
    assert runner.stats.executed == len(cases) * len(table5.MITIGATIONS)
    # Only one of pool/serial paths ran; either way the output matched.
    assert runner.stats.pool_batches + runner.stats.serial_batches == 1


def test_warm_cache_runs_zero_fresh_simulations(tmp_path):
    cases = subset_cases()
    cache_dir = str(tmp_path / "cache")
    cold = GridRunner(jobs=2, cache=cache_dir)
    first = table5.render(table5.run(cases=cases, minutes=2.0,
                                     runner=cold))
    expected = len(cases) * len(table5.MITIGATIONS)
    assert cold.stats.executed == expected
    assert cold.stats.cache_misses == expected

    warm = GridRunner(jobs=2, cache=cache_dir)
    second = table5.render(table5.run(cases=cases, minutes=2.0,
                                      runner=warm))
    assert second == first
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == expected


def test_cache_key_changes_with_spec_and_salt(tmp_path):
    cache = ResultCache(str(tmp_path), salt="")
    salted = ResultCache(str(tmp_path), salt="other")
    a = JobSpec.make("torch", minutes=2.0)
    b = JobSpec.make("torch", minutes=3.0)
    assert cache.key_for(a) != cache.key_for(b)
    assert cache.key_for(a) != salted.key_for(a)


def test_cache_key_changes_with_package_version(tmp_path, monkeypatch):
    # A version bump must invalidate every cached entry: results
    # simulated by older code are never served to newer code (fleet
    # shards resumed across an upgrade depend on this).
    from repro.experiments import grid as grid_module

    cache = ResultCache(str(tmp_path))
    spec = JobSpec.make("torch", minutes=2.0)
    before = cache.key_for(spec)
    monkeypatch.setattr(grid_module, "PACKAGE_VERSION", "0.0.0-test")
    assert cache.key_for(spec) != before


def test_cache_key_pins_current_package_version(tmp_path):
    import hashlib
    import json

    from repro import __version__
    from repro.experiments.grid import CODE_VERSION

    cache = ResultCache(str(tmp_path))
    spec = JobSpec.make("torch", minutes=2.0)
    token = json.dumps(
        {"v": CODE_VERSION, "pkg": __version__, "salt": "",
         "spec": spec.cache_token()},
        sort_keys=True, separators=(",", ":"))
    expected = hashlib.sha256(token.encode()).hexdigest()[:32]
    assert cache.key_for(spec) == expected


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = FuncSpec.make(_five)
    cache.store(spec, 5)
    path = cache._path(cache.key_for(spec))
    with open(path, "w") as handle:
        handle.write("{not json")
    runner = GridRunner(cache=cache)
    assert runner.run_one(spec) == 5
    assert runner.stats.cache_misses == 1
    assert runner.stats.executed == 1


# -- fallback + opt-outs -----------------------------------------------------

def _five():
    return 5


def _const(value):
    return value


def test_pool_failure_falls_back_to_serial(monkeypatch):
    import os

    def broken(self, specs, workers, on_complete):
        raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(GridRunner, "_execute_pool", broken)
    monkeypatch.setattr(os, "cpu_count", lambda: 4)  # defeat 1-core clamp
    runner = GridRunner(jobs=4)
    specs = [FuncSpec.make(_const, value=v) for v in (1, 2, 3)]
    assert runner.run(specs) == [1, 2, 3]
    assert runner.stats.pool_fallbacks == 1
    assert runner.stats.executed == 3
    assert runner.stats.serial_batches == 1


def test_duplicate_specs_execute_once():
    runner = GridRunner()
    spec = JobSpec.make("torch", minutes=1.0)
    results = runner.run([spec, spec])
    assert results[0] == results[1]
    assert runner.stats.executed == 1


def test_full_opt_out_returns_live_objects():
    runner = GridRunner(jobs=4)
    result = runner.run_one(JobSpec.make("torch", mitigation="leaseos",
                                         minutes=1.0), full=True)
    assert result.phone is not None
    assert result.app is not None
    assert result.phone.lease_manager is not None
    assert runner.stats.serial_batches == 1  # never crosses a process


def test_repro_jobs_env_sets_default(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert GridRunner().jobs == 3
    monkeypatch.setenv("REPRO_JOBS", "bogus")
    assert GridRunner().jobs == 1


def test_repro_cache_env_force_disables(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert GridRunner(cache=str(tmp_path)).cache is None


# -- refactored harnesses stay consistent with their serial selves ----------

def test_robustness_seed_sweep_through_runner_matches_direct():
    keys = ("torch",)
    from repro.experiments import robustness

    runner = GridRunner(jobs=2)
    swept = robustness.seed_sweep(seeds=(7, 21), case_keys=keys,
                                  minutes=2.0, runner=runner)
    assert runner.stats.submitted == 2 * len(table5.MITIGATIONS)
    for seed in (7, 21):
        rows = table5.run(cases=[CASES_BY_KEY["torch"]], minutes=2.0,
                          seed=seed)
        assert swept[seed] == table5.averages(rows)


def test_unregistered_case_uses_direct_fallback():
    import dataclasses

    case = subset_cases()[0]
    clone = type(case)(**{f.name: getattr(case, f.name)
                          for f in dataclasses.fields(case)})
    assert CASES_BY_KEY.get(clone.key) is not clone
    rows = table5.run(cases=[clone], minutes=2.0)
    baseline = table5.run(cases=[case], minutes=2.0)
    assert table5.render(rows) == table5.render(baseline)


# -- core-count clamping -----------------------------------------------------

def test_effective_jobs_clamps_to_cpu_count(monkeypatch):
    import os

    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    assert GridRunner(jobs=4).effective_jobs == 2
    assert GridRunner(jobs=1).effective_jobs == 1
    monkeypatch.setattr(os, "cpu_count", lambda: None)  # unknown -> 1
    assert GridRunner(jobs=8).effective_jobs == 1


def test_effective_jobs_matches_real_machine():
    import os

    runner = GridRunner(jobs=4)
    assert runner.effective_jobs == min(4, os.cpu_count() or 1)


def _add(a=0, b=0):
    return a + b


def test_funcspec_cache_key_ignores_kwarg_order(tmp_path):
    cache = ResultCache(str(tmp_path))
    ab = FuncSpec.make(_add, a=1, b=2)
    ba = FuncSpec.make(_add, b=2, a=1)
    assert ab == ba
    assert hash(ab) == hash(ba)
    assert cache.key_for(ab) == cache.key_for(ba)


def test_jobspec_cache_key_ignores_override_order(tmp_path):
    cache = ResultCache(str(tmp_path))
    xy = JobSpec.make("torch", profile="Motorola Moto G", ambient=False)
    yx = JobSpec.make("torch", ambient=False, profile="Motorola Moto G")
    assert xy == yx
    assert cache.key_for(xy) == cache.key_for(yx)


def test_kwarg_order_variants_share_one_cache_entry(tmp_path):
    import os

    cache_dir = str(tmp_path / "cache")
    first = GridRunner(cache=cache_dir)
    assert first.run_one(FuncSpec.make(_add, a=1, b=2)) == 3
    assert first.stats.executed == 1
    second = GridRunner(cache=cache_dir)
    assert second.run_one(FuncSpec.make(_add, b=2, a=1)) == 3
    assert second.stats.cache_hits == 1
    assert second.stats.executed == 0
    entries = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
    assert len(entries) == 1


def test_corrupt_cache_entry_is_discarded_from_disk(tmp_path):
    import os

    cache = ResultCache(str(tmp_path))
    spec = FuncSpec.make(_five)
    cache.store(spec, 5)
    path = cache._path(cache.key_for(spec))
    with open(path, "w") as handle:
        handle.write("{not json")
    assert cache.load(spec) is None
    assert not os.path.exists(path)  # unlinked, not left to re-fail
    # the next run rebuilds the entry cleanly
    runner = GridRunner(cache=cache)
    assert runner.run_one(spec) == 5
    assert os.path.exists(path)
    assert cache.load(spec) == 5


def test_undecodable_cache_payload_is_discarded(tmp_path):
    import json
    import os

    cache = ResultCache(str(tmp_path))
    spec = FuncSpec.make(_five)
    cache.store(spec, 5)
    path = cache._path(cache.key_for(spec))
    with open(path, "w") as handle:
        json.dump({"spec": spec.cache_token(),
                   "result": {"__dataclass__": "no.such:Thing",
                              "fields": {}}}, handle)
    assert cache.load(spec) is None  # valid JSON, bogus payload
    assert not os.path.exists(path)
