"""Shape tests for the Figs. 1-4 characterization study."""

import statistics

import pytest

from repro.experiments.characterization import (
    fig1_betterweather,
    fig2_k9_bad_server,
    fig3_kontalk,
    fig4_k9_disconnected,
    render_series,
)


def test_fig1_gps_try_duration_high_and_fixless():
    samples = fig1_betterweather(minutes=10.0)
    assert len(samples) == 10
    # "the app spends around 60% of the time asking for the GPS lock"
    # (ours searches continuously; the key signature is high + no fixes).
    assert all(s.gps_search_time > 36.0 for s in samples)
    assert sum(s.gps_fixes for s in samples) == 0


def test_fig2_long_holds_with_ultralow_cpu():
    samples = fig2_k9_bad_server(minutes=10.0)
    mean_hold = statistics.mean(s.wakelock_time for s in samples)
    mean_cpu = statistics.mean(s.cpu_time for s in samples)
    assert mean_hold > 10.0  # long holds every interval
    assert mean_cpu / mean_hold < 0.05  # the ultralow (<5%) pattern


def test_fig3_pattern_consistent_across_phones():
    results = fig3_kontalk(minutes=10.0)
    assert len(results) == 2
    for samples in results.values():
        # after auth the wakelock is held every minute with ~zero CPU
        tail = samples[2:]
        assert all(s.wakelock_time > 50.0 for s in tail)
        assert all(s.cpu_over_wakelock < 0.02 for s in tail)


def test_fig4_ratio_exceeds_one_hundred_percent():
    samples = fig4_k9_disconnected(minutes=6.0)
    ratios = [s.cpu_over_wakelock for s in samples]
    assert all(r > 1.0 for r in ratios)
    # and the wakelock is held essentially continuously
    assert all(s.wakelock_time == pytest.approx(60.0, abs=1.0)
               for s in samples)


def test_render_series_formats_rows():
    samples = fig1_betterweather(minutes=2.0)
    text = render_series(samples, ["gps_search_time"])
    lines = text.splitlines()
    assert "gps_search_time" in lines[0]
    assert len(lines) == 5  # header + 2 rows + blank + sparkline summary
    assert lines[-1].startswith("gps_search_time [")


def test_cross_phone_variability_roughly_two_x():
    from repro.experiments.characterization import cross_phone_variability
    from repro.device.profiles import MOTO_G, PIXEL_XL

    rates = cross_phone_variability(minutes=5.0)
    fast = rates[PIXEL_XL.name]
    slow = rates[MOTO_G.name]
    assert fast > slow  # the fast phone spins through more retries
    # "the absolute holding time and frequency of abnormal intervals
    # differ by 2x" (2.3): ratio lands in the 1.5-3x band.
    assert 1.4 < fast / slow < 3.5
