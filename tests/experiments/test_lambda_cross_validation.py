"""Cross-validation: the Fig. 12 analytic lease walk vs the simulator.

The λ-sweep uses an analytic walk of the lease cycle over a slice trace
(fast enough for the paper's 1000x1000 setup). This test replays a
handful of traces through the *full simulator* (IntermittentApp under a
pinned fixed-τ policy) and checks the analytic prediction of honoured
holding time against the measured one.
"""

import random

import pytest

from repro.apps.synthetic import IntermittentApp, random_slices
from repro.core.policy import LeasePolicy
from repro.experiments.lambda_sweep import _Trace
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def _analytic_holding(trace, term_s, deferral_s):
    """Honoured holding time the analytic walk predicts (all slices)."""
    held = 0.0
    clock = 0.0
    while clock < trace.total:
        term_end = min(clock + term_s, trace.total)
        held += term_end - clock
        waste = trace.misbehavior_in(clock, term_end)
        misbehaving = waste > 0.5 * (term_end - clock)
        clock = term_end
        if misbehaving:
            clock = min(clock + deferral_s, trace.total)
    return held


@pytest.mark.parametrize("seed", [3, 17])
def test_simulator_matches_analytic_walk(seed):
    rng = random.Random(seed)
    # Coarse slices so classification is unambiguous at 10 s terms.
    slices = [(kind, max(60.0, duration))
              for kind, duration in random_slices(rng, 6, max_slice_s=240.0)]
    trace = _Trace(slices)
    term, tau = 10.0, 30.0

    # Pin every adaptive/smoothing feature: the analytic walk models the
    # bare per-term mechanism.
    policy = LeasePolicy(initial_term_s=term, deferral_s=tau,
                         adaptive_enabled=False, escalation_enabled=False,
                         grace_terms=0, utilization_smoothing_terms=1)
    mitigation = LeaseOS(policy=policy)
    phone = make_phone(seed=seed, mitigation=mitigation)
    app = phone.install(IntermittentApp(slices))
    phone.run_for(seconds=trace.total + 60.0)

    record = app.lock._record
    record.settle()
    measured = record.active_time
    predicted = _analytic_holding(trace, term, tau)
    # The sim has boundary effects (busy-slice classification during
    # transitions, the post-trace release): agree within 20%.
    assert measured == pytest.approx(predicted, rel=0.20)
