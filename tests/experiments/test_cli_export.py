"""Tests for the CLI and the CSV exporters."""

import csv
import io
import os

from contextlib import redirect_stdout

import pytest

from repro.cli import COMMANDS, build_parser, main
from repro.experiments.export import (
    lambda_csv,
    lease_activity_csv,
    samples_csv,
    table5_csv,
    write_csv,
)


def test_parser_knows_every_command():
    parser = build_parser()
    for name in list(COMMANDS) + ["all"]:
        args = parser.parse_args([name])
        assert args.command == name


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["frobnicate"])


def test_cli_runs_study_and_writes_artifact(tmp_path):
    out = str(tmp_path / "artifacts")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--out", out, "study"])
    assert code == 0
    assert "Table 1" in buffer.getvalue()
    assert os.path.exists(os.path.join(out, "study_tables.txt"))


def test_cli_fig9_prints_paper_comparison():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        main(["fig9"])
    text = buffer.getvalue()
    assert "Fig. 9(a)" in text and "paper (s)" in text


def test_write_csv_roundtrip(tmp_path):
    path = str(tmp_path / "data.csv")
    write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_samples_csv(tmp_path):
    from repro.experiments.characterization import fig1_betterweather

    samples = fig1_betterweather(minutes=3.0)
    path = samples_csv(str(tmp_path / "fig1.csv"), samples,
                       ["gps_search_time", "gps_fixes"])
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time_s", "gps_search_time", "gps_fixes"]
    assert len(rows) == 4


def test_table5_csv(tmp_path):
    from repro.apps.buggy import CASES_BY_KEY
    from repro.experiments import table5

    rows = table5.run(cases=[CASES_BY_KEY["torch"]], minutes=5.0)
    path = table5_csv(str(tmp_path / "t5.csv"), rows)
    with open(path) as handle:
        parsed = list(csv.DictReader(handle))
    assert parsed[0]["case"] == "torch"
    assert float(parsed[0]["leaseos_reduction_pct"]) > 50.0


def test_lambda_csv(tmp_path):
    from repro.experiments import lambda_sweep

    results = lambda_sweep.run(cases=10, slices_per_case=20)
    path = lambda_csv(str(tmp_path / "lam.csv"), results)
    with open(path) as handle:
        parsed = list(csv.DictReader(handle))
    assert len(parsed) == 5
    assert 0.0 < float(parsed[0]["reduction"]) < 1.0


def test_lease_activity_csv(tmp_path):
    from repro.experiments import lease_activity

    result = lease_activity.run(active_minutes=3.0, idle_minutes=2.0,
                                app_count=3)
    path = lease_activity_csv(str(tmp_path / "fig11.csv"), result)
    with open(path) as handle:
        parsed = list(csv.reader(handle))
    assert parsed[0] == ["time_s", "active_leases"]
    assert len(parsed) > 5


def test_parser_covers_derived_commands():
    parser = build_parser()
    for name in ("fix", "containment", "robustness", "verdict",
                 "extensions", "table5"):
        args = parser.parse_args([name])
        assert args.command == name


def test_out_flag_accepted_after_subcommand(tmp_path):
    out = str(tmp_path / "later")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["study", "--out", out])
    assert code == 0
    assert os.path.exists(os.path.join(out, "study_tables.txt"))
