"""Scaled-down unit coverage for the derived experiments."""

import math

import pytest

from repro.experiments import containment, fix_comparison, term_sweep


def test_containment_measure_shapes():
    results = containment.run()
    names = {r.mitigation for r in results}
    assert names == {"vanilla", "leaseos", "doze", "defdroid"}
    by_name = {r.mitigation: r for r in results}
    assert by_name["vanilla"].latency_s is None
    assert by_name["leaseos"].latency_s is not None
    text = containment.render(results)
    assert "healthy work preserved" in text


def test_term_sweep_tradeoff_monotone():
    rows = term_sweep.run(minutes=10.0, terms=(2.0, 10.0, 30.0))
    reductions = [r.reduction_pct for r in rows]
    updates = [r.normal_updates for r in rows]
    assert reductions == sorted(reductions, reverse=True)
    assert updates == sorted(updates, reverse=True)
    for row in rows:
        assert not math.isnan(row.first_deferral_s)
    assert "Lease-term sweep" in term_sweep.render(rows)


def test_fix_comparison_single_pair():
    pair = fix_comparison.PAIRS[1]  # Kontalk: the fastest cell
    grid = fix_comparison.run(minutes=10.0, pairs=(pair,))
    label = pair[0]
    assert grid[(label, "buggy", "leaseos")] < \
        0.2 * grid[(label, "buggy", "vanilla")]
    assert grid[(label, "fixed", "leaseos")] == pytest.approx(
        grid[(label, "fixed", "vanilla")], abs=0.5)
    assert label in fix_comparison.render(grid, pairs=(pair,))


def test_baseline_zoo_small():
    from repro.experiments import baseline_zoo

    grid = baseline_zoo.run(minutes=8.0, case_keys=("torch",))
    assert grid[("torch", "LeaseOS")] < 0.2 * grid[("torch", "vanilla")]
    assert grid[("torch", "Amplify")] == pytest.approx(
        grid[("torch", "vanilla")], rel=0.05)
    text = baseline_zoo.render(grid, case_keys=("torch",))
    assert "Amplify" in text


def test_deployment_estimate_scaled():
    from repro.experiments import deployment, table5
    from repro.apps.buggy import CASES_BY_KEY

    rows = table5.run(
        cases=[CASES_BY_KEY[k] for k in ("torch", "betterweather", "k9")],
        minutes=5.0,
    )
    estimate = deployment.run(devices=300, rows=rows)
    assert len(estimate.savings_mw) == 300
    assert estimate.mean_savings_mw >= 0.0
    assert 0.0 <= estimate.share_with_savings <= 1.0
    assert "population metric" in deployment.render(estimate)


def test_misleading_classifier_rows_shape():
    from repro.experiments import misleading_classifier

    rows = misleading_classifier.run(minutes=8.0)
    assert len(rows) == 6
    assert {r.name.split(" ")[-1] for r in rows} == {"(buggy)", "(normal)"}
