"""Tests for the plain-text plotting helpers."""

from repro.experiments.plotting import bar_chart, sparkline, time_series_plot


def test_sparkline_scales_to_range():
    line = sparkline([0, 5, 10])
    assert len(line) == 3
    assert line[0] == "."  # minimum maps to the lowest level
    assert line[-1] == "@"  # maximum maps to the highest


def test_sparkline_flat_series():
    line = sparkline([3.0, 3.0, 3.0])
    assert len(line) == 3
    assert len(set(line)) == 1


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_resampling_width():
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10


def test_bar_chart_alignment_and_peak():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="mW")
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") == 10  # the peak fills the width
    assert lines[0].count("#") == 5
    assert "mW" in lines[0]


def test_bar_chart_empty():
    assert bar_chart([], []) == ""


def test_time_series_plot_over_samples():
    class Sample:
        def __init__(self, v):
            self.metric = v

    samples = [Sample(float(i)) for i in range(5)]
    text = time_series_plot(samples, "metric")
    assert text.startswith("metric [0.00..4.00]")
    assert len(text.split()[-1]) == 5


def test_time_series_plot_no_samples():
    assert "(no samples)" in time_series_plot([], "metric")
