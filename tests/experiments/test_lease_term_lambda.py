"""Tests for Fig. 9 (lease terms) and Fig. 12 (lambda sweep)."""

import random

import pytest

from repro.apps.synthetic import random_slices
from repro.core.policy import waste_reduction_ratio
from repro.experiments.lambda_sweep import (
    PAPER_FIG12,
    _Trace,
    run as lambda_run,
    trace_reduction,
)
from repro.experiments.lease_term import (
    PAPER_FIG9A,
    PAPER_FIG9B,
    run_fig9a,
    run_fig9b,
)


def test_fig9a_matches_paper_within_tolerance():
    results = run_fig9a(minutes=30.0)
    for term, expected in PAPER_FIG9A.items():
        assert results[term] == pytest.approx(expected, rel=0.05), term


def test_fig9b_lambda_one_equalizes_terms():
    results = run_fig9b(minutes=30.0)
    for term, expected in PAPER_FIG9B.items():
        assert results[term] == pytest.approx(expected, rel=0.05), term


def test_no_lease_baseline_holds_full_duration():
    results = run_fig9a(minutes=10.0)
    assert results[float("inf")] == pytest.approx(600.0, abs=2.0)


# -- lambda sweep ------------------------------------------------------------

def test_trace_misbehavior_accounting():
    trace = _Trace([("misbehavior", 10.0), ("normal", 10.0),
                    ("misbehavior", 5.0)])
    assert trace.total == 25.0
    assert trace.misbehavior_in(0.0, 25.0) == pytest.approx(15.0)
    assert trace.misbehavior_in(5.0, 15.0) == pytest.approx(5.0)
    assert trace.misbehavior_in(10.0, 20.0) == pytest.approx(0.0)
    assert trace.misbehavior_in(20.0, 25.0) == pytest.approx(5.0)
    assert trace.misbehavior_in(7.0, 7.0) == 0.0


def test_single_misbehavior_slice_approaches_closed_form():
    """A long pure-misbehaviour trace follows r = lambda/(1+lambda)."""
    slices = [("misbehavior", 3600.0)]
    for lam in (1, 2, 5):
        reduction = trace_reduction(slices, term_s=5.0,
                                    deferral_s=5.0 * lam)
        assert reduction == pytest.approx(waste_reduction_ratio(lam),
                                          abs=0.01)


def test_pure_normal_trace_reduces_nothing():
    assert trace_reduction([("normal", 600.0)], 5.0, 25.0) == 0.0


def test_lambda_sweep_matches_paper_fig12():
    results = lambda_run(cases=60, slices_per_case=60, seed=7)
    for lam, expected in PAPER_FIG12.items():
        assert results[lam] == pytest.approx(expected, abs=0.04), lam


def test_lambda_sweep_monotone():
    results = lambda_run(cases=30, slices_per_case=40, seed=11)
    values = [results[lam] for lam in sorted(results)]
    assert values == sorted(values)


def test_trace_reduction_deterministic():
    rng = random.Random(5)
    slices = random_slices(rng, 50)
    assert trace_reduction(slices, 5.0, 25.0) == \
        trace_reduction(slices, 5.0, 25.0)
