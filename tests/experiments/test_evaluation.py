"""Shape tests for the main evaluation harnesses (Table 5, Figs. 13/14,
usability, battery life, microbench, lease activity, study tables)."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.experiments import (
    battery_life,
    lease_activity,
    latency,
    microbench,
    overhead,
    study_tables,
    table5,
    usability,
)


def test_table5_subset_preserves_paper_ordering():
    cases = [CASES_BY_KEY[k] for k in ("torch", "connectbot-screen",
                                       "betterweather")]
    rows = table5.run(cases=cases, minutes=10.0)
    by_key = {r.case.key: r for r in rows}
    # LeaseOS beats both baselines on every one of these rows.
    for row in rows:
        assert row.leaseos_reduction > row.doze_reduction
        assert row.leaseos_reduction > 60.0
    # Doze cannot touch screen wakelocks.
    assert by_key["connectbot-screen"].doze_reduction < 5.0
    # DefDroid is much weaker than LeaseOS on GPS.
    bw = by_key["betterweather"]
    assert bw.defdroid_reduction < bw.leaseos_reduction - 20.0
    # Rendering runs without error and mentions the averages.
    assert "Average reduction" in table5.render(rows)


def test_usability_contrast():
    rows = usability.run(minutes=15.0)
    assert all(r.leaseos_disruptions == 0 for r in rows)
    assert all(r.leaseos_deferrals == 0 for r in rows)
    assert all(r.throttle_disruptions >= 1 for r in rows)
    assert "Usability" in usability.render(rows)


def test_overhead_below_one_percent():
    settings = [s for s in overhead.SETTINGS
                if s.key in ("idle", "youtube")]
    rows = overhead.run(settings=settings, repeats=2)
    for __, base, lease in rows:
        pct = 100.0 * (lease - base) / base
        assert abs(pct) < 1.0
    assert "Fig. 13" in overhead.render(rows)


def test_latency_overhead_negligible():
    results = latency.run(touches=6)
    for kind, (without, with_lease) in results.items():
        assert without > 0
        assert abs(with_lease - without) / without < 0.02, kind
    assert "Fig. 14" in latency.render(results)


def test_battery_life_extension():
    result = battery_life.run(max_hours=30.0)
    assert result.hours_leaseos > result.hours_vanilla
    # Paper: +3 h on 12 h (+25%); the battery must be big enough that
    # standby (where the buggy GPS app wastes) dominates the contrast.
    assert result.extension_pct > 15.0
    assert "extends life" in battery_life.render(result)


def test_microbench_shape_update_dominates():
    wall = microbench.measure_wall_clock_ms(iterations=300)
    assert wall["update"] > wall["check_accept"]
    assert wall["update"] > wall["renew"]
    assert wall["check_accept"] < 0.5  # all ops are cheap in absolute terms
    assert "Table 4" in microbench.render(wall)


def test_microbench_modelled_latencies_expose_paper_numbers():
    modelled = microbench.modelled_latencies_ms()
    assert modelled["create"] == pytest.approx(0.357)
    assert modelled["update"] == pytest.approx(4.79)


def test_lease_activity_stats_plausible():
    result = lease_activity.run(active_minutes=10.0, idle_minutes=10.0,
                                app_count=6)
    assert result.created_total > 20
    assert result.samples
    assert result.mean_terms >= 1.0
    assert "created total" in lease_activity.render(result)


def test_study_tables_render():
    table1 = study_tables.render_table1()
    assert "GPS" in table1 and "yes*" in table1
    table2 = study_tables.render_table2()
    assert "Finding 1" in table2
    assert "Finding 2" in table2
    assert "31%" in table2 or "31.0" in table2 or "EUB" in table2
