"""Robustness sweeps: the profile sweep and its rendering."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.device.profiles import MOTO_G, PIXEL_XL
from repro.experiments import robustness, table5
from repro.experiments.grid import GridRunner, JobSpec
from repro.experiments.runner import reduction_pct

PROFILES = (PIXEL_XL, MOTO_G)
KEYS = ("torch",)


def sweep(runner=None):
    return robustness.profile_sweep(profiles=PROFILES, case_keys=KEYS,
                                    minutes=2.0, runner=runner)


def test_profile_sweep_keys_and_determinism():
    first = sweep()
    assert list(first) == [PIXEL_XL.name, MOTO_G.name]
    for value in first.values():
        assert isinstance(value, float)
    assert first == sweep()


def test_profile_sweep_matches_direct_per_profile_runs():
    swept = sweep()
    runner = GridRunner()
    for profile in PROFILES:
        reductions = []
        for key in KEYS:
            vanilla, leased = runner.run([
                JobSpec.make(CASES_BY_KEY[key], mitigation=m, minutes=2.0,
                             seed=7, profile=profile.name)
                for m in ("vanilla", "leaseos")])
            reductions.append(reduction_pct(vanilla.app_power_mw,
                                            leased.app_power_mw))
        expected = sum(reductions) / len(reductions)
        assert swept[profile.name] == pytest.approx(expected)


def test_profile_sweep_through_parallel_runner_matches_serial():
    runner = GridRunner(jobs=2)
    swept = sweep(runner=runner)
    assert runner.stats.submitted == len(PROFILES) * len(KEYS) * 2
    assert swept == sweep()


def test_render_shows_both_tables():
    seed_results = robustness.seed_sweep(seeds=(7, 21), case_keys=KEYS,
                                         minutes=2.0)
    text = robustness.render(seed_results, sweep())
    assert "Seed robustness" in text
    assert "Hardware robustness" in text
    assert PIXEL_XL.name in text and MOTO_G.name in text
    assert "spread" in text


def test_seed_sweep_uses_table5_averages():
    results = robustness.seed_sweep(seeds=(7,), case_keys=KEYS,
                                    minutes=2.0)
    rows = table5.run(cases=[CASES_BY_KEY[k] for k in KEYS], minutes=2.0,
                      seed=7)
    assert results[7] == table5.averages(rows)
