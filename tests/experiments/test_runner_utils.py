"""Tests for the shared experiment plumbing and the robustness sweeps."""

import pytest

from repro.apps.buggy import CASES_BY_KEY
from repro.experiments.runner import format_table, reduction_pct, run_case
from repro.experiments import robustness
from repro.mitigation import LeaseOS


def test_reduction_pct():
    assert reduction_pct(100.0, 25.0) == pytest.approx(75.0)
    assert reduction_pct(0.0, 10.0) == 0.0
    assert reduction_pct(50.0, 50.0) == 0.0


def test_format_table_alignment_and_title():
    text = format_table(["col", "x"], [["a", 1.5], ["bbbb", 22]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "col" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.50" in lines[3]
    assert "bbbb" in lines[4]


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_run_case_returns_structured_result():
    result = run_case(CASES_BY_KEY["torch"], LeaseOS, minutes=2.0, seed=5)
    assert result.case_key == "torch"
    assert result.mitigation == "leaseos"
    assert result.app_power_mw >= 0.0
    assert result.system_power_mw >= result.app_power_mw
    assert result.phone.sim.now == pytest.approx(120.0)


def test_run_case_warmup_excluded_from_window():
    result = run_case(CASES_BY_KEY["torch"], None, minutes=2.0, seed=5,
                      warmup_s=30.0)
    assert result.phone.sim.now == pytest.approx(150.0)


def test_seed_sweep_small():
    # Short single-case windows make Doze noisy (it lives and dies by
    # the ambient-interruption draw), so only the stable orderings are
    # asserted here; the full sweep is in benchmarks.
    results = robustness.seed_sweep(seeds=(3, 4), case_keys=("torch",),
                                    minutes=10.0)
    assert set(results) == {3, 4}
    for avg in results.values():
        assert avg["leaseos"] > avg["defdroid"]
        assert avg["leaseos"] > 85.0


def test_profile_sweep_small():
    from repro.device.profiles import MOTO_G, PIXEL_XL

    results = robustness.profile_sweep(
        profiles=(PIXEL_XL, MOTO_G), case_keys=("torch",), minutes=5.0
    )
    values = list(results.values())
    assert len(values) == 2
    # The reduction is a property of the mechanism, not the hardware.
    assert abs(values[0] - values[1]) < 5.0
