"""Shared fixtures for the test suite."""

import pytest

from repro.device.profiles import PIXEL_XL
from repro.droid.phone import Phone
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def phone():
    """A plain (vanilla) phone, ambient events off for determinism."""
    return Phone(profile=PIXEL_XL, seed=1234, ambient=False)


def make_phone(**kwargs):
    kwargs.setdefault("seed", 1234)
    kwargs.setdefault("ambient", False)
    return Phone(**kwargs)


@pytest.fixture
def phone_factory():
    return make_phone
