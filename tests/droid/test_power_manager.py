"""Tests for wakelocks and the PowerManagerService."""

import pytest

from repro.droid.app import App
from repro.droid.power_manager import WakeLockLevel


class Holder(App):
    app_name = "holder"


@pytest.fixture
def setup(phone):
    app = phone.install(Holder(), start=False)
    return phone, app


def test_acquire_keeps_device_awake(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    phone.run_for(seconds=10.0)
    assert phone.suspend.suspended  # created but not acquired
    lock.acquire()
    assert phone.suspend.awake
    assert "wakelock" in phone.suspend.reasons
    lock.release()
    assert phone.suspend.suspended


def test_refcounting_requires_matching_releases(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    lock.acquire()
    lock.release()
    assert lock.held
    assert lock._record.os_active
    lock.release()
    assert not lock.held
    with pytest.raises(RuntimeError):
        lock.release()


def test_awake_power_attributed_to_holder(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    mark = phone.energy_mark()
    phone.run_for(seconds=100.0)
    expected = phone.profile.cpu_awake_idle_mw
    assert phone.power_since(mark, app.uid) == pytest.approx(expected)


def test_revoke_and_restore_preserve_app_view(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    record = lock._record
    phone.power.revoke(record)
    assert lock.held  # app-side descriptor untouched
    assert not record.os_active
    assert phone.suspend.suspended
    phone.power.restore(record)
    assert record.os_active
    assert phone.suspend.awake


def test_restore_noop_if_app_released_meanwhile(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    record = lock._record
    phone.power.revoke(record)
    lock.release()
    phone.power.restore(record)
    assert not record.os_active


def test_gate_denial_pretends_success(setup):
    phone, app = setup
    phone.power.gates.append(lambda record: False)
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    assert lock.held  # the app believes it succeeded
    assert not lock._record.os_active  # but the OS did nothing
    assert lock._record.pretended_acquires == 1
    assert phone.suspend.suspended


def test_screen_wakelock_turns_screen_on(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "s",
                                    level=WakeLockLevel.SCREEN_BRIGHT)
    lock.acquire()
    assert phone.display.screen_on
    lock.release()
    assert not phone.display.screen_on


def test_screen_power_attributed_to_lock_holder(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "s",
                                    level=WakeLockLevel.SCREEN_BRIGHT)
    lock.acquire()
    mark = phone.energy_mark()
    phone.run_for(seconds=10.0)
    power = phone.power_since(mark, app.uid)
    assert power >= phone.profile.screen_on_mw


def test_kill_app_locks_marks_dead(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    phone.power.kill_app_locks(app.uid)
    record = lock._record
    assert record.dead
    assert not record.os_active
    assert phone.suspend.suspended


def test_acquire_on_dead_lock_raises(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    phone.power.kill_app_locks(app.uid)
    with pytest.raises(RuntimeError):
        lock.acquire()


def test_interaction_credits_screen_locks(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "s",
                                    level=WakeLockLevel.SCREEN_BRIGHT)
    lock.acquire()
    phone.touch(app.uid)
    phone.touch(app.uid)
    assert lock._record.interactions == 2


def test_listeners_receive_lifecycle_events(setup):
    phone, app = setup
    events = []

    class Listener:
        def on_wakelock_created(self, record):
            events.append("created")

        def on_wakelock_acquire(self, record, allowed):
            events.append(("acquire", allowed))

        def on_wakelock_release(self, record):
            events.append("release")

    phone.power.listeners.append(Listener())
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire()
    lock.release()
    assert events == ["created", ("acquire", True), "release"]


def test_timeout_acquire_self_releases(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire(timeout_s=5.0)
    phone.run_for(seconds=6.0)
    assert not lock.held


def test_plain_acquire_supersedes_stale_timeout(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire(timeout_s=5.0)
    lock.release()
    lock.acquire()  # plain acquire: the old timer must not kill it
    phone.run_for(seconds=10.0)
    assert lock.held


def test_release_cancels_pending_timeout(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire(timeout_s=5.0)
    lock.release()
    phone.run_for(seconds=6.0)  # timer fires: must be a no-op
    lock.acquire()
    assert lock.held


def test_reacquire_with_new_timeout_extends(setup):
    phone, app = setup
    lock = phone.power.new_wakelock(app, "w")
    lock.acquire(timeout_s=5.0)
    phone.run_for(seconds=3.0)
    lock.acquire(timeout_s=10.0)  # re-arm before the first expires
    phone.run_for(seconds=5.0)  # t=8: old deadline passed, still held
    assert lock.held
    phone.run_for(seconds=6.0)  # t=14: past the new deadline
    # Refcounted: the timeout released one reference; one remains.
    assert lock.held
    lock.release()
    assert not lock.held
