"""Tests for SensorManagerService, WifiService and AudioService."""

import pytest

from repro.droid.app import App
from repro.droid.sensors import SensorType


class Client(App):
    app_name = "client"

    def __init__(self):
        super().__init__()
        self.readings = []

    def listener(self, reading):
        self.readings.append(reading)


@pytest.fixture
def client(phone):
    return phone, phone.install(Client(), start=False)


# -- sensors -----------------------------------------------------------------

def test_sensor_registration_delivers_readings(client):
    phone, app = client
    registration = phone.sensors.register_listener(
        app, SensorType.ACCELEROMETER, app.listener, rate_hz=5.0
    )
    phone.run_for(seconds=10.0)
    assert len(app.readings) >= 8  # capped at 1 Hz delivery
    registration.unregister()
    count = len(app.readings)
    phone.run_for(seconds=10.0)
    assert len(app.readings) == count


def test_sensor_power_attributed(client):
    phone, app = client
    phone.sensors.register_listener(
        app, SensorType.ORIENTATION, app.listener, rate_hz=5.0
    )
    mark = phone.energy_mark()
    phone.run_for(seconds=100.0)
    assert phone.power_since(mark, app.uid) == pytest.approx(
        phone.profile.sensor_mw, rel=0.01
    )


def test_sensor_rate_scales_power(client):
    phone, app = client
    record = phone.sensors.register_listener(
        app, SensorType.ACCELEROMETER, app.listener, rate_hz=10.0
    ).record
    rail = "sensor:accelerometer:{}".format(record.token.id)
    assert phone.monitor.rail_power(rail) == pytest.approx(
        phone.profile.sensor_mw * 2.0
    )


def test_sensor_revoke_restore(client):
    phone, app = client
    registration = phone.sensors.register_listener(
        app, SensorType.ACCELEROMETER, app.listener
    )
    phone.run_for(seconds=5.0)
    count = len(app.readings)
    phone.sensors.revoke(registration.record)
    phone.run_for(seconds=10.0)
    assert len(app.readings) == count
    phone.sensors.restore(registration.record)
    phone.run_for(seconds=5.0)
    assert len(app.readings) > count


def test_sensor_consumer_time(client):
    phone, app = client
    registration = phone.sensors.register_listener(
        app, SensorType.ACCELEROMETER, app.listener
    )
    phone.run_for(seconds=10.0)
    registration.set_consumer_active(False)
    phone.run_for(seconds=10.0)
    phone.sensors.settle_stats()
    assert registration.record.consumer_active_time == pytest.approx(
        10.0, abs=0.5
    )


# -- wifi ------------------------------------------------------------------

def test_wifi_lock_power_and_release(client):
    phone, app = client
    lock = phone.wifi.new_lock(app)
    lock.acquire()
    mark = phone.energy_mark()
    phone.run_for(seconds=50.0)
    assert phone.power_since(mark, app.uid) == pytest.approx(
        phone.profile.wifi_lock_mw
    )
    lock.release()
    assert phone.monitor.rail_power("wifi_lock") == 0.0
    with pytest.raises(RuntimeError):
        lock.release()


def test_wifi_transfer_credit(client):
    phone, app = client
    lock = phone.wifi.new_lock(app)
    lock.acquire()
    phone.wifi.note_transfer(app.uid, 3.0)
    record = [r for r in phone.wifi.records if r.uid == app.uid][0]
    assert record.transfer_time == pytest.approx(3.0)


def test_wifi_revoke_restore(client):
    phone, app = client
    lock = phone.wifi.new_lock(app)
    lock.acquire()
    record = [r for r in phone.wifi.records if r.uid == app.uid][0]
    phone.wifi.revoke(record)
    assert phone.monitor.rail_power("wifi_lock") == 0.0
    assert lock.held
    phone.wifi.restore(record)
    assert phone.monitor.rail_power("wifi_lock") == \
        phone.profile.wifi_lock_mw


# -- audio ----------------------------------------------------------------

def test_audio_playback_power(client):
    phone, app = client
    session = phone.audio.open_session(app)
    session.start_playback()
    mark = phone.energy_mark()
    phone.run_for(seconds=20.0)
    assert phone.power_since(mark, app.uid) == pytest.approx(
        phone.profile.audio_mw
    )
    session.stop_playback()
    phone.run_for(seconds=5.0)
    record = session.record
    record.settle_playback(phone.sim.now)
    assert record.playback_time == pytest.approx(20.0)


def test_audio_revoke_silences(client):
    phone, app = client
    session = phone.audio.open_session(app)
    session.start_playback()
    phone.run_for(seconds=5.0)
    phone.audio.revoke(session.record)
    mark = phone.energy_mark()
    phone.run_for(seconds=10.0)
    assert phone.power_since(mark, app.uid) == pytest.approx(0.0)
    phone.audio.restore(session.record)


def test_audio_close_marks_dead(client):
    phone, app = client
    session = phone.audio.open_session(app)
    session.start_playback()
    session.close()
    assert session.record.dead
    assert phone.monitor.rail_power(
        "audio:{}".format(session.record.token.id)
    ) == 0.0
