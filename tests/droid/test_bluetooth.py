"""Tests for the BluetoothService and its lease integration."""

import pytest

from repro.apps.buggy.bluetooth_apps import EXTRA_CASES, WatchCompanion
from repro.core.behavior import BehaviorType
from repro.droid.app import App
from repro.droid.bluetooth import BluetoothMode
from repro.mitigation import DefDroid, LeaseOS

from tests.conftest import make_phone


class BtApp(App):
    app_name = "btapp"

    def __init__(self):
        super().__init__()
        self.results = []

    def listener(self, result):
        self.results.append(result)


@pytest.fixture
def bt(phone):
    return phone, phone.install(BtApp(), start=False)


def test_discovery_burns_more_than_connection(bt):
    phone, app = bt
    discovery = phone.bluetooth.start_discovery(app, app.listener)
    rail = "bluetooth:{}".format(discovery.record.token.id)
    assert phone.monitor.rail_power(rail) == \
        phone.profile.bluetooth_discovery_mw
    discovery.close()
    connection = phone.bluetooth.connect(app)
    rail = "bluetooth:{}".format(connection.record.token.id)
    assert phone.monitor.rail_power(rail) == \
        phone.profile.bluetooth_connected_mw
    assert phone.profile.bluetooth_discovery_mw > \
        phone.profile.bluetooth_connected_mw


def test_discovery_delivers_results(bt):
    phone, app = bt
    session = phone.bluetooth.start_discovery(app, app.listener)
    phone.run_for(seconds=30.0)
    assert len(app.results) >= 5
    session.close()
    count = len(app.results)
    phone.run_for(seconds=30.0)
    assert len(app.results) == count


def test_revoke_restore_preserves_app_view(bt):
    phone, app = bt
    session = phone.bluetooth.start_discovery(app, app.listener)
    phone.bluetooth.revoke(session.record)
    assert session.record.app_held
    assert not session.record.os_active
    phone.bluetooth.restore(session.record)
    assert session.record.os_active


def test_kill_app_sessions(bt):
    phone, app = bt
    session = phone.bluetooth.start_discovery(app, app.listener)
    phone.kill_app(app.uid)
    assert session.record.dead
    assert not session.record.os_active


def test_consumer_time_tracking(bt):
    phone, app = bt
    session = phone.bluetooth.start_discovery(app, app.listener)
    phone.run_for(seconds=10.0)
    session.set_consumer_active(False)
    phone.run_for(seconds=10.0)
    phone.bluetooth.settle_stats()
    assert session.record.consumer_active_time == pytest.approx(10.0,
                                                                abs=0.5)


def test_leaked_discovery_judged_lhb_and_deferred():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    app = phone.install(WatchCompanion())
    mark = phone.energy_mark()
    phone.run_for(minutes=10.0)
    behaviors = {
        d.behavior for d in mitigation.manager.decisions
        if d.lease.uid == app.uid and d.behavior.is_misbehavior
    }
    assert BehaviorType.LHB in behaviors
    # The leaked scan's draw collapses far below the discovery rail.
    assert phone.power_since(mark, app.uid) < \
        0.3 * phone.profile.bluetooth_discovery_mw


def test_leaked_discovery_under_defdroid():
    phone = make_phone(mitigation=DefDroid())
    app = phone.install(WatchCompanion())
    mark = phone.energy_mark()
    phone.run_for(minutes=10.0)
    power = phone.power_since(mark, app.uid)
    discovery = phone.profile.bluetooth_discovery_mw
    assert power < 0.8 * discovery  # throttled...
    assert power > 0.15 * discovery  # ...but more gently than LeaseOS


def test_extension_case_spec_registered():
    assert EXTRA_CASES[0].resource.value == "bluetooth"
    assert EXTRA_CASES[0].behavior is BehaviorType.LHB
