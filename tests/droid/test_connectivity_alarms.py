"""Tests for ConnectivityService, AlarmManager, IPC and exceptions."""

import pytest

from repro.droid.app import App
from repro.droid.exceptions import (
    NoRouteException,
    ServerErrorException,
    SocketTimeoutException,
)
from repro.env.network import ServerMode


class NetApp(App):
    app_name = "netapp"

    def __init__(self):
        super().__init__()
        self.outcomes = []

    def fetch(self, server):
        try:
            outcome = yield from self.http(server, payload_s=0.5)
            self.outcomes.append(outcome.status)
        except Exception as exc:  # noqa: BLE001 - recording for asserts
            self.outcomes.append(type(exc).__name__)


def test_successful_request_takes_time_and_power(phone):
    app = phone.install(NetApp(), start=False)
    lock = phone.power.new_wakelock(app, "net")
    lock.acquire()
    mark = phone.energy_mark()
    app.spawn(app.fetch("server"))
    phone.run_for(seconds=5.0)
    assert app.outcomes == ["ok"]
    # Transfer power was attributed (wifi active for ~0.5-0.7 s).
    energy = phone.monitor.ledger.app_rail_mj(
        app.uid, "net:{}".format(app.uid)
    )
    assert energy > 0.4 * phone.profile.wifi_active_mw


def test_error_server_raises_and_notes_exception(phone):
    phone.env.network.set_server("bad", ServerMode.ERROR)
    app = phone.install(NetApp(), start=False)
    lock = phone.power.new_wakelock(app, "net")
    lock.acquire()
    app.spawn(app.fetch("bad"))
    phone.run_for(seconds=5.0)
    assert app.outcomes == ["ServerErrorException"]
    assert phone.exceptions.total(app.uid) == 1


def test_disconnected_raises_no_route(phone_factory):
    phone = phone_factory(connected=False)
    app = phone.install(NetApp(), start=False)
    lock = phone.power.new_wakelock(app, "net")
    lock.acquire()
    app.spawn(app.fetch("anything"))
    phone.run_for(seconds=5.0)
    assert app.outcomes == ["NoRouteException"]


def test_suspend_interrupts_transfer_with_timeout(phone):
    app = phone.install(NetApp(), start=False)
    lock = phone.power.new_wakelock(app, "net")
    lock.acquire()
    app.spawn(app.fetch("server"))
    phone.run_for(seconds=0.1)  # mid-transfer
    lock.release()  # device suspends, radio stops
    assert phone.suspend.suspended
    lock.acquire()  # wake up again; the transfer resumes and fails
    phone.run_for(seconds=5.0)
    assert app.outcomes == ["SocketTimeoutException"]


def test_restrictor_denies_background_requests(phone):
    phone.net.restrictor = lambda uid: False
    app = phone.install(NetApp(), start=False)
    lock = phone.power.new_wakelock(app, "net")
    lock.acquire()
    app.spawn(app.fetch("server"))
    phone.run_for(seconds=5.0)
    assert app.outcomes == ["NoRouteException"]


def test_radio_power_uses_cellular_rate(phone_factory):
    phone = phone_factory(connected=True, network_kind="cellular")
    app = phone.install(NetApp(), start=False)
    lock = phone.power.new_wakelock(app, "net")
    lock.acquire()
    app.spawn(app.fetch("server"))
    phone.run_for(seconds=0.05)
    assert phone.monitor.rail_power("net:{}".format(app.uid)) == \
        phone.profile.radio_active_mw


# -- alarms ------------------------------------------------------------------

def test_oneshot_alarm_fires_and_wakes_device(phone):
    fired = []
    phone.alarms.set(1, 10.0, lambda: fired.append(phone.sim.now))
    assert phone.suspend.suspended
    phone.run_for(seconds=11.0)
    assert fired == [10.0]
    assert phone.alarms.fired_count == 1


def test_repeating_alarm(phone):
    fired = []
    alarm = phone.alarms.set_repeating(
        1, 5.0, lambda: fired.append(phone.sim.now)
    )
    phone.run_for(seconds=16.0)
    assert fired == [5.0, 10.0, 15.0]
    alarm.cancel()
    phone.run_for(seconds=20.0)
    assert len(fired) == 3


def test_cancelled_alarm_never_fires(phone):
    fired = []
    alarm = phone.alarms.set(1, 5.0, lambda: fired.append(1))
    alarm.cancel()
    phone.run_for(seconds=10.0)
    assert fired == []


def test_alarm_policy_can_defer(phone):
    deferred = []

    class Policy:
        def intercept_alarm(self, alarm):
            deferred.append(alarm)
            return True

    phone.alarms.policy = Policy()
    phone.alarms.set(1, 5.0, lambda: None)
    phone.run_for(seconds=10.0)
    assert len(deferred) == 1
    assert phone.alarms.fired_count == 0
    phone.alarms.policy = None
    phone.alarms.deliver_now(deferred[0])
    assert phone.alarms.fired_count == 1


def test_repeating_alarm_survives_policy_deferral(phone):
    swallowed = []

    class Policy:
        def intercept_alarm(self, alarm):
            swallowed.append(phone.sim.now)
            return True

    phone.alarms.policy = Policy()
    phone.alarms.set_repeating(1, 5.0, lambda: None)
    phone.run_for(seconds=16.0)
    assert swallowed == [5.0, 10.0, 15.0]


# -- ipc + exceptions --------------------------------------------------------

def test_ipc_records_calls_and_latency(phone):
    latency = phone.ipc.record(10001, "power", "acquire")
    assert latency == pytest.approx(phone.profile.ipc_latency_s)
    assert phone.ipc.call_count(10001) == 1
    assert phone.ipc.total_latency_s(10001) == pytest.approx(latency)


def test_ipc_overhead_hooks(phone):
    phone.ipc.add_overhead_hook(lambda uid, svc, m: 0.001)
    latency = phone.ipc.record(1, "power", "acquire")
    assert latency == pytest.approx(phone.profile.ipc_latency_s + 0.001)


def test_exception_window_counting(phone):
    handler = phone.exceptions

    class Boom(Exception):
        severe = True

    handler.note(5, Boom())
    phone.run_for(seconds=10.0)
    handler.note(5, Boom())
    assert handler.count_in_window(5, 0.0, 5.0) == 1
    assert handler.count_in_window(5, 0.0, 11.0) == 2
    assert handler.count_in_window(5, 5.0, 9.0) == 0
    assert handler.total(5) == 2


def test_non_severe_exceptions_ignored(phone):
    class Mild(Exception):
        severe = False

    phone.exceptions.note(5, Mild())
    assert phone.exceptions.total(5) == 0
