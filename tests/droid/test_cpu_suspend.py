"""Tests for the CPU power model and suspend controller."""

import pytest

from repro.device.power import PowerMonitor
from repro.device.profiles import PIXEL_XL
from repro.droid.cpu import CpuPowerModel
from repro.droid.suspend import SuspendController
from repro.sim.engine import Simulator
from repro.sim.events import Timeout


def make_stack():
    sim = Simulator()
    monitor = PowerMonitor(sim, PIXEL_XL)
    cpu = CpuPowerModel(sim, monitor, PIXEL_XL)
    suspend = SuspendController(sim, cpu)
    return sim, monitor, cpu, suspend


def test_cpu_time_accrues_while_computing():
    sim, __, cpu, __ = make_stack()
    cpu.begin_compute(1, cores=2.0)
    sim.run_until(5.0)
    assert cpu.cpu_time(1) == pytest.approx(10.0)  # core-seconds
    cpu.end_compute(1, cores=2.0)
    sim.run_until(10.0)
    assert cpu.cpu_time(1) == pytest.approx(10.0)


def test_compute_rail_attribution():
    sim, monitor, cpu, __ = make_stack()
    cpu.begin_compute(7)
    sim.run_until(2.0)
    monitor.settle()
    assert monitor.ledger.app_total_mj(7) == pytest.approx(
        2.0 * PIXEL_XL.cpu_active_mw
    )


def test_cores_capped_at_profile():
    sim, __, cpu, __ = make_stack()
    cpu.begin_compute(1, cores=100.0)
    sim.run_until(1.0)
    assert cpu.cpu_time(1) == pytest.approx(PIXEL_XL.cpu_cores)


def test_suspend_stops_cpu_time_and_drops_rail():
    sim, monitor, cpu, __ = make_stack()
    cpu.begin_compute(1)
    sim.run_until(2.0)
    cpu.set_suspended(True)
    sim.run_until(10.0)
    assert cpu.cpu_time(1) == pytest.approx(2.0)
    assert monitor.rail_power("cpu_active:1") == 0.0
    assert monitor.rail_power(CpuPowerModel.BASE_RAIL) == \
        PIXEL_XL.cpu_sleep_mw
    cpu.set_suspended(False)
    sim.run_until(11.0)
    assert cpu.cpu_time(1) == pytest.approx(3.0)


def test_awake_owner_attribution():
    sim, monitor, cpu, __ = make_stack()
    cpu.set_awake_owners([5])
    sim.run_until(3.0)
    monitor.settle()
    assert monitor.ledger.app_total_mj(5) == pytest.approx(
        3.0 * PIXEL_XL.cpu_awake_idle_mw
    )


def test_suspend_controller_suspends_without_reasons():
    __, __, cpu, suspend = make_stack()
    suspend._reevaluate()
    assert suspend.suspended
    suspend.add_reason("wakelock")
    assert not suspend.suspended
    suspend.remove_reason("wakelock")
    assert suspend.suspended
    assert suspend.suspend_count == 2


def test_hold_awake_expires():
    sim, __, __, suspend = make_stack()
    suspend._reevaluate()
    suspend.hold_awake("launch", 5.0)
    assert suspend.awake
    sim.run_until(6.0)
    assert suspend.suspended


def test_suspend_freezes_provided_processes():
    sim, __, cpu, suspend = make_stack()
    log = []

    def worker():
        yield Timeout(10.0)
        log.append(sim.now)

    proc = sim.spawn(worker())
    suspend.set_process_provider(lambda: [proc])
    suspend.add_reason("screen")
    sim.run_until(2.0)
    suspend.remove_reason("screen")  # suspend at t=2, 8s sleep remains
    sim.run_until(20.0)
    assert log == []
    suspend.add_reason("screen")  # wake at t=20
    sim.run_until(30.0)
    assert log == [pytest.approx(28.0)]


def test_transition_listeners_notified():
    __, __, __, suspend = make_stack()
    events = []
    suspend.on_transition(events.append)
    suspend._reevaluate()
    suspend.add_reason("x")
    suspend.remove_reason("x")
    assert events == [True, False, True]


def test_suspended_time_accounting():
    sim, __, __, suspend = make_stack()
    suspend._reevaluate()  # suspended at 0
    sim.run_until(10.0)
    suspend.add_reason("x")
    sim.run_until(15.0)
    suspend.remove_reason("x")
    sim.run_until(20.0)
    assert suspend.suspended_time() == pytest.approx(15.0)
