"""Tests for binder tokens and kernel-object accounting."""

import pytest

from repro.droid.resources import IBinder, KernelObject, ResourceType
from repro.sim.engine import Simulator


def test_binder_tokens_unique_and_hashable():
    a, b = IBinder(), IBinder()
    assert a != b
    assert a == a
    assert len({a, b, a}) == 2


def test_kernel_object_held_time_accounting():
    sim = Simulator()
    obj = KernelObject(sim, 1, ResourceType.WAKELOCK, "k")
    obj.mark_held(True)
    sim.run_until(10.0)
    obj.settle()
    assert obj.held_time == pytest.approx(10.0)
    obj.mark_held(False)
    sim.run_until(20.0)
    obj.settle()
    assert obj.held_time == pytest.approx(10.0)


def test_active_vs_held_diverge_under_revocation():
    """The app-view (held) and OS-view (active) are independent clocks."""
    sim = Simulator()
    obj = KernelObject(sim, 1, ResourceType.WAKELOCK)
    obj.mark_held(True)
    obj.mark_active(True)
    sim.run_until(5.0)
    obj.mark_active(False)  # governor revoked; app still believes it holds
    sim.run_until(12.0)
    counters = obj.counters()
    assert counters["held_time"] == pytest.approx(12.0)
    assert counters["active_time"] == pytest.approx(5.0)


def test_double_mark_active_is_idempotent():
    sim = Simulator()
    obj = KernelObject(sim, 1, ResourceType.GPS)
    obj.mark_active(True)
    sim.run_until(3.0)
    obj.mark_active(True)
    sim.run_until(6.0)
    obj.settle()
    assert obj.active_time == pytest.approx(6.0)


def test_counters_snapshot_contains_counts():
    sim = Simulator()
    obj = KernelObject(sim, 1, ResourceType.SENSOR)
    obj.acquire_count = 3
    obj.release_count = 2
    counters = obj.counters()
    assert counters["acquire_count"] == 3
    assert counters["release_count"] == 2
