"""Tests for the JobScheduler and its Doze integration."""

import pytest

from repro.droid.app import App
from repro.mitigation.doze import Doze, DozeState

from tests.conftest import make_phone


class SyncApp(App):
    app_name = "syncapp"

    def __init__(self, requires_network=False):
        super().__init__()
        self.requires_network = requires_network
        self.runs = []

    def on_start(self):
        self.job = self.ctx.jobs.schedule(
            self, 30.0, self._sync, requires_network=self.requires_network
        )

    def _sync(self):
        self.runs.append(self.ctx.sim.now)
        yield from self.compute(0.5)
        self.note_data_write()


def test_job_runs_periodically_even_from_deep_sleep(phone):
    app = phone.install(SyncApp())
    phone.run_for(minutes=5.0)
    assert len(app.runs) == pytest.approx(10, abs=2)
    # Between runs the device actually sleeps.
    assert phone.suspend.suspend_count > 3


def test_job_wakelock_released_after_run(phone):
    app = phone.install(SyncApp())
    phone.run_for(minutes=2.0)
    phone.run_for(seconds=15.0)  # mid-interval
    records = [r for r in phone.power.records if r.uid == app.uid]
    assert records
    assert not any(r.app_held for r in records)


def test_network_constraint_defers_runs(phone_factory):
    phone = phone_factory(connected=False)
    app = phone.install(SyncApp(requires_network=True))
    phone.run_for(minutes=3.0)
    assert app.runs == []
    assert app.job.deferred_count >= 3
    phone.env.network.set_connected(True)
    phone.run_for(minutes=2.0)
    assert app.runs  # retried once the constraint was met


def test_cancelled_job_stops(phone):
    app = phone.install(SyncApp())
    phone.run_for(minutes=2.0)
    count = len(app.runs)
    app.job.cancel()
    phone.run_for(minutes=3.0)
    assert len(app.runs) == count


def test_doze_defers_jobs_until_maintenance():
    doze = Doze(aggressive=True, maintenance_interval_s=300.0,
                maintenance_window_s=20.0)
    phone = make_phone(mitigation=doze)
    app = phone.install(SyncApp())
    phone.run_for(minutes=4.0)
    assert doze.state is DozeState.DOZING
    runs_before_maintenance = len(app.runs)
    phone.run_for(minutes=2.0)  # through the maintenance window
    assert len(app.runs) > runs_before_maintenance
    # Dozing swallowed most of the ~8 would-be runs.
    assert len(app.runs) < 6


def test_dumpsys_batterystats_blames_heavy_app(phone):
    class Burner(App):
        app_name = "burner"

        def run(self):
            lock = self.ctx.power.new_wakelock(self, "b")
            lock.acquire()
            while True:
                yield from self.compute(0.8)
                yield self.sleep(0.2)

    app = phone.install(Burner())
    phone.run_for(minutes=5.0)
    report = phone.dumpsys_batterystats()
    assert "burner" in report
    assert "deep sleep" in report
    first_app_line = [l for l in report.splitlines()
                      if "burner" in l][0]
    assert "mW" in first_app_line
