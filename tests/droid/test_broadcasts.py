"""Tests for the broadcast system."""

import pytest

from repro.droid.app import App
from repro.droid.broadcasts import BroadcastManager


class Listener(App):
    app_name = "listener"

    def __init__(self):
        super().__init__()
        self.events = []

    def on_start(self):
        self.registration = self.ctx.broadcasts.register(
            self, BroadcastManager.CONNECTIVITY_CHANGE, self.events.append
        )


def test_connectivity_broadcast_wired_to_environment(phone):
    app = phone.install(Listener())
    phone.env.network.set_connected(False)
    phone.env.network.set_connected(True, kind="cellular")
    assert app.events == [
        {"connected": False, "kind": None},
        {"connected": True, "kind": "cellular"},
    ]


def test_broadcast_wakes_suspended_device(phone):
    phone.install(Listener())
    phone.run_for(seconds=10.0)
    assert phone.suspend.suspended
    phone.env.network.set_connected(False)
    assert phone.suspend.awake  # delivery window
    phone.run_for(seconds=5.0)
    assert phone.suspend.suspended


def test_unregister_stops_delivery(phone):
    app = phone.install(Listener())
    app.registration.unregister()
    phone.env.network.set_connected(False)
    assert app.events == []


def test_kill_app_unregisters(phone):
    app = phone.install(Listener())
    phone.kill_app(app.uid)
    phone.env.network.set_connected(False)
    assert app.events == []


def test_publish_with_no_receivers_is_cheap(phone):
    delivered = phone.broadcasts.publish("custom-action", {"x": 1})
    assert delivered == 0
    assert phone.suspend.suspended or phone.suspend.awake  # no crash


def test_custom_action_roundtrip(phone):
    app = phone.install(Listener())
    got = []
    phone.broadcasts.register(app, "battery-low", got.append)
    count = phone.broadcasts.publish(BroadcastManager.BATTERY_LOW,
                                     {"level": 0.05})
    assert count == 1
    assert got == [{"level": 0.05}]
