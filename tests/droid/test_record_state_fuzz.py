"""Stateful fuzz of one wakelock record's held/active clocks.

Random interleavings of acquire / release / revoke / restore / advance
must keep the kernel-object accounting consistent: active time never
exceeds held time, both are monotone, and the app view is never
corrupted by governor operations.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.droid.app import App

from tests.conftest import make_phone

_OPS = st.sampled_from(["acquire", "release", "revoke", "restore",
                        "advance"])


@settings(max_examples=60, deadline=None)
@given(script=st.lists(st.tuples(_OPS,
                                 st.floats(min_value=0.1, max_value=30.0)),
                       min_size=1, max_size=30))
def test_wakelock_record_clock_invariants(script):
    phone = make_phone()
    app = phone.install(App(name="fuzz"), start=False)
    lock = phone.power.new_wakelock(app, "fuzz")
    record = lock._record

    prev_held = prev_active = 0.0
    for op, delay in script:
        if op == "acquire" and not lock.held:
            lock.acquire()
        elif op == "release" and lock.held:
            lock.release()
        elif op == "revoke":
            phone.power.revoke(record)
        elif op == "restore":
            phone.power.restore(record)
        elif op == "advance":
            phone.run_for(seconds=delay)

        record.settle()
        # Monotone clocks.
        assert record.held_time >= prev_held - 1e-9
        assert record.active_time >= prev_active - 1e-9
        prev_held, prev_active = record.held_time, record.active_time
        # Honoured time can never outrun the app's holding time.
        assert record.active_time <= record.held_time + 1e-6
        # A governor can only suppress, never fabricate, holding.
        if record.os_active:
            assert record.app_held
        # The app's own view matches its refcount.
        assert record.app_held == lock.held

    # Final consistency: suspend reason tracks honoured locks.
    honoured = any(r.os_active for r in phone.power.records)
    assert ("wakelock" in phone.suspend.reasons) == honoured
