"""Tests for the DisplayService."""

import pytest

from repro.droid.app import App
from repro.droid.display import ScreenState
from repro.droid.power_manager import WakeLockLevel


class Holder(App):
    app_name = "holder"


def test_user_screen_toggling(phone):
    assert phone.display.state is ScreenState.OFF
    phone.screen_on()
    assert phone.display.state is ScreenState.ON
    assert "screen" in phone.suspend.reasons
    phone.screen_off()
    assert phone.display.state is ScreenState.OFF
    assert "screen" not in phone.suspend.reasons


def test_screen_power_is_system_when_user_driven(phone):
    phone.screen_on()
    assert phone.monitor.rail_owners("screen") == ()
    assert phone.monitor.rail_power("screen") == phone.profile.screen_on_mw


def test_screen_power_owned_by_wakelock_when_user_absent(phone):
    app = phone.install(Holder(), start=False)
    lock = phone.power.new_wakelock(app, "s",
                                    level=WakeLockLevel.SCREEN_BRIGHT)
    lock.acquire()
    assert phone.monitor.rail_owners("screen") == (app.uid,)
    phone.screen_on()  # user takes over
    assert phone.monitor.rail_owners("screen") == ()
    phone.screen_off()
    assert phone.monitor.rail_owners("screen") == (app.uid,)


def test_dimming_reduces_power(phone):
    phone.screen_on()
    phone.display.set_dimmed(True)
    assert phone.display.state is ScreenState.DIM
    assert phone.monitor.rail_power("screen") == \
        phone.profile.screen_dim_mw
    # turning the screen on again (user action) un-dims
    phone.display.set_user_screen(True)
    assert phone.display.state is ScreenState.ON


def test_interaction_timestamp(phone):
    phone.screen_on()
    phone.run_for(seconds=5.0)
    phone.touch()
    assert phone.display.last_interaction == pytest.approx(5.0)
