"""Tests for the app framework and the Phone facade."""

import pytest

from repro.droid.app import App
from repro.droid.display import ScreenState


class Busy(App):
    app_name = "busy"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "busy")
        lock.acquire()
        while True:
            yield from self.compute(1.0)
            yield self.sleep(1.0)


class Idle(App):
    app_name = "idle"

    def run(self):
        while True:
            yield self.sleep(60.0)


def test_install_assigns_context_and_starts(phone):
    app = phone.install(Busy())
    assert app.ctx is not None
    assert app.started
    assert app.uid in phone.apps
    phone.run_for(seconds=10.0)
    assert phone.cpu.cpu_time(app.uid) > 0


def test_double_install_rejected(phone):
    app = phone.install(Idle())
    with pytest.raises(ValueError):
        phone.install(app)


def test_double_start_rejected(phone):
    app = phone.install(Idle())
    with pytest.raises(RuntimeError):
        app.start()


def test_launch_window_lets_startup_run_then_suspends(phone):
    app = phone.install(Idle())
    assert phone.suspend.awake  # launch grace
    phone.run_for(seconds=10.0)
    assert phone.suspend.suspended  # no wakelock -> deep sleep
    # The main loop is frozen: no progress over a long stretch.
    proc = app.alive_processes()[0]
    assert proc.paused


def test_compute_scales_with_speed_factor(phone_factory):
    from repro.device.profiles import MOTO_G, PIXEL_XL

    durations = {}
    for profile in (PIXEL_XL, MOTO_G):
        phone = phone_factory(profile=profile)
        app = phone.install(Busy())
        phone.run_for(seconds=0.5)
        proc = app.alive_processes()[0]
        durations[profile.name] = proc._timer.deadline
    assert durations[MOTO_G.name] > durations[PIXEL_XL.name]


def test_touch_reaches_foreground_app(phone):
    app = phone.install(Idle())
    phone.set_foreground(app.uid)
    assert app.foreground
    phone.touch()
    assert len(app.interaction_times) == 1
    phone.set_foreground(None)
    assert not app.foreground


def test_touch_specific_uid(phone):
    a = phone.install(Idle())
    b = phone.install(Idle())
    phone.touch(b.uid)
    assert not a.interaction_times
    assert len(b.interaction_times) == 1


def test_screen_on_keeps_device_awake(phone):
    phone.run_for(seconds=10.0)
    assert phone.suspend.suspended
    phone.screen_on()
    assert phone.suspend.awake
    assert phone.display.state is ScreenState.ON
    phone.screen_off()
    phone.run_for(seconds=10.0)
    assert phone.suspend.suspended


def test_kill_app_cleans_services(phone):
    app = phone.install(Busy())
    phone.run_for(seconds=3.0)
    phone.kill_app(app.uid)
    phone.run_for(seconds=5.0)
    assert phone.suspend.suspended
    assert not app.alive_processes()


def test_energy_mark_window_math(phone):
    phone.monitor.set_rail("test", 100.0, (77,))
    mark = phone.energy_mark()
    phone.run_for(seconds=10.0)
    assert phone.power_since(mark, 77) == pytest.approx(100.0)
    assert phone.power_since(mark) >= 100.0


def test_signal_counters_window_queries(phone):
    app = phone.install(Idle())
    app.post_ui_update()
    app.note_data_write(3)
    phone.run_for(seconds=10.0)
    app.post_ui_update()
    assert app.ui_updates_in(0.0, 5.0) == 1
    assert app.ui_updates_in(0.0, 11.0) == 2
    assert app.data_writes_in(0.0, 1.0) == 3


def test_set_utility_counter_noop_without_leaseos(phone):
    from repro.droid.resources import ResourceType

    app = phone.install(Idle())
    app.set_utility_counter(ResourceType.WAKELOCK, object())  # no crash


def test_ambient_events_wake_device(phone_factory):
    phone = phone_factory(ambient=True, ambient_mean_s=30.0)
    seen = []
    phone.ambient_listeners.append(lambda: seen.append(phone.sim.now))
    phone.run_for(minutes=10.0)
    assert len(seen) >= 5


def test_run_for_unit_combinations(phone):
    phone.run_for(seconds=30.0, minutes=1.0)
    assert phone.sim.now == pytest.approx(90.0)
    phone.run_for(hours=0.5)
    assert phone.sim.now == pytest.approx(90.0 + 1800.0)


def test_post_notification_counts_as_visible_value(phone):
    app = phone.install(Idle())
    app.post_notification("new message")
    assert len(app.notification_times) == 1
    assert app.ui_updates_in(0.0, 1.0) == 1  # feeds generic utility
