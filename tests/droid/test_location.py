"""Tests for the LocationManagerService GPS state machine."""

import pytest

from repro.droid.app import App
from repro.droid.location import GpsState


class LocApp(App):
    app_name = "locapp"

    def __init__(self):
        super().__init__()
        self.fixes = []

    def listener(self, location):
        self.fixes.append(location)


@pytest.fixture
def loc_phone(phone_factory):
    phone = phone_factory(gps_quality=0.9, movement_mps=1.0)
    app = phone.install(LocApp(), start=False)
    return phone, app


def test_request_starts_search_then_locks(loc_phone):
    phone, app = loc_phone
    service = phone.location
    assert service.state is GpsState.OFF
    app_reg = service.request_location_updates(app, app.listener, 2.0)
    assert service.state is GpsState.SEARCHING
    assert phone.monitor.rail_power("gps") == phone.profile.gps_search_mw
    phone.run_for(seconds=30.0)
    assert service.state is GpsState.LOCKED
    assert phone.monitor.rail_power("gps") == phone.profile.gps_locked_mw
    assert len(app.fixes) >= 5
    app_reg.remove()
    assert service.state is GpsState.OFF
    assert phone.monitor.rail_power("gps") == 0.0


def test_weak_signal_searches_forever(phone_factory):
    phone = phone_factory(gps_quality=0.1)
    app = phone.install(LocApp(), start=False)
    record = phone.location.request_location_updates(
        app, app.listener, 5.0
    ).record
    phone.run_for(minutes=5.0)
    assert phone.location.state is GpsState.SEARCHING
    assert app.fixes == []
    record.settle()
    phone.location.settle_stats()
    assert record.search_time == pytest.approx(300.0, rel=0.05)
    assert record.locked_time == 0.0


def test_distance_accumulates_while_locked(loc_phone):
    phone, app = loc_phone
    registration = phone.location.request_location_updates(
        app, app.listener, 2.0
    )
    phone.run_for(minutes=2.0)
    record = registration.record
    phone.location.settle_stats()
    # moving at 1 m/s while locked: distance approx locked seconds
    assert record.distance_moved == pytest.approx(record.locked_time,
                                                  rel=0.15)


def test_revoke_stops_delivery_and_power(loc_phone):
    phone, app = loc_phone
    registration = phone.location.request_location_updates(
        app, app.listener, 2.0
    )
    phone.run_for(seconds=30.0)
    fixes_before = len(app.fixes)
    phone.location.revoke(registration.record)
    assert phone.monitor.rail_power("gps") == 0.0
    phone.run_for(seconds=30.0)
    assert len(app.fixes) == fixes_before
    phone.location.restore(registration.record)
    phone.run_for(seconds=30.0)
    assert len(app.fixes) > fixes_before


def test_warm_restart_relocks_quickly(loc_phone):
    phone, app = loc_phone
    registration = phone.location.request_location_updates(
        app, app.listener, 1.0
    )
    phone.run_for(seconds=30.0)
    record = registration.record
    phone.location.revoke(record)
    phone.run_for(seconds=10.0)
    phone.location.restore(record)
    record.settle()
    phone.location.settle_stats()
    search_before = record.search_time
    phone.run_for(seconds=5.0)
    phone.location.settle_stats()
    # Hot fix: well under the cold TTFF
    assert record.search_time - search_before < 2.0
    assert phone.location.state is GpsState.LOCKED


def test_consumer_activity_tracking(loc_phone):
    phone, app = loc_phone
    registration = phone.location.request_location_updates(
        app, app.listener, 2.0
    )
    phone.run_for(seconds=20.0)
    registration.set_consumer_active(False)
    phone.run_for(seconds=20.0)
    record = registration.record
    phone.location.settle_stats()
    assert record.consumer_active_time == pytest.approx(20.0, abs=0.5)


def test_two_apps_share_gps_rail(phone_factory):
    phone = phone_factory(gps_quality=0.9)
    a = phone.install(LocApp(), start=False)
    b = phone.install(LocApp(), start=False)
    phone.location.request_location_updates(a, a.listener, 2.0)
    phone.location.request_location_updates(b, b.listener, 2.0)
    mark = phone.energy_mark()
    phone.run_for(minutes=2.0)
    pa = phone.power_since(mark, a.uid)
    pb = phone.power_since(mark, b.uid)
    assert pa == pytest.approx(pb, rel=0.01)
    assert pa + pb == pytest.approx(phone.profile.gps_locked_mw, rel=0.15)


def test_throttle_interval_lengthens_deliveries(loc_phone):
    phone, app = loc_phone
    registration = phone.location.request_location_updates(
        app, app.listener, 2.0
    )
    phone.run_for(seconds=40.0)
    baseline = len(app.fixes)
    phone.location.throttle_interval(registration.record, 4.0)
    phone.run_for(seconds=40.0)
    slowed = len(app.fixes) - baseline
    assert slowed < baseline / 2


def test_kill_app_registrations(loc_phone):
    phone, app = loc_phone
    registration = phone.location.request_location_updates(
        app, app.listener, 2.0
    )
    phone.location.kill_app_registrations(app.uid)
    assert registration.record.dead
    assert phone.location.state is GpsState.OFF


def test_signal_loss_while_locked_resumes_search(loc_phone):
    phone, app = loc_phone
    phone.location.request_location_updates(app, app.listener, 2.0)
    phone.run_for(seconds=30.0)
    assert phone.location.state is GpsState.LOCKED
    fixes_before = len(app.fixes)
    phone.env.gps.set_quality(0.05)  # walked into a basement
    phone.run_for(seconds=60.0)
    assert phone.location.state is GpsState.SEARCHING
    assert len(app.fixes) <= fixes_before + 1
    assert phone.monitor.rail_power("gps") == phone.profile.gps_search_mw
    phone.env.gps.set_quality(0.9)  # back outside
    phone.run_for(seconds=30.0)
    assert phone.location.state is GpsState.LOCKED
    assert len(app.fixes) > fixes_before
