"""Unit + property tests for the energy ledger and power monitor."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.device.battery import Battery
from repro.device.power import EnergyLedger, PowerMonitor, SYSTEM_UID
from repro.device.profiles import PIXEL_XL
from repro.sim.engine import Simulator


def make_monitor(battery=None):
    sim = Simulator()
    return sim, PowerMonitor(sim, PIXEL_XL, battery)


def test_ledger_accumulates_and_totals():
    ledger = EnergyLedger()
    ledger.add(1, "cpu", 10.0)
    ledger.add(1, "gps", 5.0)
    ledger.add(2, "cpu", 3.0)
    assert ledger.total_mj() == pytest.approx(18.0)
    assert ledger.app_total_mj(1) == pytest.approx(15.0)
    assert ledger.app_rail_mj(1, "gps") == pytest.approx(5.0)
    assert ledger.rail_total_mj("cpu") == pytest.approx(13.0)
    assert ledger.by_app() == {1: 15.0, 2: 3.0}


def test_ledger_rejects_negative_energy():
    with pytest.raises(ValueError):
        EnergyLedger().add(1, "cpu", -1.0)


def test_rail_integration_exact():
    sim, monitor = make_monitor()
    monitor.set_rail("cpu", 100.0, (42,))
    sim.run_until(10.0)
    assert monitor.app_energy_mj(42) == pytest.approx(1000.0)


def test_rail_attribution_split_across_owners():
    sim, monitor = make_monitor()
    monitor.set_rail("gps", 90.0, (1, 2, 3))
    sim.run_until(10.0)
    monitor.settle()
    for uid in (1, 2, 3):
        assert monitor.ledger.app_total_mj(uid) == pytest.approx(300.0)


def test_unowned_rail_attributed_to_system():
    sim, monitor = make_monitor()
    monitor.set_rail("screen", 50.0, ())
    sim.run_until(4.0)
    monitor.settle()
    assert monitor.ledger.app_total_mj(SYSTEM_UID) == pytest.approx(200.0)


def test_rail_change_settles_previous_segment():
    sim, monitor = make_monitor()
    monitor.set_rail("cpu", 100.0, (1,))
    sim.run_until(5.0)
    monitor.set_rail("cpu", 10.0, (1,))
    sim.run_until(10.0)
    assert monitor.app_energy_mj(1) == pytest.approx(550.0)


def test_rail_power_must_be_nonnegative():
    __, monitor = make_monitor()
    with pytest.raises(ValueError):
        monitor.set_rail("cpu", -5.0, ())


def test_clear_rail_zeroes_draw():
    sim, monitor = make_monitor()
    monitor.set_rail("cpu", 100.0, (1,))
    sim.run_until(1.0)
    monitor.clear_rail("cpu")
    sim.run_until(10.0)
    assert monitor.app_energy_mj(1) == pytest.approx(100.0)


def test_instantaneous_power_sums_rails():
    __, monitor = make_monitor()
    monitor.set_rail("a", 10.0, ())
    monitor.set_rail("b", 20.0, (1,))
    assert monitor.instantaneous_power_mw() == pytest.approx(30.0)
    assert monitor.app_power_mw(1) == pytest.approx(20.0)


def test_battery_drained_by_settle():
    battery = Battery(capacity_mah=1.0, voltage=1.0)  # 3600 mJ
    sim, monitor = make_monitor(battery)
    monitor.set_rail("cpu", 100.0, ())
    sim.run_until(18.0)  # 1800 mJ
    monitor.settle()
    assert battery.remaining_mj == pytest.approx(1800.0)


def test_add_energy_drains_battery_and_ledger():
    battery = Battery(capacity_mah=1.0, voltage=1.0)
    __, monitor = make_monitor(battery)
    monitor.add_energy(7, "lease_mgmt", 100.0)
    assert monitor.ledger.app_total_mj(7) == pytest.approx(100.0)
    assert battery.remaining_mj == pytest.approx(3500.0)


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=500.0),  # power
            st.floats(min_value=0.01, max_value=100.0),  # duration
            st.sampled_from([(), (1,), (1, 2), (2, 3, 4)]),  # owners
        ),
        min_size=1, max_size=10,
    )
)
def test_energy_conservation_property(segments):
    """Sum of per-app energy always equals total rail energy."""
    sim, monitor = make_monitor()
    expected_total = 0.0
    for power, duration, owners in segments:
        monitor.set_rail("r", power, owners)
        sim.run_until(sim.now + duration)
        expected_total += power * duration
    monitor.settle()
    total = monitor.ledger.total_mj()
    assert total == pytest.approx(expected_total, rel=1e-9)
    assert sum(monitor.ledger.by_app().values()) == pytest.approx(total)
