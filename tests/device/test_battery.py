"""Unit + property tests for the battery model."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.device.battery import Battery
from repro.device.profiles import PIXEL_XL


def test_capacity_math():
    battery = Battery(capacity_mah=1000.0, voltage=4.0)
    assert battery.capacity_mj == pytest.approx(1000 * 4.0 * 3600.0)
    assert battery.level == 1.0


def test_for_profile_uses_profile_values():
    battery = Battery.for_profile(PIXEL_XL)
    assert battery.capacity_mj == pytest.approx(
        PIXEL_XL.battery_mah * PIXEL_XL.battery_voltage * 3600.0
    )


def test_partial_initial_level():
    battery = Battery(100.0, 4.0, level=0.5)
    assert battery.level == pytest.approx(0.5)


def test_invalid_construction():
    with pytest.raises(ValueError):
        Battery(0.0)
    with pytest.raises(ValueError):
        Battery(100.0, level=1.5)


def test_drain_clamps_at_empty():
    battery = Battery(1.0, 1.0)  # 3600 mJ
    drained = battery.drain_mj(5000.0)
    assert drained == pytest.approx(3600.0)
    assert battery.empty
    assert battery.remaining_mj == 0.0


def test_drain_rejects_negative():
    with pytest.raises(ValueError):
        Battery(1.0).drain_mj(-1.0)


def test_hours_remaining():
    battery = Battery(1.0, 1.0)  # 3600 mJ
    assert battery.hours_remaining(1.0) == pytest.approx(1.0)
    assert battery.hours_remaining(0.0) == float("inf")


@settings(max_examples=50, deadline=None)
@given(drains=st.lists(st.floats(min_value=0.0, max_value=1000.0),
                       max_size=20))
def test_battery_never_negative(drains):
    battery = Battery(1.0, 1.0)
    for amount in drains:
        battery.drain_mj(amount)
        assert 0.0 <= battery.remaining_mj <= battery.capacity_mj
        assert 0.0 <= battery.level <= 1.0
