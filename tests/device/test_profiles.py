"""Tests for the device profiles."""

from repro.device.profiles import (
    GALAXY_S4,
    MOTO_G,
    NEXUS_4,
    NEXUS_5X,
    NEXUS_6,
    PIXEL_XL,
    PROFILES,
)


def test_all_six_paper_phones_present():
    assert len(PROFILES) == 6
    assert PIXEL_XL.name in PROFILES
    assert NEXUS_5X.name in PROFILES


def test_profiles_are_frozen():
    import dataclasses
    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        PIXEL_XL.cpu_cores = 8


def test_speed_factors_reflect_tiers():
    # The paper observes ~2x differences between high- and low-end phones.
    assert PIXEL_XL.speed_factor == 1.0
    assert MOTO_G.speed_factor <= 0.55
    assert NEXUS_4.speed_factor < NEXUS_6.speed_factor


def test_power_rail_sanity():
    for profile in PROFILES.values():
        assert profile.cpu_sleep_mw < profile.cpu_awake_idle_mw
        assert profile.cpu_awake_idle_mw < profile.cpu_active_mw
        assert profile.gps_search_mw > profile.gps_locked_mw
        assert profile.screen_dim_mw < profile.screen_on_mw
        assert profile.battery_mah > 0


def test_pixel_battery_matches_paper_spec():
    # §7.1: Pixel XL has a 3,450 mAh battery.
    assert PIXEL_XL.battery_mah == 3450.0
