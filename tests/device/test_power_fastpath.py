"""The PowerMonitor/EnergyLedger hot-path optimisations.

The ledger keeps per-uid running totals and the monitor skips work for
unchanged ``set_rail`` calls and zero-draw settles; these tests pin that
the *accounting* is unchanged by comparing against a brute-force
reference, and that the fast paths actually trigger.
"""

import random

import pytest

from repro.device.power import EnergyLedger, PowerMonitor, SYSTEM_UID
from repro.device.profiles import PIXEL_XL
from repro.sim.engine import Simulator


def make_monitor():
    sim = Simulator()
    return sim, PowerMonitor(sim, PIXEL_XL, None)


class ReferenceLedger:
    """The pre-optimisation semantics: a flat (uid, rail) map, scanned."""

    def __init__(self):
        self.energy = {}

    def add(self, uid, rail, mj):
        self.energy[(uid, rail)] = self.energy.get((uid, rail), 0.0) + mj

    def app_total(self, uid):
        return sum(e for (u, __), e in self.energy.items() if u == uid)

    def rail_total(self, rail):
        return sum(e for (__, r), e in self.energy.items() if r == rail)

    def total(self):
        return sum(self.energy.values())

    def by_app(self):
        totals = {}
        for (uid, __), e in self.energy.items():
            totals[uid] = totals.get(uid, 0.0) + e
        return totals


def test_running_totals_match_reference_on_scripted_workload():
    """A seeded random rail workload: every query equals the reference."""
    rng = random.Random(2019)
    sim, monitor = make_monitor()
    reference = ReferenceLedger()
    rails = ["cpu", "gps", "screen", "wifi", "sensor"]
    owner_sets = [(), (1,), (2,), (1, 2), (2, 3, 4)]
    segments = []  # (rail, power, owners) active per step
    state = {}
    for __ in range(200):
        rail = rng.choice(rails)
        power = rng.choice([0.0, 10.0, 35.0, 120.0])
        owners = rng.choice(owner_sets)
        monitor.set_rail(rail, power, owners)
        state[rail] = (power, owners)
        dt = rng.uniform(0.0, 5.0)
        sim.run_until(sim.now + dt)
        for r, (p, o) in state.items():
            if p <= 0:
                continue
            share = p * dt / (len(o) or 1)
            for uid in (o or (SYSTEM_UID,)):
                reference.add(uid, r, share)
    monitor.settle()
    ledger = monitor.ledger
    assert ledger.total_mj() == pytest.approx(reference.total())
    for uid in (1, 2, 3, 4, SYSTEM_UID):
        assert ledger.app_total_mj(uid) == \
            pytest.approx(reference.app_total(uid))
    for rail in rails:
        assert ledger.rail_total_mj(rail) == \
            pytest.approx(reference.rail_total(rail))
    by_app = ledger.by_app()
    for uid, expected in reference.by_app().items():
        assert by_app[uid] == pytest.approx(expected)


def test_unchanged_set_rail_skips_settle(monkeypatch):
    sim, monitor = make_monitor()
    monitor.set_rail("cpu", 100.0, (1,))
    calls = []
    original = PowerMonitor.settle
    monkeypatch.setattr(PowerMonitor, "settle",
                        lambda self: calls.append(1) or original(self))
    monitor.set_rail("cpu", 100.0, (1,))  # identical: no settle
    assert calls == []
    monitor.set_rail("cpu", 100.0, (1, 2))  # owners changed: settles
    assert calls == [1]
    monitor.set_rail("cpu", 50.0, (1, 2))  # power changed: settles
    assert calls == [1, 1]


def test_unchanged_set_rail_keeps_accounting_exact():
    sim, monitor = make_monitor()
    monitor.set_rail("cpu", 100.0, (1,))
    sim.run_until(5.0)
    monitor.set_rail("cpu", 100.0, (1,))  # fast path mid-interval
    sim.run_until(10.0)
    assert monitor.app_energy_mj(1) == pytest.approx(1000.0)


def test_zero_draw_settle_advances_without_accumulating():
    sim, monitor = make_monitor()
    monitor.set_rail("cpu", 100.0, (1,))
    sim.run_until(2.0)
    monitor.set_rail("cpu", 0.0, ())
    sim.run_until(100.0)
    monitor.settle()
    assert monitor.ledger.total_mj() == pytest.approx(200.0)
    assert monitor._last_settle == 100.0
    # and the next drawing interval integrates from here, not from 2.0
    monitor.set_rail("cpu", 10.0, (1,))
    sim.run_until(101.0)
    monitor.settle()
    assert monitor.ledger.app_total_mj(1) == pytest.approx(210.0)


def test_cleared_rail_leaves_drawing_set():
    sim, monitor = make_monitor()
    monitor.set_rail("gps", 100.0, (1,))
    assert "gps" in monitor._drawing
    monitor.clear_rail("gps")
    assert "gps" not in monitor._drawing
    assert monitor.rail_power("gps") == 0.0
    assert monitor.instantaneous_power_mw() == 0.0


def test_app_total_does_not_scan_rails():
    """O(1) query: the per-uid total is independent of rail count."""
    ledger = EnergyLedger()
    for index in range(1000):
        ledger.add(SYSTEM_UID, "rail{}".format(index), 1.0)
    ledger.add(7, "cpu", 42.0)
    # the uid map holds two entries regardless of 1001 (uid, rail) keys
    assert len(ledger._by_uid) == 2
    assert ledger.app_total_mj(7) == pytest.approx(42.0)
    assert ledger.total_mj() == pytest.approx(1042.0)


def test_queries_do_not_mutate_ledger():
    ledger = EnergyLedger()
    ledger.add(1, "cpu", 1.0)
    ledger.app_total_mj(99)
    ledger.rail_total_mj("nope")
    assert 99 not in ledger._by_uid
    assert "nope" not in ledger._by_rail
    assert ledger.by_app() == {1: 1.0}
