"""Tests for the 109-case study dataset and Table 1/2 aggregation."""

import pytest

from repro.core.behavior import BehaviorType
from repro.study.cases import (
    CASES,
    RootCause,
    TABLE2_TARGETS,
    prevalence_findings,
    table2_counts,
)
from repro.study.taxonomy import applicability_matrix, can_exhibit


def test_exactly_109_cases():
    assert len(CASES) == 109


def test_case_ids_unique_and_sequential():
    ids = [c.case_id for c in CASES]
    assert ids == list(range(1, 110))


def test_table2_marginals_match_paper_exactly():
    counts = table2_counts()
    assert counts["FAB"] == {"bug": 10, "config": 1, "enhance": 1,
                             "n/a": 0, "total": 12}
    assert counts["LHB"] == {"bug": 18, "config": 5, "enhance": 0,
                             "n/a": 0, "total": 23}
    assert counts["LUB"] == {"bug": 23, "config": 4, "enhance": 1,
                             "n/a": 0, "total": 28}
    assert counts["EUB"] == {"bug": 8, "config": 18, "enhance": 5,
                             "n/a": 3, "total": 34}
    assert counts["N/A"] == {"bug": 0, "config": 0, "enhance": 0,
                             "n/a": 12, "total": 12}
    assert sum(row["total"] for row in counts.values()) == 109


def test_targets_sum_to_109():
    assert sum(TABLE2_TARGETS.values()) == 109


def test_findings_match_paper():
    clear_share, bug_share, eub_nonbug = prevalence_findings()
    assert clear_share == pytest.approx(0.58, abs=0.01)  # Finding 1
    assert bug_share == pytest.approx(0.80, abs=0.02)  # Finding 2
    assert eub_nonbug == pytest.approx(0.77, abs=0.02)


def test_paper_cited_cases_present_and_flagged():
    cited = [c for c in CASES if c.provenance == "paper-cited"]
    assert len(cited) >= 20
    names = {c.app for c in cited}
    assert {"K-9 Mail", "Kontalk", "BetterWeather", "TapAndTurn"} <= names
    reconstructed = [c for c in CASES if c.provenance == "reconstructed"]
    assert len(cited) + len(reconstructed) == 109


def test_fab_cases_are_gps_only():
    # Table 1: only GPS can exhibit Frequent-Ask.
    fab = [c for c in CASES if c.behavior is BehaviorType.FAB]
    assert fab
    assert all(c.resource == "gps" for c in fab)


def test_root_causes_valid():
    assert all(isinstance(c.root_cause, RootCause) for c in CASES)


def test_table1_matrix_matches_paper():
    matrix = applicability_matrix()
    assert matrix["GPS"][BehaviorType.FAB] == "yes"
    assert matrix["CPU, Screen, Wi-Fi radio, Audio"][BehaviorType.FAB] \
        == "no"
    assert matrix["Sensors, Bluetooth"][BehaviorType.LHB] == "yes*"
    assert matrix["GPS"][BehaviorType.LHB] == "yes*"
    for group in matrix:
        assert matrix[group][BehaviorType.NORMAL] == "yes"
        assert matrix[group][BehaviorType.EUB] == "yes"


def test_can_exhibit_helper():
    assert can_exhibit("GPS", BehaviorType.FAB)
    assert not can_exhibit("CPU, Screen, Wi-Fi radio, Audio",
                           BehaviorType.FAB)
    assert can_exhibit("Sensors, Bluetooth", BehaviorType.LHB)


def test_query_helpers():
    from repro.study.queries import (
        cases_by_app,
        cases_by_resource,
        cases_by_source,
        distinct_apps,
        resource_distribution,
        source_distribution,
    )

    k9 = cases_by_app("K-9 Mail")
    assert len(k9) == 1 and k9[0].resource == "wakelock"
    assert len(cases_by_source("github")) > 10
    gps = cases_by_resource("gps")
    assert all(c.resource == "gps" for c in gps)
    dist = resource_distribution()
    assert sum(dist.values()) == 109
    assert dist["gps"] >= 12  # at least every FAB case
    assert sum(source_distribution().values()) == 109
    apps = distinct_apps()
    assert 30 < len(apps) <= 109


def test_export_csv(tmp_path):
    import csv as csv_module

    from repro.study.queries import export_csv

    path = export_csv(str(tmp_path / "cases.csv"))
    with open(path) as handle:
        rows = list(csv_module.DictReader(handle))
    assert len(rows) == 109
    assert rows[0]["app"]
    behaviors = {row["behavior"] for row in rows}
    assert {"frequent-ask", "long-holding", "low-utility",
            "excessive-use", "n/a"} == behaviors


def test_resource_crosstab_sums_to_109():
    from repro.experiments.study_tables import render_resource_crosstab

    text = render_resource_crosstab()
    assert "gps" in text
    # The Total column across all resource rows must sum to 109.
    totals = [int(line.split()[-1]) for line in text.splitlines()[3:]]
    assert sum(totals) == 109
