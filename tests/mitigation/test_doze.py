"""Tests for the Doze reimplementation."""

import pytest

from repro.droid.app import App
from repro.droid.power_manager import WakeLockLevel
from repro.mitigation.doze import Doze, DozeState

from tests.conftest import make_phone


class Holder(App):
    app_name = "holder"

    level = WakeLockLevel.PARTIAL

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "h", level=self.level)
        self.lock.acquire()
        while True:
            yield self.sleep(600.0)


class ScreenHolder(Holder):
    app_name = "screen-holder"
    level = WakeLockLevel.SCREEN_BRIGHT


class ExemptHolder(Holder):
    app_name = "exempt"
    foreground_service = True


def dozing_phone(**doze_kwargs):
    doze = Doze(aggressive=True, **doze_kwargs)
    phone = make_phone(mitigation=doze)
    return phone, doze


def test_aggressive_doze_enters_immediately():
    phone, doze = dozing_phone()
    phone.run_for(seconds=1.0)
    assert doze.state is DozeState.DOZING
    assert doze.doze_entries == 1


def test_doze_revokes_background_wakelock():
    phone, doze = dozing_phone()
    app = phone.install(Holder())
    phone.run_for(seconds=6.0)  # past the app-launch awake window
    assert app.lock.held
    assert not app.lock._record.os_active
    assert phone.suspend.suspended


def test_doze_never_touches_screen_wakelocks():
    phone, doze = dozing_phone()
    app = phone.install(ScreenHolder())
    phone.run_for(seconds=2.0)
    assert app.lock._record.os_active
    assert phone.display.screen_on


def test_foreground_service_apps_exempt():
    phone, doze = dozing_phone()
    app = phone.install(ExemptHolder())
    phone.run_for(seconds=2.0)
    assert app.lock._record.os_active


def test_user_activity_exits_doze():
    phone, doze = dozing_phone()
    app = phone.install(Holder())
    phone.run_for(seconds=2.0)
    assert doze.state is DozeState.DOZING
    phone.touch()
    assert doze.state is DozeState.ACTIVE
    assert app.lock._record.os_active  # restored


def test_doze_reenters_after_idle():
    phone, doze = dozing_phone()
    phone.install(Holder())
    phone.run_for(seconds=2.0)
    phone.touch()
    assert doze.state is DozeState.ACTIVE
    phone.run_for(minutes=3.0)
    assert doze.state is DozeState.DOZING
    assert doze.doze_entries >= 2


def test_maintenance_window_restores_then_rerevokes():
    phone, doze = dozing_phone(maintenance_interval_s=60.0,
                               maintenance_window_s=10.0)
    app = phone.install(Holder())
    phone.run_for(seconds=5.0)
    assert not app.lock._record.os_active
    phone.run_for(seconds=60.0)  # into the maintenance window
    assert doze.state is DozeState.MAINTENANCE
    assert app.lock._record.os_active
    phone.run_for(seconds=15.0)
    assert doze.state is DozeState.DOZING
    assert not app.lock._record.os_active


def test_doze_defers_background_alarms_to_exit():
    phone, doze = dozing_phone()
    fired = []
    app = phone.install(Holder())
    phone.run_for(seconds=2.0)
    phone.alarms.set(app.uid, 5.0, lambda: fired.append(phone.sim.now))
    phone.run_for(seconds=30.0)
    assert fired == []  # queued while dozing
    phone.touch()  # exit doze flushes the queue
    assert len(fired) == 1


def test_doze_blocks_background_network():
    phone, doze = dozing_phone()
    app = phone.install(Holder())
    phone.run_for(seconds=2.0)
    assert not phone.net.restrictor(app.uid)
    phone.touch()
    assert phone.net.restrictor(app.uid)


def test_nonaggressive_doze_needs_long_idle():
    doze = Doze(aggressive=False, idle_threshold_s=600.0)
    phone = make_phone(mitigation=doze)
    phone.install(Holder())
    phone.run_for(minutes=5.0)
    assert doze.state is DozeState.ACTIVE
    phone.run_for(minutes=10.0)
    assert doze.state is DozeState.DOZING
