"""Tests for DefDroid-style throttling and pure timed throttling."""

import pytest

from repro.droid.app import App
from repro.droid.resources import ResourceType
from repro.mitigation.defdroid import DefDroid, ThrottleRule
from repro.mitigation.throttle import TimedThrottle

from tests.conftest import make_phone


class Holder(App):
    app_name = "holder"

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "h")
        self.lock.acquire()
        while True:
            yield self.sleep(600.0)


class GpsHog(App):
    app_name = "gps-hog"

    def on_start(self):
        self.registration = self.ctx.location.request_location_updates(
            self, lambda loc: None, interval=5.0
        )


class Churner(App):
    """Recycles fresh GPS registrations (the WHERE evasion pattern)."""

    app_name = "churner"

    def on_start(self):
        self.registration = None
        self._request()
        self.ctx.alarms.set_repeating(self.uid, 20.0, self._request)

    def _request(self):
        if self.registration is not None:
            self.registration.remove()
        self.registration = self.ctx.location.request_location_updates(
            self, lambda loc: None, interval=5.0
        )


def test_defdroid_throttles_long_held_wakelock():
    defdroid = DefDroid()
    phone = make_phone(mitigation=defdroid)
    app = phone.install(Holder())
    phone.run_for(seconds=30.0)
    assert app.lock._record.os_active  # under threshold
    phone.run_for(seconds=60.0)
    assert not app.lock._record.os_active  # throttled
    assert defdroid.throttle_events >= 1
    assert app.lock.held  # app never notices


def test_defdroid_restores_after_penalty():
    rules = {ResourceType.WAKELOCK: ThrottleRule(
        ResourceType.WAKELOCK, 20.0, 30.0)}
    defdroid = DefDroid(rules=rules)
    phone = make_phone(mitigation=defdroid)
    app = phone.install(Holder())
    phone.run_for(seconds=35.0)
    assert not app.lock._record.os_active
    phone.run_for(seconds=27.0)  # t=62: restored, next budget not yet spent
    assert app.lock._record.os_active  # restored, budget restarts


def test_defdroid_aggregates_per_app_across_registrations():
    defdroid = DefDroid()
    phone = make_phone(mitigation=defdroid, gps_quality=0.95)
    app = phone.install(Churner())
    phone.run_for(minutes=4.0)
    # Fresh registrations must not dodge the per-app budget.
    assert defdroid.throttle_events >= 1


def test_defdroid_gps_duty_cycles_gently():
    defdroid = DefDroid()
    phone = make_phone(mitigation=defdroid, gps_quality=0.95)
    app = phone.install(GpsHog())
    mark = phone.energy_mark()
    phone.run_for(minutes=20.0)
    power = phone.power_since(mark, app.uid)
    locked = phone.profile.gps_locked_mw
    # Reduced, but far less than LeaseOS would: between 25% and 65% cut.
    assert 0.35 * locked < power < 0.8 * locked


def test_timed_throttle_revokes_after_single_term():
    throttle = TimedThrottle(term_s=60.0)
    phone = make_phone(mitigation=throttle)
    app = phone.install(Holder())
    phone.run_for(seconds=50.0)
    assert app.lock._record.os_active
    phone.run_for(seconds=30.0)
    assert not app.lock._record.os_active
    # No utility check, no automatic restore: it stays revoked.
    phone.run_for(minutes=10.0)
    assert not app.lock._record.os_active
    assert throttle.revocations == 1


def test_timed_throttle_fresh_budget_on_reacquire():
    throttle = TimedThrottle(term_s=30.0)
    phone = make_phone(mitigation=throttle)
    app = phone.install(Holder())
    phone.run_for(seconds=40.0)
    assert not app.lock._record.os_active
    app.lock.release()
    app.lock.acquire()  # explicit re-acquire restarts the budget
    assert app.lock._record.os_active
    phone.run_for(seconds=10.0)
    assert app.lock._record.os_active


def test_timed_throttle_breaks_listener_style_apps():
    throttle = TimedThrottle(term_s=60.0)
    phone = make_phone(mitigation=throttle, gps_quality=0.95)
    app = phone.install(GpsHog())
    phone.run_for(minutes=5.0)
    # Registered once, never re-acquires: permanently dark.
    assert not app.registration.record.os_active
