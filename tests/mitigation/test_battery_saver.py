"""Tests for the Battery Saver mitigation."""

import pytest

from repro.apps.buggy.cpu_apps import Torch
from repro.apps.normal.background import Spotify
from repro.droid.broadcasts import BroadcastManager
from repro.mitigation import BatterySaver

from tests.conftest import make_phone


def saver_phone(level, threshold=0.15):
    saver = BatterySaver(threshold_level=threshold)
    phone = make_phone(mitigation=saver, battery_level=level)
    return phone, saver


def test_inactive_above_threshold():
    phone, saver = saver_phone(level=0.9)
    app = phone.install(Torch())
    phone.run_for(minutes=5.0)
    assert not saver.active
    assert app.lock._record.os_active


def test_activates_below_threshold_and_revokes_background():
    phone, saver = saver_phone(level=0.10)
    app = phone.install(Torch())
    phone.run_for(minutes=2.0)
    assert saver.active
    assert saver.activations == 1
    assert app.lock.held
    assert not app.lock._record.os_active


def test_exempts_foreground_service_apps():
    phone, saver = saver_phone(level=0.10)
    app = phone.install(Spotify())
    phone.run_for(minutes=5.0)
    assert saver.active
    assert not app.disruptions


def test_blocks_background_network_when_active():
    phone, saver = saver_phone(level=0.10)
    app = phone.install(Torch())
    phone.run_for(minutes=1.0)
    assert not phone.net.restrictor(app.uid)


def test_publishes_battery_low_broadcast():
    events = []
    phone, saver = saver_phone(level=0.10)
    app = phone.install(Torch())
    phone.broadcasts.register(app, BroadcastManager.BATTERY_LOW,
                              events.append)
    phone.run_for(minutes=1.0)
    assert events and events[0]["level"] <= 0.15


def test_screen_dimmed_while_active():
    phone, saver = saver_phone(level=0.10)
    phone.screen_on()
    phone.run_for(minutes=1.0)
    from repro.droid.display import ScreenState

    assert phone.display.state is ScreenState.DIM


def test_saver_cuts_leaky_app_power():
    results = {}
    for level in (0.9, 0.10):
        phone, saver = saver_phone(level=level)
        app = phone.install(Torch())
        phone.run_for(minutes=1.0)  # let the saver engage (or not)
        mark = phone.energy_mark()
        phone.run_for(minutes=10.0)
        results[level] = phone.power_since(mark, app.uid)
    assert results[0.10] < 0.2 * results[0.9]
