"""Tests for the LeaseOS mitigation's installation wiring."""

from repro.core.policy import LeasePolicy
from repro.mitigation import LeaseOS

from tests.conftest import make_phone


def test_install_registers_all_proxies():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    assert set(mitigation.proxies) == {
        "power", "location", "sensors", "wifi", "audio", "bluetooth",
    }
    assert phone.lease_manager is mitigation.manager
    assert len(mitigation.manager.proxies) == 6


def test_proxies_hooked_into_service_gates_and_listeners():
    mitigation = LeaseOS()
    phone = make_phone(mitigation=mitigation)
    for service in (phone.power, phone.location, phone.sensors,
                    phone.wifi, phone.audio, phone.bluetooth):
        assert service.gates, type(service).__name__
        assert service.listeners, type(service).__name__


def test_custom_policy_threaded_through():
    policy = LeasePolicy(initial_term_s=2.0)
    mitigation = LeaseOS(policy=policy)
    make_phone(mitigation=mitigation)
    assert mitigation.manager.policy is policy


def test_each_phone_gets_its_own_manager():
    a, b = LeaseOS(), LeaseOS()
    phone_a = make_phone(mitigation=a)
    phone_b = make_phone(mitigation=b)
    assert a.manager is not b.manager
    assert phone_a.lease_manager is not phone_b.lease_manager
