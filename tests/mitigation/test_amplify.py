"""Tests for the Amplify-style acquire rate limiter."""

import pytest

from repro.apps.buggy.cpu_apps import Torch
from repro.droid.app import App
from repro.droid.power_manager import WakeLockLevel
from repro.mitigation import Amplify

from tests.conftest import make_phone


class AcquireStorm(App):
    """Takes a fresh short wakelock every couple of seconds."""

    app_name = "storm"

    def run(self):
        self.honoured = 0
        while True:
            lock = self.ctx.power.new_wakelock(self, "blip")
            lock.acquire()
            if lock._record.os_active:
                self.honoured += 1
            yield from self.compute(0.3)
            lock.release()
            yield self.sleep(1.7)


def test_rate_limits_acquire_storms():
    amplify = Amplify(min_interval_s=60.0)
    phone = make_phone(mitigation=amplify)
    phone.screen_on()  # keep the storm loop running
    app = phone.install(AcquireStorm())
    phone.run_for(minutes=10.0)
    # ~300 attempts, at most ~11 honoured (one per minute).
    assert app.honoured <= 12
    assert amplify.denied > 200


def test_denied_acquires_pretend_success():
    amplify = Amplify(min_interval_s=60.0)
    phone = make_phone(mitigation=amplify)
    app = phone.install(App(name="x"), start=False)
    first = phone.power.new_wakelock(app, "a")
    second = phone.power.new_wakelock(app, "b")
    first.acquire()
    second.acquire()  # too soon: denied, but the app never knows
    assert first._record.os_active
    assert second.held
    assert not second._record.os_active


def test_useless_against_long_holding():
    """The Table 5 leaks are holds, not acquire storms: Amplify's
    reduction on Torch is ~zero -- why the paper's baselines are Doze
    and DefDroid instead."""
    baseline_phone = make_phone()
    baseline_app = baseline_phone.install(Torch())
    mark = baseline_phone.energy_mark()
    baseline_phone.run_for(minutes=15.0)
    baseline = baseline_phone.power_since(mark, baseline_app.uid)

    phone = make_phone(mitigation=Amplify())
    app = phone.install(Torch())
    mark = phone.energy_mark()
    phone.run_for(minutes=15.0)
    amplified = phone.power_since(mark, app.uid)
    assert amplified == pytest.approx(baseline, rel=0.02)


def test_screen_locks_exempt():
    amplify = Amplify(min_interval_s=60.0)
    phone = make_phone(mitigation=amplify)
    app = phone.install(App(name="x"), start=False)
    a = phone.power.new_wakelock(app, "s1", level=WakeLockLevel.SCREEN_BRIGHT)
    b = phone.power.new_wakelock(app, "s2", level=WakeLockLevel.SCREEN_BRIGHT)
    a.acquire()
    b.acquire()
    assert a._record.os_active and b._record.os_active
