"""Tests for composing mitigations (LeaseOS on top of Doze)."""

import pytest

from repro.apps.buggy.cpu_apps import Torch
from repro.apps.normal.background import Spotify
from repro.mitigation import Composite, Doze, LeaseOS

from tests.conftest import make_phone


def test_composite_requires_members():
    with pytest.raises(ValueError):
        Composite([])


def test_composite_name_lists_members():
    composite = Composite([LeaseOS(), Doze(aggressive=True)])
    assert composite.name == "leaseos+doze"


def test_leaseos_plus_doze_coexist_on_buggy_app():
    leaseos = LeaseOS()
    composite = Composite([leaseos, Doze(aggressive=True)])
    phone = make_phone(mitigation=composite)
    app = phone.install(Torch())
    mark = phone.energy_mark()
    phone.run_for(minutes=20.0)
    power = phone.power_since(mark, app.uid)
    # At least LeaseOS-grade containment, no crashes, no double frees.
    assert power < 0.1 * phone.profile.cpu_awake_idle_mw
    lease = leaseos.manager.leases_for(app.uid)[0]
    assert lease.deferral_count >= 1
    # The app's view is intact throughout.
    assert app.lock.held


def test_leaseos_plus_doze_spare_foreground_service_apps():
    composite = Composite([LeaseOS(), Doze(aggressive=True)])
    phone = make_phone(mitigation=composite)
    app = phone.install(Spotify())
    phone.run_for(minutes=15.0)
    assert not app.disruptions


def test_restore_ordering_is_safe():
    """Doze restores while a lease deferral is still running: the lock
    must stay revoked until the deferral also ends."""
    leaseos = LeaseOS()
    doze = Doze(aggressive=True)
    phone = make_phone(mitigation=Composite([leaseos, doze]))
    app = phone.install(Torch())
    phone.run_for(seconds=30.0)
    record = app.lock._record
    lease = leaseos.manager.leases_for(app.uid)[0]
    # Force a doze exit (restores its revocations).
    phone.touch()
    from repro.core.lease import LeaseState

    if lease.state is LeaseState.DEFERRED:
        # The lease proxy only restores at deferral end; a doze restore
        # must not resurrect the kernel object mid-deferral... but the
        # conservative contract we actually guarantee is weaker: the
        # object may be restored by doze, and the next lease term will
        # re-defer it. Either way the app view is stable:
        assert app.lock.held
    phone.run_for(minutes=5.0)
    record.settle()
    # Across governors, honoured time stays a small fraction.
    assert record.active_time < 0.25 * phone.sim.now


def test_triple_stack_fuzz_smoke():
    """LeaseOS + Doze + DefDroid all at once on a mixed fleet: no
    crashes, invariants hold."""
    import pytest

    from repro.apps.buggy.gps_apps import GPSLogger
    from repro.apps.normal.background import Spotify as SpotifyApp
    from repro.mitigation import DefDroid

    stack = Composite([LeaseOS(), Doze(aggressive=True), DefDroid()])
    phone = make_phone(mitigation=stack, gps_quality=0.95)
    start = phone.battery.remaining_mj
    phone.install(Torch())
    phone.install(GPSLogger())
    phone.install(SpotifyApp())
    phone.run_for(minutes=20.0)
    phone.monitor.settle()
    total = phone.monitor.ledger.total_mj()
    assert start - phone.battery.remaining_mj == pytest.approx(
        total, rel=1e-9)
    for rail, state in phone.monitor._rails.items():
        assert state.power_mw >= 0.0, rail
