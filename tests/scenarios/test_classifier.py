"""Per-family classifier mutation tests.

Each family declares its ground truth via ``behavior(driver)``; these
tests run one representative scenario-day per family under LeaseOS and
assert the classifier's verdict matches -- every leak family must be
flagged, the misleading-burst control must not be. This is the
family-level version of the paper's Table 5 exactness claim, run
against *generated* apps instead of hand-built ones.
"""

import pytest

from repro.scenarios.catalog import default_catalog
from repro.scenarios.evaluate import scenario_day
from repro.scenarios.families import FAMILIES

CATALOG = default_catalog()
CATALOG_JSON = CATALOG.to_json()

#: First default-catalog entry index of each family.
FIRST_ENTRY = {}
for _index, _entry in enumerate(CATALOG.entries):
    FIRST_ENTRY.setdefault(_entry["family"], _index)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_ground_truth_matches_leaseos_verdict(family):
    index = FIRST_ENTRY[family]
    row = scenario_day(CATALOG_JSON, index, "leaseos", minutes=15.0,
                      seed=7)
    assert row["family"] == family
    assert row["classifier_capable"] == 1
    assert row["flagged"] == row["should_flag"], (
        "family {!r} (entry {}): classifier verdict {} != ground truth "
        "{}".format(family, index, row["flagged"], row["should_flag"]))


def test_misleading_burst_is_the_negative_control():
    index = FIRST_ENTRY["misleading-burst"]
    row = scenario_day(CATALOG_JSON, index, "leaseos", minutes=15.0,
                      seed=7)
    assert row["should_flag"] == 0
    assert row["flagged"] == 0


def test_vanilla_day_is_classifier_incapable():
    index = FIRST_ENTRY["late-release"]
    row = scenario_day(CATALOG_JSON, index, "vanilla", minutes=10.0,
                      seed=7)
    assert row["classifier_capable"] == 0
    assert row["flagged"] == 0
    assert row["mitigation"] == "vanilla"


def test_leak_family_draw_exceeds_control_draw():
    # Sanity on the energy side of the ground truth: a leaked wakelock
    # day burns visibly more app power than the clean-control day.
    leak = scenario_day(CATALOG_JSON,
                        FIRST_ENTRY["missed-release-exception"],
                        "vanilla", minutes=15.0, seed=7)
    clean = scenario_day(CATALOG_JSON, FIRST_ENTRY["misleading-burst"],
                         "vanilla", minutes=15.0, seed=7)
    assert leak["buggy_power_mw"] > clean["buggy_power_mw"]
