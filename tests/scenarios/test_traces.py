"""Environment traces: determinism, horizon scaling, window merging."""

import pytest

from repro.scenarios.traces import (
    TRACE_KINDS,
    build_trace,
    merged_session_windows,
)


@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_same_seed_same_trace_bytes(kind):
    a = build_trace(kind, 12345, 900.0)
    b = build_trace(kind, 12345, 900.0)
    assert a.to_jsonable() == b.to_jsonable()
    c = build_trace(kind, 12346, 900.0)
    assert c.to_jsonable() != a.to_jsonable()


@pytest.mark.parametrize("kind", TRACE_KINDS)
@pytest.mark.parametrize("day_s", [300.0, 900.0, 3600.0])
def test_traces_fit_the_horizon(kind, day_s):
    trace = build_trace(kind, 7, day_s)
    for event in trace.events:
        assert 0.0 <= event[1] <= day_s * 1.2
    for start, duration, touch in trace.session_windows:
        assert 0.0 <= start <= day_s
        assert duration > 0.0
        assert touch > 0.0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown trace kind"):
        build_trace("solar-flare", 1, 900.0)


def test_network_outage_pairs_drop_with_restore():
    trace = build_trace("network-outage", 99, 900.0)
    drops = [e for e in trace.events if e[2] == 0]
    restores = [e for e in trace.events if e[2] == 1]
    assert len(drops) == len(restores) >= 1
    assert all(e[0] == "network" for e in trace.events)


def test_merged_windows_sorted_with_default_fallback():
    diurnal = build_trace("diurnal", 3, 900.0)
    outage = build_trace("network-outage", 3, 900.0)
    merged = merged_session_windows([diurnal, outage], 900.0)
    assert merged == sorted(merged)
    assert merged == sorted(diurnal.session_windows)
    # No diurnal trace: a canonical default keeps the user present.
    fallback = merged_session_windows([outage], 900.0)
    assert fallback == [(45.0, 135.0, 10.0)]
