"""Catalog schema validation, serialisation and materialisation."""

import json

import pytest

from repro.apps.buggy.registry import (
    SCENARIO_CASES_BY_KEY,
    is_scenario_key,
    resolve_case,
    scenario_families,
)
from repro.scenarios.catalog import (
    CATALOG_SCHEMA_VERSION,
    ScenarioCatalog,
    default_catalog,
    scenario_key,
)
from repro.scenarios.families import FAMILIES, RESOURCE_DRIVERS

# Entry keys are ``scenario:<family>:<resource>:<index>`` and the
# registry is process-global, so the compositions here are chosen to
# collide with neither the default catalog's nor the committed
# example's key positions.
MINI_ENTRIES = [
    {"family": "lost-reference", "resource": "sensor",
     "traces": ["diurnal"]},
    {"family": "misleading-burst", "resource": "cpu",
     "traces": ["diurnal"], "params": {"burst_s": 12.0}},
]


def mini_catalog(name="mini", seed=5):
    return ScenarioCatalog(name=name, seed=seed, entries=MINI_ENTRIES)


# -- validation --------------------------------------------------------------

def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown family"):
        ScenarioCatalog("x", 1, [{"family": "nope", "resource": "gps"}])


def test_unknown_resource_rejected():
    with pytest.raises(ValueError, match="unknown resource"):
        ScenarioCatalog("x", 1, [
            {"family": "late-release", "resource": "flux-capacitor"}])


def test_unsupported_composition_rejected():
    # acquire-loop does not compose with the screen driver.
    assert "screen" not in FAMILIES["acquire-loop"].supported
    with pytest.raises(ValueError, match="does not compose"):
        ScenarioCatalog("x", 1, [
            {"family": "acquire-loop", "resource": "screen"}])


def test_unknown_trace_kind_rejected():
    with pytest.raises(ValueError, match="unknown trace kind"):
        ScenarioCatalog("x", 1, [
            {"family": "late-release", "resource": "gps",
             "traces": ["lunar-eclipse"]}])


def test_non_numeric_param_rejected():
    with pytest.raises(ValueError, match="must be a number"):
        ScenarioCatalog("x", 1, [
            {"family": "late-release", "resource": "gps",
             "params": {"hold_s": "long"}}])


def test_wrong_kind_and_schema_rejected():
    with pytest.raises(ValueError, match="not a scenario catalog"):
        ScenarioCatalog.from_json(json.dumps({"kind": "fleet_report"}))
    payload = mini_catalog().to_jsonable()
    payload["schema"] = CATALOG_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        ScenarioCatalog.from_json(json.dumps(payload))


# -- serialisation and identity ----------------------------------------------

def test_canonical_json_roundtrip():
    cat = mini_catalog()
    again = ScenarioCatalog.from_json(cat.to_json())
    assert again.to_json() == cat.to_json()
    assert again.fingerprint() == cat.fingerprint()
    payload = json.loads(cat.to_json())
    assert list(payload) == sorted(payload)


def test_fingerprint_sensitive_to_seed_and_entries():
    base = mini_catalog()
    assert mini_catalog(seed=6).fingerprint() != base.fingerprint()
    fewer = ScenarioCatalog("mini", 5, MINI_ENTRIES[:1])
    assert fewer.fingerprint() != base.fingerprint()
    # The name is part of the identity too (it names artifacts).
    assert mini_catalog(name="other").fingerprint() != base.fingerprint()


def test_committed_example_catalog_parses():
    cat = ScenarioCatalog.from_file("tests/data/scenario_catalog_example.json")
    assert len(cat.entries) == 3
    assert cat.entries[2]["params"] == {"burst_s": 12.0}


# -- deterministic materialisation -------------------------------------------

def test_default_catalog_meets_diversity_floor():
    cat = default_catalog()
    families = {entry["family"] for entry in cat.entries}
    resources = {entry["resource"] for entry in cat.entries}
    assert len(families) >= 5
    assert len(resources) >= 5
    assert len(cat.entries) == sum(
        len(FAMILIES[f].supported) for f in FAMILIES)
    for resource in RESOURCE_DRIVERS:
        assert resource in resources


def test_entry_params_deterministic_and_overridable():
    cat = mini_catalog()
    assert cat.entry_params(0) == mini_catalog().entry_params(0)
    # Explicit params override the seeded draw, others keep it.
    drawn = cat.entry_params(1)
    assert drawn["burst_s"] == 12.0
    bare = ScenarioCatalog("mini", 5, [
        dict(MINI_ENTRIES[1], params={})])
    # Same sub-seed position, no override: the seeded value differs or
    # matches by chance, but every other key draws identically.
    assert set(bare.entry_params(0)) == set(drawn)


def test_instantiate_registers_resolvable_cases():
    cat = mini_catalog()
    cases = cat.instantiate()
    assert cat.instantiate() is cases  # idempotent per instance
    for index, case in enumerate(cases):
        assert case.key == cat.entry_key(index)
        assert is_scenario_key(case.key)
        assert resolve_case(case.key) is case
        assert case.key in SCENARIO_CASES_BY_KEY
    assert scenario_families([c.key for c in cases]) == [
        "lost-reference", "misleading-burst"]


def test_conflicting_catalog_same_keys_rejected():
    mini_catalog().instantiate()
    # Same name+seed+entries but different params -> same keys, a
    # different fingerprint: must refuse to overwrite.
    conflicting = ScenarioCatalog("mini", 5, [
        dict(MINI_ENTRIES[0], params={"use_s": 9.0}),
        MINI_ENTRIES[1],
    ])
    with pytest.raises(ValueError, match="already registered"):
        conflicting.instantiate()


def test_scenario_key_layout_carries_family():
    key = scenario_key("late-release", "gps", 7)
    assert key == "scenario:late-release:gps:007"
    assert scenario_families([key, "sync_abuser"]) == ["late-release"]
