"""PopulationSpec scenario wiring and the catalog-free compatibility
contract.

The load-bearing guarantee: a spec without a catalog serialises,
fingerprints and samples exactly as before the scenario subsystem
existed -- zero extra JSON keys, zero extra RNG draws -- so every
pre-scenario checkpoint, cache key and report golden stays valid.
"""

import json

import pytest

from repro.apps.buggy.registry import is_scenario_key, resolve_case
from repro.fleet.population import (
    PopulationSpec,
    _draw_scenario,
    scenario_pool,
)
from repro.scenarios.catalog import ScenarioCatalog

EXAMPLE_PATH = "tests/data/scenario_catalog_example.json"


def example_json():
    return ScenarioCatalog.from_file(EXAMPLE_PATH).to_json()


def scenario_spec(**kwargs):
    kwargs.setdefault("seed", 31)
    kwargs.setdefault("devices", 40)
    kwargs.setdefault("catalog_json", example_json())
    kwargs.setdefault("scenario_prevalence", 0.5)
    return PopulationSpec(**kwargs)


# -- catalog-free compatibility ----------------------------------------------

def test_catalog_free_json_has_no_scenario_keys():
    payload = json.loads(PopulationSpec(seed=42, devices=10).to_json())
    assert "catalog_json" not in payload
    assert "scenario_prevalence" not in payload
    assert "family_weights" not in payload


def test_catalog_free_fingerprint_unchanged_by_explicit_defaults():
    plain = PopulationSpec(seed=42, devices=10)
    explicit = PopulationSpec(seed=42, devices=10, catalog_json="",
                              scenario_prevalence=0.0, family_weights=())
    assert explicit.to_json() == plain.to_json()
    assert explicit.fingerprint() == plain.fingerprint()


def test_catalog_free_legacy_json_still_parses():
    # JSON written before the scenario fields existed must load.
    plain = PopulationSpec(seed=42, devices=10)
    legacy = PopulationSpec.from_json(plain.to_json())
    assert legacy == plain
    assert [legacy.device(i) for i in range(10)] \
        == [plain.device(i) for i in range(10)]


def test_prevalence_without_catalog_rejected():
    with pytest.raises(ValueError, match="catalog_json"):
        PopulationSpec(seed=1, devices=4, scenario_prevalence=0.2)


# -- catalog-bearing specs ---------------------------------------------------

def test_scenario_spec_roundtrip():
    spec = scenario_spec(family_weights=(("late-release", 3.0),))
    again = PopulationSpec.from_json(spec.to_json())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    assert again.family_weights == (("late-release", 3.0),)
    # Catalog identity is part of the population identity. (The alt
    # catalog's single composition is disjoint from every other test
    # catalog's key positions -- the registry refuses collisions.)
    alt = ScenarioCatalog("alt", 6, [
        {"family": "early-release", "resource": "wifi",
         "traces": ["diurnal"]}])
    other = scenario_spec(catalog_json=alt.to_json())
    assert other.fingerprint() != scenario_spec().fingerprint()


def test_scenario_devices_sampled_at_prevalence():
    spec = scenario_spec(scenario_prevalence=0.9)
    keys = [key for i in range(40) for key in spec.device(i).buggy_apps
            if is_scenario_key(key)]
    assert keys, "no scenario apps at 90% prevalence"
    # Every sampled key resolves: from_json registered the catalog.
    for key in set(keys):
        assert resolve_case(key).category == "scenario"


def test_sample_columns_matches_device_loop():
    spec = scenario_spec(scenario_prevalence=0.6,
                         family_weights=(("misleading-burst", 4.0),))
    columns = spec.sample_columns(0, 40)
    for i in range(40):
        assert tuple(columns.buggy_apps[i]) == spec.device(i).buggy_apps


def test_family_weights_skew_the_draw():
    heavy = scenario_spec(
        devices=120, scenario_prevalence=0.9,
        family_weights=(("late-release", 50.0),))
    families = [key.split(":")[1]
                for i in range(120) for key in heavy.device(i).buggy_apps
                if is_scenario_key(key)]
    assert families.count("late-release") > len(families) * 0.7


def test_bad_family_weights_rejected():
    with pytest.raises(ValueError, match="negative weight"):
        scenario_pool(example_json(), (("late-release", -1.0),))
    with pytest.raises(ValueError, match="sum to zero"):
        scenario_pool(example_json(), (
            ("late-release", 0.0), ("misleading-burst", 0.0),
            ("missed-release-exception", 0.0)))


def test_draw_scenario_covers_the_pool():
    pool = scenario_pool(example_json())
    keys = {_draw_scenario(u / 100.0, pool) for u in range(100)}
    assert keys == set(pool[0])
