"""The `repro scenarios` subcommand end to end."""

import hashlib
import io
import json
import os

from contextlib import redirect_stdout

import pytest

from repro.cli import main

EXAMPLE_PATH = os.path.abspath("tests/data/scenario_catalog_example.json")


def _run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def _argv(tmp_path, extra=()):
    return [
        "scenarios", "--catalog", EXAMPLE_PATH, "--minutes", "5",
        "--mitigations", "leaseos", "--no-cache",
        "--report-json", str(tmp_path / "scen.json"),
    ] + list(extra)


def test_scenarios_cli_end_to_end(tmp_path):
    code, text = _run_cli(_argv(tmp_path))
    assert code == 0
    assert "scenario catalog 'example'" in text
    assert "misleading-burst" in text
    report = json.loads((tmp_path / "scen.json").read_text())
    assert report["kind"] == "scenario_report"
    assert report["catalog"]["entries"] == 3
    assert set(report["mitigations"]) == {"vanilla", "leaseos"}
    for block in report["mitigations"]["leaseos"]["families"].values():
        assert "containment" in block or block["counters"]["days"] == 0


def test_scenarios_cli_report_is_canonical_and_stable(tmp_path):
    _run_cli(_argv(tmp_path))
    first = (tmp_path / "scen.json").read_bytes()
    _run_cli(_argv(tmp_path))
    assert (tmp_path / "scen.json").read_bytes() == first
    payload = json.loads(first)
    assert first == (json.dumps(payload, sort_keys=True,
                                separators=(",", ":")) + "\n").encode()
    assert hashlib.sha256(first).hexdigest()  # parseable, hashable


def test_scenarios_cli_rejects_unknown_mitigation(tmp_path):
    with pytest.raises(KeyError):
        _run_cli(_argv(tmp_path, ["--mitigations", "leashos"]))
