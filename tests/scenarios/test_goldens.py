"""Scenario determinism goldens.

Pinned sha256 values, same discipline as tests/test_determinism_goldens
.py: a mismatch means generated scenarios changed behaviour, which
invalidates every downstream artifact (catalog fingerprints name report
files, populations embed catalog JSON in their own fingerprints). Bump
``CATALOG_SCHEMA_VERSION`` and re-pin deliberately; never let these
drift silently.
"""

import hashlib
import json

from repro.scenarios.catalog import ScenarioCatalog, default_catalog
from repro.scenarios.evaluate import evaluate_catalog, report_json
from repro.scenarios.traces import build_trace

#: sha256 of the default catalog's canonical JSON (its identity).
DEFAULT_CATALOG_FINGERPRINT = (
    "3052668aa4ff164c33c1718ab14f2f9e3145f483b1c86e0c42c69796faf98314")

#: sha256 of the committed example catalog's canonical JSON.
EXAMPLE_CATALOG_FINGERPRINT = (
    "a63e90f751434ef50995094369e7090e1e1c78daa0941161c0aec90a0dd32338")

#: sha256 prefixes of each trace kind at (seed=12345, day_s=900).
TRACE_GOLDENS = {
    "diurnal": "7fc8c1bd31291eea",
    "network-outage": "0b96a75c29d08152",
    "weak-gps": "c18b7221d6fa930b",
}

#: sha256 of the canonical report JSON for the committed example
#: catalog evaluated under vanilla+leaseos, 5 sim-minutes, day seed 7.
EXAMPLE_REPORT_SHA256 = (
    "2f45199d923c8f87e1e76ec0830421f0eccb1bf04ee854412edaaadaea600ee3")

EXAMPLE_PATH = "tests/data/scenario_catalog_example.json"


def _sha(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_default_catalog_fingerprint_golden():
    assert default_catalog().fingerprint() == DEFAULT_CATALOG_FINGERPRINT


def test_example_catalog_fingerprint_golden():
    cat = ScenarioCatalog.from_file(EXAMPLE_PATH)
    assert cat.fingerprint() == EXAMPLE_CATALOG_FINGERPRINT


def test_trace_bytes_goldens():
    for kind, prefix in TRACE_GOLDENS.items():
        trace = build_trace(kind, 12345, 900.0)
        blob = json.dumps(trace.to_jsonable(), sort_keys=True,
                          separators=(",", ":"))
        assert _sha(blob).startswith(prefix), kind


def test_example_report_golden():
    cat = ScenarioCatalog.from_file(EXAMPLE_PATH)
    report = evaluate_catalog(cat, mitigations=("leaseos",), minutes=5.0,
                              seed=7)
    payload = report_json(report)
    assert _sha(payload) == EXAMPLE_REPORT_SHA256
    # The golden pins real content, not an empty shell: the example's
    # two leak entries are flagged, its clean control is not.
    classifier = report["mitigations"]["leaseos"]["overall"]["classifier"]
    assert (classifier["tp"], classifier["fp"],
            classifier["fn"], classifier["tn"]) == (2, 0, 0, 1)


def test_entry_params_stable_across_processes_shape():
    # Param draws depend only on (seed, index), never on process state:
    # materialising entry 5 alone equals materialising it after 0..4.
    cat = default_catalog()
    direct = cat.entry_params(5)
    fresh = default_catalog()
    for index in range(5):
        fresh.entry_params(index)
    assert fresh.entry_params(5) == direct
