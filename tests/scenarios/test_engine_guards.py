"""Scenario devices across the three shard executors.

Scenario cases always run on the event kernel -- the fast/vector
engines' transition-table composition was never validated against
generated families -- so the contract under test is: (a) both
accelerated engines route scenario devices to the kernel fallback, (b)
all three executors produce identical metric stats and identical
``scenario:<family>`` counters, and (c) telemetry snapshots carry the
family histogram exactly when scenarios are present.
"""

from repro.fleet.fastpath import (
    _scenario_guard,
    build_table,
    needed_probes,
    reset_fallback_warnings,
)
from repro.fleet.population import PopulationSpec
from repro.fleet.shard import run_shard
from repro.scenarios.catalog import ScenarioCatalog

EXAMPLE_PATH = "tests/data/scenario_catalog_example.json"


def scenario_population():
    return PopulationSpec(
        seed=11, devices=8, shard_size=8, minutes=2.0,
        mitigations=("vanilla", "leaseos"),
        catalog_json=ScenarioCatalog.from_file(EXAMPLE_PATH).to_json(),
        scenario_prevalence=0.5)


def test_scenario_guard_recognises_scenario_keys():
    assert _scenario_guard(()) is None
    assert _scenario_guard(("sync_abuser",)) is None
    assert _scenario_guard(
        ("sync_abuser", "scenario:late-release:gps:001")) == "scenario-app"


def test_needed_probes_skips_scenario_devices():
    population = scenario_population()
    probes = needed_probes(population)
    assert probes, "probe set empty"
    # Probe tuples are (kind, name, profile, mitigation, variant, env);
    # no buggy-kind probe may name a scenario key.
    for kind, name, *_rest in probes:
        if kind == "buggy":
            assert _scenario_guard((name,)) is None


def _scenario_counters(stats):
    return {name: count for name, count in stats["counters"].items()
            if name.startswith("scenario:")}


def test_executors_agree_on_scenario_devices():
    from repro.apps.buggy import scenario_families

    population = scenario_population()
    devices = [population.device(i) for i in range(8)]
    n_scenario = sum(1 for d in devices
                     if _scenario_guard(d.buggy_apps))
    # One count per (device, family) pair per mitigation day.
    n_family_days = sum(len(scenario_families(d.buggy_apps))
                        for d in devices)
    assert n_scenario, "seed lost its scenario devices"
    table_json = build_table(population).to_json()
    reset_fallback_warnings()
    kernel = run_shard(population.to_json(), 0, 8)
    fast = run_shard(population.to_json(), 0, 8, mode="fast",
                     table_json=table_json)
    vector = run_shard(population.to_json(), 0, 8, mode="vector",
                       table_json=table_json)
    for mitigation in population.mitigations:
        k, f, v = (run["stats"][mitigation]
                   for run in (kernel, fast, vector))
        # The family counters are exact on every executor (scenario
        # days always run on the kernel, whatever the mode).
        assert _scenario_counters(k) == _scenario_counters(f) \
            == _scenario_counters(v)
        assert sum(_scenario_counters(k).values()) == n_family_days
        # Vector is bit-identical to the scalar fast path -- metrics
        # and counters -- apart from its own vector_devices counter.
        assert v["metrics"] == f["metrics"]
        assert {name: count for name, count in v["counters"].items()
                if name != "vector_devices"} == f["counters"]
        # Every scenario device fell back to the kernel on both.
        assert f["counters"]["fastpath_fallbacks"] >= n_scenario
        assert v["counters"]["fastpath_fallbacks"] >= n_scenario


def test_telemetry_snapshots_carry_family_histogram(tmp_path,
                                                    monkeypatch):
    from repro.telemetry.emit import ENV_DIR, ENV_FP, ENV_PROGRESS
    from repro.telemetry.schema import load_stream_dir

    population = scenario_population()
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    monkeypatch.setenv(ENV_FP, population.fingerprint()[:12])
    monkeypatch.setenv(ENV_PROGRESS, "0")
    run_shard(population.to_json(), 0, 8)
    events, problems = load_stream_dir(str(tmp_path))
    assert problems == []
    progress = [e for e in events if e["event"] == "shard_progress"]
    final = progress[-1]
    families = final["scenario_families"]
    assert families
    assert all(count > 0 for count in families.values())
    assert list(families) == sorted(families)


def test_catalog_free_stream_has_no_family_field(tmp_path, monkeypatch):
    from repro.telemetry.emit import ENV_DIR, ENV_FP, ENV_PROGRESS
    from repro.telemetry.schema import load_stream_dir

    population = PopulationSpec(seed=11, devices=4, shard_size=4,
                                minutes=2.0)
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    monkeypatch.setenv(ENV_FP, population.fingerprint()[:12])
    monkeypatch.setenv(ENV_PROGRESS, "0")
    run_shard(population.to_json(), 0, 4)
    events, problems = load_stream_dir(str(tmp_path))
    assert problems == []
    for event in events:
        assert "scenario_families" not in event
