"""Scenario generator subsystem tests (see docs/scenarios.md)."""
