"""Hot-loop overhaul tests: heap hygiene, rescheduling, and ordering.

The lazy-deletion/compaction engine must be *observationally identical*
to the seed engine -- same callbacks, same order, same clock values --
while keeping cancelled entries from bloating the heap. The reference
implementation below replicates the seed engine's semantics (pure
pop-skip lazy deletion, a fresh timer per periodic firing) so randomized
workloads can assert dispatch-order equality directly.
"""

import heapq
import random

import pytest

from repro.sim.engine import PeriodicTimer, SimulationError, Simulator


class _RefTimer:
    __slots__ = ("deadline", "seq", "callback", "cancelled", "fired")

    def __init__(self, deadline, seq, callback):
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.deadline, self.seq) < (other.deadline, other.seq)


class ReferenceSimulator:
    """The seed engine: no cancellation accounting, no compaction."""

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._seq = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, callback):
        timer = _RefTimer(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, timer)
        return timer

    def every(self, interval, callback, start_after=None):
        return _RefPeriodic(self, interval, callback, start_after)

    def run_until(self, until):
        while self._queue and self._queue[0].deadline <= until:
            timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = timer.deadline
            timer.fired = True
            timer.callback()
        self._now = until


class _RefPeriodic:
    """Seed-engine periodic: a fresh timer per firing (one seq per tick,
    matching the production engine's reschedule())."""

    def __init__(self, sim, interval, callback, start_after=None):
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        first = interval if start_after is None else start_after
        self._timer = sim.schedule(first, self._tick)

    def _tick(self):
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._timer = self._sim.schedule(self._interval, self._tick)

    def cancel(self):
        self._cancelled = True
        self._timer.cancel()


def _run_workload(sim, seed, ops=2000):
    """A seeded cancel-heavy workload; returns the dispatch log."""
    rng = random.Random(seed)
    log = []
    live = []
    periodics = []

    def fire(label):
        log.append((sim.now, label))

    def spawn_from_callback(label):
        log.append((sim.now, label))
        timer = sim.schedule(rng.uniform(0.0, 5.0), lambda: fire(label + "+"))
        live.append(timer)

    for index in range(ops):
        roll = rng.random()
        if roll < 0.45:
            delay = rng.uniform(0.0, 50.0)
            label = "t{}".format(index)
            if rng.random() < 0.2:
                live.append(sim.schedule(delay, lambda l=label: spawn_from_callback(l)))
            else:
                live.append(sim.schedule(delay, lambda l=label: fire(l)))
        elif roll < 0.85 and live:
            # Heavy cancellation: this is what grows the cancelled
            # population past the compaction threshold.
            for __ in range(min(len(live), rng.randint(1, 6))):
                live.pop(rng.randrange(len(live))).cancel()
        elif roll < 0.92:
            periodics.append(sim.every(
                rng.uniform(0.5, 3.0),
                lambda i=index: fire("p{}".format(i)),
                start_after=rng.choice([None, 0, 1.0]),
            ))
        elif periodics:
            periodics.pop(rng.randrange(len(periodics))).cancel()
        if rng.random() < 0.1:
            sim.run_until(sim.now + rng.uniform(0.0, 10.0))
    sim.run_until(sim.now + 200.0)
    for handle in periodics:
        handle.cancel()
    return log


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_randomized_dispatch_order_matches_seed_engine(seed):
    engine = Simulator()
    reference = ReferenceSimulator()
    got = _run_workload(engine, seed)
    expected = _run_workload(reference, seed)
    assert got == expected
    # The workload must actually have exercised compaction for the
    # equivalence to mean anything.
    assert engine.compactions >= 1


def test_compaction_drops_cancelled_entries():
    sim = Simulator()
    keep = sim.schedule(1000.0, lambda: None)
    doomed = [sim.schedule(500.0, lambda: None) for __ in range(200)]
    for timer in doomed:
        timer.cancel()
    assert sim.compactions >= 1
    assert sim.pending_events == 1
    # Compaction physically removed the bulk; only a sub-threshold
    # residue of cancelled entries may remain.
    assert len(sim._queue) - 1 < Simulator.COMPACT_MIN_CANCELLED
    assert keep.pending


def test_small_heaps_are_never_compacted():
    sim = Simulator()
    for __ in range(Simulator.COMPACT_MIN_CANCELLED - 1):
        sim.schedule(10.0, lambda: None).cancel()
    assert sim.compactions == 0
    assert sim.pending_events == 0


def test_pending_events_is_exact_through_cancel_fire_and_compaction():
    sim = Simulator()
    timers = [sim.schedule(float(i + 1), lambda: None) for i in range(300)]
    assert sim.pending_events == 300
    for timer in timers[::2]:
        timer.cancel()
    assert sim.pending_events == 150
    sim.run_until(100.5)  # fires the odd-deadline survivors up to 100
    assert sim.pending_events == sum(
        1 for t in timers if t.deadline > 100.5 and not t.cancelled)
    sim.run()
    assert sim.pending_events == 0


def test_cancelling_a_fired_timer_does_not_corrupt_accounting():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.run_until(2.0)
    timer.cancel()
    timer.cancel()  # idempotent
    assert sim.pending_events == 0
    sim.schedule(3.0, lambda: None)
    assert sim.pending_events == 1


def test_dispatched_counter_counts_only_live_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None).cancel()
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert sim.dispatched == 2


def test_at_error_names_the_absolute_time():
    sim = Simulator()
    sim.run_until(100.0)
    with pytest.raises(SimulationError) as excinfo:
        sim.at(40.0, lambda: None)
    message = str(excinfo.value)
    assert "t=40.0" in message and "t=100.0" in message
    assert "-60" not in message  # the old message exposed the delay


def test_repr_is_cheap_and_accurate():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    assert repr(sim) == "Simulator(now=0.000, pending=10)"


def test_reschedule_reuses_the_timer_object():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run_until(1.0)
    again = sim.reschedule(timer, 2.0)
    assert again is timer and timer.pending
    sim.run_until(5.0)
    assert fired == [1.0, 3.0]


def test_reschedule_rejects_pending_and_cancelled_timers():
    sim = Simulator()
    pending = sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(pending, 1.0)
    fired = sim.schedule(0.5, lambda: None)
    sim.run_until(1.5)
    fired.cancel()
    with pytest.raises(SimulationError):
        sim.reschedule(fired, 1.0)


def test_periodic_timer_reuses_one_timer_object():
    sim = Simulator()
    ticks = []
    handle = sim.every(1.0, lambda: ticks.append(sim.now))
    first = handle._timer
    sim.run_until(5.0)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert handle._timer is first


# -- PeriodicTimer edge cases ------------------------------------------------

def test_periodic_cancel_from_inside_its_own_callback():
    sim = Simulator()
    fired = []
    handle = None

    def tick():
        fired.append(sim.now)
        if len(fired) == 3:
            handle.cancel()

    handle = sim.every(1.0, tick)
    sim.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]
    assert sim.pending_events == 0


def test_periodic_start_after_zero_fires_immediately():
    sim = Simulator()
    fired = []
    sim.every(2.0, lambda: fired.append(sim.now), start_after=0)
    sim.run_until(6.0)
    assert fired == [0.0, 2.0, 4.0, 6.0]


def test_periodic_start_after_zero_matches_reference_order():
    def script(sim):
        order = []
        sim.schedule(0.0, lambda: order.append("plain"))
        sim.every(1.0, lambda: order.append("tick"), start_after=0)
        sim.schedule(0.0, lambda: order.append("late"))
        sim.run_until(2.0)
        return order

    assert script(Simulator()) == script(ReferenceSimulator())


def test_periodic_survives_compaction_between_firings():
    sim = Simulator()
    fired = []
    handle = sim.every(10.0, lambda: fired.append(sim.now))
    churn = [sim.schedule(5000.0, lambda: None) for __ in range(500)]
    sim.run_until(25.0)
    for timer in churn:
        timer.cancel()  # triggers compaction mid-lifetime
    assert sim.compactions >= 1
    sim.run_until(50.0)
    assert fired == [10.0, 20.0, 30.0, 40.0, 50.0]
    handle.cancel()
    sim.run_until(100.0)
    assert fired[-1] == 50.0


def test_periodic_reentrancy_with_compaction_interleaved():
    """A periodic whose callback churns cancellations (forcing compaction
    while its own reused timer is live) must keep exact cadence and
    ordering versus the seed engine."""

    def script(sim):
        log = []
        churn = []

        def tick():
            log.append(("tick", sim.now))
            for timer in churn:
                timer.cancel()
            del churn[:]
            churn.extend(sim.schedule(900.0, lambda: None)
                         for __ in range(80))
            sim.schedule(0.5, lambda: log.append(("mid", sim.now)))

        sim.every(2.0, tick)
        sim.run_until(30.0)
        for timer in churn:
            timer.cancel()
        return log

    engine = Simulator()
    assert script(engine) == script(ReferenceSimulator())
    assert engine.compactions >= 1
