"""Unit tests for Timeout and Event."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout


def test_timeout_rejects_negative_delay():
    with pytest.raises(ValueError):
        Timeout(-0.5)


def test_timeout_stores_delay():
    assert Timeout(3).delay == 3.0


def test_event_fire_delivers_value_to_waiters():
    sim = Simulator()
    event = Event(sim, "e")
    got = []
    event.add_waiter(got.append)
    event.add_waiter(got.append)
    event.fire("value")
    assert got == ["value", "value"]
    assert event.fired
    assert event.value == "value"


def test_event_double_fire_rejected():
    sim = Simulator()
    event = Event(sim)
    event.fire()
    with pytest.raises(RuntimeError):
        event.fire()


def test_waiter_on_fired_event_delivered_asynchronously():
    sim = Simulator()
    event = Event(sim)
    event.fire(7)
    got = []
    event.add_waiter(got.append)
    assert got == []  # not synchronous
    sim.run_until(0.0)
    assert got == [7]


def test_remove_waiter():
    sim = Simulator()
    event = Event(sim)
    got = []
    event.add_waiter(got.append)
    event.remove_waiter(got.append)
    event.fire(1)
    assert got == []


def test_remove_missing_waiter_is_noop():
    sim = Simulator()
    event = Event(sim)
    event.remove_waiter(lambda v: None)  # must not raise


def test_after_fires_at_delay():
    from repro.sim.events import after

    sim = Simulator()
    event = after(sim, 5.0)
    sim.run_until(4.0)
    assert not event.fired
    sim.run_until(5.0)
    assert event.fired


def test_any_of_first_wins():
    from repro.sim.events import after, any_of

    sim = Simulator()
    slow = after(sim, 10.0, "slow")
    fast = after(sim, 2.0, "fast")
    combined = any_of(sim, slow, fast)
    got = []

    def worker():
        winner, value = yield combined
        got.append(winner.name)

    sim.spawn(worker())
    sim.run_until(20.0)
    assert got == ["fast"]


def test_any_of_with_already_fired_event():
    from repro.sim.events import after, any_of

    sim = Simulator()
    done = Event(sim, "done")
    done.fire("x")
    combined = any_of(sim, done, after(sim, 5.0))
    sim.run_until(0.0)
    assert combined.fired
    winner, value = combined.value
    assert winner is done and value == "x"


def test_any_of_ignores_later_events():
    from repro.sim.events import after, any_of

    sim = Simulator()
    a = after(sim, 1.0, "a")
    b = after(sim, 2.0, "b")
    combined = any_of(sim, a, b)
    sim.run_until(10.0)  # b fires later: must not double-fire combined
    assert combined.value[0] is a
