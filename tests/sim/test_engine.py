"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_until_fires_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run_until(2.5)
    assert fired == ["a", "b"]
    sim.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_run_until_sets_clock_even_without_events():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0


def test_simultaneous_events_run_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(5.0, lambda n=name: fired.append(n))
    sim.run_until(5.0)
    assert fired == list("abcde")


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, lambda: fired.append(sim.now))
    sim.run_until(0.0)
    assert fired == [0.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cannot_run_backwards():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, lambda: fired.append(1))
    timer.cancel()
    sim.run_until(2.0)
    assert fired == []
    assert not timer.pending


def test_timer_pending_lifecycle():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    assert timer.pending
    sim.run_until(1.0)
    assert timer.fired
    assert not timer.pending


def test_callback_scheduling_new_event_same_instant():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append("x")))
    sim.run_until(1.0)
    assert fired == ["x"]


def test_at_schedules_absolute_time():
    sim = Simulator()
    sim.run_until(5.0)
    fired = []
    sim.at(8.0, lambda: fired.append(sim.now))
    sim.run_until(10.0)
    assert fired == [8.0]


def test_every_fires_periodically_until_cancelled():
    sim = Simulator()
    fired = []
    handle = sim.every(2.0, lambda: fired.append(sim.now))
    sim.run_until(7.0)
    assert fired == [2.0, 4.0, 6.0]
    handle.cancel()
    sim.run_until(20.0)
    assert fired == [2.0, 4.0, 6.0]


def test_every_start_after_override():
    sim = Simulator()
    fired = []
    sim.every(5.0, lambda: fired.append(sim.now), start_after=1.0)
    sim.run_until(12.0)
    assert fired == [1.0, 6.0, 11.0]


def test_every_rejects_nonpositive_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_run_drains_queue():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(100.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]
    assert sim.now == 100.0


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    timer = sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    timer.cancel()
    assert sim.pending_events == 1


def test_reentrancy_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run_until(10.0)

    sim.schedule(1.0, reenter)
    sim.run_until(2.0)


def test_process_exception_propagates_to_driver():
    """Errors never pass silently: a crashing process surfaces in the
    run_until() call that stepped it."""
    sim = Simulator()

    def crasher():
        yield from ()  # makes this a generator function
        raise RuntimeError("boom")

    sim.spawn(crasher())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run_until(1.0)
