"""Kernel-trace profiler: site attribution, accounting, and reporting."""

import pytest

from repro.sim import KernelTrace, Simulator, site_for


class FakeClock:
    """Deterministic perf_counter: each call advances by ``step``."""

    def __init__(self, step=0.001):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


class Widget:
    def __init__(self, log):
        self.log = log

    def poke(self):
        self.log.append(id(self))


def _named(log):
    log.append("named")


def test_site_for_plain_function():
    assert site_for(_named) == "{}.{}".format(_named.__module__, "_named")


def test_site_for_collapses_bound_methods_to_one_site():
    a, b = Widget([]), Widget([])
    assert site_for(a.poke) == site_for(b.poke)
    assert site_for(a.poke).endswith("Widget.poke")


def test_site_for_falls_back_to_repr_for_odd_callables():
    class Oddball:
        def __call__(self):
            pass

        def __repr__(self):
            return "<Oddball " + "x" * 200 + ">"

    site = site_for(Oddball())  # instance has no __qualname__
    assert site.startswith("<Oddball")
    assert len(site) <= 80


def test_dispatch_counts_per_site():
    trace = KernelTrace(clock=FakeClock())
    log = []
    widget = Widget(log)
    for __ in range(3):
        trace.dispatch(widget.poke)
    trace.dispatch(lambda: _named(log))
    assert trace.total_events == 4
    counts = {s.site: s.count for s in trace.sites.values()}
    assert counts[site_for(widget.poke)] == 3


def test_wall_time_uses_injected_clock():
    clock = FakeClock(step=0.5)
    trace = KernelTrace(clock=clock)
    trace.dispatch(lambda: None)
    trace.dispatch(lambda: None)
    # Each dispatch brackets the callback with two clock reads 0.5 apart.
    assert trace.total_wall_s == pytest.approx(1.0)


def test_dispatch_attributes_even_when_callback_raises():
    trace = KernelTrace(clock=FakeClock())

    def boom():
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        trace.dispatch(boom)
    assert trace.total_events == 1
    assert trace.top(1)[0].wall_s > 0.0


def test_top_orders_by_key_and_validates_it():
    trace = KernelTrace(clock=FakeClock())

    def often():
        pass

    def rarely():
        for __ in range(20):
            trace._clock()  # inflate wall time relative to `often`

    for __ in range(5):
        trace.dispatch(often)
    trace.dispatch(rarely)

    by_count = trace.top(key="count")
    assert [s.site for s in by_count][0].endswith("often")
    by_wall = trace.top(key="wall_s")
    assert [s.site for s in by_wall][0].endswith("rarely")
    assert len(trace.top(1)) == 1
    with pytest.raises(ValueError):
        trace.top(key="bogus")


def test_report_layout():
    trace = KernelTrace(clock=FakeClock())
    log = []
    for __ in range(4):
        trace.dispatch(lambda: _named(log))
    report = trace.report(n=10)
    lines = report.splitlines()
    assert "4 events" in lines[0]
    assert "_named" in report or "<lambda>" in report
    assert "ev%" in lines[1]
    # n smaller than the site count appends a truncation note
    for index in range(20):
        exec("def f{}(): pass".format(index), globals())
        trace.dispatch(globals()["f{}".format(index)])
    truncated = trace.report(n=3)
    assert "more sites" in truncated.splitlines()[-1]


def test_simulator_integration_and_reset():
    sim = Simulator()
    trace = sim.set_trace(KernelTrace())
    assert sim.trace is trace
    log = []
    widget = Widget(log)
    for i in range(10):
        sim.schedule(float(i), widget.poke)
    sim.schedule(100.0, widget.poke).cancel()
    sim.run()
    assert trace.total_events == 10  # cancelled events never reach the trace
    assert trace.top(1)[0].site == site_for(widget.poke)

    trace.reset()
    assert trace.total_events == 0 and trace.sites == {}

    sim.set_trace(None)
    assert sim.trace is None
    sim.schedule(200.0, widget.poke)
    sim.run()
    assert trace.total_events == 0  # disabled: no further attribution


# -- re-entrant set_trace (the hook may change while the loop drains) --------

def test_set_trace_swapped_mid_run_takes_effect_for_the_next_event():
    sim = Simulator()
    first = KernelTrace(clock=FakeClock())
    second = KernelTrace(clock=FakeClock())
    sim.set_trace(first)
    log = []
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(2.0, lambda: sim.set_trace(second))
    sim.schedule(3.0, lambda: log.append("b"))
    sim.run()
    assert log == ["a", "b"]
    assert first.total_events == 2   # "a" plus the swapping event itself
    assert second.total_events == 1  # only "b"


def test_set_trace_installed_mid_run_sees_subsequent_events():
    sim = Simulator()
    trace = KernelTrace(clock=FakeClock())
    log = []
    sim.schedule(1.0, lambda: log.append("early"))  # untraced
    sim.schedule(2.0, lambda: sim.set_trace(trace))
    sim.schedule(3.0, lambda: log.append("late"))
    sim.run()
    assert log == ["early", "late"]
    assert trace.total_events == 1


def test_set_trace_cleared_mid_run_stops_attribution():
    sim = Simulator()
    trace = KernelTrace(clock=FakeClock())
    sim.set_trace(trace)
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: sim.set_trace(None))
    sim.schedule(3.0, lambda: None)
    sim.run()
    assert trace.total_events == 2  # the clear event is the last traced


def test_set_trace_swap_applies_within_run_until_too():
    sim = Simulator()
    first = KernelTrace(clock=FakeClock())
    second = KernelTrace(clock=FakeClock())
    sim.set_trace(first)
    sim.schedule(1.0, lambda: sim.set_trace(second))
    sim.schedule(2.0, lambda: None)
    sim.run_until(5.0)
    assert first.total_events == 1
    assert second.total_events == 1
