"""Unit + property tests for processes, including pause/resume."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessState


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_process_runs_and_completes():
    sim = Simulator()
    log = []

    def worker():
        log.append(sim.now)
        yield Timeout(2.0)
        log.append(sim.now)
        return "done"

    proc = sim.spawn(worker(), name="w")
    sim.run_until(5.0)
    assert log == [0.0, 2.0]
    assert proc.state is ProcessState.DONE
    assert proc.result == "done"
    assert proc.done_event.fired


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    event = Event(sim)
    got = []

    def worker():
        value = yield event
        got.append(value)

    sim.spawn(worker())
    sim.schedule(3.0, lambda: event.fire("payload"))
    sim.run_until(4.0)
    assert got == ["payload"]


def test_process_join_another_process():
    sim = Simulator()
    order = []

    def child():
        yield Timeout(2.0)
        order.append("child")
        return 42

    def parent():
        child_proc = sim.spawn(child(), name="child")
        result = yield child_proc
        order.append(("parent", result))

    sim.spawn(parent(), name="parent")
    sim.run_until(5.0)
    assert order == ["child", ("parent", 42)]


def test_pause_freezes_remaining_sleep():
    sim = Simulator()
    wake_times = []

    def worker():
        yield Timeout(10.0)
        wake_times.append(sim.now)

    proc = sim.spawn(worker())
    sim.run_until(4.0)
    proc.pause()
    sim.run_until(20.0)  # paused across the original deadline
    assert wake_times == []
    proc.resume()
    sim.run_until(30.0)
    # 6 seconds of sleep remained at pause time
    assert wake_times == [26.0]


def test_pause_resume_idempotent():
    sim = Simulator()

    def worker():
        yield Timeout(5.0)

    proc = sim.spawn(worker())
    sim.run_until(1.0)
    proc.pause()
    proc.pause()
    proc.resume()
    proc.resume()
    sim.run_until(10.0)
    assert proc.state is ProcessState.DONE


def test_event_fired_while_paused_delivered_on_resume():
    sim = Simulator()
    event = Event(sim)
    got = []

    def worker():
        value = yield event
        got.append((sim.now, value))

    proc = sim.spawn(worker())
    sim.run_until(1.0)
    proc.pause()
    event.fire("late")
    sim.run_until(5.0)
    assert got == []
    proc.resume()
    sim.run_until(6.0)
    assert got == [(5.0, "late")]


def test_kill_stops_process_and_fires_done():
    sim = Simulator()

    def worker():
        yield Timeout(100.0)

    proc = sim.spawn(worker())
    sim.run_until(1.0)
    proc.kill()
    assert proc.state is ProcessState.KILLED
    assert proc.done_event.fired
    sim.run_until(200.0)
    assert proc.state is ProcessState.KILLED


def test_kill_idempotent():
    sim = Simulator()

    def worker():
        yield Timeout(10.0)

    proc = sim.spawn(worker())
    sim.run_until(1.0)
    proc.kill()
    proc.kill()


def test_generator_finally_runs_on_kill():
    sim = Simulator()
    cleaned = []

    def worker():
        try:
            yield Timeout(100.0)
        finally:
            cleaned.append(True)

    proc = sim.spawn(worker())
    sim.run_until(1.0)
    proc.kill()
    assert cleaned == [True]


def test_yielding_garbage_kills_process():
    sim = Simulator()

    def worker():
        yield "nonsense"

    sim.spawn(worker())
    with pytest.raises(TypeError):
        sim.run_until(1.0)


def test_pause_before_first_step_delays_start():
    sim = Simulator()
    log = []

    def worker():
        log.append(sim.now)
        yield Timeout(1.0)

    proc = sim.spawn(worker())
    proc.pause()  # pause before the 0-delay start fires
    sim.run_until(5.0)
    assert log == []
    proc.resume()
    sim.run_until(6.0)
    assert log == [5.0]


@settings(max_examples=30, deadline=None)
@given(
    sleeps=st.lists(st.floats(min_value=0.01, max_value=10.0),
                    min_size=1, max_size=6),
    pause_at=st.floats(min_value=0.0, max_value=20.0),
    pause_for=st.floats(min_value=0.0, max_value=20.0),
)
def test_pause_preserves_total_work_time(sleeps, pause_at, pause_for):
    """Property: pausing shifts completion by exactly the pause length
    when the pause lands strictly inside the process's active life."""
    total = sum(sleeps)

    def run(with_pause):
        sim = Simulator()
        done = []

        def worker():
            for s in sleeps:
                yield Timeout(s)
            done.append(sim.now)

        proc = sim.spawn(worker())
        if with_pause:
            sim.schedule(pause_at, proc.pause)
            sim.schedule(pause_at + pause_for, proc.resume)
        sim.run_until(total + pause_at + pause_for + 1.0)
        return done[0] if done else None

    base = run(False)
    paused = run(True)
    assert base == pytest.approx(total)
    if pause_at < total:
        assert paused == pytest.approx(base + pause_for)
    elif pause_at == total:
        # Boundary: the pause and the final wakeup race at the same
        # instant; either ordering is legitimate.
        assert paused in (pytest.approx(base),
                          pytest.approx(base + pause_for))
    else:
        assert paused == pytest.approx(base)
