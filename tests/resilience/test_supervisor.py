"""The supervisor state machine: watchdog, retries, quarantine."""

import pytest

from repro.experiments.grid import FuncSpec, GridRunner
from repro.resilience import (
    HarnessFaults,
    JobQuarantined,
    RetryPolicy,
    Supervisor,
)


def _jobs(n):
    return [FuncSpec.make("json:dumps", obj=i) for i in range(n)]


def _fast_policy(max_attempts):
    return RetryPolicy(max_attempts=max_attempts, base_delay_s=0.0,
                       jitter=0.0)


def _processes_available():
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        parent, child = context.Pipe(duplex=False)
        parent.close()
        child.close()
        return True
    except (ImportError, NotImplementedError, OSError, ValueError):
        return False


needs_processes = pytest.mark.skipif(
    not _processes_available(),
    reason="worker processes unavailable on this platform")


# -- plain success -----------------------------------------------------------

@pytest.mark.parametrize("mode", ["serial", "process"])
def test_clean_run_returns_every_result(mode):
    if mode == "process" and not _processes_available():
        pytest.skip("no processes")
    supervisor = Supervisor(mode=mode, harness_faults=HarnessFaults())
    specs = _jobs(3)
    results = supervisor.execute(specs, workers=2)
    assert [results[s] for s in specs] == ["0", "1", "2"]
    assert supervisor.stats.succeeded == 3
    assert supervisor.stats.quarantined == 0
    assert not supervisor.manifest


def test_on_result_fires_per_completed_job():
    supervisor = Supervisor(mode="serial", harness_faults=HarnessFaults())
    seen = []
    supervisor.execute(_jobs(2), on_result=lambda s, r: seen.append(r))
    assert sorted(seen) == ["0", "1"]


def test_default_labels_name_index_and_function():
    spec = FuncSpec.make("json:dumps", obj=1)
    assert Supervisor.label_for(spec, 4) == "job:0004:dumps"


# -- crash recovery (acceptance: retry succeeds bitwise-identically) ---------

@needs_processes
def test_worker_crash_retries_and_matches_unfaulted_run():
    specs = _jobs(3)
    clean = Supervisor(mode="process", harness_faults=HarnessFaults())
    expected = clean.execute(specs, workers=2)

    faults = HarnessFaults.from_json('{"crash": {"job:0000:*": [1]}}')
    supervisor = Supervisor(mode="process", harness_faults=faults,
                            retry_policy=_fast_policy(3))
    results = supervisor.execute(specs, workers=2)
    assert results == expected  # bitwise-identical despite the crash
    assert supervisor.stats.crashes == 1
    assert supervisor.stats.recovered == 1
    assert supervisor.stats.retries == 1
    assert not supervisor.manifest


@needs_processes
def test_crash_exit_code_lands_in_the_failure_record():
    from repro.resilience.hooks import CRASH_EXIT_CODE

    faults = HarnessFaults.from_json('{"crash": {"job:0000:*": []}}')
    supervisor = Supervisor(mode="process", harness_faults=faults,
                            retry_policy=_fast_policy(2))
    results = supervisor.execute(_jobs(1))
    assert results == {}
    record = supervisor.manifest.records[0]
    assert [a.outcome for a in record.attempts] == ["crash", "crash"]
    assert str(CRASH_EXIT_CODE) in record.attempts[0].error


# -- watchdog (acceptance: hung job's deadline fires) ------------------------

@needs_processes
def test_hung_job_is_killed_at_the_deadline_and_quarantined():
    import time

    faults = HarnessFaults.from_json('{"hang": {"job:0001:*": []}}')
    supervisor = Supervisor(mode="process", job_timeout_s=0.5,
                            harness_faults=faults,
                            retry_policy=_fast_policy(2))
    specs = _jobs(2)
    started = time.monotonic()
    results = supervisor.execute(specs, workers=2)
    elapsed = time.monotonic() - started
    assert specs[0] in results and specs[1] not in results
    assert supervisor.stats.timeouts == 2  # both attempts expired
    assert supervisor.stats.quarantined == 1
    # two 0.5s deadlines, not the 3600s injected hang
    assert elapsed < 10.0
    record = supervisor.manifest.records[0]
    assert record.label == "job:0001:dumps"
    assert [a.outcome for a in record.attempts] == ["timeout", "timeout"]
    assert record.attempts[0].elapsed_s >= 0.5


# -- quarantine and degradation ----------------------------------------------

@pytest.mark.parametrize("mode", ["serial", "process"])
def test_poison_job_quarantined_after_n_attempts_run_degrades(mode):
    if mode == "process" and not _processes_available():
        pytest.skip("no processes")
    faults = HarnessFaults.from_json('{"fail": {"job:0001:*": []}}')
    supervisor = Supervisor(mode=mode, harness_faults=faults,
                            retry_policy=_fast_policy(3))
    specs = _jobs(3)
    results = supervisor.execute(specs, workers=2)
    # the run completed: every healthy job has a result
    assert [results[s] for s in (specs[0], specs[2])] == ["0", "2"]
    assert specs[1] not in results
    assert supervisor.stats.quarantined == 1
    record = supervisor.manifest.records[0]
    assert len(record.attempts) == 3
    assert all(a.outcome == "error" for a in record.attempts)
    assert "InjectedFault" in record.attempts[0].error


def test_real_exception_is_retried_then_quarantined_with_traceback():
    # math.sqrt rejects keyword arguments: a genuine job bug, no
    # harness fault involved.
    supervisor = Supervisor(mode="serial",
                            harness_faults=HarnessFaults(),
                            retry_policy=_fast_policy(2))
    results = supervisor.execute([FuncSpec.make("math:sqrt", x=2.0)])
    assert results == {}
    record = supervisor.manifest.records[0]
    assert len(record.attempts) == 2
    assert "TypeError" in record.attempts[0].error
    assert "Traceback" in record.attempts[0].traceback


def test_fail_fast_raises_job_quarantined():
    faults = HarnessFaults.from_json('{"fail": {"*": []}}')
    supervisor = Supervisor(mode="serial", fail_fast=True,
                            harness_faults=faults,
                            retry_policy=_fast_policy(1))
    with pytest.raises(JobQuarantined):
        supervisor.execute(_jobs(1))


def test_retry_delays_are_recorded_and_deterministic():
    faults = HarnessFaults.from_json('{"fail": {"*": []}}')

    def run_once():
        supervisor = Supervisor(
            mode="serial", harness_faults=faults,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                     seed=5),
            sleep=lambda s: None)  # don't actually wait in tests
        supervisor.execute(_jobs(1))
        return [a.delay_s for a in supervisor.manifest.records[0].attempts]

    first = run_once()
    assert first == run_once()  # seeded jitter: reruns schedule alike
    assert first[0] > 0.0 and first[1] > 0.0
    assert first[2] == 0.0  # final attempt grants no further delay


# -- serial synthesis --------------------------------------------------------

def test_serial_mode_synthesises_crash_and_hang_without_processes():
    faults = HarnessFaults.from_json(
        '{"crash": {"job:0000:*": [1]}, "hang": {"job:0001:*": []}}')
    supervisor = Supervisor(mode="serial", harness_faults=faults,
                            retry_policy=_fast_policy(2))
    specs = _jobs(2)
    results = supervisor.execute(specs)
    assert results[specs[0]] == "0"  # crashed once, recovered
    assert specs[1] not in results  # hung both attempts, quarantined
    assert supervisor.stats.crashes == 1
    assert supervisor.stats.timeouts == 2
    outcomes = [a.outcome for a in supervisor.manifest.records[0].attempts]
    assert outcomes == ["timeout", "timeout"]


def test_serial_mode_arms_wall_budget_from_the_job_timeout():
    from repro.sim.engine import ambient_budget

    _PROBED.clear()
    supervisor = Supervisor(mode="serial", job_timeout_s=7.0,
                            harness_faults=HarnessFaults())
    supervisor.execute([FuncSpec.make(_probe_ambient_budget)])
    assert _PROBED["budget"].max_wall_s == 7.0
    assert ambient_budget() is None  # restored after the attempt


# -- sim budget plumbed through workers --------------------------------------

def test_sim_budget_abort_is_a_budget_outcome():
    from repro.sim.engine import RunBudget

    supervisor = Supervisor(
        mode="serial", sim_budget=RunBudget(max_events=10),
        harness_faults=HarnessFaults(), retry_policy=_fast_policy(1))
    results = supervisor.execute([FuncSpec.make(_runaway_sim)])
    assert results == {}
    record = supervisor.manifest.records[0]
    assert record.attempts[0].outcome == "budget"
    assert "max_events" in record.attempts[0].error


@needs_processes
def test_sim_budget_abort_in_a_real_worker():
    from repro.sim.engine import RunBudget

    supervisor = Supervisor(
        mode="process", sim_budget=RunBudget(max_events=10),
        harness_faults=HarnessFaults(), retry_policy=_fast_policy(1))
    results = supervisor.execute([FuncSpec.make(_runaway_sim)])
    assert results == {}
    record = supervisor.manifest.records[0]
    assert record.attempts[0].outcome == "budget"


_PROBED = {}


def _probe_ambient_budget():
    from repro.sim.engine import ambient_budget

    _PROBED["budget"] = ambient_budget()
    return 1


def _runaway_sim():
    from repro.sim.engine import Simulator

    sim = Simulator()

    def tick():
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run_until(1e9)
    return sim.dispatched


# -- grid runner integration -------------------------------------------------

def test_grid_runner_routes_through_the_supervisor(tmp_path):
    faults = HarnessFaults.from_json('{"fail": {"job:0001:*": []}}')
    supervisor = Supervisor(mode="serial", harness_faults=faults,
                            retry_policy=_fast_policy(2))
    runner = GridRunner(cache=str(tmp_path / "cache"),
                        supervisor=supervisor)
    specs = _jobs(3)
    results = runner.run(specs)
    assert results == ["0", None, "2"]  # quarantined spec -> None slot
    assert runner.stats.supervised_batches == 1
    assert runner.stats.failed == 1
    # successes were cached; the quarantined one was not
    warm = GridRunner(cache=str(tmp_path / "cache"),
                      supervisor=Supervisor(mode="serial",
                                            harness_faults=HarnessFaults()))
    warm_results = warm.run(specs)
    assert warm.stats.cache_hits == 2
    assert warm.stats.executed == 1  # the poisoned one, now clean
    assert warm_results == ["0", "1", "2"]


def test_supervised_cache_hits_skip_the_supervisor():
    supervisor = Supervisor(mode="serial", harness_faults=HarnessFaults())
    runner = GridRunner(supervisor=supervisor)
    spec = FuncSpec.make("json:dumps", obj=42)
    assert runner.run([spec, spec]) == ["42", "42"]
    assert supervisor.stats.jobs == 1  # deduped before dispatch


# -- per-run scoping ---------------------------------------------------------

def test_serial_fallback_warns_once_per_run(capsys):
    supervisor = Supervisor(mode="auto", harness_faults=HarnessFaults())
    supervisor._note_serial_fallback(OSError("no semaphores"))
    supervisor._note_serial_fallback(OSError("no semaphores"))
    err = capsys.readouterr().err
    assert err.count("worker processes unavailable") == 1
    supervisor.begin_run()  # a new run re-arms the warning
    supervisor._note_serial_fallback(OSError("no semaphores"))
    err = capsys.readouterr().err
    assert err.count("worker processes unavailable") == 1
    assert supervisor.stats.serial_fallbacks == 3


def test_run_stats_cover_only_the_current_run():
    supervisor = Supervisor(mode="serial", harness_faults=HarnessFaults())
    supervisor.execute(_jobs(3))
    assert supervisor.run_stats()["succeeded"] == 3
    supervisor.begin_run()
    assert supervisor.run_stats()["succeeded"] == 0
    supervisor.execute(_jobs(2))
    assert supervisor.run_stats()["succeeded"] == 2
    # Lifetime counters stay cumulative across runs.
    assert supervisor.stats.succeeded == 5


def test_fleet_runner_scopes_the_supervisor_per_run():
    from repro.fleet.population import PopulationSpec
    from repro.fleet.shard import FleetRunner

    supervisor = Supervisor(mode="serial", harness_faults=HarnessFaults())
    supervisor.execute(_jobs(2))  # counters left over from a prior run
    runner = GridRunner(supervisor=supervisor)
    FleetRunner(PopulationSpec(seed=1, devices=2, shard_size=2),
                runner=runner)
    assert supervisor.run_stats()["succeeded"] == 0
    assert supervisor.stats.succeeded == 2


# -- telemetry emission ------------------------------------------------------

class _Recorder:
    def __init__(self):
        self.attempts = []
        self.budgets = []

    def supervisor_attempt(self, label, attempt, outcome, error):
        self.attempts.append((attempt, outcome))

    def budget(self, label, attempt, error):
        self.budgets.append((label, attempt))


def test_failed_attempts_land_in_the_telemetry_stream():
    faults = HarnessFaults.from_json('{"fail": {"job:0001:*": []}}')
    supervisor = Supervisor(mode="serial", harness_faults=faults,
                            retry_policy=_fast_policy(2))
    supervisor.telemetry = recorder = _Recorder()
    supervisor.execute(_jobs(2))
    assert recorder.attempts == [(1, "error"), (2, "error"),
                                 (2, "quarantined")]
    assert recorder.budgets == []


def test_crash_directives_emit_crash_attempt_events():
    faults = HarnessFaults.from_json('{"crash": {"job:0000:*": [1]}}')
    supervisor = Supervisor(mode="serial", harness_faults=faults,
                            retry_policy=_fast_policy(3))
    supervisor.telemetry = recorder = _Recorder()
    results = supervisor.execute(_jobs(1))
    assert list(results.values()) == ["0"]
    assert recorder.attempts == [(1, "crash")]
