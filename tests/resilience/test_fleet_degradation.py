"""The acceptance scenario: a fleet run that degrades, then converges.

One shard crashes on its first attempt (must recover bitwise-
identically), one shard is poison (must be quarantined while the run
completes). The resume re-attempts only the quarantined shard and the
final artifacts converge to an uninterrupted run's, byte for byte.
"""

import io
import json
import os

from contextlib import redirect_stdout

import pytest

from repro.experiments.grid import GridRunner
from repro.fleet.population import PopulationSpec
from repro.fleet.shard import FleetRunner
from repro.resilience import HarnessFaults, RetryPolicy, Supervisor


def _population():
    return PopulationSpec(seed=5, devices=4, shard_size=2, minutes=1.0)


def _supervised(faults, **kwargs):
    supervisor = Supervisor(
        harness_faults=faults,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                 jitter=0.0),
        mode="auto", **kwargs)
    return GridRunner(jobs=2, supervisor=supervisor)


def test_fleet_degrades_recovers_and_resumes_to_golden(tmp_path):
    population = _population()

    # Golden: no faults, plain runner.
    golden = FleetRunner(population, runner=GridRunner(),
                         checkpoint_dir=str(tmp_path / "golden"))
    golden_merged = golden.run()
    assert golden_merged is not None

    # Faulted: shard 0 crashes once (recoverable), shard 1 is poison.
    faults = HarnessFaults.from_json(
        '{"crash": {"shard:000000": [1]}, "fail": {"shard:000001": []}}')
    runner = FleetRunner(population, runner=_supervised(faults),
                         checkpoint_dir=str(tmp_path / "ck"))
    executed = runner.run_shards()
    assert executed == 1  # only the crash shard completed
    assert runner.quarantined_shards == [1]
    assert runner.pending_shards() == [1]

    supervisor = runner.runner.supervisor
    assert supervisor.stats.quarantined == 1
    record = supervisor.manifest.records[0]
    assert record.label == "shard:000001"
    assert record.seed == 5  # extracted from the population spec
    assert record.spec["func"] == "repro.fleet.shard:run_shard"
    assert len(record.attempts) == 2
    # the manifest run fingerprint is the population's
    assert supervisor.manifest.fingerprint() == \
        population.fingerprint()[:12]

    # The crash shard's checkpoint is bitwise-identical to golden's.
    name = "shard_000000.json"
    assert (tmp_path / "ck" / name).read_bytes() == \
        (tmp_path / "golden" / name).read_bytes()
    # The quarantined shard wrote NO checkpoint (timed-out/failed
    # shards must never publish partial state).
    assert not (tmp_path / "ck" / "shard_000001.json").exists()

    # Degraded merge completes and accounts for the hole.
    merged = runner.merged_stats(allow_missing=True)
    assert runner.missing_shards == [1]
    vanilla = merged["vanilla"].to_dict()
    assert vanilla["counters"]["devices"] == 2  # shard 0 only

    # Resume without faults: only the quarantined shard re-runs, and
    # everything converges to the golden run.
    resume = FleetRunner(population,
                         runner=_supervised(HarnessFaults()),
                         checkpoint_dir=str(tmp_path / "ck"))
    assert resume.run_shards() == 1
    assert resume.shards_resumed == 1
    assert resume.quarantined_shards == []
    for index in range(population.shard_count):
        name = "shard_{:06d}.json".format(index)
        assert (tmp_path / "ck" / name).read_bytes() == \
            (tmp_path / "golden" / name).read_bytes()
    assert resume.merged_stats()["vanilla"].to_dict() == \
        golden_merged["vanilla"].to_dict()


def test_fail_fast_aborts_the_fleet_run(tmp_path):
    from repro.resilience import JobQuarantined

    population = _population()
    faults = HarnessFaults.from_json('{"fail": {"shard:000000": []}}')
    runner = FleetRunner(population,
                         runner=_supervised(faults, fail_fast=True),
                         checkpoint_dir=str(tmp_path / "ck"))
    with pytest.raises(JobQuarantined):
        runner.run_shards()


def test_fleet_cli_degrades_with_exit_75_then_resumes(tmp_path,
                                                      monkeypatch):
    from repro.cli import EXIT_DEGRADED, main

    monkeypatch.chdir(tmp_path)  # manifests land under results/

    def run_cli(extra=()):
        argv = ["fleet", "--devices", "4", "--shard-size", "2",
                "--minutes", "1", "--seed", "5", "--no-cache",
                "--jobs", "2", "--max-retries", "1",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--report-json", str(tmp_path / "fleet.json")]
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(argv + list(extra))
        return code, buffer.getvalue()

    code, text = run_cli(
        ["--harness-faults", '{"fail": {"shard:000001": []}}'])
    assert code == EXIT_DEGRADED
    assert "DEGRADED" in text
    assert "quarantined" in text
    report = json.loads((tmp_path / "fleet.json").read_text())
    assert report["degraded"]["missing_shards"] == [1]
    manifest_path = report["degraded"]["failure_manifest"]
    assert os.path.exists(manifest_path)

    # Clean resume: exit 0, complete report, no degraded block.
    code, text = run_cli()
    assert code == 0
    assert "Fleet comparison" in text
    report = json.loads((tmp_path / "fleet.json").read_text())
    assert "degraded" not in report
    assert report["devices"] == 4
