"""Harness fault hooks: deterministic crash/hang/fail injection."""

import pytest

from repro.resilience.errors import InjectedFault
from repro.resilience.hooks import HarnessFaults, apply_in_worker


def test_json_round_trip():
    faults = HarnessFaults.from_json(
        '{"crash": {"shard:000000": [1]}, "hang": {"shard:000001": []},'
        ' "fail": {"job:*": [2, 3]}}')
    again = HarnessFaults.from_json(faults.to_json())
    assert again == faults
    assert bool(faults)
    assert not HarnessFaults()


def test_directive_matching_attempts_and_patterns():
    faults = HarnessFaults.from_json(
        '{"crash": {"shard:000000": [1]}, "hang": {"shard:00000?": []}}')
    # crash is attempt-scoped; hang's empty list means every attempt
    assert faults.directive("shard:000000", 1) == "crash"
    assert faults.directive("shard:000000", 2) == "hang"  # glob matches
    assert faults.directive("shard:000003", 7) == "hang"
    assert faults.directive("shard:000100", 1) is None


def test_crash_takes_precedence_over_hang_and_fail():
    faults = HarnessFaults.from_json(
        '{"crash": {"j": []}, "hang": {"j": []}, "fail": {"j": []}}')
    assert faults.directive("j", 1) == "crash"


def test_from_env_reads_the_variable(monkeypatch):
    from repro.resilience.hooks import ENV_VAR

    monkeypatch.delenv(ENV_VAR, raising=False)
    assert not HarnessFaults.from_env()
    monkeypatch.setenv(ENV_VAR, '{"fail": {"job:0001:*": []}}')
    faults = HarnessFaults.from_env()
    assert faults.directive("job:0001:sleep", 1) == "fail"


def test_apply_in_worker_fail_raises_injected_fault():
    faults = HarnessFaults.from_json('{"fail": {"j": [1]}}')
    with pytest.raises(InjectedFault):
        apply_in_worker(faults, "j", 1)
    # attempt 2 is not targeted: no fault
    apply_in_worker(faults, "j", 2)


def test_apply_in_worker_hang_blocks_then_errors():
    # hang_s bounds the synthetic hang so a leaked fault cannot wedge
    # a test run forever; in production it is hours.
    faults = HarnessFaults.from_json(
        '{"hang": {"j": []}, "hang_s": 0.05}')
    with pytest.raises(RuntimeError):
        apply_in_worker(faults, "j", 1)


def test_storage_target_round_trips_and_counts_as_armed():
    faults = HarnessFaults.from_json(
        '{"storage": {"crash": [37], "torn": [12, 3]}}')
    assert bool(faults)
    again = HarnessFaults.from_json(faults.to_json())
    assert again == faults
    assert again.storage == (("crash", (37,)), ("torn", (3, 12)))


def test_storage_directive_matches_sequence_numbers():
    faults = HarnessFaults.from_json(
        '{"storage": {"crash": [37], "corrupt": [5]}}')
    assert faults.storage_directive(5) == "corrupt"
    assert faults.storage_directive(37) == "crash"
    assert faults.storage_directive(0) is None
    # An empty seq list targets every append.
    every = HarnessFaults.from_json('{"storage": {"torn": []}}')
    assert every.storage_directive(123) == "torn"
    assert not HarnessFaults().storage_directive(0)


def test_storage_rejects_unknown_kinds():
    with pytest.raises(ValueError):
        HarnessFaults.from_json('{"storage": {"melt": [1]}}')
