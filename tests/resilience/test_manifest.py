"""Failure manifests: exact accounting, and replay as repro bundles."""

import io
import json

from contextlib import redirect_stdout

from repro.experiments.grid import FuncSpec
from repro.resilience.manifest import (
    AttemptRecord,
    FailureManifest,
    FailureRecord,
    seed_of,
)


def _chaos_spec(seed=7):
    from repro.experiments.chaos import run_chaos_case

    return FuncSpec.make(run_chaos_case, case_key="torch",
                         mitigation="vanilla", minutes=1.0,
                         seed=seed, plan_json="")


def _record(spec, label="job:0000:run_chaos_case"):
    token = spec.cache_token()
    return FailureRecord(
        label=label, spec=token, seed=seed_of(token),
        attempts=[AttemptRecord(attempt=1, outcome="timeout",
                                error="deadline", elapsed_s=1.5,
                                delay_s=0.2),
                  AttemptRecord(attempt=2, outcome="crash",
                                error="exitcode 86")])


def test_manifest_round_trips_through_disk(tmp_path):
    manifest = FailureManifest(run_fingerprint="abc123def456")
    manifest.add(_record(_chaos_spec()))
    path = manifest.write(directory=str(tmp_path))
    assert path.endswith("failures_abc123def456.json")
    loaded = FailureManifest.load(path)
    assert loaded.fingerprint() == "abc123def456"
    assert len(loaded) == 1
    record = loaded.records[0]
    assert record.seed == 7
    assert record.spec == _chaos_spec().cache_token()
    assert [a.outcome for a in record.attempts] == ["timeout", "crash"]
    assert record.attempts[0].delay_s == 0.2
    # the JSON is self-describing
    data = json.loads(open(path).read())
    assert data["kind"] == "failure_manifest"
    assert data["failed_jobs"] == 1


def test_fingerprint_derived_from_specs_when_unset():
    a = FailureManifest()
    a.add(_record(_chaos_spec()))
    b = FailureManifest()
    b.add(_record(_chaos_spec()))
    assert a.fingerprint() == b.fingerprint()
    c = FailureManifest()
    c.add(_record(_chaos_spec(seed=8)))
    assert c.fingerprint() != a.fingerprint()


def test_seed_of_handles_every_spec_shape():
    assert seed_of({"kind": "case", "seed": 11}) == 11
    assert seed_of({"kind": "func",
                    "kwargs": [["seed", 5], ["x", 1]]}) == 5
    population_json = json.dumps({"seed": 2019, "devices": 4})
    assert seed_of({"kind": "func",
                    "kwargs": [["population_json", population_json]]}) \
        == 2019
    assert seed_of({"kind": "func", "kwargs": [["x", 1]]}) is None


# -- the acceptance path: manifest -> `repro chaos --replay` -----------------

def test_manifest_replays_through_the_chaos_cli(tmp_path):
    from repro.cli import main

    manifest = FailureManifest()
    manifest.add(_record(_chaos_spec()))
    # a fleet shard record rides along and must be skipped, not crash
    shard_spec = {"kind": "func", "func": "repro.fleet.shard:run_shard",
                  "kwargs": [["population_json", "{\"seed\": 1}"],
                             ["start", 0], ["stop", 2]]}
    manifest.add(FailureRecord(label="shard:000000", spec=shard_spec,
                               seed=1, attempts=[AttemptRecord(
                                   attempt=1, outcome="timeout",
                                   error="deadline")]))
    path = manifest.write(directory=str(tmp_path))

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["chaos", "--replay", path])
    text = buffer.getvalue()
    # torch/vanilla replays clean -> exit 0; the shard row is listed
    assert code == 0
    assert "replaying failure manifest" in text
    assert "replayed seed 7" in text
    assert "shard:000000" in text and "skipped" in text
    assert "1 job(s) replayed, 1 skipped" in text


def test_manifest_replay_surfaces_violations(tmp_path, monkeypatch):
    from repro.cli import main

    manifest = FailureManifest()
    manifest.add(_record(_chaos_spec()))
    path = manifest.write(directory=str(tmp_path))

    def fake_case(**kwargs):
        return {"seed": kwargs.get("seed", 0), "fingerprint": "f" * 64,
                "violations": [{"invariant": "planted", "time": 1.0,
                                "detail": "boom", "data": {}}]}

    import repro.experiments.chaos as chaos_module

    monkeypatch.setattr(chaos_module, "run_chaos_case", fake_case)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["chaos", "--replay", path])
    assert code == 1  # a reproduced violation must gate CI
    assert "1 violation(s)" in buffer.getvalue()
