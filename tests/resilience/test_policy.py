"""Seeded retry policy: deterministic backoff, bounded, jittered."""

from repro.resilience.policy import RetryPolicy


def test_first_attempt_has_no_delay():
    policy = RetryPolicy()
    assert policy.delay_s("job:0001:x", 1) == 0.0


def test_backoff_doubles_then_caps():
    policy = RetryPolicy(base_delay_s=1.0, max_delay_s=4.0, jitter=0.0)
    assert policy.delay_s("j", 2) == 1.0
    assert policy.delay_s("j", 3) == 2.0
    assert policy.delay_s("j", 4) == 4.0
    assert policy.delay_s("j", 5) == 4.0  # capped, not 8


def test_jitter_unit_is_deterministic_and_unit_range():
    policy = RetryPolicy(seed=3)
    units = {policy.jitter_unit("job:{:04d}".format(i), 2)
             for i in range(64)}
    assert all(0.0 <= u < 1.0 for u in units)
    assert len(units) > 32  # labels spread, not one constant
    again = RetryPolicy(seed=3)
    assert again.jitter_unit("job:0001", 2) == \
        policy.jitter_unit("job:0001", 2)


def test_seed_changes_the_jitter_stream():
    a = RetryPolicy(seed=0)
    b = RetryPolicy(seed=1)
    assert any(a.jitter_unit("job:{:04d}".format(i), 2)
               != b.jitter_unit("job:{:04d}".format(i), 2)
               for i in range(8))


def test_delays_are_independent_of_call_order():
    # Hash-derived jitter must not thread shared RNG state: asking for
    # job B first cannot change job A's delay.
    policy = RetryPolicy(base_delay_s=0.5, seed=9)
    a_first = policy.delay_s("a", 3)
    policy.delay_s("b", 2)
    assert policy.delay_s("a", 3) == a_first


def test_schedule_lists_every_retry_delay():
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.25, seed=2)
    schedule = policy.schedule("shard:000007")
    assert len(schedule) == 3  # delays before attempts 2..4
    assert schedule == tuple(policy.delay_s("shard:000007", n)
                             for n in (2, 3, 4))
