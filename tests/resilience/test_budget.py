"""In-sim runaway budgets: clean aborts with kernel diagnostics."""

import pytest

from repro.sim.engine import (
    BudgetExceeded,
    RunBudget,
    Simulator,
    ambient_budget,
    set_ambient_budget,
)


def _spinner(sim):
    """Schedule a self-rescheduling no-op: an unbounded event source."""
    def tick():
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)


def test_max_events_aborts_with_diagnostics():
    sim = Simulator(budget=RunBudget(max_events=100))
    _spinner(sim)
    with pytest.raises(BudgetExceeded) as excinfo:
        sim.run_until(1e9)
    exc = excinfo.value
    assert exc.reason == "max_events"
    assert exc.diagnostics["events_charged"] == 101
    assert exc.diagnostics["limits"]["max_events"] == 100
    assert exc.diagnostics["sim_now_s"] == pytest.approx(101.0)
    assert "max_events" in str(exc)
    assert "events_charged=101" in str(exc)


def test_max_sim_s_aborts_on_the_simulated_clock():
    sim = Simulator(budget=RunBudget(max_sim_s=50.0))
    _spinner(sim)
    with pytest.raises(BudgetExceeded) as excinfo:
        sim.run_until(1e9)
    assert excinfo.value.reason == "max_sim_s"
    assert excinfo.value.diagnostics["sim_now_s"] > 50.0


def test_budget_is_cumulative_across_simulators():
    # One budget armed on successive simulators bounds the *job*, not
    # each simulator: the fleet-shard semantics (hundreds of device
    # days, one runaway allowance).
    budget = RunBudget(max_events=150)
    first = Simulator(budget=budget)
    _spinner(first)
    first.run_until(100.0)  # 100 events charged
    second = Simulator(budget=budget)
    _spinner(second)
    with pytest.raises(BudgetExceeded):
        second.run_until(1e9)
    assert budget.events == 151


def test_fresh_returns_an_unspent_copy_and_tightens_wall():
    spent = RunBudget(max_events=10, max_sim_s=5.0, max_wall_s=60.0)
    spent.events = 9
    clean = spent.fresh(max_wall_s=2.0)
    assert clean.events == 0
    assert clean.max_events == 10
    assert clean.max_sim_s == 5.0
    assert clean.max_wall_s == 2.0  # min(60, 2)
    assert spent.fresh().max_wall_s == 60.0


def test_ambient_budget_is_inherited_and_restorable():
    budget = RunBudget(max_events=30)
    previous = set_ambient_budget(budget)
    try:
        assert ambient_budget() is budget
        sim = Simulator()
        assert sim.budget is budget
        _spinner(sim)
        with pytest.raises(BudgetExceeded):
            sim.run_until(1e9)
    finally:
        set_ambient_budget(previous)
    assert ambient_budget() is previous
    assert Simulator().budget is previous


def test_unbudgeted_simulator_is_unaffected():
    sim = Simulator()
    _spinner(sim)
    sim.run_until(500.0)
    assert sim.dispatched == 500
