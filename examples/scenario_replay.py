"""Scenario replay: one timeline, every mitigation.

Uses the declarative :class:`repro.scenario.Scenario` builder to script
a day-in-the-life timeline -- K-9's mail server degrades at minute 5 and
recovers at minute 20 -- and replays the *identical* timeline under
vanilla Android, LeaseOS, Doze and DefDroid, comparing the power drawn
during the outage window.

Run:  python examples/scenario_replay.py
"""

from repro.apps.buggy.cpu_apps import K9Mail
from repro.experiments.runner import format_table
from repro.mitigation import DefDroid, Doze, LeaseOS
from repro.scenario import Scenario


def build_timeline():
    return (
        Scenario(seed=17, connected=True)
        .install("k9", K9Mail, scenario="bad_server")
        .at(minutes=5).server("mail-server", "error")
        .at(minutes=20).server("mail-server", "ok")
        .measure("healthy", start_min=0, end_min=5)
        .measure("outage", start_min=5, end_min=20)
        .measure("recovered", start_min=22, end_min=30)
    )


def main():
    regimes = [
        ("vanilla", None),
        ("LeaseOS", LeaseOS()),
        ("Doze*", Doze(aggressive=True)),
        ("DefDroid", DefDroid()),
    ]
    rows = []
    for name, mitigation in regimes:
        result = build_timeline().run(minutes=30, mitigation=mitigation)
        rows.append([
            name,
            result.power("healthy", "k9"),
            result.power("outage", "k9"),
            result.power("recovered", "k9"),
            result.app("k9").synced,
        ])
    print(format_table(
        ["regime", "healthy (mW)", "outage (mW)", "recovered (mW)",
         "mail syncs"],
        rows,
        title="K-9 through a 15-minute mail-server outage "
              "(same seeded timeline)",
    ))
    print("\nLeaseOS is invisible while the app behaves (healthy phase "
          "matches vanilla),\ncontains the exception-handling holds "
          "during the outage, and lets syncing\nresume afterwards. Doze "
          "saves power by killing the syncs outright -- the\ndifference "
          "between utilitarian leases and blanket deferral.")


if __name__ == "__main__":
    main()
