"""Author a new app on the framework and watch LeaseOS judge it.

Shows the full app-developer surface: generator processes, wakelocks,
network, sensors, UI/data-write signals, and the optional custom utility
counter. The app deliberately degrades halfway through (it keeps its
wakelock but stops doing anything useful), and the printout shows the
lease decisions flip from renew to defer -- then recover.

Run:  python examples/write_your_own_app.py
"""

from repro.core.utility import UtilityCounter
from repro.droid.app import App
from repro.droid.exceptions import NetworkException
from repro.droid.phone import Phone
from repro.droid.resources import ResourceType
from repro.mitigation import LeaseOS


class SyncedNotes(App):
    """A note-syncing app: healthy, then buggy, then healthy again."""

    app_name = "SyncedNotes"
    category = "productivity"

    HEALTHY_S = 120.0
    STUCK_S = 240.0

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "notes-sync")
        lock.acquire()
        phase_end = self.ctx.sim.now + self.HEALTHY_S
        # Phase 1: useful work -- sync a batch every few seconds.
        while self.ctx.sim.now < phase_end:
            yield from self.compute(0.4)
            try:
                yield from self.http("notes-backend", payload_s=0.2)
                self.note_data_write()
                self.post_ui_update()
            except NetworkException as exc:
                self.note_exception(exc)
            yield self.sleep(3.0)
        # Phase 2: the "bug" -- hold the lock, do nothing at all.
        yield self.sleep(self.STUCK_S)
        # Phase 3: back to useful work.
        while True:
            yield from self.compute(0.4)
            self.note_data_write()
            yield self.sleep(3.0)


class SyncProgressCounter(UtilityCounter):
    """Optional custom utility: notes synced recently, scaled to 0-100."""

    def __init__(self, app):
        self.app = app

    def get_score(self):
        now = self.app.ctx.sim.now
        recent = self.app.data_writes_in(now - 60.0, now)
        return min(100.0, 10.0 * recent)


def main():
    leaseos = LeaseOS()
    phone = Phone(seed=11, mitigation=leaseos)
    app = phone.install(SyncedNotes())
    app.set_utility_counter(ResourceType.WAKELOCK,
                            SyncProgressCounter(app))

    phone.run_for(minutes=16.0)

    print("Lease decisions for SyncedNotes over 16 minutes:\n")
    previous_action = None
    for decision in leaseos.manager.decisions:
        if decision.lease.uid != app.uid:
            continue
        if decision.action != previous_action:
            print("  t={:6.1f}s  {:12s} -> {}".format(
                decision.time, decision.behavior.value, decision.action))
            previous_action = decision.action
    lease = leaseos.manager.leases_for(app.uid)[0]
    print("\nTotals: {} terms, {} deferrals; final state {!r}.".format(
        lease.term_index, lease.deferral_count, lease.state.value))
    print("The app was punished exactly while it was stuck, and earned "
          "its lease back\nonce it resumed doing useful work -- the "
          "continuous examine-renew loop of §3.2.")


if __name__ == "__main__":
    main()
