"""Custom utility counters (paper Fig. 6): TapAndTurn.

TapAndTurn shows a rotate icon when the orientation sensor fires; its
custom counter reports ``100 * clicks / rotations``. This example runs
the app in two worlds:

1. phone in a pocket, screen off -- rotations produce nothing, the
   counter (and the generic score) stay low, and LeaseOS defers the
   sensor lease;
2. an engaged user with the screen on who actually clicks the icon --
   the counter exonerates the sensor and the lease keeps renewing.

Run:  python examples/custom_utility.py
"""

from repro.apps.buggy.sensor_apps import TapAndTurn
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS


def run_scenario(engaged_user):
    mitigation = LeaseOS()
    phone = Phone(seed=7, mitigation=mitigation)
    app = phone.install(TapAndTurn(use_custom_utility=True))
    if engaged_user:
        phone.screen_on()
        phone.set_foreground(app.uid)
    mark = phone.energy_mark()
    phone.run_for(minutes=15.0)
    lease = mitigation.manager.leases_for(app.uid)[0]
    return {
        "power_mw": phone.power_since(mark, app.uid),
        "deferrals": lease.deferral_count,
        "custom_score": app.utility.get_score(),
        "events": len(app.utility.events),
    }


def main():
    pocket = run_scenario(engaged_user=False)
    engaged = run_scenario(engaged_user=True)

    print("TapAndTurn with the Fig. 6 custom utility counter, 15 min:\n")
    header = "{:28s} {:>14s} {:>14s}"
    row = "{:28s} {:>14.2f} {:>14.2f}"
    print(header.format("", "screen off", "engaged user"))
    print(row.format("sensor power (mW)", pocket["power_mw"],
                     engaged["power_mw"]))
    print(row.format("custom utility score", pocket["custom_score"],
                     engaged["custom_score"]))
    print("{:28s} {:>14d} {:>14d}".format(
        "lease deferrals", pocket["deferrals"], engaged["deferrals"]))
    print("\nWith nobody clicking, the lease is deferred and the sensor "
          "silenced;\nwith a real user, the custom counter keeps the lease "
          "renewing.")


if __name__ == "__main__":
    main()
