"""Quickstart: catch an energy bug with LeaseOS.

Builds two identical simulated phones -- one vanilla, one with LeaseOS --
installs K-9 Mail with its no-backoff retry bug triggered by a network
disconnection, runs 30 simulated minutes on each, and compares the app's
power draw. Also prints the lease decisions LeaseOS made along the way.

Run:  python examples/quickstart.py
"""

from repro.apps.buggy.cpu_apps import K9Mail
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS


def run_phone(mitigation):
    phone = Phone(seed=42, mitigation=mitigation, connected=False)
    app = phone.install(K9Mail(scenario="disconnected"))
    mark = phone.energy_mark()
    phone.run_for(minutes=30.0)
    return phone, app, phone.power_since(mark, app.uid)


def main():
    print("Running K-9 Mail (disconnected retry-loop bug) for 30 min...\n")

    __, __, vanilla_mw = run_phone(None)
    leaseos = LeaseOS()
    phone, app, leased_mw = run_phone(leaseos)

    print("  vanilla Android : {:7.1f} mW".format(vanilla_mw))
    print("  LeaseOS         : {:7.1f} mW".format(leased_mw))
    print("  wasted power cut by {:.1f}%\n".format(
        100.0 * (1.0 - leased_mw / vanilla_mw)))

    print("First lease decisions for the app:")
    shown = 0
    for decision in leaseos.manager.decisions:
        if decision.lease.uid != app.uid:
            continue
        metrics = decision.metrics
        detail = ""
        if metrics is not None:
            detail = " (utilization {:.0%}, utility {:.0f}/100)".format(
                metrics.utilization, metrics.utility_score)
        print("  t={:6.1f}s  {:12s} -> {}{}".format(
            decision.time, decision.behavior.value, decision.action,
            detail))
        shown += 1
        if shown >= 8:
            break

    lease = leaseos.manager.leases_for(app.uid)[0]
    print("\nLease #{} finished in state {!r} after {} terms and {} "
          "deferrals.".format(lease.descriptor, lease.state.value,
                              lease.term_index, lease.deferral_count))


if __name__ == "__main__":
    main()
