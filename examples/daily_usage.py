"""A day in the life: battery drain with a leaky GPS app on board.

Replays the paper's §7.6 end-to-end scenario (music, YouTube, browsing,
standby, with GPSLogger's leaked GPS registration running all day) and
prints an hour-by-hour battery gauge for vanilla Android vs LeaseOS.

Run:  python examples/daily_usage.py
"""

from repro.apps.buggy.gps_apps import GPSLogger
from repro.apps.normal.interactive import InteractiveApp
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS


def run_day(mitigation, hours=18.0):
    phone = Phone(seed=47, mitigation=mitigation, battery_level=0.52,
                  gps_quality=0.95)
    phone.monitor.set_rail("device_baseline", 250.0, ())
    phone.install(GPSLogger())
    music = phone.install(InteractiveApp(
        "Music", media_streaming=True, touch_compute_s=0.1,
        touch_payload_s=0.2, sync_interval_s=None))
    youtube = phone.install(InteractiveApp(
        "YouTube", media_streaming=True, touch_compute_s=0.4,
        touch_payload_s=1.0, sync_interval_s=None))
    browser = phone.install(InteractiveApp(
        "Chrome", touch_compute_s=0.5, touch_payload_s=0.8,
        sync_interval_s=None))

    def day():
        yield from phone.user.active_session([music.uid], 7200.0,
                                             touch_interval=45.0)
        yield from phone.user.active_session([youtube.uid], 3600.0,
                                             touch_interval=45.0)
        yield from phone.user.active_session([browser.uid], 1800.0,
                                             touch_interval=8.0)

    phone.sim.spawn(day(), name="user.day")
    levels = []
    for hour in range(int(hours) + 1):
        levels.append(phone.battery.level)
        if phone.battery.empty:
            break
        phone.run_for(hours=1.0)
    return levels


def gauge(level):
    filled = int(round(level * 30))
    return "[" + "#" * filled + "." * (30 - filled) + "]"


def main():
    print("Scaled-battery day with one leaky GPS app "
          "(paper: ~12 h vs ~15 h)\n")
    vanilla = run_day(None)
    leased = run_day(LeaseOS())
    width = max(len(vanilla), len(leased))
    print("hour   vanilla Android                  LeaseOS")
    for hour in range(width):
        def cell(levels):
            if hour < len(levels):
                return "{} {:3.0f}%".format(gauge(levels[hour]),
                                            levels[hour] * 100)
            return "  (battery dead)" + " " * 20
        print("{:4d}   {}   {}".format(hour, cell(vanilla), cell(leased)))
    print("\nvanilla died in ~{} h; LeaseOS lasted ~{} h.".format(
        len(vanilla) - 1, len(leased) - 1))


if __name__ == "__main__":
    main()
