"""Battery doctor: blame, contain, and advise.

Runs one phone with a mixed fleet -- a heavy-but-useful game, a leaky
Torch, and a well-behaved job-scheduled sync app -- under LeaseOS with
the Excessive-Use advisor attached, then prints:

1. the `dumpsys batterystats`-style per-app blame report,
2. what LeaseOS *did* (deferrals for the leak, nothing for the rest),
3. the advisor's heavy-but-legitimate list (the EUB grey area the paper
   deliberately leaves to the user).

Run:  python examples/battery_doctor.py
"""

from repro.core.eub import ExcessiveUseAdvisor
from repro.droid.app import App
from repro.droid.phone import Phone
from repro.apps.buggy.cpu_apps import Torch
from repro.apps.normal.background import NextcloudSync
from repro.mitigation import LeaseOS


class HeavyGame(App):
    app_name = "PolygonRush"
    category = "game"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "game-loop")
        lock.acquire()
        while True:
            yield from self.compute(0.9, cores=2.0)
            self.post_ui_update()
            yield self.sleep(0.1)


def main():
    leaseos = LeaseOS()
    phone = Phone(seed=29, mitigation=leaseos)
    advisor = ExcessiveUseAdvisor(phone).attach(leaseos.manager)

    game = phone.install(HeavyGame())
    torch = phone.install(Torch())
    sync = phone.install(NextcloudSync())
    phone.run_for(minutes=20.0)

    print(phone.dumpsys_batterystats())
    print()

    print("LeaseOS activity:")
    for app in (game, torch, sync):
        leases = leaseos.manager.leases_for(app.uid)
        deferrals = sum(l.deferral_count for l in leases)
        print("  {:14s} {:2d} lease(s), {:3d} deferral(s)".format(
            app.name, len(leases), deferrals))
    print()

    print(advisor.render())
    print("\nThe leak was contained automatically; the heavy game is "
          "surfaced for you to judge;\nthe sync app never noticed any "
          "of this.")


if __name__ == "__main__":
    main()
