"""Mitigation shootout: LeaseOS vs Doze vs DefDroid on real bug classes.

Picks one representative Table 5 case per resource class and runs it
under every mitigation, printing the per-app power and reduction -- a
miniature of the paper's Table 5 that finishes in a couple of seconds.

Run:  python examples/mitigation_shootout.py
"""

from repro.apps.buggy import CASES_BY_KEY
from repro.experiments.runner import format_table, run_case
from repro.mitigation import DefDroid, Doze, LeaseOS

CASE_KEYS = ("torch", "connectbot-screen", "connectbot-wifi",
             "betterweather", "tapandturn")

MITIGATIONS = [
    ("vanilla", None),
    ("LeaseOS", LeaseOS),
    ("Doze*", lambda: Doze(aggressive=True)),
    ("DefDroid", DefDroid),
]


def main():
    rows = []
    for key in CASE_KEYS:
        case = CASES_BY_KEY[key]
        powers = {}
        for name, factory in MITIGATIONS:
            result = run_case(case, factory, minutes=15.0, seed=3)
            powers[name] = result.app_power_mw
        vanilla = powers["vanilla"]
        rows.append([
            case.key,
            case.resource.value,
            case.behavior.value,
            vanilla,
            powers["LeaseOS"],
            "{:.0f}%".format(100 * (1 - powers["LeaseOS"] / vanilla)),
            "{:.0f}%".format(100 * (1 - powers["Doze*"] / vanilla)),
            "{:.0f}%".format(100 * (1 - powers["DefDroid"] / vanilla)),
        ])
    print(format_table(
        ["case", "resource", "behaviour", "vanilla mW", "LeaseOS mW",
         "LeaseOS", "Doze*", "DefDroid"],
        rows,
        title="Reduction of wasted power, 15 simulated minutes per cell",
    ))
    print("\nNote Doze's blind spot on the screen case and DefDroid's "
          "gentleness on GPS\n(both straight out of the paper's Table 5).")


if __name__ == "__main__":
    main()
