"""A modern resilient app: JobScheduler + broadcasts + leases.

Builds a sync app the way Android documentation says to: a network-
constrained JobScheduler job for the periodic work, a connectivity
broadcast receiver to sync eagerly the moment the network returns, and
no wakelock of its own (the scheduler holds one around each run).

Runs it through a flapping-network hour under LeaseOS and shows that the
whole modern stack is lease-invisible: every sync lands, zero deferrals.

Run:  python examples/resilient_sync.py
"""

from repro.droid.app import App
from repro.droid.broadcasts import BroadcastManager
from repro.droid.exceptions import NetworkException
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS


class ResilientSync(App):
    app_name = "ResilientSync"
    category = "productivity"

    def __init__(self):
        super().__init__()
        self.synced = 0
        self.eager_syncs = 0

    def on_start(self):
        self.job = self.ctx.jobs.schedule(
            self, 180.0, self._sync_job, requires_network=True
        )
        self.ctx.broadcasts.register(
            self, BroadcastManager.CONNECTIVITY_CHANGE, self._on_network
        )

    def _sync_job(self):
        try:
            yield from self.http("sync-backend", payload_s=0.5)
            self.synced += 1
            self.note_data_write()
        except NetworkException as exc:
            self.note_exception(exc)

    def _on_network(self, payload):
        if payload["connected"]:
            # The network is back: sync eagerly instead of waiting for
            # the next period.
            self.eager_syncs += 1
            self.spawn(self._eager(), name="resilient.eager")

    def _eager(self):
        lock = self.ctx.power.new_wakelock(self, "eager-sync")
        lock.acquire(timeout_s=30.0)  # bounded, Android-style
        try:
            yield from self._sync_job()
        finally:
            if lock.held:
                lock.release()


def main():
    leaseos = LeaseOS()
    phone = Phone(seed=23, mitigation=leaseos)
    app = phone.install(ResilientSync())

    # A flapping hour: the network drops for ten minutes, twice.
    for drop_at in (10.0, 35.0):
        phone.env.schedule_network_change(drop_at * 60.0, False)
        phone.env.schedule_network_change((drop_at + 10.0) * 60.0, True)
    phone.run_for(hours=1.0)

    deferrals = sum(l.deferral_count
                    for l in leaseos.manager.leases_for(app.uid))
    print("One flapping-network hour for a by-the-book sync app:")
    print("  periodic syncs completed : {}".format(app.synced))
    print("  eager on-reconnect syncs : {}".format(app.eager_syncs))
    print("  job runs deferred by constraints: {}".format(
        app.job.deferred_count))
    print("  lease deferrals          : {}".format(deferrals))
    print("\nJobs wait out the outages, broadcasts catch the "
          "reconnections, and the lease\nmanager never once had a "
          "reason to intervene.")


if __name__ == "__main__":
    main()
