"""Discrete-event simulation engine.

A small, deterministic engine purpose-built for this reproduction:

- :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
- :class:`~repro.sim.engine.Timer` -- a cancellable scheduled callback.
- :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes that can be *paused and resumed* (the mechanism used to model
  a phone entering deep sleep, which freezes app execution).
- :class:`~repro.sim.events.Event` -- one-shot waitable events.
- :class:`~repro.sim.trace.KernelTrace` -- opt-in kernel profiler
  attributing dispatched events and wall time per callback site.
- :func:`~repro.sim.summary.day_summary` -- the per-day summary
  extraction hook shared by the fleet kernel path and fast path.
- :class:`~repro.sim.engine.RunBudget` -- opt-in runaway guard
  (max events / max sim-time / max wall-clock) that aborts a spinning
  run with a :class:`~repro.sim.engine.BudgetExceeded` carrying kernel
  diagnostics (see docs/resilience.md).
"""

from repro.sim.engine import (
    BudgetExceeded,
    PeriodicTimer,
    RunBudget,
    SimulationError,
    Simulator,
    Timer,
    ambient_budget,
    set_ambient_budget,
)
from repro.sim.events import Event, Timeout, after, any_of
from repro.sim.process import Process, ProcessKilled, ProcessState
from repro.sim.summary import MAX_BATTERY_LIFE_H, battery_life_h, day_summary
from repro.sim.trace import KernelTrace, SiteStats, site_for

__all__ = [
    "Simulator",
    "SimulationError",
    "BudgetExceeded",
    "RunBudget",
    "ambient_budget",
    "set_ambient_budget",
    "Timer",
    "PeriodicTimer",
    "Event",
    "Timeout",
    "after",
    "any_of",
    "Process",
    "ProcessKilled",
    "ProcessState",
    "KernelTrace",
    "SiteStats",
    "site_for",
    "day_summary",
    "battery_life_h",
    "MAX_BATTERY_LIFE_H",
]
