"""The discrete-event loop and clock.

The simulator keeps a priority queue of timers keyed by ``(deadline, seq)``
where ``seq`` is a monotonically increasing tie-breaker, so simultaneous
events always run in scheduling order and every run is deterministic.
"""

import heapq


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class Timer:
    """A cancellable callback scheduled on a :class:`Simulator`.

    Timers are created through :meth:`Simulator.schedule` (or the
    :meth:`Simulator.every` helper) and fire exactly once unless cancelled.
    """

    __slots__ = ("deadline", "seq", "callback", "cancelled", "fired")

    def __init__(self, deadline, seq, callback):
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self):
        """Prevent the timer from firing. Safe to call more than once."""
        self.cancelled = True

    @property
    def pending(self):
        """True while the timer is scheduled and not yet fired/cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other):
        return (self.deadline, self.seq) < (other.deadline, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return "Timer(deadline={:.3f}, {})".format(self.deadline, state)


class Simulator:
    """Deterministic discrete-event simulator with a float-seconds clock.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("five seconds in"))
        sim.run_until(60.0)

    Processes (see :mod:`repro.sim.process`) are spawned with
    :meth:`spawn` and cooperate by yielding :class:`~repro.sim.events.Timeout`
    or :class:`~repro.sim.events.Event` instances.
    """

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._queue = []
        self._seq = 0
        self._running = False
        self._processes = []

    @property
    def now(self):
        """Current simulated time in seconds since boot."""
        return self._now

    def schedule(self, delay, callback):
        """Schedule ``callback()`` to run after ``delay`` seconds.

        Returns the :class:`Timer`, which may be cancelled before it fires.
        A zero delay runs the callback at the current time but after any
        already-queued events for this instant.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        timer = Timer(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, timer)
        return timer

    def at(self, when, callback):
        """Schedule ``callback()`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, callback)

    def every(self, interval, callback, start_after=None):
        """Run ``callback()`` every ``interval`` seconds until cancelled.

        Returns a :class:`PeriodicTimer` handle with a ``cancel()`` method.
        ``start_after`` defaults to ``interval`` (first firing one period in).
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        return PeriodicTimer(self, interval, callback, start_after)

    def spawn(self, generator, name=""):
        """Start a cooperative :class:`~repro.sim.process.Process`.

        ``generator`` must be a generator iterator (the result of calling a
        generator function). The process is registered with the simulator
        and begins executing at the current simulated instant.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def run_until(self, until):
        """Run all events with deadlines <= ``until``; set clock to ``until``."""
        if until < self._now:
            raise SimulationError(
                "cannot run backwards (now={}, until={})".format(self._now, until)
            )
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue and self._queue[0].deadline <= until:
                timer = heapq.heappop(self._queue)
                if timer.cancelled:
                    continue
                self._now = timer.deadline
                timer.fired = True
                timer.callback()
            self._now = until
        finally:
            self._running = False

    def run(self):
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                timer = heapq.heappop(self._queue)
                if timer.cancelled:
                    continue
                self._now = timer.deadline
                timer.fired = True
                timer.callback()
        finally:
            self._running = False

    @property
    def pending_events(self):
        """Number of scheduled, not-yet-cancelled timers (for tests)."""
        return sum(1 for t in self._queue if not t.cancelled)

    def __repr__(self):
        return "Simulator(now={:.3f}, pending={})".format(self._now, self.pending_events)


class PeriodicTimer:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim, interval, callback, start_after=None):
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        first = interval if start_after is None else start_after
        self._timer = sim.schedule(first, self._tick)

    def _tick(self):
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._timer = self._sim.schedule(self._interval, self._tick)

    def cancel(self):
        """Stop future firings."""
        self._cancelled = True
        self._timer.cancel()

    @property
    def cancelled(self):
        return self._cancelled
