"""The discrete-event loop and clock.

The simulator keeps a priority queue of ``(deadline, seq, timer)``
entries where ``seq`` is a monotonically increasing tie-breaker, so
simultaneous events always run in scheduling order and every run is
deterministic. Keying the heap by a plain tuple keeps comparisons in C
(no Python ``__lt__`` calls on the hot path).

Cancelled timers are lazily deleted: ``Timer.cancel`` only marks the
entry and tells the simulator, and the dispatch loop skips marked
entries when they surface. When cancelled entries come to dominate the
heap the simulator compacts it in one O(n) pass, so workloads that arm
and re-arm far-future watchdogs (wakelock timeouts, app watchdogs) do
not drag a bloated heap through every push and pop.
"""

import heapq

from heapq import heappop as _heappop, heappush as _heappush
from time import monotonic as _monotonic


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class BudgetExceeded(SimulationError):
    """A run crossed its :class:`RunBudget`; carries kernel diagnostics.

    ``reason`` names the limit that tripped (``"max_events"``,
    ``"max_sim_s"`` or ``"max_wall_s"``); ``diagnostics`` is a plain
    dict snapshot of the kernel at abort time (simulated clock, events
    charged, heap size, pending events, wall seconds) so a supervised
    worker can report *why* a job span out of control without the
    parent attaching a debugger to a hung process.
    """

    def __init__(self, reason, diagnostics):
        self.reason = reason
        self.diagnostics = dict(diagnostics)
        detail = ", ".join(
            "{}={}".format(key, self.diagnostics[key])
            for key in sorted(self.diagnostics))
        super().__init__(
            "simulation budget exceeded ({}): {}".format(reason, detail))


class RunBudget:
    """Runaway guard for simulation runs: abort cleanly, never spin.

    A budget bounds a *job*, not a single simulator: arming the same
    instance on several simulators (e.g. every device-day inside one
    fleet shard) makes ``max_events`` cumulative across them, which is
    exactly the per-job semantics a supervisor wants. Limits:

    - ``max_events``: total dispatched events charged to this budget;
    - ``max_sim_s``: the simulated clock of the *current* simulator
      (absolute seconds since its boot);
    - ``max_wall_s``: host wall-clock seconds since the first charged
      event (checked every :data:`WALL_CHECK_EVERY` events to keep
      ``time.monotonic`` off the per-event path).

    Budgets are stateful; build a fresh one per attempt (``fresh()``)
    so retries never inherit a spent budget.
    """

    #: Events between wall-clock checks (monotonic() is ~100x an int
    #: compare; every event would be measurable on the hot loop).
    WALL_CHECK_EVERY = 256

    __slots__ = ("max_events", "max_sim_s", "max_wall_s", "events",
                 "_wall_started", "_wall_countdown")

    def __init__(self, max_events=None, max_sim_s=None, max_wall_s=None):
        self.max_events = max_events
        self.max_sim_s = max_sim_s
        self.max_wall_s = max_wall_s
        self.events = 0
        self._wall_started = None
        self._wall_countdown = self.WALL_CHECK_EVERY

    def limits(self):
        """The immutable limit spec (JSON-scalar dict)."""
        return {"max_events": self.max_events, "max_sim_s": self.max_sim_s,
                "max_wall_s": self.max_wall_s}

    def fresh(self, max_wall_s=None):
        """An unspent copy; ``max_wall_s`` tightens the wall limit."""
        wall = self.max_wall_s
        if max_wall_s is not None:
            wall = max_wall_s if wall is None else min(wall, max_wall_s)
        return type(self)(max_events=self.max_events,
                          max_sim_s=self.max_sim_s, max_wall_s=wall)

    @property
    def wall_elapsed_s(self):
        if self._wall_started is None:
            return 0.0
        return _monotonic() - self._wall_started

    def charge(self, sim):
        """Account one dispatched event; raise on any crossed limit."""
        self.events += 1
        if self._wall_started is None:
            self._wall_started = _monotonic()
        if self.max_events is not None and self.events > self.max_events:
            raise BudgetExceeded("max_events", self.diagnostics(sim))
        if self.max_sim_s is not None and sim._now > self.max_sim_s:
            raise BudgetExceeded("max_sim_s", self.diagnostics(sim))
        if self.max_wall_s is not None:
            self._wall_countdown -= 1
            if self._wall_countdown <= 0:
                self._wall_countdown = self.WALL_CHECK_EVERY
                if self.wall_elapsed_s > self.max_wall_s:
                    raise BudgetExceeded("max_wall_s",
                                         self.diagnostics(sim))

    def diagnostics(self, sim):
        """Kernel snapshot for the abort report."""
        return {
            "sim_now_s": round(sim._now, 6),
            "events_charged": self.events,
            "sim_dispatched_lifetime": sim.dispatched,
            "heap_entries": len(sim._queue),
            "pending_events": sim.pending_events,
            "wall_elapsed_s": round(self.wall_elapsed_s, 3),
            "limits": self.limits(),
        }

    def __repr__(self):
        return "RunBudget(max_events={}, max_sim_s={}, max_wall_s={}, " \
            "events={})".format(self.max_events, self.max_sim_s,
                                self.max_wall_s, self.events)


#: Process-wide default budget newly constructed Simulators inherit.
#: Supervised workers arm this before executing a job spec so every
#: simulator the job builds (a fleet shard builds hundreds) shares one
#: cumulative runaway budget without any plumbing through job code.
_AMBIENT_BUDGET = None


def set_ambient_budget(budget):
    """Install (or clear, with ``None``) the process-wide default
    :class:`RunBudget`. Returns the previous one so callers can
    restore it in a ``finally``."""
    global _AMBIENT_BUDGET
    previous = _AMBIENT_BUDGET
    _AMBIENT_BUDGET = budget
    return previous


def ambient_budget():
    """The process-wide default budget, or ``None``."""
    return _AMBIENT_BUDGET


class Timer:
    """A cancellable callback scheduled on a :class:`Simulator`.

    Timers are created through :meth:`Simulator.schedule` (or the
    :meth:`Simulator.every` helper) and fire exactly once unless cancelled.
    """

    __slots__ = ("deadline", "seq", "callback", "cancelled", "fired", "_sim")

    def __init__(self, deadline, seq, callback, sim=None):
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self):
        """Prevent the timer from firing. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.fired and self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self):
        """True while the timer is scheduled and not yet fired/cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other):
        return (self.deadline, self.seq) < (other.deadline, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return "Timer(deadline={:.3f}, {})".format(self.deadline, state)


class Simulator:
    """Deterministic discrete-event simulator with a float-seconds clock.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("five seconds in"))
        sim.run_until(60.0)

    Processes (see :mod:`repro.sim.process`) are spawned with
    :meth:`spawn` and cooperate by yielding :class:`~repro.sim.events.Timeout`
    or :class:`~repro.sim.events.Event` instances.
    """

    #: Compaction trigger: at least this many cancelled entries *and*
    #: cancelled entries at least half the heap. Small heaps are never
    #: worth an O(n) rebuild.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start_time=0.0, budget=None):
        self._now = float(start_time)
        self._queue = []  # heap of (deadline, seq, Timer)
        self._seq = 0
        self._running = False
        self._processes = []
        self._cancelled = 0  # cancelled entries still in the heap
        self._trace = None  # optional repro.sim.trace.KernelTrace
        self._budget = budget if budget is not None else _AMBIENT_BUDGET
        #: Total events dispatched over this simulator's lifetime
        #: (cancelled entries skipped by the loop do not count).
        self.dispatched = 0
        #: Heap compactions performed (hygiene introspection).
        self.compactions = 0

    @property
    def now(self):
        """Current simulated time in seconds since boot."""
        return self._now

    def schedule(self, delay, callback):
        """Schedule ``callback()`` to run after ``delay`` seconds.

        Returns the :class:`Timer`, which may be cancelled before it fires.
        A zero delay runs the callback at the current time but after any
        already-queued events for this instant.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        seq = self._seq
        self._seq = seq + 1
        timer = Timer(self._now + delay, seq, callback, self)
        _heappush(self._queue, (timer.deadline, seq, timer))
        return timer

    def reschedule(self, timer, delay):
        """Re-arm a timer that has already fired, reusing the object.

        The allocation-free fast path for repeating callbacks
        (:class:`PeriodicTimer`): no new :class:`Timer`, no new closure.
        Only a fired, uncancelled timer may be re-armed -- a pending or
        cancelled one may still have a live heap entry, and re-pushing it
        would dispatch the revived timer at the stale deadline.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        if not timer.fired or timer.cancelled:
            raise SimulationError(
                "reschedule() needs a fired, uncancelled timer, got {!r}".format(timer)
            )
        seq = self._seq
        self._seq = seq + 1
        timer.deadline = self._now + delay
        timer.seq = seq
        timer.fired = False
        _heappush(self._queue, (timer.deadline, seq, timer))
        return timer

    def at(self, when, callback):
        """Schedule ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                "cannot schedule at t={} -- simulated time is already at "
                "t={}".format(when, self._now)
            )
        return self.schedule(when - self._now, callback)

    def every(self, interval, callback, start_after=None):
        """Run ``callback()`` every ``interval`` seconds until cancelled.

        Returns a :class:`PeriodicTimer` handle with a ``cancel()`` method.
        ``start_after`` defaults to ``interval`` (first firing one period in).
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        return PeriodicTimer(self, interval, callback, start_after)

    def spawn(self, generator, name=""):
        """Start a cooperative :class:`~repro.sim.process.Process`.

        ``generator`` must be a generator iterator (the result of calling a
        generator function). The process is registered with the simulator
        and begins executing at the current simulated instant.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def set_trace(self, trace):
        """Install a :class:`~repro.sim.trace.KernelTrace` (or ``None``).

        While installed, every dispatched event is attributed (count and
        host wall time) to its callback site. Tracing is opt-in: with no
        trace installed the dispatch loop pays a single ``is None`` check
        per event. Re-entrant installation is supported: calling
        ``set_trace`` from inside a dispatched callback takes effect for
        the very next event of the same ``run_until``/``run`` call (the
        fault-injection layer swaps dispatch interposers mid-run this
        way).
        """
        self._trace = trace
        return trace

    @property
    def trace(self):
        """The installed kernel trace, or ``None``."""
        return self._trace

    def set_budget(self, budget):
        """Install a :class:`RunBudget` (or ``None`` to remove it).

        Takes effect for the very next dispatched event, including
        mid-run (same re-entrancy contract as :meth:`set_trace`).
        """
        self._budget = budget
        return budget

    @property
    def budget(self):
        """The armed runaway budget, or ``None``."""
        return self._budget

    def run_until(self, until):
        """Run all events with deadlines <= ``until``; set clock to ``until``."""
        if until < self._now:
            raise SimulationError(
                "cannot run backwards (now={}, until={})".format(self._now, until)
            )
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Locals hoisted out of the while: the attribute loads would
        # otherwise be re-executed per event. ``queue`` stays valid across
        # compactions because _compact() rebuilds the list in place. The
        # trace is deliberately NOT hoisted: callbacks may install or
        # remove one mid-run (re-entrant set_trace), and the next event
        # must see the change.
        queue = self._queue
        pop = _heappop
        dispatched = 0
        try:
            while queue and queue[0][0] <= until:
                deadline, __, timer = pop(queue)
                if timer.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = deadline
                timer.fired = True
                dispatched += 1
                # Like the trace, the budget is re-read per event so a
                # mid-run set_budget takes effect immediately; the
                # usual cost is one attribute load and a None check.
                budget = self._budget
                if budget is not None:
                    budget.charge(self)
                trace = self._trace
                if trace is None:
                    timer.callback()
                else:
                    trace.dispatch(timer.callback)
            self._now = until
        finally:
            self.dispatched += dispatched
            self._running = False

    def run(self):
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        queue = self._queue
        pop = _heappop
        dispatched = 0
        try:
            while queue:
                deadline, __, timer = pop(queue)
                if timer.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = deadline
                timer.fired = True
                dispatched += 1
                budget = self._budget
                if budget is not None:
                    budget.charge(self)
                trace = self._trace
                if trace is None:
                    timer.callback()
                else:
                    trace.dispatch(timer.callback)
        finally:
            self.dispatched += dispatched
            self._running = False

    @property
    def pending_events(self):
        """Number of scheduled, not-yet-cancelled timers. O(1)."""
        return len(self._queue) - self._cancelled

    def __repr__(self):
        return "Simulator(now={:.3f}, pending={})".format(self._now, self.pending_events)

    # -- heap hygiene --------------------------------------------------------

    def _note_cancel(self):
        """Account one newly cancelled in-heap entry; maybe compact."""
        self._cancelled += 1
        if self._cancelled >= self.COMPACT_MIN_CANCELLED \
                and self._cancelled * 2 >= len(self._queue):
            self._compact()

    def _compact(self):
        """Drop cancelled entries and re-heapify, in place and in O(n).

        Rebuilding preserves the (deadline, seq) order of every live
        entry, so dispatch order is exactly what it would have been with
        pure lazy deletion. In-place so hoisted loop locals stay valid.
        """
        self._queue[:] = [entry for entry in self._queue
                          if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1


class PeriodicTimer:
    """Handle for a repeating callback created by :meth:`Simulator.every`.

    Rescheduling reuses the one underlying :class:`Timer` object via
    :meth:`Simulator.reschedule`, so a long-lived periodic costs no
    allocations after the first firing.
    """

    def __init__(self, sim, interval, callback, start_after=None):
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        first = interval if start_after is None else start_after
        self._timer = sim.schedule(first, self._tick)

    def _tick(self):
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._timer = self._sim.reschedule(self._timer, self._interval)

    def cancel(self):
        """Stop future firings."""
        self._cancelled = True
        self._timer.cancel()

    @property
    def cancelled(self):
        return self._cancelled
