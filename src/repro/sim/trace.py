"""Opt-in kernel profiler: per-callback-site event attribution.

The discrete-event loop is the hot path of every experiment, and "which
callbacks eat the events" is the first question of any speedup. A
:class:`KernelTrace` installed via :meth:`Simulator.set_trace` attributes
every dispatched event to its *callback site* -- the module-qualified
function behind the callback (bound methods resolve to their underlying
function, so every ``Process._wait_on`` timeout lands on one site
instead of one per process instance).

Usage::

    from repro.sim import Simulator, KernelTrace

    sim = Simulator()
    trace = sim.set_trace(KernelTrace())
    ...build the device, run the scenario...
    sim.run_until(3 * 86400.0)
    print(trace.report())

Tracing is strictly opt-in: with no trace installed the dispatch loop
pays one local ``is None`` check per event and nothing else.
"""

import time


class SiteStats:
    """Aggregate for one callback site: dispatch count and host wall time."""

    __slots__ = ("site", "count", "wall_s")

    def __init__(self, site):
        self.site = site
        self.count = 0
        self.wall_s = 0.0

    def __repr__(self):
        return "SiteStats(site={!r}, count={}, wall_s={:.6f})".format(
            self.site, self.count, self.wall_s)


def site_for(callback):
    """Human-stable identifier for a callback: ``module.qualname``.

    Bound methods collapse onto their class function so ten thousand
    process timeouts aggregate into one row. Callables without
    ``__qualname__`` (rare: partials, callable instances) fall back to
    ``repr``, truncated.
    """
    func = getattr(callback, "__func__", callback)
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        return repr(callback)[:80]
    module = getattr(func, "__module__", "?")
    return "{}.{}".format(module, qualname)


class KernelTrace:
    """Accumulates per-site dispatch counts and wall time.

    The simulator calls :meth:`dispatch` for every event while the trace
    is installed; everything else is reporting.
    """

    def __init__(self, clock=time.perf_counter):
        self.sites = {}  # site -> SiteStats, insertion-ordered
        self._clock = clock

    def dispatch(self, callback):
        """Run ``callback()`` and attribute its count + wall time."""
        site = site_for(callback)
        stats = self.sites.get(site)
        if stats is None:
            stats = self.sites[site] = SiteStats(site)
        clock = self._clock
        start = clock()
        try:
            callback()
        finally:
            stats.count += 1
            stats.wall_s += clock() - start

    @property
    def total_events(self):
        return sum(s.count for s in self.sites.values())

    @property
    def total_wall_s(self):
        return sum(s.wall_s for s in self.sites.values())

    def top(self, n=None, key="count"):
        """Sites sorted by ``key`` ('count' or 'wall_s'), descending.

        Ties (and equal-key rows) keep first-seen order, so reports are
        deterministic across runs of a deterministic simulation.
        """
        if key not in ("count", "wall_s"):
            raise ValueError("key must be 'count' or 'wall_s', got {!r}".format(key))
        ranked = sorted(self.sites.values(),
                        key=lambda s: getattr(s, key), reverse=True)
        return ranked if n is None else ranked[:n]

    def report(self, n=15, key="count"):
        """Formatted table of the top-``n`` sites."""
        rows = self.top(n, key=key)
        total_events = self.total_events
        total_wall = self.total_wall_s
        lines = [
            "kernel trace: {} events, {:.3f}s dispatch wall time, {} sites".format(
                total_events, total_wall, len(self.sites)),
            "{:>10}  {:>7}  {:>9}  {}".format("events", "ev%", "wall_ms", "site"),
        ]
        for stats in rows:
            share = 100.0 * stats.count / total_events if total_events else 0.0
            lines.append("{:>10}  {:>6.1f}%  {:>9.2f}  {}".format(
                stats.count, share, stats.wall_s * 1e3, stats.site))
        if n is not None and len(self.sites) > len(rows):
            lines.append("  ... {} more sites".format(len(self.sites) - len(rows)))
        return "\n".join(lines)

    def reset(self):
        """Drop all accumulated statistics."""
        self.sites.clear()

    def __repr__(self):
        return "KernelTrace(events={}, sites={})".format(
            self.total_events, len(self.sites))
