"""Waitable primitives that processes yield.

``Timeout`` resumes the process after a fixed simulated delay; ``Event``
resumes every waiter when (or if) it fires. Events are one-shot: a process
that waits on an already-fired event resumes immediately with the fired
value.
"""


class Timeout:
    """Yield inside a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        if delay < 0:
            raise ValueError("Timeout delay must be >= 0, got {}".format(delay))
        self.delay = float(delay)

    def __repr__(self):
        return "Timeout({:.3f})".format(self.delay)


class Event:
    """A one-shot broadcast event carrying an optional value.

    Processes wait by yielding the event; :meth:`fire` wakes all of them.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_waiters")

    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self._fired = False
        self._value = None
        self._waiters = []

    @property
    def fired(self):
        return self._fired

    @property
    def value(self):
        return self._value

    def fire(self, value=None):
        """Fire the event, resuming all waiters at the current instant."""
        if self._fired:
            raise RuntimeError("event {!r} already fired".format(self.name))
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def add_waiter(self, callback):
        """Register ``callback(value)``; used by the process machinery."""
        if self._fired:
            # Deliver asynchronously so ordering stays deterministic.
            self.sim.schedule(0.0, lambda: callback(self._value))
        else:
            self._waiters.append(callback)

    def remove_waiter(self, callback):
        """Unregister a previously added waiter, if still present."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self):
        state = "fired" if self._fired else "{} waiters".format(len(self._waiters))
        return "Event({!r}, {})".format(self.name, state)


def any_of(sim, *events, name="any_of"):
    """A new one-shot event that fires with the first of ``events``.

    The fired value is ``(winning_event, value)``. Useful for app code
    like "first GPS fix or a 10-second timeout"::

        fix = Event(sim, "fix")
        deadline = after(sim, 10.0, "deadline")
        winner, value = yield any_of(sim, fix, deadline)
    """
    combined = Event(sim, name)

    def make_waiter(event):
        def waiter(value):
            if not combined.fired:
                combined.fire((event, value))
        return waiter

    for event in events:
        event.add_waiter(make_waiter(event))
    return combined


def after(sim, delay, name="after"):
    """A one-shot event that fires ``delay`` seconds from now."""
    event = Event(sim, name)
    sim.schedule(delay, lambda: event.fire(None))
    return event
