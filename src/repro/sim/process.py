"""Generator-based cooperative processes with pause/resume.

A process is a generator that yields waitable primitives:

- ``yield Timeout(dt)`` -- sleep for ``dt`` simulated seconds;
- ``yield event`` -- wait for an :class:`~repro.sim.events.Event`; the
  ``yield`` expression evaluates to the event's fired value;
- ``yield other_process`` -- wait for another process to finish; evaluates
  to its return value.

Pause/resume exists to model the phone's *deep sleep*: when the device
suspends, app processes are frozen mid-sleep and the remaining sleep time
is preserved; when the device wakes, execution resumes seamlessly. This is
exactly the "paused and resumed seamlessly" behaviour of Section 4.6 of
the paper.
"""

import enum

from repro.sim.events import Event, Timeout

_NOTHING = object()


class ProcessKilled(Exception):
    """Raised inside a generator when its process is killed."""


class ProcessState(enum.Enum):
    RUNNING = "running"  # scheduled or waiting, making progress
    PAUSED = "paused"  # frozen by the device being suspended
    DONE = "done"  # generator returned
    KILLED = "killed"  # externally terminated


class Process:
    """A cooperative process owned by a :class:`~repro.sim.engine.Simulator`.

    Create via :meth:`Simulator.spawn`; do not instantiate directly unless
    testing the machinery itself.
    """

    def __init__(self, sim, generator, name=""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "spawn() needs a generator iterator, got {!r}".format(generator)
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.state = ProcessState.RUNNING
        self.result = None
        self.error = None
        self.done_event = Event(sim, name + ".done")
        self._timer = None  # pending Timer while sleeping
        self._frozen_remaining = None  # leftover sleep while paused
        self._waited_event = None  # Event currently waited on
        self._pending_value = _NOTHING  # value delivered while paused
        # Start asynchronously so spawning inside callbacks is safe.
        self._timer = sim.schedule(0.0, lambda: self._advance(None))

    # -- lifecycle ---------------------------------------------------------

    @property
    def alive(self):
        return self.state in (ProcessState.RUNNING, ProcessState.PAUSED)

    @property
    def paused(self):
        return self.state is ProcessState.PAUSED

    def pause(self):
        """Freeze the process (device deep sleep). Idempotent.

        A pending sleep is cancelled and its remaining duration saved; a
        pending event wait stays registered but delivery is deferred until
        :meth:`resume`.
        """
        if self.state is not ProcessState.RUNNING:
            return
        self.state = ProcessState.PAUSED
        if self._timer is not None and self._timer.pending:
            self._frozen_remaining = max(0.0, self._timer.deadline - self.sim.now)
            self._timer.cancel()
            self._timer = None

    def resume(self):
        """Unfreeze a paused process, restoring any remaining sleep."""
        if self.state is not ProcessState.PAUSED:
            return
        self.state = ProcessState.RUNNING
        if self._frozen_remaining is not None:
            remaining = self._frozen_remaining
            self._frozen_remaining = None
            self._timer = self.sim.schedule(remaining, lambda: self._advance(None))
        elif self._pending_value is not _NOTHING:
            value = self._pending_value
            self._pending_value = _NOTHING
            self._timer = self.sim.schedule(0.0, lambda: self._advance(value))
        # Otherwise the process is still waiting on an unfired event.

    def kill(self):
        """Terminate the process immediately. Idempotent."""
        if not self.alive:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._waited_event is not None:
            self._waited_event.remove_waiter(self._on_event)
            self._waited_event = None
        self.state = ProcessState.KILLED
        self._gen.close()
        if not self.done_event.fired:
            self.done_event.fire(None)

    # -- stepping ----------------------------------------------------------

    def _advance(self, send_value):
        if not self.alive:
            return
        self._timer = None
        self._waited_event = None
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.result = getattr(stop, "value", None)
            self.state = ProcessState.DONE
            self.done_event.fire(self.result)
            return
        except ProcessKilled:
            self.state = ProcessState.KILLED
            self.done_event.fire(None)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded):
        if isinstance(yielded, Timeout):
            if self.state is ProcessState.PAUSED:
                # Paused by a callback triggered from our own last step.
                self._frozen_remaining = yielded.delay
            else:
                self._timer = self.sim.schedule(
                    yielded.delay, lambda: self._advance(None)
                )
        elif isinstance(yielded, Event):
            self._waited_event = yielded
            yielded.add_waiter(self._on_event)
        elif isinstance(yielded, Process):
            self._waited_event = yielded.done_event
            yielded.done_event.add_waiter(self._on_event)
        else:
            self.kill()
            raise TypeError(
                "process {!r} yielded {!r}; expected Timeout, Event or "
                "Process".format(self.name, yielded)
            )

    def _on_event(self, value):
        if self.state is ProcessState.PAUSED:
            self._pending_value = value
            return
        if self.state is not ProcessState.RUNNING:
            return
        self._waited_event = None
        self._advance(value)

    def __repr__(self):
        return "Process({!r}, {})".format(self.name, self.state.value)
