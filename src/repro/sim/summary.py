"""Per-day summary extraction: one simulated device-day, flat scalars.

Both device-day executors -- the discrete-event kernel path in
:mod:`repro.fleet.shard` and the table probes in
:mod:`repro.fleet.fastpath` -- must describe a finished day with the
*same* metric vocabulary, or the fast path could never be validated
against the kernel. This module is that shared vocabulary: given a
phone that has run its day, :func:`day_summary` reads every population
metric off it (power split, projected battery life, disruptions, lease
traffic, classifier outcomes) and returns a flat JSON-scalar dict.

Nothing here simulates; the hook only *extracts*. It lives in
:mod:`repro.sim` because it is the boundary between the event kernel
and every aggregation layer above it.
"""

#: Battery-life projections are clamped to two weeks: a near-idle day
#: divides by a tiny power draw and the resulting "years of battery"
#: would dominate any population mean it is folded into.
MAX_BATTERY_LIFE_H = 24.0 * 14


def day_summary(phone, mark, buggy_uids=(), interactive_uids=()):
    """Read one finished device-day off ``phone`` as flat scalars.

    ``mark`` is the :meth:`~repro.droid.phone.Phone.energy_mark` taken
    before the day ran; ``buggy_uids`` / ``interactive_uids`` attribute
    per-app power and classifier outcomes. The returned dict carries
    only JSON scalars, so it crosses process boundaries and folds into
    :class:`~repro.fleet.stats.FleetStats` untouched.
    """
    system_mw = phone.power_since(mark)
    buggy_mw = sum(phone.power_since(mark, uid) for uid in buggy_uids)
    summary = {
        "system_power_mw": system_mw,
        "buggy_power_mw": buggy_mw,
        "battery_life_h": battery_life_h(phone.battery.capacity_mj,
                                         system_mw),
        "disruptions": sum(len(app.disruptions)
                           for app in phone.apps.values()),
        "buggy_installed": len(buggy_uids),
        "normal_installed": len(interactive_uids),
        "renewals": 0, "deferrals": 0, "revocations": 0,
        "fp_apps": 0, "fn_apps": 0,
    }
    manager = phone.lease_manager
    if manager is not None:
        summary["renewals"] = manager.op_counts["renew"]
        summary["deferrals"] = sum(
            1 for d in manager.decisions if d.action == "defer")
        summary["revocations"] = manager.op_counts["remove"] \
            + manager.gc_removed
        flagged = {d.lease.uid for d in manager.decisions
                   if d.behavior.is_misbehavior}
        summary["fp_apps"] = sum(
            1 for uid in interactive_uids if uid in flagged)
        summary["fn_apps"] = sum(
            1 for uid in buggy_uids if uid not in flagged)
    return summary


def battery_life_h(capacity_mj, system_power_mw):
    """Projected battery life at a constant draw, clamped to two weeks.

    The same projection the kernel path reports, exposed so the fast
    path computes battery life from its modelled power with the
    identical formula and clamp.
    """
    if system_power_mw <= 0:
        return MAX_BATTERY_LIFE_H
    return min((capacity_mj / system_power_mw) / 3600.0,
               MAX_BATTERY_LIFE_H)
