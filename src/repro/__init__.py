"""Reproduction of LeaseOS (ASPLOS '19): lease-based, utilitarian resource
management on mobile devices, on top of a discrete-event device simulator.

The public API is spread over the subpackages:

- :mod:`repro.sim` -- discrete-event simulation engine.
- :mod:`repro.device` -- device hardware, power model, battery.
- :mod:`repro.droid` -- the Android-like OS substrate (services, IPC, apps).
- :mod:`repro.core` -- the LeaseOS contribution (leases, utility, policy).
- :mod:`repro.mitigation` -- vanilla/Doze/DefDroid/throttling baselines.
- :mod:`repro.apps` -- the buggy and normal app workloads from the paper.
- :mod:`repro.experiments` -- one harness per paper table/figure.
- :mod:`repro.fleet` -- sharded fleet-scale population simulation with
  mergeable statistics and checkpoint/resume.
"""

from repro.version import __version__

__all__ = ["__version__"]
