"""Always-on simulation invariants.

The fault injector is allowed to make the *workload* miserable; it is
never allowed to make the *simulator* wrong. These checkers pin down
what "wrong" means, independent of any policy under test:

- **energy conservation** -- the ledger's O(1) running totals must equal
  the integral of the rails (the raw (uid, rail) map), and the battery
  must have drained exactly what the ledger settled;
- **lease state-machine legality** -- every lease state change goes
  through :meth:`~repro.core.lease.Lease.transition` and respects the
  Fig. 5 rules; direct ``state`` mutation is detected by shadowing;
- **monotonic simulated time** -- the clock never runs backwards, even
  under event-delivery jitter;
- **no wakelock honoured after process death** -- once an app's process
  is killed, none of its kernel wakelock records may stay honoured.

A checker is attached to one phone and samples periodically on the
phone's own simulator (plus event-driven hooks where sampling could
miss), so it is itself deterministic and costs nothing when everything
holds.
"""

from dataclasses import dataclass, field

from repro.core import lease as lease_mod
from repro.core.lease import LeaseState


#: Legal single transitions, mirroring (not importing the private table
#: of) ``core/lease.py`` -- the checker must keep its own copy so a bug
#: that corrupts the enforcement table is still caught here.
_LEGAL = {
    (LeaseState.ACTIVE, LeaseState.ACTIVE),
    (LeaseState.ACTIVE, LeaseState.DEFERRED),
    (LeaseState.ACTIVE, LeaseState.INACTIVE),
    (LeaseState.DEFERRED, LeaseState.ACTIVE),
    (LeaseState.INACTIVE, LeaseState.ACTIVE),
}


@dataclass
class InvariantViolation:
    """One detected violation, with enough detail to debug it."""

    invariant: str
    time: float
    detail: str
    data: dict = field(default_factory=dict)

    def as_dict(self):
        return {"invariant": self.invariant, "time": self.time,
                "detail": self.detail, "data": dict(self.data)}

    def __repr__(self):
        return "InvariantViolation({}, t={:.1f}: {})".format(
            self.invariant, self.time, self.detail)


class InvariantChecker:
    """Continuously validates one phone's simulation invariants."""

    #: Absolute float-noise floor for energy comparisons, in mJ.
    ENERGY_ABS_TOL_MJ = 1e-3
    #: Relative tolerance on top (summation-order noise over long runs).
    ENERGY_REL_TOL = 1e-9

    def __init__(self, phone, interval_s=30.0):
        self.phone = phone
        self.sim = phone.sim
        self.violations = []
        self.checks_run = 0
        self._last_now = self.sim.now
        self._shadow = {}  # id(lease) -> (lease, LeaseState)
        self._dead_uids = set()
        # Everything is measured as a delta from attach time, so a
        # checker can be attached to a phone that already ran.
        phone.monitor.settle()
        self._ledger_baseline_mj = phone.monitor.ledger.total_mj()
        self._battery_baseline_mj = phone.battery.remaining_mj
        lease_mod.add_transition_hook(self._on_lease_transition)
        self._hook_installed = True
        self._timer = self.sim.every(interval_s, self.check_now)

    # -- lifecycle ---------------------------------------------------------

    def detach(self):
        """Stop checking; safe to call more than once."""
        if self._hook_installed:
            lease_mod.remove_transition_hook(self._on_lease_transition)
            self._hook_installed = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def ok(self):
        return not self.violations

    def summary(self):
        if self.ok:
            return "invariants: OK ({} checks)".format(self.checks_run)
        lines = ["invariants: {} violation(s) over {} checks".format(
            len(self.violations), self.checks_run)]
        lines.extend("  " + repr(v) for v in self.violations)
        return "\n".join(lines)

    # -- process-death tracking (fed by the injector / scenarios) ----------

    def note_app_dead(self, uid):
        """An app's process was killed; its locks must not stay honoured."""
        self._dead_uids.add(uid)
        self._check_wakelocks()

    def note_app_alive(self, uid):
        """The app restarted; new kernel objects are legitimate again."""
        self._dead_uids.discard(uid)

    # -- the checks --------------------------------------------------------

    def check_now(self):
        """Run every sampled invariant at the current instant."""
        self.checks_run += 1
        self._check_monotonic_time()
        self._check_energy_conservation()
        self._check_lease_states()
        self._check_wakelocks()

    def _report(self, invariant, detail, **data):
        self.violations.append(InvariantViolation(
            invariant, self.sim.now, detail, data))

    def _check_monotonic_time(self):
        now = self.sim.now
        if now < self._last_now:
            self._report(
                "monotonic_time",
                "simulated time ran backwards: {} -> {}".format(
                    self._last_now, now),
                previous=self._last_now, current=now)
        self._last_now = max(self._last_now, now)

    def _check_energy_conservation(self):
        monitor = self.phone.monitor
        monitor.settle()
        ledger = monitor.ledger
        total = ledger.total_mj()
        tol = self.ENERGY_ABS_TOL_MJ + self.ENERGY_REL_TOL * abs(total)
        drift = ledger.consistency_error_mj()
        if drift > tol:
            self._report(
                "energy_conservation",
                "ledger running totals diverged from the raw (uid, rail) "
                "map by {:.6g} mJ".format(drift), drift_mj=drift)
        battery = self.phone.battery
        if battery is not None and not battery.empty:
            drained = self._battery_baseline_mj - battery.remaining_mj
            settled = total - self._ledger_baseline_mj
            if abs(drained - settled) > tol:
                self._report(
                    "energy_conservation",
                    "battery drained {:.6g} mJ but the ledger settled "
                    "{:.6g} mJ since attach".format(drained, settled),
                    drained_mj=drained, settled_mj=settled)

    def _on_lease_transition(self, lease, old_state, new_state):
        key = id(lease)
        shadow = self._shadow.get(key)
        if shadow is not None and shadow[1] is not old_state:
            self._report(
                "lease_state_machine",
                "lease #{} was {} at the last legal transition but "
                "claims to come from {}: state was mutated without "
                "transition()".format(lease.descriptor, shadow[1].value,
                                      old_state.value),
                descriptor=lease.descriptor,
                shadow=shadow[1].value, claimed=old_state.value)
        if new_state is not LeaseState.DEAD \
                and (old_state, new_state) not in _LEGAL:
            self._report(
                "lease_state_machine",
                "illegal lease transition {} -> {} on lease #{}".format(
                    old_state.value, new_state.value, lease.descriptor),
                descriptor=lease.descriptor,
                old=old_state.value, new=new_state.value)
        if new_state is LeaseState.DEAD:
            self._shadow.pop(key, None)
        else:
            self._shadow[key] = (lease, new_state)

    def _check_lease_states(self):
        manager = self.phone.lease_manager
        if manager is None:
            return
        for lease in manager.leases.values():
            key = id(lease)
            shadow = self._shadow.get(key)
            if shadow is None:
                # First sighting: trust the current state as baseline.
                self._shadow[key] = (lease, lease.state)
            elif shadow[1] is not lease.state:
                self._report(
                    "lease_state_machine",
                    "lease #{} is {} but its last transition() left it "
                    "{}: state was mutated directly".format(
                        lease.descriptor, lease.state.value,
                        shadow[1].value),
                    descriptor=lease.descriptor,
                    observed=lease.state.value, shadow=shadow[1].value)
                self._shadow[key] = (lease, lease.state)

    def _check_wakelocks(self):
        if not self._dead_uids:
            return
        for record in self.phone.power.honoured_records():
            if record.uid in self._dead_uids:
                self._report(
                    "wakelock_after_death",
                    "wakelock {!r} of dead uid {} is still honoured".format(
                        record.name, record.uid),
                    uid=record.uid, name=record.name)


# -- service-recovery invariants ---------------------------------------------
#
# The crash-safe lease authority (repro.service) runs these after every
# recovery; they operate on plain canonical-state dicts (and the replayed
# journal records) so this module needs no service import. What "wrong"
# means for a recovery, independent of any storage backend:
#
# - no_resurrected_lease  -- a lease the snapshot saw RELEASED/EXPIRED
#   can never come back ACTIVE;
# - no_lost_active_lease  -- a lease the snapshot saw at all can never
#   vanish from the recovered table;
# - monotonic_lease_ids   -- ids only grow: next_lease_id covers every
#   lease in the table and never regresses from the snapshot;
# - stats_moments_merge   -- rebuilding the per-key utility moments by
#   replaying the journal's folds over the snapshot's moments must be
#   *bitwise* identical to the recovered stats (same reducer, same float
#   order), and merging the per-key moments must agree with the
#   independent global accumulator (exact count, near-exact moments --
#   the merge itself is float-order sensitive, hence the tolerance).

#: Relative tolerance for the per-key-merge vs global-fold comparison.
STATS_MERGE_REL_TOL = 1e-9


def _moments_close(a, b, rel=STATS_MERGE_REL_TOL):
    if a["count"] != b["count"]:
        return False
    for field_name in ("mean", "m2"):
        x, y = a[field_name], b[field_name]
        if x != y and abs(x - y) > rel * max(abs(x), abs(y), 1.0):
            return False
    return True


def _shadow_stats(snapshot, records):
    """Per-key Moments rebuilt from the snapshot + journal folds.

    Mirrors (without importing) the fold in
    ``repro.service.state.ServiceState``: release-with-utility and
    note_utility each Welford-add one value to the lease's
    ``consumer|resource`` key. An independent re-derivation, so a
    reducer bug that corrupts stats is caught instead of replayed.
    """
    from repro.fleet.stats import Moments

    stats = {key: Moments.from_dict(entry)
             for key, entry in snapshot.get("stats", {}).items()}
    leases = {key: dict(lease)
              for key, lease in snapshot.get("leases", {}).items()}
    next_id = snapshot.get("next_lease_id", 1)
    for record in records:
        op, data = record["op"], record["data"]
        if op == "acquire":
            leases["{:08d}".format(next_id)] = {
                "consumer": data["consumer"],
                "resource": data["resource"]}
            next_id += 1
            continue
        value = None
        if op == "release" and data.get("utility") is not None:
            value = float(data["utility"])
        elif op == "note_utility":
            value = float(data["value"])
        if value is None:
            continue
        lease = leases.get("{:08d}".format(int(data["lease"])))
        if lease is None:
            continue
        key = "{}|{}".format(lease["consumer"], lease["resource"])
        if key not in stats:
            stats[key] = Moments()
        stats[key].add(value)
    return {key: moments.to_dict() for key, moments in stats.items()}


def check_service_recovery(snapshot, records, recovered):
    """Validate one service recovery; returns InvariantViolations.

    ``snapshot`` is the canonical state the recovery started from (the
    genesis state when there was no snapshot), ``records`` the replayed
    journal records, ``recovered`` the canonical state after replay.
    """
    from repro.fleet.stats import Moments

    violations = []

    def report(invariant, detail, **data):
        violations.append(InvariantViolation(
            invariant, 0.0, detail, data))

    recovered_leases = recovered.get("leases", {})
    for key, lease in snapshot.get("leases", {}).items():
        after = recovered_leases.get(key)
        if after is None:
            report("no_lost_active_lease",
                   "lease {} ({}) present in the snapshot is missing "
                   "after recovery".format(key, lease["state"]),
                   lease=key, state=lease["state"])
            continue
        if lease["state"] in ("released", "expired") \
                and after["state"] == "active":
            report("no_resurrected_lease",
                   "lease {} was {} in the snapshot but recovered "
                   "ACTIVE".format(key, lease["state"]),
                   lease=key, before=lease["state"],
                   after=after["state"])

    next_id = recovered.get("next_lease_id", 1)
    if next_id < snapshot.get("next_lease_id", 1):
        report("monotonic_lease_ids",
               "next_lease_id regressed from {} to {}".format(
                   snapshot.get("next_lease_id", 1), next_id),
               before=snapshot.get("next_lease_id", 1), after=next_id)
    for key, lease in recovered_leases.items():
        if lease["id"] >= next_id:
            report("monotonic_lease_ids",
                   "lease id {} is not below next_lease_id {}".format(
                       lease["id"], next_id),
                   lease=key, next_lease_id=next_id)
        if "{:08d}".format(lease["id"]) != key:
            report("monotonic_lease_ids",
                   "lease table key {} does not match id {}".format(
                       key, lease["id"]),
                   lease=key)

    shadow = _shadow_stats(snapshot, records)
    recovered_stats = recovered.get("stats", {})
    if shadow != recovered_stats:
        differing = sorted(
            set(shadow) ^ set(recovered_stats)
            | {key for key in set(shadow) & set(recovered_stats)
               if shadow[key] != recovered_stats[key]})
        report("stats_moments_merge",
               "replayed utility moments differ bitwise from the "
               "recovered stats for key(s): {}".format(
                   ", ".join(differing) or "?"),
               keys=differing)
    merged = Moments()
    for key in sorted(recovered_stats):
        merged = merged.merge(Moments.from_dict(recovered_stats[key]))
    if not _moments_close(merged.to_dict(),
                          recovered.get("stats_all", Moments().to_dict())):
        report("stats_moments_merge",
               "merging the per-key moments disagrees with the global "
               "stats_all accumulator",
               merged=merged.to_dict(),
               stats_all=recovered.get("stats_all"))
    return violations
