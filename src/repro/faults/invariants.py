"""Always-on simulation invariants.

The fault injector is allowed to make the *workload* miserable; it is
never allowed to make the *simulator* wrong. These checkers pin down
what "wrong" means, independent of any policy under test:

- **energy conservation** -- the ledger's O(1) running totals must equal
  the integral of the rails (the raw (uid, rail) map), and the battery
  must have drained exactly what the ledger settled;
- **lease state-machine legality** -- every lease state change goes
  through :meth:`~repro.core.lease.Lease.transition` and respects the
  Fig. 5 rules; direct ``state`` mutation is detected by shadowing;
- **monotonic simulated time** -- the clock never runs backwards, even
  under event-delivery jitter;
- **no wakelock honoured after process death** -- once an app's process
  is killed, none of its kernel wakelock records may stay honoured.

A checker is attached to one phone and samples periodically on the
phone's own simulator (plus event-driven hooks where sampling could
miss), so it is itself deterministic and costs nothing when everything
holds.
"""

from dataclasses import dataclass, field

from repro.core import lease as lease_mod
from repro.core.lease import LeaseState


#: Legal single transitions, mirroring (not importing the private table
#: of) ``core/lease.py`` -- the checker must keep its own copy so a bug
#: that corrupts the enforcement table is still caught here.
_LEGAL = {
    (LeaseState.ACTIVE, LeaseState.ACTIVE),
    (LeaseState.ACTIVE, LeaseState.DEFERRED),
    (LeaseState.ACTIVE, LeaseState.INACTIVE),
    (LeaseState.DEFERRED, LeaseState.ACTIVE),
    (LeaseState.INACTIVE, LeaseState.ACTIVE),
}


@dataclass
class InvariantViolation:
    """One detected violation, with enough detail to debug it."""

    invariant: str
    time: float
    detail: str
    data: dict = field(default_factory=dict)

    def as_dict(self):
        return {"invariant": self.invariant, "time": self.time,
                "detail": self.detail, "data": dict(self.data)}

    def __repr__(self):
        return "InvariantViolation({}, t={:.1f}: {})".format(
            self.invariant, self.time, self.detail)


class InvariantChecker:
    """Continuously validates one phone's simulation invariants."""

    #: Absolute float-noise floor for energy comparisons, in mJ.
    ENERGY_ABS_TOL_MJ = 1e-3
    #: Relative tolerance on top (summation-order noise over long runs).
    ENERGY_REL_TOL = 1e-9

    def __init__(self, phone, interval_s=30.0):
        self.phone = phone
        self.sim = phone.sim
        self.violations = []
        self.checks_run = 0
        self._last_now = self.sim.now
        self._shadow = {}  # id(lease) -> (lease, LeaseState)
        self._dead_uids = set()
        # Everything is measured as a delta from attach time, so a
        # checker can be attached to a phone that already ran.
        phone.monitor.settle()
        self._ledger_baseline_mj = phone.monitor.ledger.total_mj()
        self._battery_baseline_mj = phone.battery.remaining_mj
        lease_mod.add_transition_hook(self._on_lease_transition)
        self._hook_installed = True
        self._timer = self.sim.every(interval_s, self.check_now)

    # -- lifecycle ---------------------------------------------------------

    def detach(self):
        """Stop checking; safe to call more than once."""
        if self._hook_installed:
            lease_mod.remove_transition_hook(self._on_lease_transition)
            self._hook_installed = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def ok(self):
        return not self.violations

    def summary(self):
        if self.ok:
            return "invariants: OK ({} checks)".format(self.checks_run)
        lines = ["invariants: {} violation(s) over {} checks".format(
            len(self.violations), self.checks_run)]
        lines.extend("  " + repr(v) for v in self.violations)
        return "\n".join(lines)

    # -- process-death tracking (fed by the injector / scenarios) ----------

    def note_app_dead(self, uid):
        """An app's process was killed; its locks must not stay honoured."""
        self._dead_uids.add(uid)
        self._check_wakelocks()

    def note_app_alive(self, uid):
        """The app restarted; new kernel objects are legitimate again."""
        self._dead_uids.discard(uid)

    # -- the checks --------------------------------------------------------

    def check_now(self):
        """Run every sampled invariant at the current instant."""
        self.checks_run += 1
        self._check_monotonic_time()
        self._check_energy_conservation()
        self._check_lease_states()
        self._check_wakelocks()

    def _report(self, invariant, detail, **data):
        self.violations.append(InvariantViolation(
            invariant, self.sim.now, detail, data))

    def _check_monotonic_time(self):
        now = self.sim.now
        if now < self._last_now:
            self._report(
                "monotonic_time",
                "simulated time ran backwards: {} -> {}".format(
                    self._last_now, now),
                previous=self._last_now, current=now)
        self._last_now = max(self._last_now, now)

    def _check_energy_conservation(self):
        monitor = self.phone.monitor
        monitor.settle()
        ledger = monitor.ledger
        total = ledger.total_mj()
        tol = self.ENERGY_ABS_TOL_MJ + self.ENERGY_REL_TOL * abs(total)
        drift = ledger.consistency_error_mj()
        if drift > tol:
            self._report(
                "energy_conservation",
                "ledger running totals diverged from the raw (uid, rail) "
                "map by {:.6g} mJ".format(drift), drift_mj=drift)
        battery = self.phone.battery
        if battery is not None and not battery.empty:
            drained = self._battery_baseline_mj - battery.remaining_mj
            settled = total - self._ledger_baseline_mj
            if abs(drained - settled) > tol:
                self._report(
                    "energy_conservation",
                    "battery drained {:.6g} mJ but the ledger settled "
                    "{:.6g} mJ since attach".format(drained, settled),
                    drained_mj=drained, settled_mj=settled)

    def _on_lease_transition(self, lease, old_state, new_state):
        key = id(lease)
        shadow = self._shadow.get(key)
        if shadow is not None and shadow[1] is not old_state:
            self._report(
                "lease_state_machine",
                "lease #{} was {} at the last legal transition but "
                "claims to come from {}: state was mutated without "
                "transition()".format(lease.descriptor, shadow[1].value,
                                      old_state.value),
                descriptor=lease.descriptor,
                shadow=shadow[1].value, claimed=old_state.value)
        if new_state is not LeaseState.DEAD \
                and (old_state, new_state) not in _LEGAL:
            self._report(
                "lease_state_machine",
                "illegal lease transition {} -> {} on lease #{}".format(
                    old_state.value, new_state.value, lease.descriptor),
                descriptor=lease.descriptor,
                old=old_state.value, new=new_state.value)
        if new_state is LeaseState.DEAD:
            self._shadow.pop(key, None)
        else:
            self._shadow[key] = (lease, new_state)

    def _check_lease_states(self):
        manager = self.phone.lease_manager
        if manager is None:
            return
        for lease in manager.leases.values():
            key = id(lease)
            shadow = self._shadow.get(key)
            if shadow is None:
                # First sighting: trust the current state as baseline.
                self._shadow[key] = (lease, lease.state)
            elif shadow[1] is not lease.state:
                self._report(
                    "lease_state_machine",
                    "lease #{} is {} but its last transition() left it "
                    "{}: state was mutated directly".format(
                        lease.descriptor, lease.state.value,
                        shadow[1].value),
                    descriptor=lease.descriptor,
                    observed=lease.state.value, shadow=shadow[1].value)
                self._shadow[key] = (lease, lease.state)

    def _check_wakelocks(self):
        if not self._dead_uids:
            return
        for record in self.phone.power.honoured_records():
            if record.uid in self._dead_uids:
                self._report(
                    "wakelock_after_death",
                    "wakelock {!r} of dead uid {} is still honoured".format(
                        record.name, record.uid),
                    uid=record.uid, name=record.name)
