"""Event-delivery jitter: an engine-level dispatch interposer.

Reuses the kernel-trace plumbing (:meth:`Simulator.set_trace`): the
simulator hands every due callback to the installed trace's ``dispatch``
method, and :class:`DispatchJitter` either runs it or -- with a small,
deterministic probability -- re-schedules it a few milliseconds later.
This models the delivery slop of a real binder/looper stack: handlers
that were "about to run" when a revoke landed, timeouts racing plain
releases, and so on. Any code that only works because two events happen
back-to-back in a fixed order will misbehave under jitter, which is the
point.

The interposer chains: an inner trace (e.g. a profiling
:class:`~repro.sim.trace.KernelTrace`) still sees every callback that
actually runs. Delayed callbacks go back through the normal queue, so
when they surface they are jittered again with the same probability --
termination is guaranteed for p < 1 because each retry consumes fresh
rng draws from a finite deterministic stream.
"""


class DispatchJitter:
    """Trace-compatible hook that randomly delays event delivery."""

    def __init__(self, sim, rng, probability=0.05, max_delay_s=0.02,
                 inner=None):
        if not 0.0 <= probability < 1.0:
            raise ValueError("jitter probability must be in [0, 1)")
        if max_delay_s <= 0:
            raise ValueError("max delay must be positive")
        self.sim = sim
        self.rng = rng
        self.probability = probability
        self.max_delay_s = max_delay_s
        self.inner = inner
        self.delayed = 0
        self.passed = 0

    def dispatch(self, callback):
        """Deliver ``callback`` now, or re-queue it a moment later."""
        if self.rng.random() < self.probability:
            self.delayed += 1
            self.sim.schedule(self.rng.random() * self.max_delay_s,
                              callback)
            return
        self.passed += 1
        if self.inner is not None:
            self.inner.dispatch(callback)
        else:
            callback()

    def __repr__(self):
        return "DispatchJitter(p={}, delayed={}, passed={})".format(
            self.probability, self.delayed, self.passed)
