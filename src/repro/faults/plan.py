"""Declarative fault plans: what goes wrong, when, and for how long.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultEvent` records.
Plans are pure data -- JSON round-trippable, hashable, and safe to ship
across process boundaries as a :class:`~repro.experiments.grid.FuncSpec`
kwarg -- so the same plan replays bit-identically on any worker.

Plans are usually *sampled*: :meth:`FaultPlan.sample` draws a plan from
``random.Random(seed)`` alone, so a seed number in a CI log is a
complete description of the chaos a run experienced.
"""

import json
import random

from dataclasses import dataclass

#: Every fault kind the injector understands, with the semantics of the
#: ``param`` field for each.
FAULT_KINDS = (
    "ipc_latency",    # param = extra seconds added to every binder call
    "ipc_failure",    # param = per-transaction failure probability
    "gps_dropout",    # total signal loss (quality 0) for the window
    "gps_degraded",   # param = signal quality during the window (<0.3 => never fixes)
    "net_flap",       # connectivity lost for the window
    "server_storm",   # every known server answers with errors (param>=1: down)
    "app_crash",      # target app process killed; restarts after the window
    "rail_noise",     # param = mW of spurious system draw for the window
    "battery_jitter",  # param = mJ of one-shot battery-model noise
    "event_jitter",   # param = per-event delivery-delay probability for the window
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled perturbation.

    ``at_s`` is seconds from the start of the run, ``duration_s`` is how
    long the fault persists before the injector restores the previous
    state (0 for one-shot faults like ``battery_jitter``), and ``param``
    is the kind-specific magnitude documented in :data:`FAULT_KINDS`.
    """

    kind: str
    at_s: float
    duration_s: float = 0.0
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind {!r}; known: {}".format(
                self.kind, ", ".join(FAULT_KINDS)))
        if self.at_s < 0 or self.duration_s < 0:
            raise ValueError(
                "fault times must be non-negative, got at_s={}, "
                "duration_s={}".format(self.at_s, self.duration_s))

    def as_dict(self):
        return {"kind": self.kind, "at_s": self.at_s,
                "duration_s": self.duration_s, "param": self.param}


class FaultPlan:
    """An immutable, ordered collection of fault events."""

    def __init__(self, events=(), seed=None):
        events = tuple(sorted(events, key=lambda e: (e.at_s, e.kind)))
        self.events = events
        #: The sampling seed, if this plan was drawn by :meth:`sample`
        #: (informational; the events alone define the plan).
        self.seed = seed

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other):
        return isinstance(other, FaultPlan) and self.events == other.events

    def __hash__(self):
        return hash(self.events)

    def __repr__(self):
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join("{}x{}".format(n, k)
                            for k, n in sorted(kinds.items()))
        return "FaultPlan({} events{}{})".format(
            len(self.events),
            ": " + summary if summary else "",
            ", seed={}".format(self.seed) if self.seed is not None else "")

    def kinds(self):
        """The distinct fault kinds this plan exercises, sorted."""
        return tuple(sorted({e.kind for e in self.events}))

    # -- serialisation -----------------------------------------------------

    def to_json(self):
        """Compact, key-sorted JSON -- stable input for cache keys."""
        payload = {"events": [e.as_dict() for e in self.events]}
        if self.seed is not None:
            payload["seed"] = self.seed
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        payload = json.loads(text)
        events = [FaultEvent(**fields) for fields in payload["events"]]
        return cls(events, seed=payload.get("seed"))

    # -- sampling ----------------------------------------------------------

    @classmethod
    def sample(cls, seed, horizon_s, kinds=None, events_per_hour=12.0):
        """Draw a deterministic plan from ``seed`` over ``horizon_s``.

        Fault start times land in the first 90% of the horizon so every
        fault has room to act; durations are drawn per kind (dropouts
        are tens of seconds to minutes, jitter windows shorter).
        ``events_per_hour`` scales density; at least one event is drawn
        for any positive horizon.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rng = random.Random(seed)
        kinds = tuple(kinds) if kinds is not None else FAULT_KINDS
        count = max(1, int(round(events_per_hour * horizon_s / 3600.0)))
        events = []
        for __ in range(count):
            kind = kinds[rng.randrange(len(kinds))]
            at_s = rng.uniform(0.02, 0.9) * horizon_s
            events.append(cls._draw_event(rng, kind, at_s, horizon_s))
        return cls(events, seed=seed)

    @staticmethod
    def _draw_event(rng, kind, at_s, horizon_s):
        window = lambda lo, hi: min(rng.uniform(lo, hi),  # noqa: E731
                                    max(1.0, horizon_s - at_s))
        if kind == "ipc_latency":
            return FaultEvent(kind, at_s, window(10.0, 120.0),
                              param=rng.uniform(0.005, 0.05))
        if kind == "ipc_failure":
            return FaultEvent(kind, at_s, window(10.0, 120.0),
                              param=rng.uniform(0.05, 0.5))
        if kind == "gps_dropout":
            return FaultEvent(kind, at_s, window(30.0, 300.0))
        if kind == "gps_degraded":
            return FaultEvent(kind, at_s, window(60.0, 600.0),
                              param=rng.uniform(0.05, 0.25))
        if kind == "net_flap":
            return FaultEvent(kind, at_s, window(15.0, 240.0))
        if kind == "server_storm":
            return FaultEvent(kind, at_s, window(60.0, 600.0),
                              param=float(rng.random() < 0.3))
        if kind == "app_crash":
            return FaultEvent(kind, at_s, rng.uniform(5.0, 30.0))
        if kind == "rail_noise":
            return FaultEvent(kind, at_s, window(10.0, 120.0),
                              param=rng.uniform(5.0, 80.0))
        if kind == "battery_jitter":
            return FaultEvent(kind, at_s, 0.0,
                              param=rng.uniform(10.0, 500.0))
        if kind == "event_jitter":
            return FaultEvent(kind, at_s, window(10.0, 90.0),
                              param=rng.uniform(0.02, 0.10))
        raise ValueError("unknown fault kind {!r}".format(kind))
