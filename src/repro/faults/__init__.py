"""Fault injection ("chaos") for the simulator itself.

The paper's claim is that lease-based management stays correct and cheap
*under misbehaviour* -- apps that hold wakelocks forever, GPS that never
fixes, servers that reject every sync (PAPER §2, §7.6). This package
drives exactly those error paths systematically:

- :mod:`repro.faults.plan` -- declarative, seed-sampled fault plans
  (what goes wrong, when, for how long), JSON round-trippable;
- :mod:`repro.faults.injector` -- applies a plan to a live
  :class:`~repro.droid.phone.Phone` by scheduling perturbations on the
  simulator: binder latency spikes and transaction failures, GPS
  dropouts and never-fix periods, network flaps and server-error storms,
  app crash/restart, rail-power noise and battery jitter, and
  event-delivery jitter at the engine level;
- :mod:`repro.faults.invariants` -- always-on checkers that must hold
  no matter what the injector does: energy conservation, lease
  state-machine legality, monotonic simulated time, no wakelock honoured
  after its process died;
- :mod:`repro.faults.bundle` -- minimal repro bundles (seed + fault
  plan JSON) that replay an invariant violation in one command.

Everything is deterministic: the same (scenario, fault plan, seed)
produces byte-identical output, which the chaos goldens assert.
"""

from repro.faults.bundle import load_bundle, replay_bundle, write_bundle
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.jitter import DispatchJitter
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "DispatchJitter",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "load_bundle",
    "replay_bundle",
    "write_bundle",
]
