"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live Phone.

The injector schedules one callback per fault event on the phone's own
simulator, so injection is part of the deterministic event stream: the
same (scenario, plan, seed) perturbs the same instants in the same
order. Every windowed fault saves the state it clobbers and restores it
when the window closes, so plans compose -- overlapping windows of the
same kind restore in LIFO order through the saved values.

Faults by layer:

- ``droid/ipc.py``   -- binder latency spikes, transaction failures
- ``env/gps.py``     -- signal dropouts and never-fix degradation
- ``env/network.py`` -- connectivity flaps, server-error storms
- ``droid/app.py``   -- app process crash + delayed restart
- ``device/power.py``-- spurious rail draw, battery-model jitter
- ``sim/engine.py``  -- event-delivery jitter (via the trace hook)
"""

import random

from repro.device.power import SYSTEM_UID
from repro.env.network import ServerMode
from repro.faults.jitter import DispatchJitter


class FaultInjector:
    """Schedules a plan's events against one phone."""

    #: Rail used for spurious system draw injected by ``rail_noise``.
    NOISE_RAIL = "chaos_noise"
    #: Ledger rail for one-shot ``battery_jitter`` energy.
    JITTER_RAIL = "chaos_battery"

    def __init__(self, phone, plan, seed=0, checker=None, target_uid=None):
        self.phone = phone
        self.sim = phone.sim
        self.plan = plan
        self.checker = checker
        #: The uid crash faults target; defaults to the first installed
        #: app at fire time (deterministic: install order).
        self.target_uid = target_uid
        #: Dedicated rng for fault randomness (ipc failures, jitter),
        #: isolated from the phone's rngs so arming a fault window never
        #: shifts the workload's own random streams. Seeded from a string
        #: (stable across processes -- tuple seeds would go through
        #: ``hash()`` and PYTHONHASHSEED randomisation).
        self.rng = random.Random("faults:{}:{}".format(seed, plan.seed))
        self.applied = []  # (time, kind) log, in application order
        self._armed = False
        self._jitter_depth = 0
        self._saved_trace = None

    def arm(self):
        """Schedule every plan event; idempotent."""
        if self._armed:
            return self
        self._armed = True
        self.phone.ipc.fault_rng = self.rng
        for event in self.plan:
            self.sim.schedule(event.at_s, self._applier(event))
        return self

    @property
    def applied_count(self):
        return len(self.applied)

    # -- dispatch ----------------------------------------------------------

    def _applier(self, event):
        handler = getattr(self, "_apply_" + event.kind)

        def apply():
            self.applied.append((self.sim.now, event.kind))
            handler(event)

        return apply

    def _after(self, duration_s, callback):
        self.sim.schedule(duration_s, callback)

    # -- binder IPC --------------------------------------------------------

    def _apply_ipc_latency(self, event):
        ipc = self.phone.ipc
        previous = ipc.fault_extra_latency_s
        ipc.fault_extra_latency_s = previous + event.param

        def restore():
            ipc.fault_extra_latency_s = previous

        self._after(event.duration_s, restore)

    def _apply_ipc_failure(self, event):
        ipc = self.phone.ipc
        previous = ipc.fault_failure_rate
        ipc.fault_failure_rate = min(1.0, previous + event.param)

        def restore():
            ipc.fault_failure_rate = previous

        self._after(event.duration_s, restore)

    # -- GPS ---------------------------------------------------------------

    def _apply_gps_dropout(self, event):
        self._degrade_gps(event, 0.0)

    def _apply_gps_degraded(self, event):
        self._degrade_gps(event, event.param)

    def _degrade_gps(self, event, quality):
        gps = self.phone.env.gps
        previous = gps.quality
        gps.set_quality(quality)

        def restore():
            gps.set_quality(previous)

        self._after(event.duration_s, restore)

    # -- network -----------------------------------------------------------

    def _apply_net_flap(self, event):
        network = self.phone.env.network
        was_connected, kind = network.connected, network.kind
        network.set_connected(False)

        def restore():
            if was_connected:
                network.set_connected(True, kind)

        self._after(event.duration_s, restore)

    def _apply_server_storm(self, event):
        network = self.phone.env.network
        mode = ServerMode.DOWN if event.param >= 1.0 else ServerMode.ERROR
        saved = {name: network.server_mode(name)
                 for name in network.known_servers()}
        for name in saved:
            network.set_server(name, mode)

        def restore():
            for name, previous in saved.items():
                network.set_server(name, previous)

        self._after(event.duration_s, restore)

    # -- app lifecycle -----------------------------------------------------

    def _crash_target(self):
        if self.target_uid is not None and self.target_uid in self.phone.apps:
            return self.target_uid
        for uid, app in self.phone.apps.items():  # install order
            if app.started:
                return uid
        return None

    def _apply_app_crash(self, event):
        uid = self._crash_target()
        if uid is None or not self.phone.apps[uid].started:
            return  # already down (overlapping crash windows)
        self.phone.kill_app(uid)
        if self.checker is not None:
            self.checker.note_app_dead(uid)

        def restart():
            if self.checker is not None:
                self.checker.note_app_alive(uid)
            self.phone.restart_app(uid)

        self._after(event.duration_s, restart)

    # -- power model -------------------------------------------------------

    def _apply_rail_noise(self, event):
        monitor = self.phone.monitor
        previous = monitor.rail_power(self.NOISE_RAIL)
        monitor.set_rail(self.NOISE_RAIL, previous + event.param, ())

        def restore():
            monitor.set_rail(self.NOISE_RAIL, previous, ())

        self._after(event.duration_s, restore)

    def _apply_battery_jitter(self, event):
        # Booked through the ledger so energy conservation still holds:
        # noise is modelled energy, not an unaccounted battery poke.
        self.phone.monitor.add_energy(SYSTEM_UID, self.JITTER_RAIL,
                                      event.param)

    # -- engine ------------------------------------------------------------

    def _apply_event_jitter(self, event):
        self._jitter_depth += 1
        if self._jitter_depth == 1:
            self._saved_trace = self.sim.trace
            self.sim.set_trace(DispatchJitter(
                self.sim, self.rng, probability=event.param,
                inner=self._saved_trace))

        def restore():
            self._jitter_depth -= 1
            if self._jitter_depth == 0:
                self.sim.set_trace(self._saved_trace)
                self._saved_trace = None

        self._after(event.duration_s, restore)
