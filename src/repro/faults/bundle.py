"""Minimal repro bundles: one JSON file that replays a chaos failure.

When the invariant suite trips during a chaos run, the runner writes a
bundle holding exactly what is needed to reproduce the failure -- the
``run_chaos_case`` kwargs (case, mitigation, minutes, seed and the full
fault-plan JSON) plus the violations and output fingerprint observed.
Replaying is one command::

    python -m repro chaos --replay results/chaos_bundles/<bundle>.json

which re-runs the case and reports whether the same violations and the
same byte-identical fingerprint came back.
"""

import hashlib
import json
import os

from contextlib import contextmanager

from repro.resilience.hooks import ENV_VAR as FAULTS_ENV_VAR


def write_bundle(directory, kwargs, result):
    """Write a repro bundle; returns its path.

    ``kwargs`` must be the exact keyword arguments of
    :func:`repro.experiments.chaos.run_chaos_case`; ``result`` is that
    function's return value for the failing run. If harness faults
    (``REPRO_HARNESS_FAULTS``) were armed when the failure happened,
    the spec is captured in the bundle and re-armed on replay -- a
    storage-fault repro must be one command, not one command plus an
    environment variable nobody remembers.
    """
    payload = {
        "kwargs": dict(kwargs),
        "violations": list(result.get("violations", ())),
        "fingerprint": result.get("fingerprint", ""),
        "replay": "python -m repro chaos --replay <this file>",
    }
    harness_faults = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if harness_faults:
        payload["harness_faults"] = harness_faults
    token = hashlib.sha256(json.dumps(
        payload["kwargs"], sort_keys=True).encode()).hexdigest()[:10]
    name = "chaos_{}_{}_s{}_{}.json".format(
        kwargs.get("case_key", "case"), kwargs.get("mitigation", "m"),
        kwargs.get("seed", 0), token)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_bundle(path):
    with open(path) as handle:
        return json.load(handle)


@contextmanager
def _restored_faults(spec):
    """Arm a bundle's recorded harness-fault spec for the replay.

    The caller's own environment is restored afterwards either way; a
    bundle with no recorded spec explicitly *clears* the variable so a
    stray spec in the operator's shell cannot contaminate the replay.
    """
    before = os.environ.get(FAULTS_ENV_VAR)
    if spec:
        os.environ[FAULTS_ENV_VAR] = spec
    else:
        os.environ.pop(FAULTS_ENV_VAR, None)
    try:
        yield
    finally:
        if before is None:
            os.environ.pop(FAULTS_ENV_VAR, None)
        else:
            os.environ[FAULTS_ENV_VAR] = before


def replay_bundle(path):
    """Re-run a bundle's case. Returns ``(result, report_text)``.

    The report states whether the original violations reproduced and
    whether the output fingerprint matched bit-for-bit. Harness faults
    recorded in the bundle (``harness_faults``) are re-armed for the
    duration of the replay. A *failure manifest*
    (``results/failures_<fp>.json``, written by a supervised run that
    quarantined jobs) is also accepted: every chaos job it records is
    re-run in-process, and ``result`` aggregates their violations
    (``fingerprint`` is empty -- quarantined jobs never produced one to
    compare against).
    """
    from repro.experiments.chaos import run_chaos_case

    payload = load_bundle(path)
    if payload.get("kind") == "failure_manifest":
        return _replay_manifest(path, payload)
    with _restored_faults(payload.get("harness_faults", "")):
        result = run_chaos_case(**payload["kwargs"])
    lines = ["replaying {}".format(os.path.basename(path))]
    if payload.get("harness_faults"):
        lines.append("harness faults re-armed: {}".format(
            payload["harness_faults"]))
    expected = payload.get("fingerprint", "")
    if expected:
        match = result["fingerprint"] == expected
        lines.append("fingerprint: {} ({})".format(
            result["fingerprint"],
            "matches the original run" if match
            else "DIFFERS from {} -- non-determinism!".format(expected)))
    if result["violations"]:
        lines.append("violations reproduced ({}):".format(
            len(result["violations"])))
        for violation in result["violations"]:
            lines.append("  [{}] t={:.1f}: {}".format(
                violation["invariant"], violation["time"],
                violation["detail"]))
    else:
        lines.append("no violations on replay (fixed, or environment-"
                     "dependent -- check the fingerprint line)")
    return result, "\n".join(lines)


def _replay_manifest(path, payload):
    """Re-run every chaos job a failure manifest recorded.

    Quarantined jobs are replayed *without* the supervisor or any
    harness faults -- the point is to see what the job does on this
    machine, under a debugger if need be. Fleet shard jobs are listed
    but skipped (resume the fleet run to retry them; a shard is not a
    single case). Returns an aggregate result dict shaped like a
    single-bundle replay (``violations`` + empty ``fingerprint``) so
    callers share one exit-code path.
    """
    from repro.experiments.chaos import run_chaos_case
    from repro.resilience.manifest import FailureManifest, dict_kwargs

    manifest = FailureManifest.from_dict(payload)
    lines = ["replaying failure manifest {} ({} quarantined job(s))"
             .format(os.path.basename(path), len(manifest))]
    violations = []
    replayed = skipped = 0
    for record in manifest.records:
        spec = record.spec if isinstance(record.spec, dict) else {}
        func = str(spec.get("func", ""))
        last = record.attempts[-1].outcome if record.attempts else "?"
        if spec.get("kind") != "func" \
                or not func.endswith(":run_chaos_case"):
            skipped += 1
            lines.append("  {} (last outcome: {}): not a chaos case "
                         "job; skipped -- re-run the original command "
                         "to retry it".format(record.label, last))
            continue
        result = run_chaos_case(**dict_kwargs(spec))
        replayed += 1
        violations.extend(result["violations"])
        status = "{} violation(s)".format(len(result["violations"])) \
            if result["violations"] else "clean"
        lines.append("  {} (last outcome: {}): replayed seed {} -> "
                     "fingerprint {} ({})".format(
                         record.label, last, result["seed"],
                         result["fingerprint"][:12], status))
    lines.append("{} job(s) replayed, {} skipped, {} violation(s) "
                 "observed".format(replayed, skipped, len(violations)))
    summary = {"violations": violations, "fingerprint": "",
               "replayed": replayed, "skipped": skipped}
    return summary, "\n".join(lines)
