"""Command-line interface: run any paper experiment from the shell.

    python -m repro table5
    python -m repro table5 --jobs 4            # fan out over 4 workers
    python -m repro fig9
    python -m repro usability --minutes 20
    python -m repro fleet --devices 1000 --jobs 4   # population scale
    python -m repro all --out results/

Each subcommand maps to one :mod:`repro.experiments` harness and prints
the paper-style table/series; ``--out DIR`` additionally writes the text
artifact into DIR.

Grid-shaped experiments accept ``--jobs N`` (parallel workers; default 1
== serial, or the ``REPRO_JOBS`` environment variable), ``--no-cache``
(disable the on-disk result cache) and ``--cache-dir DIR`` (default
``results/.cache``). Cached jobs are keyed by a content hash of the job
spec, so a warm re-run performs no fresh simulation.
"""

import argparse
import os
import sys

#: Exit codes beyond 0/1: a supervised run that completed with
#: quarantined jobs (partial results + failure manifest) exits 75
#: (BSD's EX_TEMPFAIL: retrying may succeed), an interrupted run exits
#: 130 (128+SIGINT) after flushing its checkpoints and manifest.
EXIT_DEGRADED = 75
EXIT_INTERRUPTED = 130


def _write_failure_manifest(args):
    """Write the supervisor's failure manifest if any job was
    quarantined; returns its path or None."""
    runner = getattr(args, "grid_runner", None)
    supervisor = getattr(runner, "supervisor", None)
    if supervisor is None or not supervisor.manifest:
        return None
    path = supervisor.manifest.write()
    print("[failure manifest: {}]".format(path), file=sys.stderr)
    return path


def _grid_runner(args):
    """The per-invocation GridRunner built from --jobs/--no-cache/
    --cache-dir (cached on args so 'all' shares one runner)."""
    if getattr(args, "grid_runner", None) is None:
        from repro.experiments.grid import runner_from_args

        args.grid_runner = runner_from_args(args)
    return args.grid_runner


def _cmd_table5(args):
    from repro.experiments import table5

    rows = table5.run(minutes=args.minutes, runner=_grid_runner(args))
    return "table5_buggy_apps.txt", table5.render(rows)


def _cmd_fig9(args):
    from repro.experiments import lease_term

    return "fig09_lease_term.txt", lease_term.render(
        lease_term.run_fig9a(), lease_term.run_fig9b()
    )


def _cmd_fig11(args):
    from repro.experiments import lease_activity

    return "fig11_lease_activity.txt", lease_activity.render(
        lease_activity.run()
    )


def _cmd_fig12(args):
    from repro.experiments import lambda_sweep

    return "fig12_lambda_sweep.txt", lambda_sweep.render(
        lambda_sweep.run(runner=_grid_runner(args))
    )


def _cmd_fig13(args):
    from repro.experiments import overhead

    return "fig13_overhead.txt", overhead.render(overhead.run())


def _cmd_fig14(args):
    from repro.experiments import latency

    return "fig14_latency.txt", latency.render(latency.run())


def _cmd_table4(args):
    from repro.experiments import microbench

    return "table4_lease_ops.txt", microbench.render(
        microbench.measure_wall_clock_ms()
    )


def _cmd_usability(args):
    from repro.experiments import usability

    return "usability_7_4.txt", usability.render(
        usability.run(minutes=args.minutes)
    )


def _cmd_battery(args):
    from repro.experiments import battery_life

    return "battery_life_7_6.txt", battery_life.render(
        battery_life.run(runner=_grid_runner(args))
    )


def _cmd_study(args):
    from repro.experiments import study_tables

    text = study_tables.render_table1() + "\n\n" + \
        study_tables.render_table2()
    return "study_tables.txt", text


def _cmd_characterization(args):
    import io
    from contextlib import redirect_stdout

    from repro.experiments import characterization

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        characterization.main(runner=_grid_runner(args))
    return "characterization_figs1_4.txt", buffer.getvalue()


def _cmd_ablations(args):
    from repro.experiments import ablations

    return "ablations.txt", ablations.render(
        ablations.run(runner=_grid_runner(args))
    )


def _cmd_extensions(args):
    from repro.experiments import extensions

    return "extensions_s8.txt", extensions.render()


def _cmd_robustness(args):
    from repro.experiments import robustness

    runner = _grid_runner(args)
    return "robustness.txt", robustness.render(
        robustness.seed_sweep(runner=runner),
        robustness.profile_sweep(runner=runner),
    )


def _cmd_verdict(args):
    from repro.experiments import verdict

    claims = verdict.run()
    # The scorecard is the CI-facing gate on the reproduction: a failed
    # claim must fail the invocation, not scroll past in a green run.
    if any(not claim.passed for claim in claims):
        args.exit_code = 1
    return "verdict.txt", verdict.render(claims)


def _cmd_fix(args):
    from repro.experiments import fix_comparison

    return "fix_comparison.txt", fix_comparison.render(
        fix_comparison.run(minutes=args.minutes)
    )


def _cmd_containment(args):
    from repro.experiments import containment

    return "containment_latency.txt", containment.render(containment.run())


def _cmd_zoo(args):
    from repro.experiments import baseline_zoo

    return "baseline_zoo.txt", baseline_zoo.render(
        baseline_zoo.run(minutes=args.minutes, runner=_grid_runner(args))
    )


def _cmd_deployment(args):
    from repro.experiments import deployment

    return "deployment_estimate.txt", deployment.render(deployment.run())


def _cmd_misleading(args):
    from repro.experiments import misleading_classifier

    return "misleading_classifier_2_3.txt", misleading_classifier.render(
        misleading_classifier.run(minutes=args.minutes)
    )


def _cmd_chaos(args):
    from repro.experiments import chaos

    if getattr(args, "replay", None):
        from repro.faults.bundle import load_bundle, replay_bundle

        payload = load_bundle(args.replay)
        # Failure manifests carry a *run* fingerprint, not a chaos-case
        # fingerprint; drift checking only applies to single bundles.
        expected = "" if payload.get("kind") == "failure_manifest" \
            else payload.get("fingerprint", "")
        result, text = replay_bundle(args.replay)
        # Non-zero on violations AND on fingerprint drift: a replay
        # that no longer reproduces bit-identically is a CI failure
        # (non-determinism), not a pass.
        if result["violations"] or \
                (expected and result["fingerprint"] != expected):
            args.exit_code = 1
        return "chaos_replay.txt", text
    base = args.base_seed
    plan_seeds = tuple(range(base, base + args.seeds))
    print("chaos: base seed {} -> fault-plan seeds {} (replayable: the "
          "seeds fully determine the fault plans)".format(
              base, list(plan_seeds)), file=sys.stderr)
    report = chaos.run(plan_seeds=plan_seeds, minutes=args.minutes,
                       runner=_grid_runner(args))
    text = chaos.render(report)
    manifest_path = _write_failure_manifest(args)
    if manifest_path is not None:
        text += "\n\nfailure manifest (replay the quarantined jobs " \
                "with `python -m repro chaos --replay {}`)".format(
                    manifest_path)
        args.exit_code = EXIT_DEGRADED
    if report.total_violations:
        paths = report.write_bundles(args.bundle_dir)
        text += "\n\nrepro bundles (replay with `python -m repro chaos " \
                "--replay <path>`):\n" + \
                "\n".join("  " + path for path in paths)
        args.exit_code = 1
    return "chaos.txt", text


def _cmd_fleet(args):
    from repro.fleet import (
        FleetRunner,
        PopulationSpec,
        build_report,
        render,
        write_report,
    )

    mitigations = tuple(
        name.strip() for name in args.mitigations.split(",") if name.strip())
    catalog_json = ""
    if args.catalog:
        from repro.scenarios.catalog import ScenarioCatalog

        catalog_json = ScenarioCatalog.from_file(args.catalog).to_json()
    population = PopulationSpec(
        seed=args.seed, devices=args.devices, mitigations=mitigations,
        minutes=args.minutes, shard_size=args.shard_size,
        buggy_prevalence=args.prevalence, chaos_rate=args.chaos_rate,
        catalog_json=catalog_json,
        scenario_prevalence=args.scenario_prevalence,
    )
    telemetry_dir = args.telemetry_dir
    if telemetry_dir is None and args.telemetry:
        from repro.telemetry import default_telemetry_dir

        telemetry_dir = default_telemetry_dir(population)
    service_journal = args.service_journal
    if service_journal == "auto":
        from repro.service.wiring import default_service_dir

        service_journal = default_service_dir(population.fingerprint())
    fleet_runner = FleetRunner(population, runner=_grid_runner(args),
                               checkpoint_dir=args.checkpoint_dir,
                               verbose=True, mode=args.mode,
                               telemetry_dir=telemetry_dir,
                               service_journal=service_journal)
    if telemetry_dir is not None:
        print("[telemetry stream: {}]".format(telemetry_dir),
              file=sys.stderr)
    if service_journal is not None:
        print("[service journal: {}]".format(service_journal),
              file=sys.stderr)
    if fleet_runner.mode != fleet_runner.requested_mode:
        print("fleet: --mode auto resolved to {} for {} devices"
              .format(fleet_runner.mode, population.devices),
              file=sys.stderr)
    fleet_runner.run_shards(limit=args.max_shards)
    summary = fleet_runner.run_summary()
    # Always surfaced, quiet mode included: a rejected checkpoint means
    # a shard was silently recomputed and the operator must see it.
    summary_line = ("fleet run ({mode} path): {shards_run} shard(s) "
                    "executed, {shards_resumed} resumed from "
                    "checkpoints, {checkpoints_rejected} stale "
                    "checkpoint(s) rejected, {shards_quarantined} "
                    "quarantined".format(**summary))
    print(summary_line, file=sys.stderr)
    manifest_path = _write_failure_manifest(args)
    pending = fleet_runner.pending_shards()
    quarantined = set(fleet_runner.quarantined_shards)
    if pending and not quarantined.issuperset(pending):
        # Shards are left beyond any quarantine: --max-shards stopped
        # the run early, the ordinary resume path. The stream stays
        # deliberately unterminated (no run_finished): a watcher sees
        # the run as still in flight, which it is.
        if fleet_runner.telemetry is not None:
            fleet_runner.telemetry.close()
        return "fleet_partial.txt", (
            "fleet: stopped after {} shard(s) this invocation; {} of {} "
            "still pending.\nRe-run the same command to resume from the "
            "checkpoints in {}.\n{}".format(
                fleet_runner.shards_run, len(pending),
                population.shard_count, fleet_runner.checkpoint_dir,
                summary_line))
    degraded = bool(pending)
    merged = fleet_runner.merged_stats(allow_missing=degraded)
    # The report's execution/provenance block records deterministic
    # facts only (mode, table fingerprint, cross-validation verdict):
    # interrupted-and-resumed runs must still produce byte-identical
    # report files, so run counters stay on stderr.
    execution = {"mode": fleet_runner.mode,
                 "requested_mode": fleet_runner.requested_mode}
    if fleet_runner.mode in ("fast", "vector"):
        execution["table_fingerprint"] = \
            fleet_runner.table_fingerprint or ""
    validation = None
    if args.cross_validate:
        from repro.fleet.fastpath import cross_validate

        validation = cross_validate(population, n=args.cross_validate,
                                    runner=fleet_runner.runner)
        execution["cross_validation"] = validation
        print("fast-path cross-validation: {} device-days compared, "
              "{} fallback(s), {}".format(
                  validation["device_days_compared"],
                  validation["fallbacks"],
                  "PASS" if validation["pass"]
                  else "FAIL ({} violation(s))".format(
                      validation["violation_count"])),
              file=sys.stderr)
        if not validation["pass"]:
            args.exit_code = 1
        if fleet_runner.mode == "vector":
            # Second gate for the columnar engine: vector vs the scalar
            # fast path under the frozen VECTOR_TOLERANCES (bitwise
            # where elementwise order permits), on top of the
            # kernel-anchored check above.
            from repro.fleet.vector import cross_validate as vector_cv

            vector_validation = vector_cv(population,
                                          n=args.cross_validate,
                                          runner=fleet_runner.runner)
            execution["vector_cross_validation"] = vector_validation
            print("vector cross-validation ({} backend): {} device-days "
                  "vs scalar fast path, {}".format(
                      vector_validation["backend"],
                      vector_validation["device_days_compared"],
                      "PASS" if vector_validation["pass"]
                      else "FAIL ({} violation(s))".format(
                          vector_validation["violation_count"])),
                  file=sys.stderr)
            if not vector_validation["pass"]:
                args.exit_code = 1
    report = build_report(population, merged, execution=execution)
    text = render(report)
    if fleet_runner.mode in ("fast", "vector"):
        text += ("\n\nexecution: {} path, transition table {}".format(
            "columnar vector" if fleet_runner.mode == "vector"
            else "fast",
            (fleet_runner.table_fingerprint or "")[:12]))
    if validation is not None:
        text += ("\ncross-validation: {} vs kernel on {} device-days "
                 "(see report execution block)".format(
                     "PASS" if validation["pass"] else "FAIL",
                     validation["device_days_compared"]))
    if degraded:
        # Every pending shard was quarantined by the supervisor: finish
        # with partial results instead of failing the run. The report
        # JSON carries an explicit degraded block (complete runs never
        # have one, so their bytes are unchanged) and the exit code
        # says "incomplete but accounted for".
        report["degraded"] = {
            "missing_shards": list(fleet_runner.missing_shards),
            "failure_manifest": manifest_path or "",
        }
        args.exit_code = EXIT_DEGRADED
        text += ("\n\nDEGRADED: {} of {} shard(s) quarantined and "
                 "missing from the merge (devices {}).\nRe-run the "
                 "same command to retry only the quarantined shards."
                 .format(len(fleet_runner.missing_shards),
                         population.shard_count,
                         ", ".join(str(population.shard_range(s))
                                   for s in fleet_runner.missing_shards)))
        if manifest_path:
            text += "\nfailure manifest: {}".format(manifest_path)
    path = write_report(report, path=args.report_json)
    print("[fleet report JSON: {}]".format(path), file=sys.stderr)
    if fleet_runner.telemetry is not None:
        # Terminal record: the canonical report's sha256 is the
        # contract `repro watch --check-report` (and the telemetry-
        # smoke CI job) verifies the aggregated stream against.
        import hashlib

        from repro.fleet.report import report_json

        fleet_runner.telemetry.run_finished(
            summary, population.devices, execution,
            hashlib.sha256(
                report_json(report).encode("utf-8")).hexdigest(),
            degraded=report.get("degraded"))
        fleet_runner.telemetry.close()
    return "fleet.txt", text + "\n\n" + summary_line


def _cmd_scenarios(args):
    import hashlib

    from repro.scenarios.catalog import ScenarioCatalog, default_catalog
    from repro.scenarios.evaluate import (
        evaluate_catalog,
        render_report,
        report_json,
    )

    if args.catalog:
        catalog = ScenarioCatalog.from_file(args.catalog)
    else:
        catalog = default_catalog(seed=args.seed)
    mitigations = tuple(
        name.strip() for name in args.mitigations.split(",") if name.strip())
    report = evaluate_catalog(catalog, mitigations=mitigations,
                              minutes=args.minutes, seed=args.day_seed,
                              runner=_grid_runner(args))
    text = render_report(report)
    payload = report_json(report)
    path = args.report_json
    if path is None:
        os.makedirs("results", exist_ok=True)
        path = os.path.join("results", "scenarios_{}.json".format(
            catalog.fingerprint()[:12]))
    with open(path, "w") as handle:
        handle.write(payload + "\n")
    print("[scenario report JSON: {} (sha256 {})]".format(
        path, hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]),
        file=sys.stderr)
    return "scenarios.txt", text


def _cmd_service(args):
    from repro.service import (
        JournalRecoveryError,
        JournalStorage,
        LeaseService,
        ServiceError,
    )
    from repro.service.scripted import run_scripted_day
    from repro.service.storage import JOURNAL_NAME

    journal = args.journal
    if journal is None:
        if args.action != "run":
            args.exit_code = 2
            return "service.txt", ("service {}: --journal DIR is "
                                   "required".format(args.action))
        journal = os.path.join("results", ".service",
                               "scripted-s{}".format(args.seed))
    if args.action == "run":
        # Occupied means *any* recoverable state, not just journal
        # records: after `service compact` the journal is empty but a
        # snapshot holds the whole state, and a fresh seq-0 run on top
        # of it would be silently shadowed by that snapshot on the
        # next recovery.
        journal_file = os.path.join(journal, JOURNAL_NAME)
        has_journal = os.path.exists(journal_file) \
            and os.path.getsize(journal_file) > 0
        has_snapshot = os.path.isdir(journal) and any(
            name.startswith("snapshot-") and name.endswith(".json")
            for name in os.listdir(journal))
        if (has_journal or has_snapshot) and not args.resume:
            args.exit_code = 2
            return "service.txt", (
                "service run: {} already holds {}; pass "
                "--resume to recover and continue it, or point "
                "--journal at a fresh directory".format(
                    journal, "a journal" if has_journal
                    else "a compacted snapshot"))
        storage = JournalStorage(journal)
        try:
            service = LeaseService.recover(storage, seed=args.seed) \
                if args.resume else LeaseService(storage, seed=args.seed)
        except (ServiceError, JournalRecoveryError) as exc:
            args.exit_code = 1
            return "service.txt", "service run: {}".format(exc)
        summary = run_scripted_day(service, seed=args.seed,
                                   apps=args.apps, ops=args.ops)
        service.close()
        lines = ["service run: scripted day (seed {}, {} apps, {} ops) "
                 "-> {}".format(args.seed, summary["apps"],
                                summary["ops"], journal),
                 "steps run this invocation: {}".format(
                     summary["steps_run"]),
                 "ops applied: {} ({} leases active, {} swept)".format(
                     summary["op_seq"], summary["active"],
                     summary["swept"]),
                 "state fingerprint: {}".format(summary["fingerprint"])]
        if service.recovery is not None:
            lines.insert(1, _service_recovery_line(service.recovery))
            if service.recovery.degraded:
                args.exit_code = EXIT_DEGRADED
        return "service.txt", "\n".join(lines)

    # inspect / verify / compact all begin with a recovery. Only
    # `verify` treats an invariant violation as fatal up front;
    # `inspect` reports what it can see.
    if not os.path.isdir(journal):
        args.exit_code = 1
        return "service.txt", ("service {}: no journal directory at "
                               "{}".format(args.action, journal))
    try:
        service = LeaseService.recover(JournalStorage(journal),
                                       seed=args.seed,
                                       strict=args.action != "inspect")
    except JournalRecoveryError as exc:
        args.exit_code = 1
        return "service.txt", "service {}: {}".format(args.action, exc)
    except ServiceError as exc:
        args.exit_code = 1
        return "service.txt", ("service {}: FAILED: {}".format(
            args.action, exc))
    info = service.recovery
    state = service.state
    lines = ["service {}: {}".format(args.action, journal),
             _service_recovery_line(info),
             "state fingerprint: {}".format(service.fingerprint()),
             "consumers: {}; leases: {} total, {} active; "
             "sweeps: {} scheduled, {} leases swept".format(
                 len(state.consumers), len(state.leases),
                 len(state.active_leases()), state.sweep_index,
                 state.swept_total)]
    for violation in service.violations:
        lines.append("INVARIANT VIOLATION [{}]: {}".format(
            violation.invariant, violation.detail))
    if service.violations:
        args.exit_code = 1
    elif info.degraded:
        # Degraded-but-consistent: same convention as a degraded fleet
        # run -- partial results, exit 75, operator decides.
        args.exit_code = EXIT_DEGRADED
    if args.action == "compact" and not service.violations:
        snapshot_path = service.compact()
        lines.append("compacted: snapshot {} written, journal "
                     "truncated to {} record(s)".format(
                         os.path.basename(snapshot_path),
                         getattr(service.storage, "compact_kept", 0)))
    if args.action == "verify" and not service.violations:
        lines.append("verify: recovery invariants hold{}".format(
            " (DEGRADED: {})".format(info.reason)
            if info.degraded else ""))
    service.close()
    return "service.txt", "\n".join(lines)


def _service_recovery_line(info):
    line = ("recovery: snapshot seq {}, {} record(s) replayed, {} "
            "dropped".format(info.snapshot_seq, info.records_replayed,
                             info.records_dropped))
    if info.degraded:
        line += " -- DEGRADED ({})".format(info.reason or "unknown")
    return line


def _cmd_watch(args):
    from repro.telemetry import (
        check_report,
        follow,
        load_view,
        render_snapshot,
        resolve_run,
    )

    try:
        directory = resolve_run(args.run, root=args.telemetry_root)
    except (FileNotFoundError, ValueError) as exc:
        args.exit_code = 1
        return "watch.txt", "watch: {}".format(exc)
    if args.follow:
        # Intermediate renders go to stderr; the final snapshot is the
        # returned artifact (main prints it to stdout once).
        view = follow(directory, interval=args.interval,
                      timeout=args.timeout,
                      render=lambda text: print(
                          text + "\n", file=sys.stderr))
        problems = []
    else:
        view, problems = load_view(directory)
    for problem in problems:
        print("watch: {}".format(problem), file=sys.stderr)
    if problems:
        args.exit_code = 1
    text = render_snapshot(view, directory)
    if args.check_report:
        problem = check_report(view, args.check_report)
        if problem is None:
            text += ("\ncheck-report: telemetry aggregate agrees with "
                     "{} to the byte".format(args.check_report))
        else:
            text += "\ncheck-report FAILED: {}".format(problem)
            args.exit_code = 1
    return "watch.txt", text


COMMANDS = {
    "table5": (_cmd_table5, "Table 5: 20 buggy apps x 4 regimes"),
    "fig9": (_cmd_fig9, "Fig. 9: lease term validation"),
    "fig11": (_cmd_fig11, "Fig. 11: lease activity under normal use"),
    "fig12": (_cmd_fig12, "Fig. 12: reduction ratio vs lambda"),
    "fig13": (_cmd_fig13, "Fig. 13: LeaseOS power overhead"),
    "fig14": (_cmd_fig14, "Fig. 14: interaction latency"),
    "table4": (_cmd_table4, "Table 4: lease op latency"),
    "usability": (_cmd_usability, "7.4: usability of normal heavy apps"),
    "battery": (_cmd_battery, "7.6: end-to-end battery life"),
    "study": (_cmd_study, "Tables 1-2: misbehaviour study"),
    "characterization": (_cmd_characterization,
                         "Figs. 1-4: buggy app characterization"),
    "ablations": (_cmd_ablations, "design-choice ablations"),
    "extensions": (_cmd_extensions,
                   "the 8 future-work extensions (DVFS, dynamic policy, "
                   "EUB advisor)"),
    "robustness": (_cmd_robustness, "seed and hardware robustness sweep"),
    "verdict": (_cmd_verdict,
                "the reproduction scorecard: every paper claim, graded"),
    "fix": (_cmd_fix, "developer fix vs OS mechanism (K-9 2x2)"),
    "containment": (_cmd_containment,
                    "containment latency vs healthy-work preservation"),
    "zoo": (_cmd_zoo, "every mitigation's blind spot, one table"),
    "deployment": (_cmd_deployment,
                   "population-level savings estimate (derived)"),
    "misleading": (_cmd_misleading,
                   "2.3: holding time vs utility as a classifier"),
    "chaos": (_cmd_chaos,
              "fault-injection sweep: Table-5 subset under sampled fault "
              "plans with the invariant suite armed"),
    "fleet": (_cmd_fleet,
              "sharded population simulation: thousands of sampled "
              "device-days per mitigation, with checkpoint/resume"),
    "scenarios": (_cmd_scenarios,
                  "DroidLeaks-grounded scenario catalog: generated "
                  "family x resource compositions scored for "
                  "containment and classifier quality"),
    "watch": (_cmd_watch,
              "aggregate a fleet telemetry stream into a live (or "
              "final) fleet-level snapshot"),
    "service": (_cmd_service,
                "the crash-safe lease authority: run a scripted "
                "journaled day, or inspect/verify/compact an existing "
                "journal (exit 75 on degraded recovery)"),
}

#: Commands skipped by ``repro all``: chaos has its own seed/exit-code
#: plumbing and is run by the dedicated CI job instead; fleet is a
#: population-scale run with its own checkpoint/JSON artifacts; watch
#: only observes a stream another run emitted; scenarios is a
#: catalog-scale sweep with its own JSON artifact and CI job; service
#: operates on a persistent journal directory with its own smoke job.
EXCLUDE_FROM_ALL = ("chaos", "fleet", "watch", "scenarios", "service")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LeaseOS reproduction: regenerate the paper's "
                    "tables and figures.",
    )
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="also write the artifact text into DIR")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_grid_args(sub):
        sub.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="parallel simulation workers (default: "
                              "serial; env REPRO_JOBS)")
        sub.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk result cache")
        sub.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="result cache directory (default: "
                              "results/.cache; env REPRO_CACHE_DIR)")

    def add_supervision_args(sub):
        # Declaring these flags is what opts the subcommand into the
        # supervised dispatch path (see supervisor_from_args).
        sub.set_defaults(supervised=True)
        sub.add_argument("--job-timeout", type=float, default=None,
                         metavar="S",
                         help="wall-clock deadline per job attempt; a "
                              "hung worker is killed and the job "
                              "retried (default: none)")
        sub.add_argument("--max-retries", type=int, default=2,
                         metavar="N",
                         help="retries after the first attempt before "
                              "a job is quarantined (default: 2)")
        sub.add_argument("--max-events", type=int, default=None,
                         metavar="N",
                         help="in-sim runaway budget: abort any single "
                              "simulation after N dispatched events")
        mode = sub.add_mutually_exclusive_group()
        mode.add_argument("--fail-fast", action="store_true",
                          help="abort the whole run on the first "
                               "quarantined job")
        mode.add_argument("--degrade", dest="fail_fast",
                          action="store_false",
                          help="complete with partial results plus a "
                               "failure manifest (default)")
        sub.set_defaults(fail_fast=False)
        sub.add_argument("--harness-faults", metavar="JSON", default=None,
                         help="deterministic fault injection for "
                              "supervisor testing, e.g. "
                              "'{\"crash\": {\"shard:000001\": [1]}, "
                              "\"hang\": {\"shard:000002\": []}}' "
                              "(env REPRO_HARNESS_FAULTS)")
        sub.add_argument("--supervise-verbose", action="store_true",
                         help="log every retry/timeout/crash decision "
                              "to stderr")

    for name, (__, help_text) in COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        minutes_default = {"chaos": 10.0, "fleet": 15.0,
                           "scenarios": 15.0}.get(name, 30.0)
        sub.add_argument("--minutes", type=float, default=minutes_default,
                         help="simulated minutes per run where applicable")
        # SUPPRESS keeps a top-level "--out DIR" (before the subcommand)
        # working: the subparser only overrides when given explicitly.
        sub.add_argument("--out", metavar="DIR", default=argparse.SUPPRESS,
                         help="also write the artifact text into DIR")
        add_grid_args(sub)
        if name in ("chaos", "fleet"):
            add_supervision_args(sub)
        if name == "chaos":
            sub.add_argument("--seeds", type=int, default=3, metavar="N",
                             help="number of sampled fault plans")
            sub.add_argument("--base-seed", type=int, default=1,
                             metavar="S",
                             help="first fault-plan seed (CI rotates this "
                                  "with the run number)")
            sub.add_argument("--bundle-dir", metavar="DIR",
                             default="results/chaos_bundles",
                             help="where invariant-violation repro "
                                  "bundles are written")
            sub.add_argument("--replay", metavar="BUNDLE", default=None,
                             help="replay a repro bundle instead of "
                                  "running the sweep")
        if name == "fleet":
            sub.add_argument("--devices", type=int, default=200,
                             metavar="N",
                             help="population size (sampled device-days)")
            sub.add_argument("--shard-size", type=int, default=50,
                             metavar="N",
                             help="devices per shard (the checkpoint and "
                                  "dispatch unit)")
            sub.add_argument("--seed", type=int, default=2019, metavar="S",
                             help="population seed; fully determines the "
                                  "fleet")
            sub.add_argument("--mitigations", default="vanilla,leaseos",
                             metavar="A,B,...",
                             help="comma-separated mitigations compared "
                                  "(vanilla is always included)")
            sub.add_argument("--prevalence", type=float, default=0.25,
                             metavar="P",
                             help="probability an app slot hosts a buggy "
                                  "Table-5 app")
            sub.add_argument("--chaos-rate", type=float, default=0.0,
                             metavar="P",
                             help="fraction of devices that get a sampled "
                                  "fault plan armed")
            sub.add_argument("--checkpoint-dir", metavar="DIR",
                             default=None,
                             help="shard checkpoint directory (default: "
                                  "results/.fleet/<fingerprint>)")
            sub.add_argument("--max-shards", type=int, default=None,
                             metavar="N",
                             help="stop after N shards this invocation; "
                                  "re-running resumes from checkpoints")
            sub.add_argument("--report-json", metavar="PATH", default=None,
                             help="where to write the machine-readable "
                                  "report (default: "
                                  "results/fleet_s<seed>_d<devices>.json)")
            sub.add_argument("--mode",
                             choices=("kernel", "fast", "vector", "auto"),
                             default="kernel",
                             help="device-day executor: the full event "
                                  "kernel, the kernel-validated "
                                  "transition-table fast path, the "
                                  "columnar vectorized engine, or auto "
                                  "(vector/fast for large fleets)")
            sub.add_argument("--fast-path", action="store_const",
                             dest="mode", const="fast",
                             help="shorthand for --mode fast")
            sub.add_argument("--cross-validate", type=int, default=0,
                             metavar="N",
                             help="run N seeded random device-days "
                                  "through both executors and embed the "
                                  "per-metric accuracy comparison in "
                                  "the report (non-zero exit on "
                                  "violation)")
            sub.add_argument("--telemetry", action="store_true",
                             help="emit a versioned JSONL telemetry "
                                  "stream under results/.telemetry/"
                                  "<fingerprint>/ (watch it live with "
                                  "`repro watch`)")
            sub.add_argument("--telemetry-dir", metavar="DIR",
                             default=None,
                             help="telemetry stream directory (implies "
                                  "--telemetry)")
            sub.add_argument("--catalog", metavar="PATH", default=None,
                             help="scenario catalog JSON whose generated "
                                  "apps join the sampling pool (see "
                                  "`repro scenarios`)")
            sub.add_argument("--scenario-prevalence", type=float,
                             default=0.0, metavar="P",
                             help="probability an app slot hosts a "
                                  "generated scenario app (requires "
                                  "--catalog)")
            sub.add_argument("--service-journal", metavar="DIR",
                             nargs="?", const="auto", default=None,
                             help="journal every shard's lease "
                                  "lifecycle into the crash-safe lease "
                                  "authority under DIR (bare flag: "
                                  "results/.service/<fingerprint>); "
                                  "off by default, plumbed by env so "
                                  "cache keys are unchanged")
        if name == "scenarios":
            sub.add_argument("--catalog", metavar="PATH", default=None,
                             help="catalog JSON to evaluate (default: "
                                  "the built-in droidleaks-default "
                                  "catalog)")
            sub.add_argument("--seed", type=int, default=2019,
                             metavar="S",
                             help="built-in catalog seed (ignored with "
                                  "--catalog)")
            sub.add_argument("--day-seed", type=int, default=7,
                             metavar="S",
                             help="per-day simulation seed")
            sub.add_argument("--mitigations",
                             default="leaseos,doze,defdroid",
                             metavar="A,B,...",
                             help="comma-separated mitigations compared "
                                  "(vanilla is always the baseline)")
            sub.add_argument("--report-json", metavar="PATH",
                             default=None,
                             help="where to write the canonical report "
                                  "JSON (default: results/"
                                  "scenarios_<fingerprint>.json)")
        if name == "service":
            sub.add_argument("action", nargs="?", default="run",
                             choices=("run", "inspect", "verify",
                                      "compact"),
                             help="run a seeded scripted journaled "
                                  "day (the default), or inspect/"
                                  "verify/compact an existing journal "
                                  "directory")
            sub.add_argument("--journal", metavar="DIR", default=None,
                             help="journal directory (default for "
                                  "`run`: results/.service/"
                                  "scripted-s<seed>; required "
                                  "otherwise)")
            sub.add_argument("--seed", type=int, default=7, metavar="S",
                             help="scripted-day / sweep-cadence seed "
                                  "(default: 7)")
            sub.add_argument("--apps", type=int, default=3, metavar="N",
                             help="scripted consumers (default: 3)")
            sub.add_argument("--ops", type=int, default=120,
                             metavar="N",
                             help="scripted steps in the day "
                                  "(default: 120)")
            sub.add_argument("--resume", action="store_true",
                             help="recover the journal first, then "
                                  "finish the remainder of the "
                                  "scripted day")
        if name == "watch":
            sub.add_argument("run", nargs="?", default=None,
                             help="stream directory or run-fingerprint "
                                  "prefix (default: the most recent run "
                                  "under the telemetry root)")
            sub.add_argument("--snapshot", action="store_true",
                             help="render one aggregate snapshot and "
                                  "exit (the default)")
            sub.add_argument("--follow", action="store_true",
                             help="re-render until the run finishes")
            sub.add_argument("--interval", type=float, default=2.0,
                             metavar="S",
                             help="--follow refresh interval (default: "
                                  "2s)")
            sub.add_argument("--timeout", type=float, default=None,
                             metavar="S",
                             help="give up following after S seconds")
            sub.add_argument("--check-report", metavar="PATH",
                             default=None,
                             help="verify the stream's aggregate equals "
                                  "this canonical fleet report "
                                  "byte-for-byte (non-zero exit on "
                                  "disagreement)")
            sub.add_argument("--telemetry-root", metavar="DIR",
                             default=os.path.join("results",
                                                  ".telemetry"),
                             help="where per-run stream directories "
                                  "live (default: results/.telemetry)")
    all_parser = subparsers.add_parser(
        "all", help="run every experiment in sequence")
    all_parser.add_argument("--minutes", type=float, default=30.0)
    all_parser.add_argument("--out", metavar="DIR",
                            default=argparse.SUPPRESS)
    add_grid_args(all_parser)
    return parser


def main(argv=None):
    from repro.resilience.errors import RunInterrupted

    parser = build_parser()
    args = parser.parse_args(argv)
    args.grid_runner = None  # built lazily by grid-aware subcommands
    args.exit_code = 0  # raised by chaos on invariant violations
    if args.command == "all":
        names = [n for n in COMMANDS if n not in EXCLUDE_FROM_ALL]
    else:
        names = [args.command]
    try:
        for name in names:
            handler, __ = COMMANDS[name]
            filename, text = handler(args)
            print(text)
            print()
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(args.out, filename)
                with open(path, "w") as handle:
                    handle.write(text + "\n")
                print("[written to {}]".format(path), file=sys.stderr)
    except (KeyboardInterrupt, RunInterrupted) as exc:
        # Ctrl-C / SIGTERM: completed work is already durable (the
        # result cache and fleet checkpoints are written the moment
        # each job finishes), so flush the failure manifest, say how
        # to resume, and exit 130 like a shell would.
        _write_failure_manifest(args)
        detail = ""
        if isinstance(exc, RunInterrupted):
            detail = " ({} job(s) completed, {} outstanding)".format(
                exc.completed, exc.outstanding)
        print("\ninterrupted{}: completed work is checkpointed; re-run "
              "the same command to resume.".format(detail),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    if args.grid_runner is not None and args.grid_runner.stats.submitted:
        stats = args.grid_runner.stats
        print("[grid: {} jobs, {} executed, {} cache hits, jobs={}]"
              .format(stats.submitted, stats.executed, stats.cache_hits,
                      args.grid_runner.jobs), file=sys.stderr)
    return args.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
