"""Composite environment bundling network, GPS and server state."""

from repro.env.gps import GpsEnvironment
from repro.env.network import NetworkEnvironment


class Environment:
    """Everything outside the phone that scenarios manipulate.

    Construct with keyword overrides, e.g.::

        env = Environment(sim, connected=False, gps_quality=0.1)
    """

    def __init__(self, sim, connected=True, network_kind="wifi",
                 gps_quality=0.9, movement_mps=0.0):
        self.sim = sim
        self.network = NetworkEnvironment(sim, connected=connected,
                                          kind=network_kind)
        self.gps = GpsEnvironment(sim, quality=gps_quality,
                                  speed_mps=movement_mps)

    def schedule_network_change(self, delay, connected, kind="wifi"):
        """At ``sim.now + delay``, flip connectivity."""
        return self.sim.schedule(
            delay, lambda: self.network.set_connected(connected, kind)
        )

    def schedule_gps_quality(self, delay, quality):
        """At ``sim.now + delay``, change GPS signal quality."""
        return self.sim.schedule(delay, lambda: self.gps.set_quality(quality))
