"""Network connectivity and server-health environment."""

import enum


class ServerMode(enum.Enum):
    """Health of a remote endpoint an app talks to."""

    OK = "ok"  # responds normally
    ERROR = "error"  # reachable but answers with errors (bad mail server)
    DOWN = "down"  # connection attempts time out


class RequestOutcome:
    """Result of one simulated network request."""

    __slots__ = ("status", "duration")

    def __init__(self, status, duration):
        self.status = status  # "ok" | "error" | "timeout" | "no_network"
        self.duration = duration  # seconds the attempt occupied the radio

    @property
    def ok(self):
        return self.status == "ok"

    def __repr__(self):
        return "RequestOutcome({}, {:.3f}s)".format(self.status, self.duration)


class NetworkEnvironment:
    """Connectivity state plus the health of named servers.

    Scenario code mutates this (``set_connected``, ``set_server``) and may
    schedule mutations on the simulator to build traces (e.g. "network
    drops out at minute 10, returns at minute 20").
    """

    #: Default latency parameters, in seconds.
    BASE_LATENCY = 0.08
    ERROR_LATENCY = 0.35  # server answers, but with an error, a bit slower
    TIMEOUT = 15.0  # socket timeout for unreachable endpoints

    def __init__(self, sim, connected=True, kind="wifi"):
        self.sim = sim
        self._connected = connected
        self._kind = kind if connected else None
        self._servers = {}
        self._listeners = []

    # -- connectivity ------------------------------------------------------

    @property
    def connected(self):
        return self._connected

    @property
    def kind(self):
        """"wifi", "cellular", or None when disconnected."""
        return self._kind

    def set_connected(self, connected, kind="wifi"):
        changed = connected != self._connected or (
            connected and kind != self._kind
        )
        self._connected = connected
        self._kind = kind if connected else None
        if changed:
            for listener in list(self._listeners):
                listener(self._connected, self._kind)

    def on_change(self, listener):
        """Register ``listener(connected, kind)`` for connectivity changes."""
        self._listeners.append(listener)

    # -- servers -----------------------------------------------------------

    def set_server(self, name, mode):
        if not isinstance(mode, ServerMode):
            raise TypeError("mode must be a ServerMode, got {!r}".format(mode))
        self._servers[name] = mode

    def server_mode(self, name):
        return self._servers.get(name, ServerMode.OK)

    def known_servers(self):
        """Names of every server a mode has been declared for, in
        declaration order (scenario servers first, then any set later)."""
        return tuple(self._servers)

    def request_outcome(self, server, rng, payload_s=0.0):
        """Compute what one request to ``server`` does, without side effects.

        ``payload_s`` is extra transfer time for a successful response.
        Returns a :class:`RequestOutcome`; the caller is responsible for
        advancing simulated time by ``outcome.duration`` and accounting
        radio power.
        """
        if not self._connected:
            # Fails fast: no route to host.
            return RequestOutcome("no_network", 0.05)
        mode = self.server_mode(server)
        jitter = 0.5 + rng.random()  # x0.5 .. x1.5
        if mode is ServerMode.OK:
            return RequestOutcome("ok", self.BASE_LATENCY * jitter + payload_s)
        if mode is ServerMode.ERROR:
            return RequestOutcome("error", self.ERROR_LATENCY * jitter)
        return RequestOutcome("timeout", self.TIMEOUT)
