"""GPS signal environment and device movement.

Signal quality drives whether and how fast a GPS fix is obtained (weak
indoor signal -> never locks, the BetterWeather trigger), and movement
speed drives the *distance moved* generic utility metric for GPS leases.
"""


class GpsEnvironment:
    """GPS signal quality in [0, 1] plus a simple movement model."""

    #: Minimum quality at which a lock is achievable at all.
    LOCK_THRESHOLD = 0.3
    #: Time to first fix at perfect signal, in seconds.
    BASE_TTFF = 4.0

    def __init__(self, sim, quality=0.9, speed_mps=0.0):
        self.sim = sim
        self._quality = quality
        self.speed_mps = speed_mps  # user movement speed, metres/second

    @property
    def quality(self):
        return self._quality

    def set_quality(self, quality):
        if not 0.0 <= quality <= 1.0:
            raise ValueError("signal quality must be in [0, 1]")
        self._quality = quality

    @property
    def lock_possible(self):
        return self._quality >= self.LOCK_THRESHOLD

    def time_to_fix(self, rng):
        """Seconds until a fix, or ``None`` if the signal precludes a lock."""
        if not self.lock_possible:
            return None
        jitter = 0.75 + 0.5 * rng.random()
        return self.BASE_TTFF / self._quality * jitter

    def distance_moved(self, duration_s):
        """Metres the device moved in ``duration_s`` at the current speed."""
        return max(0.0, self.speed_mps) * duration_s
