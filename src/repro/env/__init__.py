"""Environment models: the world outside the phone.

Energy bugs in the paper are almost always *triggered by environment
conditions* -- a failing mail server (K-9), a network disconnection (K-9,
ServalMesh), weak GPS signal inside a building (BetterWeather). These
modules model exactly those conditions:

- :class:`~repro.env.network.NetworkEnvironment` -- connectivity state and
  per-server health (ok / erroring / unreachable);
- :class:`~repro.env.gps.GpsEnvironment` -- signal quality, time-to-fix,
  and device movement (feeding the GPS distance-moved utility metric);
- :class:`~repro.env.user.UserModel` -- a seeded stochastic user producing
  screen sessions, app switches and touches.
"""

from repro.env.environment import Environment
from repro.env.gps import GpsEnvironment
from repro.env.network import NetworkEnvironment, ServerMode
from repro.env.user import UserModel

__all__ = [
    "Environment",
    "GpsEnvironment",
    "NetworkEnvironment",
    "ServerMode",
    "UserModel",
]
