"""A seeded stochastic user.

The user turns the screen on and off, switches between installed apps and
touches the foreground app. Experiments that need "30 minutes of active
use of popular apps, then 30 minutes untouched" (Fig. 11) or "use 10/30
apps in turn" (Fig. 13) drive their phone through this model so runs are
reproducible under a fixed seed.

The model talks to the phone through duck typing; anything exposing
``screen_on() / screen_off() / set_foreground(uid) / touch(uid)`` works.
"""

from repro.sim.events import Timeout


class UserModel:
    """Generates user behaviour as simulator processes."""

    def __init__(self, sim, phone, rng):
        self.sim = sim
        self.phone = phone
        self.rng = rng

    def active_session(self, uids, duration_s, touch_interval=4.0,
                       switch_interval=45.0):
        """Generator: actively use ``uids`` in rotation for ``duration_s``.

        The screen is on throughout; the user touches the foreground app
        every ~``touch_interval`` seconds and switches apps every
        ~``switch_interval`` seconds.
        """
        if not uids:
            raise ValueError("active_session needs at least one app uid")
        self.phone.screen_on()
        end = self.sim.now + duration_s
        index = 0
        self.phone.set_foreground(uids[index])
        next_switch = self.sim.now + self._jitter(switch_interval)
        try:
            while self.sim.now < end:
                yield Timeout(min(self._jitter(touch_interval),
                                  max(0.001, end - self.sim.now)))
                if self.sim.now >= end:
                    break
                self.phone.touch(uids[index])
                if self.sim.now >= next_switch and len(uids) > 1:
                    index = (index + 1) % len(uids)
                    self.phone.set_foreground(uids[index])
                    next_switch = self.sim.now + self._jitter(switch_interval)
        finally:
            self.phone.set_foreground(None)
            self.phone.screen_off()

    def idle_session(self, duration_s):
        """Generator: leave the phone untouched, screen off."""
        self.phone.screen_off()
        yield Timeout(duration_s)

    def _jitter(self, base):
        """Uniform jitter in [0.5x, 1.5x] around ``base``."""
        return base * (0.5 + self.rng.random())
