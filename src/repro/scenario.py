"""Declarative scenario builder.

Experiments and downstream users keep writing the same choreography:
build a phone, install apps, flip the environment at minute X, run a
user session, measure a window. ``Scenario`` captures that timeline
declaratively and plays it on a fresh phone::

    from repro.scenario import Scenario
    from repro.mitigation import LeaseOS

    scenario = (
        Scenario(seed=7, gps_quality=0.95)
        .install("k9", K9Mail, scenario="bad_server")
        .at(minutes=5).network(False)
        .at(minutes=15).network(True)
        .measure("steady", start_min=5, end_min=25)
    )
    result = scenario.run(minutes=30, mitigation=LeaseOS())
    print(result.power("steady", "k9"), "mW")

The same timeline replays identically under any mitigation, which is
exactly what comparative experiments need.
"""

from repro.droid.phone import Phone


class _Step:
    __slots__ = ("time_s", "action")

    def __init__(self, time_s, action):
        self.time_s = time_s
        self.action = action  # callable (phone, apps) -> None


class ScenarioResult:
    """Phone + installed apps + measured windows after a run."""

    def __init__(self, phone, apps, windows, energy_at):
        self.phone = phone
        self.apps = apps  # name -> App
        self._windows = windows  # name -> (start_s, end_s)
        self._energy_at = energy_at  # (window, edge, uid|None) -> mJ

    def app(self, name):
        return self.apps[name]

    def power(self, window, app_name=None):
        """Average mW over a named window (per-app or whole system)."""
        start_s, end_s = self._windows[window]
        uid = self.apps[app_name].uid if app_name else None
        try:
            start_energy = self._energy_at[(window, "start", uid)]
            end_energy = self._energy_at[(window, "end", uid)]
        except KeyError:
            raise KeyError(
                "window {!r} has no snapshots (did the run end before "
                "it closed?)".format(window)
            )
        duration = end_s - start_s
        if duration <= 0:
            return 0.0
        return (end_energy - start_energy) / duration


class Scenario:
    """A replayable timeline of installs, environment flips and sessions."""

    def __init__(self, seed=1, **phone_kwargs):
        self.seed = seed
        self.phone_kwargs = dict(phone_kwargs)
        self.phone_kwargs.setdefault("ambient", False)
        self._installs = []  # (name, factory, kwargs)
        self._steps = []
        self._measures = []  # (name, start_s, end_s|None)
        self._cursor_s = 0.0

    # -- timeline building --------------------------------------------------

    def install(self, name, factory, **kwargs):
        """Install ``factory(**kwargs)`` under ``name`` at boot."""
        if name in {n for n, __, __ in self._installs}:
            raise ValueError("duplicate app name {!r}".format(name))
        self._installs.append((name, factory, kwargs))
        return self

    def install_at(self, name, factory, **kwargs):
        """Install an app at the current timeline cursor (mid-run)."""
        if name in {n for n, __, __ in self._installs}:
            raise ValueError("duplicate app name {!r}".format(name))

        def do_install(phone, apps):
            apps[name] = phone.install(factory(**kwargs))

        return self._step(do_install)

    def at(self, seconds=None, minutes=None):
        """Move the timeline cursor; following actions happen here."""
        self._cursor_s = (seconds or 0.0) + 60.0 * (minutes or 0.0)
        return self

    def _step(self, action):
        self._steps.append(_Step(self._cursor_s, action))
        return self

    def network(self, connected, kind="wifi"):
        return self._step(
            lambda phone, apps: phone.env.network.set_connected(
                connected, kind)
        )

    def gps_quality(self, quality):
        return self._step(
            lambda phone, apps: phone.env.gps.set_quality(quality)
        )

    def movement(self, speed_mps):
        def apply(phone, apps):
            phone.env.gps.speed_mps = speed_mps

        return self._step(apply)

    def server(self, name, mode):
        from repro.env.network import ServerMode

        if not isinstance(mode, ServerMode):
            mode = ServerMode(mode)
        return self._step(
            lambda phone, apps: phone.env.network.set_server(name, mode)
        )

    def touch(self, app_name):
        return self._step(
            lambda phone, apps: phone.touch(apps[app_name].uid)
        )

    def user_session(self, app_names, minutes=5.0, touch_interval=8.0):
        """Start an active user session over the named apps."""
        duration_s = minutes * 60.0

        def start(phone, apps):
            uids = [apps[name].uid for name in app_names]
            phone.sim.spawn(
                phone.user.active_session(uids, duration_s,
                                          touch_interval=touch_interval),
                name="scenario.user",
            )

        return self._step(start)

    def kill(self, app_name):
        return self._step(
            lambda phone, apps: phone.kill_app(apps[app_name].uid)
        )

    def measure(self, name, start_min=0.0, end_min=None):
        """Declare a measurement window in minutes (end defaults to the
        run's end)."""
        if name in {n for n, __, __ in self._measures}:
            raise ValueError("duplicate window {!r}".format(name))
        self._measures.append((
            name, start_min * 60.0,
            None if end_min is None else end_min * 60.0,
        ))
        return self

    # -- execution -------------------------------------------------------------

    def run(self, minutes, mitigation=None):
        """Play the timeline for ``minutes``; returns a ScenarioResult."""
        total_s = minutes * 60.0
        phone = Phone(seed=self.seed, mitigation=mitigation,
                      **self.phone_kwargs)
        apps = {}
        for name, factory, kwargs in self._installs:
            apps[name] = phone.install(factory(**kwargs))

        energy_at = {}

        def take_snapshots(window, edge):
            phone.monitor.settle()
            ledger = phone.monitor.ledger
            energy_at[(window, edge, None)] = ledger.total_mj()
            for app in apps.values():
                energy_at[(window, edge, app.uid)] = \
                    ledger.app_total_mj(app.uid)

        windows = {}
        for name, start_s, end_s in self._measures:
            closed_end = total_s if end_s is None else end_s
            windows[name] = (start_s, closed_end)
            phone.sim.at(start_s,
                         lambda n=name: take_snapshots(n, "start"))
            phone.sim.at(closed_end,
                         lambda n=name: take_snapshots(n, "end"))

        for step in sorted(self._steps, key=lambda s: s.time_s):
            phone.sim.at(step.time_s,
                         lambda a=step.action: a(phone, apps))

        phone.run_for(seconds=total_s)
        return ScenarioResult(phone, apps, windows, energy_at)
