"""Per-term lease stats (paper §3.3: "lease stat").

Each term produces one :class:`UtilityMetrics` -- the three broad utility
measures of §2.4 plus the raw ingredients -- and one :class:`TermRecord`
binding the metrics to the classified behaviour.
"""

from dataclasses import dataclass, field


@dataclass
class UtilityMetrics:
    """The §2.4 utility measures for one lease term.

    - ``success_ratio``: successful request time / total request time
      (identifies Frequent-Ask; only meaningful for GPS).
    - ``utilization``: resource usage time / holding time (identifies
      Long-Holding; resource-specific numerator, e.g. CPU seconds for a
      wakelock, consumer-Activity lifetime for GPS/sensor listeners).
    - ``utility_score``: 0-100 "usefulness" of the work done (identifies
      Low-Utility). Generic unless the app registered a custom counter.
    """

    held: bool = False  # resource still held at term end
    held_time: float = 0.0  # seconds held during the term
    active_time: float = 0.0  # seconds the OS honoured it
    ask_time: float = 0.0  # seconds spent asking (GPS search)
    ask_window_time: float = 0.0  # ask time incl. recent terms (FAB window)
    success_ratio: float = 1.0
    utilization: float = 1.0
    utility_score: float = 100.0
    generic_utility: float = 100.0
    custom_utility: float = None
    completed_terms: int = 0  # terms finished before this one (grace)
    # raw app-level signals within this term's window only
    ui_updates: int = 0
    interactions: int = 0
    exceptions: int = 0
    data_writes: int = 0
    extras: dict = field(default_factory=dict)


@dataclass
class TermRecord:
    """One completed lease term: window, metrics, judged behaviour."""

    term_index: int
    start: float
    end: float
    behavior: object  # BehaviorType; kept loose to avoid a cycle
    metrics: UtilityMetrics

    @property
    def duration(self):
        return self.end - self.start
