"""Lease proxies: light-weight delegates inside each OS subsystem (§4.4).

A proxy lives in the same address space as its host service, maintains
the kernel-object <-> lease mapping, interposes on acquires through the
service's gate hook, reports events to the lease manager, and executes
the manager's ``onExpire`` / ``onRenew`` callbacks by directly mutating
the kernel objects (revoke/restore) -- never the app-side descriptors.

The common logic lives in :class:`LeaseProxy`; enabling leases for a new
resource type is a small subclass (the paper reports ~200 lines per
service; here it is comparable in spirit).
"""

from repro.core.lease import LeaseState
from repro.droid.resources import ResourceType


class LeaseProxy:
    """Generic proxy: mapping, gating, snapshots, revoke/restore."""

    #: Seconds of interaction credit granted per user touch when
    #: computing screen utilization.
    INTERACTION_CREDIT_S = 30.0
    #: Seconds of credit per UI update while a screen lock is honoured:
    #: a display showing live content (navigation, a match score) is
    #: being *used* even if nobody touches it.
    UI_UPDATE_CREDIT_S = 5.0

    def __init__(self, manager, service):
        self.manager = manager
        self.service = service
        self._lease_by_record = {}
        service.listeners.append(self)
        service.gates.append(self.gate)
        manager.register_proxy(self)

    # -- mapping -------------------------------------------------------------

    def lease_for(self, record):
        return self._lease_by_record.get(record)

    def _ensure_lease(self, record):
        lease = self._lease_by_record.get(record)
        if lease is None:
            lease = self.manager.create(record.rtype, record.uid, record,
                                        self)
            self._lease_by_record[record] = lease
        return lease

    def _remove_lease(self, record):
        lease = self._lease_by_record.pop(record, None)
        if lease is not None:
            self.manager.remove(lease.descriptor)

    def forget(self, lease):
        """Drop the mapping only (manager-side GC removes the lease).

        If the kernel object is touched again a fresh lease is created
        through the gate path, so GC is invisible to apps.
        """
        self._lease_by_record.pop(lease.record, None)

    def _note(self, record, event):
        """Report a resource event to the manager (Table 3 noteEvent)."""
        lease = self.lease_for(record)
        if lease is not None and not lease.dead:
            self.manager.note_event(lease.descriptor, event)

    # -- gate: interpose on acquires -----------------------------------------

    def gate(self, record):
        """Return False to make the service pretend-succeed the acquire."""
        lease = self._lease_by_record.get(record)
        if lease is None:
            if not record.dead:
                # First touch, or the old lease was GC-swept: lease it.
                self._ensure_lease(record)
            return True
        if lease.dead:
            return True
        if lease.state is LeaseState.DEFERRED:
            # Within τ the OS pretends success (§4.6).
            self.manager.check(lease.descriptor)
            return False
        if lease.state is LeaseState.INACTIVE:
            # Use with an expired lease requires manager approval (§3.2).
            return self.manager.renew(lease.descriptor)
        return True

    # -- manager callbacks -----------------------------------------------------

    def is_held(self, lease):
        return lease.record.app_held and not lease.record.dead

    def on_expire(self, lease):
        """Term deferred: temporarily revoke the kernel resource."""
        self.service.revoke(lease.record)

    def on_renew(self, lease):
        """Deferral over: restore the kernel resource if still held."""
        self.service.restore(lease.record)

    # -- per-term stats ----------------------------------------------------------

    def refresh_snapshot(self, lease):
        lease._stat_snapshot = self._current_counters(lease)

    def term_stats(self, lease):
        """Delta stats since the last snapshot; advances the snapshot."""
        current = self._current_counters(lease)
        previous = lease._stat_snapshot or {}
        delta = {
            key: current[key] - previous.get(key, 0.0)
            for key in current
            if isinstance(current[key], (int, float))
        }
        lease._stat_snapshot = current
        return self._derive_metrics(lease, delta)

    def _current_counters(self, lease):
        return lease.record.counters()

    def _derive_metrics(self, lease, delta):
        """Subclass hook: turn counter deltas into metric ingredients."""
        raise NotImplementedError


class WakelockLeaseProxy(LeaseProxy):
    """Proxy inside the PowerManagerService (wakelocks + screen locks)."""

    def on_wakelock_created(self, record):
        self._ensure_lease(record)

    def on_wakelock_acquire(self, record, allowed):
        self._note(record, "acquire")

    def on_wakelock_release(self, record):
        self._note(record, "release")

    def on_wakelock_dead(self, record):
        self._remove_lease(record)

    def _current_counters(self, lease):
        phone = self.manager.phone
        counters = lease.record.counters()
        counters["cpu_time"] = phone.cpu.cpu_time(lease.uid)
        counters["cpu_energy_mj"] = phone.cpu.cpu_energy_mj(lease.uid)
        counters["interactions"] = lease.record.interactions
        app = phone.apps.get(lease.uid)
        counters["ui_updates_total"] = (
            len(app.ui_update_times) if app is not None else 0
        )
        return counters

    def _derive_metrics(self, lease, delta):
        active = delta.get("active_time", 0.0)
        if lease.rtype is ResourceType.SCREEN:
            credit = (
                delta.get("interactions", 0) * self.INTERACTION_CREDIT_S
                + delta.get("ui_updates_total", 0) * self.UI_UPDATE_CREDIT_S
            )
            utilization = min(1.0, credit / active) if active > 0 else 1.0
        else:
            policy = self.manager.policy
            if policy.dvfs_aware and self.manager.phone.cpu.dvfs is not None:
                # §8: energy-normalized CPU seconds (device state factor).
                reference_mw = self.manager.phone.profile.cpu_active_mw
                cpu = delta.get("cpu_energy_mj", 0.0) / reference_mw
            else:
                cpu = delta.get("cpu_time", 0.0)
            utilization = min(1.0, cpu / active) if active > 0 else 1.0
        return {
            "held_time": delta.get("held_time", 0.0),
            "active_time": active,
            "ask_time": 0.0,
            "success_ratio": 1.0,
            "utilization": utilization,
        }


class LocationLeaseProxy(LeaseProxy):
    """Proxy inside the LocationManagerService (GPS)."""

    def on_location_created(self, record):
        self._ensure_lease(record)

    def on_location_removed(self, record):
        self._note(record, "release")

    def on_location_dead(self, record):
        self._remove_lease(record)

    def _current_counters(self, lease):
        # Location segment stats (search/locked/consumer time) are only
        # folded in on service events; force a settle at term boundaries.
        self.service.settle_stats()
        return lease.record.counters()

    def _derive_metrics(self, lease, delta):
        search = delta.get("search_time", 0.0)
        locked = delta.get("locked_time", 0.0)
        active = delta.get("active_time", 0.0)
        total_request = search + locked
        success = locked / total_request if total_request > 0 else 1.0
        consumer = delta.get("consumer_active_time", 0.0)
        utilization = min(1.0, consumer / active) if active > 0 else 1.0
        return {
            "held_time": delta.get("held_time", 0.0),
            "active_time": active,
            "ask_time": search,
            "success_ratio": success,
            "utilization": utilization,
            "distance_moved": delta.get("distance_moved", 0.0),
            "fixes_delivered": delta.get("fixes_delivered", 0),
        }


class SensorLeaseProxy(LeaseProxy):
    """Proxy inside the SensorManagerService."""

    def on_sensor_created(self, record):
        self._ensure_lease(record)

    def on_sensor_unregister(self, record):
        self._note(record, "release")

    def on_sensor_dead(self, record):
        self._remove_lease(record)

    def _current_counters(self, lease):
        self.service.settle_stats()
        counters = lease.record.counters()
        counters["consumer_active_time"] = lease.record.consumer_active_time
        counters["events_delivered"] = lease.record.events_delivered
        return counters

    def _derive_metrics(self, lease, delta):
        active = delta.get("active_time", 0.0)
        consumer = delta.get("consumer_active_time", 0.0)
        utilization = min(1.0, consumer / active) if active > 0 else 1.0
        return {
            "held_time": delta.get("held_time", 0.0),
            "active_time": active,
            "ask_time": 0.0,
            "success_ratio": 1.0,
            "utilization": utilization,
            "events_delivered": delta.get("events_delivered", 0),
        }


class WifiLeaseProxy(LeaseProxy):
    """Proxy inside the WifiService (high-perf locks)."""

    def on_wifilock_created(self, record):
        self._ensure_lease(record)

    def on_wifilock_acquire(self, record, allowed):
        self._note(record, "acquire")

    def on_wifilock_release(self, record):
        self._note(record, "release")

    def on_wifilock_dead(self, record):
        self._remove_lease(record)

    def _current_counters(self, lease):
        counters = lease.record.counters()
        counters["transfer_time"] = lease.record.transfer_time
        return counters

    def _derive_metrics(self, lease, delta):
        active = delta.get("active_time", 0.0)
        transfer = delta.get("transfer_time", 0.0)
        utilization = min(1.0, transfer / active) if active > 0 else 1.0
        return {
            "held_time": delta.get("held_time", 0.0),
            "active_time": active,
            "ask_time": 0.0,
            "success_ratio": 1.0,
            "utilization": utilization,
        }


class BluetoothLeaseProxy(LeaseProxy):
    """Proxy inside the BluetoothService (scan sessions / connections)."""

    def on_bluetooth_created(self, record):
        self._ensure_lease(record)

    def on_bluetooth_dead(self, record):
        self._remove_lease(record)

    def _current_counters(self, lease):
        self.service.settle_stats()
        counters = lease.record.counters()
        counters["consumer_active_time"] = lease.record.consumer_active_time
        counters["results_delivered"] = lease.record.results_delivered
        return counters

    def _derive_metrics(self, lease, delta):
        active = delta.get("active_time", 0.0)
        consumer = delta.get("consumer_active_time", 0.0)
        utilization = min(1.0, consumer / active) if active > 0 else 1.0
        return {
            "held_time": delta.get("held_time", 0.0),
            "active_time": active,
            "ask_time": 0.0,
            "success_ratio": 1.0,
            "utilization": utilization,
            "results_delivered": delta.get("results_delivered", 0),
        }


class AudioLeaseProxy(LeaseProxy):
    """Proxy inside the AudioService (sessions)."""

    def on_audio_open(self, record, allowed):
        self._ensure_lease(record)

    def on_audio_close(self, record):
        self._remove_lease(record)

    def _current_counters(self, lease):
        record = lease.record
        record.settle_playback(record.sim.now)
        counters = record.counters()
        counters["playback_time"] = record.playback_time
        return counters

    def _derive_metrics(self, lease, delta):
        active = delta.get("active_time", 0.0)
        playback = delta.get("playback_time", 0.0)
        utilization = min(1.0, playback / active) if active > 0 else 1.0
        return {
            "held_time": delta.get("held_time", 0.0),
            "active_time": active,
            "ask_time": 0.0,
            "success_ratio": 1.0,
            "utilization": utilization,
        }
