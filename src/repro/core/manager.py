"""The Lease Manager (paper §4.3, Table 3 API).

One system-wide component owning the lease table. For every lease it
schedules a check at each term boundary, collects the term's utility
stats (through the owning proxy plus the app-level signal sources),
classifies the behaviour, and decides: renew immediately (normal) or
defer the next term for τ while the resource is revoked (FAB/LHB/LUB).
"""

import os

from collections import defaultdict

from repro.core.behavior import BehaviorType, classify_term
from repro.core.lease import Lease, LeaseState
from repro.core.policy import LeasePolicy
from repro.core.stats import TermRecord, UtilityMetrics
from repro.core.utility import combine_utility, generic_utility
from repro.device.power import SYSTEM_UID


class Decision:
    """One end-of-term decision, for experiment introspection."""

    __slots__ = ("time", "lease", "behavior", "action", "metrics")

    def __init__(self, time, lease, behavior, action, metrics):
        self.time = time
        self.lease = lease
        self.behavior = behavior
        self.action = action  # "renew" | "defer" | "inactive"
        self.metrics = metrics

    def __repr__(self):
        return "Decision(t={:.1f}, lease#{}, {}, {})".format(
            self.time, self.lease.descriptor, self.behavior.value, self.action
        )


class LeaseManager:
    """Creates, checks, renews, defers and removes leases (Table 3)."""

    #: Floor applied to scheduled term checks so a zero-length term
    #: (legal per §3.1) cannot wedge the event loop.
    MIN_TERM_S = 0.001

    def __init__(self, phone, policy=None):
        self.phone = phone
        self.sim = phone.sim
        self.policy = policy or LeasePolicy()
        self.leases = {}  # descriptor -> Lease
        self.proxies = []
        self.decisions = []
        self.listeners = []  # callback(decision)
        self.op_counts = defaultdict(int)
        self.created_total = 0
        self._custom_counters = {}  # (uid, ResourceType) -> UtilityCounter
        #: Optional §8 dynamic-policy hook exposing
        #: ``deferral_multiplier(lease) -> float``.
        self.deferral_advisor = None
        self.gc_removed = 0
        #: Running count of INACTIVE leases, so the periodic GC sweep can
        #: skip its table walk on a device with nothing to collect.
        self._inactive_count = 0
        #: Optional crash-safe mirror of the lease lifecycle into a
        #: journaled :class:`repro.service.service.LeaseService`. Armed
        #: by environment variable only (REPRO_SERVICE_JOURNAL ==
        #: ``repro.service.storage.ENV_JOURNAL``), never by kwarg, so
        #: content-addressed cache keys are untouched when it is off
        #: -- and the guard keeps the default path import-free.
        self.persistence = None
        if os.environ.get("REPRO_SERVICE_JOURNAL"):
            from repro.service.wiring import attach_from_env

            self.persistence = attach_from_env(self)
        if self.policy.gc_sweep_interval_s > 0:
            self.sim.every(self.policy.gc_sweep_interval_s, self._gc_sweep)

    # -- Table 3 API ----------------------------------------------------------

    def register_proxy(self, proxy):
        self.proxies.append(proxy)
        return True

    def unregister_proxy(self, proxy):
        try:
            self.proxies.remove(proxy)
            return True
        except ValueError:
            return False

    def create(self, rtype, uid, record, proxy):
        """Create a lease for a resource instance; returns the Lease."""
        self.op_counts["create"] += 1
        self.created_total += 1
        lease = Lease(uid, rtype, record, proxy, self.sim.now)
        self.leases[lease.descriptor] = lease
        self._start_term(lease, self.policy.initial_term_s)
        proxy.refresh_snapshot(lease)
        if self.persistence is not None:
            self.persistence.on_create(lease)
        return lease

    def check(self, descriptor):
        """Is the lease usable right now? (Cached by proxies in practice.)"""
        lease = self.leases.get(descriptor)
        usable = lease is not None and lease.state is LeaseState.ACTIVE
        self.op_counts["check_accept" if usable else "check_reject"] += 1
        return usable

    def renew(self, descriptor):
        """Approve (or not) the use of a resource with an expired lease.

        Called by a proxy when an app re-acquires or uses a resource whose
        lease went INACTIVE (§3.2). Renewal is granted unless the lease is
        mid-deferral.
        """
        lease = self.leases.get(descriptor)
        if lease is None or lease.dead:
            return False
        self.op_counts["renew"] += 1
        if lease.state is LeaseState.DEFERRED:
            return False
        if lease.state is LeaseState.INACTIVE:
            self._inactive_count -= 1
            lease.transition(LeaseState.ACTIVE)
            self._start_term(lease, self.policy.next_term_length(
                lease.normal_streak))
            lease.proxy.refresh_snapshot(lease)
            if self.persistence is not None:
                self.persistence.on_renew(lease)
        lease.renew_count += 1
        return True

    def remove(self, descriptor):
        """The kernel object died; clean up the lease."""
        lease = self.leases.get(descriptor)
        if lease is None:
            return False
        self.op_counts["remove"] += 1
        self._cancel_timers(lease)
        if lease.state is LeaseState.INACTIVE:
            self._inactive_count -= 1
        if not lease.dead:
            lease.transition(LeaseState.DEAD)
        del self.leases[descriptor]
        if self.persistence is not None:
            self.persistence.on_remove(lease)
        return True

    def note_event(self, descriptor, event):
        """Record a resource event (acquire/release/re-acquire...) for a
        lease (Table 3 ``noteEvent``). Events are kept on the lease's
        bounded event log and are available to the per-term analysis."""
        self.op_counts["note_event"] += 1
        lease = self.leases.get(descriptor)
        if lease is None:
            return False
        lease.note_event(self.sim.now, event)
        return True

    def set_utility(self, uid, rtype, counter):
        """Register a custom utility counter for (uid, resource type)."""
        for lease in self.leases.values():
            if lease.uid == uid and lease.rtype is rtype:
                lease.custom_counter = counter
        self._custom_counters[(uid, rtype)] = counter

    # -- term machinery -----------------------------------------------------------

    def _start_term(self, lease, length):
        """Begin a term. §3.1's degenerate points are honoured: an
        infinite term schedules no check at all (the lease degrades to
        ask-use-release), and a zero-length term checks immediately and
        continuously (every access effectively re-checked)."""
        lease.term_index += 1
        lease.term_length = length
        lease.term_start = self.sim.now
        if length == float("inf"):
            lease._term_timer = None
            return
        lease._term_timer = self.sim.schedule(
            max(length, self.MIN_TERM_S),
            lambda: self._on_term_end(lease),
        )

    def _on_term_end(self, lease):
        if lease.dead or lease.state is not LeaseState.ACTIVE:
            return
        self.op_counts["update"] += 1
        self.phone.monitor.add_energy(
            SYSTEM_UID, "lease_mgmt", self.policy.update_energy_mj
        )
        if not lease.proxy.is_held(lease):
            self._inactive_count += 1
            lease.transition(LeaseState.INACTIVE)
            self._log(lease, BehaviorType.NORMAL, "inactive", None)
            return
        metrics = self._collect(lease)
        behavior = classify_term(lease.rtype, metrics, self.policy)
        lease.record_term(TermRecord(
            lease.term_index, lease.term_start, self.sim.now, behavior,
            metrics,
        ))
        if behavior.is_misbehavior:
            lease.normal_streak = 0
            lease.misbehavior_streak += 1
            self._defer(lease)
            self._log(lease, behavior, "defer", metrics)
        else:
            lease.normal_streak += 1
            lease.misbehavior_streak = 0
            self._start_term(
                lease, self.policy.next_term_length(lease.normal_streak)
            )
            self._log(lease, behavior, "renew", metrics)

    def _defer(self, lease):
        lease.transition(LeaseState.DEFERRED)
        lease.deferral_count += 1
        lease.proxy.on_expire(lease)
        tau = self.policy.deferral_for(lease.misbehavior_streak)
        if self._had_recent_normal_term(lease):
            # Intermittent misbehaviour: keep the deferral short enough
            # that the app's next useful window is not swallowed (§4.5).
            tau = min(tau, self.policy.escalation_soft_cap_s)
        if self.deferral_advisor is not None:
            tau *= self.deferral_advisor.deferral_multiplier(lease)
        lease._deferral_timer = self.sim.schedule(
            tau, lambda: self._end_deferral(lease)
        )

    def _had_recent_normal_term(self, lease):
        if not self.policy.escalation_enabled:
            return False
        horizon = self.sim.now - self.policy.escalation_recency_s
        for record in reversed(lease.history):
            if record.end < horizon:
                break
            if not record.behavior.is_misbehavior:
                return True
        return False

    def _end_deferral(self, lease):
        if lease.dead or lease.state is not LeaseState.DEFERRED:
            return
        lease.transition(LeaseState.ACTIVE)
        lease.proxy.on_renew(lease)
        self._start_term(lease, self.policy.initial_term_s)
        lease.proxy.refresh_snapshot(lease)

    def _collect(self, lease):
        """Build the term's UtilityMetrics from proxy + app signals."""
        start, end = lease.term_start, self.sim.now
        term_s = max(1e-9, end - start)
        stats = lease.proxy.term_stats(lease)
        app = self.phone.apps.get(lease.uid)
        # Raw signals within this term's window only.
        ui = app.ui_updates_in(start, end) if app else 0
        interactions = app.interactions_in(start, end) if app else 0
        writes = app.data_writes_in(start, end) if app else 0
        exceptions = self.phone.exceptions.count_in_window(
            lease.uid, start, end
        )
        # Smoothing (§4.3 bounded history): aggregate the current term
        # with recent terms so rates are judged over honoured time, not a
        # single unlucky 5 s slice. Deferral gaps never enter the window
        # because terms only span honoured periods.
        max_age = self.policy.utility_window_age_s
        recent = [
            r for r in lease.recent_terms(
                self.policy.utility_smoothing_terms - 1)
            if end - r.end <= max_age
        ]
        agg_duration = term_s + sum(r.duration for r in recent)
        agg_ui = ui + sum(r.metrics.ui_updates for r in recent)
        agg_inter = interactions + sum(r.metrics.interactions
                                       for r in recent)
        agg_writes = writes + sum(r.metrics.data_writes for r in recent)
        agg_exceptions = exceptions + sum(r.metrics.exceptions
                                          for r in recent)
        agg_distance = stats.get("distance_moved", 0.0) + sum(
            r.metrics.extras.get("distance_moved", 0.0) for r in recent
        )
        # FAB evidence: ask time over the last few terms.
        fab_recent = [
            r for r in lease.recent_terms(self.policy.fab_window_terms - 1)
            if end - r.end <= max_age
        ]
        ask_window = stats.get("ask_time", 0.0) + sum(
            r.metrics.ask_time for r in fab_recent
        )
        generic = generic_utility(
            lease.rtype, agg_duration, ui_updates=agg_ui,
            interactions=agg_inter, exceptions=agg_exceptions,
            data_writes=agg_writes, distance_m=agg_distance,
        )
        custom = None
        counter = lease.custom_counter or self._custom_counters.get(
            (lease.uid, lease.rtype)
        )
        if counter is not None:
            custom = counter.get_score()
        score = combine_utility(generic, custom,
                                self.policy.custom_utility_floor)
        # Utilization smoothing: honoured-time-weighted mean over the
        # current term and a short (wall-clock-bounded) recent window.
        util_terms = [
            r for r in lease.recent_terms(
                self.policy.utilization_smoothing_terms - 1)
            if end - r.end <= self.policy.utilization_window_s
        ]
        weighted = stats.get("utilization", 1.0) * max(
            stats.get("active_time", 0.0), 1e-9)
        weight = max(stats.get("active_time", 0.0), 1e-9)
        for record in util_terms:
            w = max(record.metrics.active_time, 1e-9)
            weighted += record.metrics.utilization * w
            weight += w
        utilization = weighted / weight
        return UtilityMetrics(
            held=True,
            held_time=stats.get("held_time", 0.0),
            active_time=stats.get("active_time", 0.0),
            ask_time=stats.get("ask_time", 0.0),
            ask_window_time=ask_window,
            success_ratio=stats.get("success_ratio", 1.0),
            utilization=utilization,
            utility_score=score,
            generic_utility=generic,
            custom_utility=custom,
            completed_terms=len(lease.history),
            ui_updates=ui,
            interactions=interactions,
            exceptions=exceptions,
            data_writes=writes,
            extras=stats,
        )

    # -- introspection --------------------------------------------------------------

    def active_lease_count(self):
        return sum(
            1 for lease in self.leases.values()
            if lease.state in (LeaseState.ACTIVE, LeaseState.DEFERRED)
        )

    def leases_for(self, uid):
        return [l for l in self.leases.values() if l.uid == uid]

    def sweep_expired(self, now=None):
        """Sweep long-idle INACTIVE leases; returns how many went.

        The explicit entry point shared by the periodic GC timer and
        the service sweeper (:mod:`repro.service`): callers that
        already know collection is due invoke it directly, with an
        optional explicit ``now`` so an external sweeper can evaluate
        idleness at its own (deterministic) cadence time.
        """
        now = self.sim.now if now is None else now
        doomed = []
        for lease in self.leases.values():
            if lease.state is not LeaseState.INACTIVE:
                continue
            record = lease.record
            record.settle()
            if record.app_held or record.os_active:
                continue
            idle_for = now - lease.term_start
            if idle_for >= self.policy.gc_idle_s:
                doomed.append(lease)
        for lease in doomed:
            lease.proxy.forget(lease)
            self.remove(lease.descriptor)
            self.gc_removed += 1
        return len(doomed)

    def _gc_sweep(self):
        """The periodic timer path (kernel-object GC stand-in)."""
        if self._inactive_count == 0:
            return  # nothing collectable: skip the table walk entirely
        self.sweep_expired()

    def dump_table(self):
        """A ``dumpsys leases``-style view of the lease table."""
        if not self.leases:
            return "lease table: empty"
        lines = ["lease table ({} leases, {} created total):".format(
            len(self.leases), self.created_total)]
        for lease in sorted(self.leases.values(),
                            key=lambda l: l.descriptor):
            app = self.phone.apps.get(lease.uid)
            name = app.name if app else "uid:{}".format(lease.uid)
            lines.append(
                "  #{:<4d} {:18s} {:9s} {:9s} terms={:<4d} "
                "deferrals={:<3d} streak={}".format(
                    lease.descriptor, name[:18], lease.rtype.value,
                    lease.state.value, lease.term_index,
                    lease.deferral_count, lease.normal_streak)
            )
        return "\n".join(lines)

    def _log(self, lease, behavior, action, metrics):
        decision = Decision(self.sim.now, lease, behavior, action, metrics)
        self.decisions.append(decision)
        for listener in list(self.listeners):
            listener(decision)

    def _cancel_timers(self, lease):
        if lease._term_timer is not None:
            lease._term_timer.cancel()
            lease._term_timer = None
        if lease._deferral_timer is not None:
            lease._deferral_timer.cancel()
            lease._deferral_timer = None
