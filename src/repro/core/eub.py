"""Excessive-Use advisor (paper §2.5 / §8).

LeaseOS deliberately does not act on Excessive-Use behaviour -- heavy
but useful consumption is a trade-off only the user can judge (§2.5:
"the grey area between normal behavior and misbehavior"). The paper's
future work proposes inferring app and user intentions to tackle it;
the conservative first step implemented here is *surfacing*: track EUB
terms per app, estimate the associated energy, and produce the report a
battery-settings screen would show, leaving the decision to the user.
"""

from collections import defaultdict

from dataclasses import dataclass


@dataclass
class EubEntry:
    uid: int
    app_name: str
    eub_terms: int
    eub_seconds: float
    estimated_mw: float

    def estimated_mah_per_hour(self, voltage=3.85):
        """The battery-settings framing: mAh drained per hour."""
        return self.estimated_mw / voltage


class ExcessiveUseAdvisor:
    """Aggregates EUB observations into a user-facing report."""

    def __init__(self, phone):
        self.phone = phone
        self._eub_terms = defaultdict(int)
        self._eub_seconds = defaultdict(float)
        self._energy_marks = {}

    def attach(self, manager):
        manager.listeners.append(self._on_decision)
        return self

    def _on_decision(self, decision):
        from repro.core.behavior import BehaviorType

        if decision.behavior is not BehaviorType.EUB:
            return
        uid = decision.lease.uid
        self._eub_terms[uid] += 1
        if decision.metrics is not None:
            self._eub_seconds[uid] += decision.metrics.active_time

    def report(self):
        """EubEntry list, heaviest estimated draw first."""
        self.phone.monitor.settle()
        now = self.phone.sim.now
        entries = []
        for uid, terms in self._eub_terms.items():
            app = self.phone.apps.get(uid)
            name = app.name if app is not None else "uid:{}".format(uid)
            energy = self.phone.monitor.ledger.app_total_mj(uid)
            avg_mw = energy / now if now > 0 else 0.0
            entries.append(EubEntry(
                uid=uid,
                app_name=name,
                eub_terms=terms,
                eub_seconds=self._eub_seconds[uid],
                estimated_mw=avg_mw,
            ))
        entries.sort(key=lambda e: e.estimated_mw, reverse=True)
        return entries

    def render(self):
        entries = self.report()
        if not entries:
            return ("No apps with heavy-but-useful (Excessive-Use) "
                    "resource consumption observed.")
        lines = ["Apps using resources heavily (working as intended; "
                 "restricting them is your call):"]
        for entry in entries:
            lines.append(
                "  {:20s} ~{:6.1f} mW avg, {:4d} heavy terms "
                "({:.0f} s of heavy use)".format(
                    entry.app_name, entry.estimated_mw, entry.eub_terms,
                    entry.eub_seconds)
            )
        return "\n".join(lines)
