"""Lease policy: term lengths, deferral interval, thresholds (paper §5).

Defaults follow §5.1: initial term 5 s, deferral interval 25 s (λ = 5 for
a single-term detection). §5.2's common-case optimization grows the term
to 1 minute after 12 consecutive normal terms and to 5 minutes after 120,
reverting to 5 s whenever a term in the look-back window misbehaves.
"""

from dataclasses import dataclass, field

from repro.droid.resources import ResourceType


def _default_utilization_thresholds():
    # Wakelocks show the "ultralow utilization (<1%)" pattern of §2.3; we
    # use a slightly tolerant 5% cut. Listener-based resources (GPS,
    # sensor) measure consumer-Activity lifetime, where a healthy app sits
    # near 100%, so the cut is higher. Screen utilization comes from user
    # interaction credit. Wi-Fi locks from transfer duty.
    return {
        ResourceType.WAKELOCK: 0.05,
        ResourceType.SCREEN: 0.10,
        ResourceType.GPS: 0.50,
        ResourceType.SENSOR: 0.50,
        ResourceType.WIFI: 0.02,
        ResourceType.AUDIO: 0.05,
        ResourceType.BLUETOOTH: 0.50,
    }


@dataclass
class LeasePolicy:
    """All tunables of the lease mechanism in one place."""

    initial_term_s: float = 5.0
    deferral_s: float = 25.0

    # Deferral escalation. §5.1's effectiveness analysis uses *avg(τ)*,
    # and Table 5's ~98% reductions for persistent misbehaviour exceed
    # the 1/(1+λ) bound a fixed τ = 25 s would allow, so the deferral
    # interval must grow while misbehaviour persists. We double τ per
    # consecutive misbehaving term up to a cap, resetting on any normal
    # term. Experiments that pin τ (Fig. 9, Fig. 12) disable this.
    escalation_enabled: bool = True
    deferral_escalation: float = 2.0
    deferral_max_s: float = 500.0
    # Intermittent misbehaviour (§4.5: "when an app only under-utilizes
    # resource for a limited period... the app has a chance of getting
    # the lease renewed and returning to normal behavior") must not be
    # crushed by full escalation: while the lease has had a *normal*
    # term recently, τ is soft-capped so the app's next useful window is
    # not swallowed. Only persistent offenders escalate all the way.
    escalation_recency_s: float = 600.0
    escalation_soft_cap_s: float = 100.0

    # Adaptive term growth (§5.2): (consecutive normal terms, new length).
    adaptive_steps: tuple = ((12, 60.0), (120, 300.0))
    adaptive_enabled: bool = True

    # Classifier thresholds (§2.4 / §3.3).
    min_activity_s: float = 1.0  # ignore terms with almost no holding
    fab_success_threshold: float = 0.25
    # FAB needs the ask to be "frequent or long" (§3.3): searching must
    # accumulate past this over the recent ask window, comfortably above
    # a legitimate time-to-first-fix, before a lease is judged FAB.
    fab_min_ask_time_s: float = 10.0
    utilization_thresholds: dict = field(
        default_factory=_default_utilization_thresholds
    )
    lub_utility_threshold: float = 30.0
    eub_utilization_threshold: float = 0.8
    eub_min_active_s: float = 4.0

    # Custom utility abuse guard (§3.3): the app's counter is only taken
    # as a hint when the generic score is not below this floor.
    custom_utility_floor: float = 20.0

    # Utility smoothing (§4.3's bounded history): the low-utility score
    # aggregates the current term with up to this many recent terms, so
    # apps whose useful output has a slower cadence than the 5 s term (a
    # monitor persisting an event every half-minute) are judged on their
    # recent honoured time, not on one unlucky term.
    utility_smoothing_terms: int = 12
    # Utilization (the LHB metric) is judged over a short look-back of
    # terms, weighted by honoured time: a duty-cycled but healthy worker
    # (busy 10 s, quiet 15 s) must not be condemned for the one 5 s term
    # that landed inside its quiet stretch. The look-back is bounded in
    # *wall-clock* (so grown adaptive terms are judged on their own) and
    # short enough that a real leak is still caught within ~half a
    # minute. Set terms=1 to disable smoothing.
    utilization_smoothing_terms: int = 6
    utilization_window_s: float = 30.0
    # Smoothed-in terms must also be recent in wall-clock: after a long
    # deferral, stale pre-deferral history must not keep condemning (or
    # exonerating) an app whose behaviour has since changed.
    utility_window_age_s: float = 120.0
    # A lease must complete this many terms before a Low-Utility verdict
    # can defer it -- sparse signals make the first terms unreliable.
    grace_terms: int = 2
    # FAB evidence aggregates ask time over this many recent terms.
    fab_window_terms: int = 3

    # §8 extension: when the device has a DVFS governor, measure wakelock
    # utilization in CPU *energy* (normalized by the reference active
    # power) instead of CPU time, so high-frequency bursts are not
    # underpriced by the energy-proportional-to-duration assumption.
    dvfs_aware: bool = False

    # Modelled latencies for lease operations (paper Table 4, ms). Used
    # for the latency accounting; wall-clock costs of this implementation
    # are measured separately by the Table 4 benchmark.
    op_latency_s: dict = field(default_factory=lambda: {
        "create": 0.000357,
        "check_accept": 0.000498,
        "check_reject": 0.000388,
        "renew": 0.000400,
        "update": 0.00479,
    })
    #: Energy cost of one per-term stat update (~5 ms of CPU).
    update_energy_mj: float = 1.6

    # Lease-table hygiene: INACTIVE leases whose resource has not been
    # touched for this long are swept (the stand-in for the kernel
    # object being garbage-collected with its app-side wrapper, §3.1
    # "destroyed when the corresponding kernel object is dead"). A new
    # lease is created transparently if the object is touched again.
    gc_idle_s: float = 3600.0
    gc_sweep_interval_s: float = 600.0

    def utilization_threshold(self, rtype):
        return self.utilization_thresholds.get(rtype, 0.05)

    def deferral_for(self, consecutive_misbehavior):
        """Deferral interval given how many terms in a row misbehaved."""
        if not self.escalation_enabled or consecutive_misbehavior <= 1:
            return self.deferral_s
        tau = self.deferral_s * (
            self.deferral_escalation ** (consecutive_misbehavior - 1)
        )
        return min(self.deferral_max_s, tau)

    def next_term_length(self, normal_streak):
        """Term length given the consecutive-normal-terms streak."""
        length = self.initial_term_s
        if not self.adaptive_enabled:
            return length
        for streak_needed, term in self.adaptive_steps:
            if normal_streak >= streak_needed:
                length = term
        return length

    @property
    def lam(self):
        """λ = τ / term, the waste-reduction knob of §5.1 (for n = 1)."""
        return self.deferral_s / self.initial_term_s


def waste_reduction_ratio(lam):
    """§5.1 closed form: r = 1 / (1 + λ) is the *remaining* waste...

    Careful with the paper's phrasing: it defines r = H / T = 1/(1+λ) as
    the fraction of time the resource is still held, so the *reduction*
    of wasted energy is ``1 - r = λ / (1 + λ)``. This helper returns the
    reduction (what Fig. 12 plots on its y axis).
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    return lam / (1.0 + lam)
