"""Energy misbehaviour classification (paper §2.4, Table 1).

Four misbehaviour classes in the ask-use-release model:

- **FAB** (Frequent-Ask): frequently/long asking for the resource but
  rarely getting it -- only GPS can exhibit this (a wakelock or sensor
  request succeeds immediately).
- **LHB** (Long-Holding): granted and held long, but rarely *used* --
  ultralow utilization ratio.
- **LUB** (Low-Utility): used a lot, but the work is of little value --
  low utility score despite high utilization.
- **EUB** (Excessive-Use): lots of useful work at high cost. A design
  trade-off, not a bug; LeaseOS deliberately does *not* act on it
  (§2.5, §4), but the classifier reports it for the study harness.
"""

import enum

from repro.droid.resources import ResourceType  # noqa: F401 (re-export)


class BehaviorType(enum.Enum):
    NORMAL = "normal"
    FAB = "frequent-ask"
    LHB = "long-holding"
    LUB = "low-utility"
    EUB = "excessive-use"

    @property
    def is_misbehavior(self):
        """True for the three classes LeaseOS mitigates (not EUB)."""
        return self in (BehaviorType.FAB, BehaviorType.LHB, BehaviorType.LUB)


#: Resources that can exhibit FAB (Table 1: asking is non-trivial only
#: for GPS, which must search for a fix).
FAB_CAPABLE = frozenset({ResourceType.GPS})


def classify_term(rtype, metrics, policy):
    """Judge one term's behaviour from its utility metrics.

    Checks the three §2.4 metrics in ask -> use -> release order:
    request success ratio, then utilization ratio, then utility rate.
    A term in which the resource was barely held is NORMAL -- there is
    nothing to mitigate.
    """
    term = max(metrics.held_time, metrics.active_time, metrics.ask_time)
    if term < policy.min_activity_s:
        return BehaviorType.NORMAL

    asking_dominates = (rtype in FAB_CAPABLE
                        and metrics.ask_time > 0.5 * metrics.active_time)
    if asking_dominates:
        # FAB only once the (windowed) ask is frequent-or-long with a
        # poor success ratio; a legitimate time-to-first-fix is not FAB.
        ask_evidence = max(metrics.ask_window_time, metrics.ask_time)
        if (ask_evidence >= policy.fab_min_ask_time_s
                and metrics.success_ratio < policy.fab_success_threshold):
            return BehaviorType.FAB

    if metrics.utilization < policy.utilization_threshold(rtype):
        if (rtype is ResourceType.SCREEN
                and metrics.completed_terms < policy.grace_terms):
            # Screen utilization is credit-based (touches, UI updates):
            # too sparse to judge in the first moments after launch.
            return BehaviorType.NORMAL
        return BehaviorType.LHB

    if asking_dominates:
        # Utilization is fine and the term was mostly spent (legitimately)
        # asking; the utility of granted use cannot be judged yet.
        return BehaviorType.NORMAL

    if metrics.utility_score < policy.lub_utility_threshold:
        if metrics.completed_terms >= policy.grace_terms:
            return BehaviorType.LUB
        return BehaviorType.NORMAL

    if (metrics.utilization >= policy.eub_utilization_threshold
            and metrics.active_time >= policy.eub_min_active_s):
        return BehaviorType.EUB

    return BehaviorType.NORMAL
