"""The lease abstraction and its state machine (paper §3.1-3.2, Fig. 5).

States:

- ``ACTIVE`` -- within a term; the holder may use the resource freely.
- ``DEFERRED`` -- the past term showed FAB/LHB/LUB; the resource is
  temporarily revoked for the deferral interval τ, then restored.
- ``INACTIVE`` -- the app released the resource before the term ended;
  re-acquiring or using it requires a renewal check with the manager.
- ``DEAD`` -- the kernel object is gone; the lease is awaiting cleanup.
"""

import enum
import itertools

from collections import deque


class LeaseState(enum.Enum):
    ACTIVE = "active"
    DEFERRED = "deferred"
    INACTIVE = "inactive"
    DEAD = "dead"


#: Transitions allowed by the Fig. 5 state machine. Everything may go to
#: DEAD (the kernel object can die at any moment).
_ALLOWED = {
    (LeaseState.ACTIVE, LeaseState.ACTIVE),  # renewed for another term
    (LeaseState.ACTIVE, LeaseState.DEFERRED),
    (LeaseState.ACTIVE, LeaseState.INACTIVE),
    (LeaseState.DEFERRED, LeaseState.ACTIVE),
    (LeaseState.INACTIVE, LeaseState.ACTIVE),
}


class LeaseTransitionError(Exception):
    """An illegal lease state transition was attempted."""


#: Observers called as ``hook(lease, old_state, new_state)`` after every
#: transition that goes through :meth:`Lease.transition`. The invariant
#: checker (:mod:`repro.faults.invariants`) uses this to shadow the state
#: machine and detect both illegal transitions and direct ``state``
#: mutations that bypass ``transition()`` entirely. Empty list == zero
#: cost beyond one truthiness check per transition.
_TRANSITION_HOOKS = []


def add_transition_hook(hook):
    """Register a ``hook(lease, old_state, new_state)`` observer."""
    _TRANSITION_HOOKS.append(hook)
    return hook


def remove_transition_hook(hook):
    """Unregister a previously added transition observer."""
    try:
        _TRANSITION_HOOKS.remove(hook)
    except ValueError:
        pass


class Lease:
    """One lease: a timed capability over one kernel resource instance.

    Created by the lease manager when an app first touches the kernel
    object (§3.1); identified by a unique lease descriptor. Keeps a
    bounded history of per-term records for the decision policy.
    """

    _descriptors = itertools.count(1)

    def __init__(self, uid, rtype, record, proxy, created_at,
                 history_size=128):
        self.descriptor = next(Lease._descriptors)
        self.uid = uid
        self.rtype = rtype
        self.record = record  # the kernel object this lease backs
        self.proxy = proxy  # owning lease proxy
        self.created_at = created_at
        self.state = LeaseState.ACTIVE
        self.term_index = 0
        self.term_length = None  # set by the manager from policy
        self.term_start = created_at
        self.history = deque(maxlen=history_size)
        self.events = deque(maxlen=history_size)  # (time, event-name)
        self.normal_streak = 0  # consecutive normal terms (adaptive term)
        self.misbehavior_streak = 0  # consecutive misbehaving terms
        self.deferral_count = 0
        self.renew_count = 0
        # bookkeeping owned by the manager
        self._term_timer = None
        self._deferral_timer = None
        self._stat_snapshot = {}
        self.custom_counter = None

    # -- state machine ----------------------------------------------------------

    def transition(self, new_state):
        """Move to ``new_state``, enforcing the Fig. 5 transition rules."""
        if self.state is LeaseState.DEAD:
            raise LeaseTransitionError(
                "lease {} is dead and cannot transition".format(self.descriptor)
            )
        old_state = self.state
        if new_state is LeaseState.DEAD:
            self.state = new_state
            if _TRANSITION_HOOKS:
                for hook in list(_TRANSITION_HOOKS):
                    hook(self, old_state, new_state)
            return
        if (self.state, new_state) not in _ALLOWED:
            raise LeaseTransitionError(
                "illegal lease transition {} -> {}".format(
                    self.state.value, new_state.value
                )
            )
        self.state = new_state
        if _TRANSITION_HOOKS:
            for hook in list(_TRANSITION_HOOKS):
                hook(self, old_state, new_state)

    @property
    def active(self):
        return self.state is LeaseState.ACTIVE

    @property
    def dead(self):
        return self.state is LeaseState.DEAD

    def record_term(self, term_record):
        self.history.append(term_record)

    def note_event(self, time, event):
        self.events.append((time, event))

    def events_in(self, start, end, event=None):
        """Events within [start, end), optionally filtered by name."""
        return [
            (t, name) for t, name in self.events
            if start <= t < end and (event is None or name == event)
        ]

    def recent_terms(self, count):
        """The most recent ``count`` term records, oldest first."""
        if count <= 0:
            return []
        return list(self.history)[-count:]

    def __repr__(self):
        return "Lease(#{}, uid={}, {}, {}, term={})".format(
            self.descriptor, self.uid, self.rtype.value, self.state.value,
            self.term_index,
        )
