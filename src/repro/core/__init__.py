"""LeaseOS: the paper's contribution.

A *lease* grants an app the right to use one kernel resource instance for
a term; at each term boundary the lease manager measures how much
*utility* the app obtained from the resource and decides whether to renew
immediately (normal behaviour) or to defer the next term -- temporarily
revoking the resource -- when the term exhibited Frequent-Ask,
Long-Holding or Low-Utility misbehaviour (Sections 3-5 of the paper).

Public API:

- :class:`~repro.core.manager.LeaseManager` -- Table 3 interface.
- :class:`~repro.core.lease.Lease` / :class:`~repro.core.lease.LeaseState`.
- :class:`~repro.core.policy.LeasePolicy` -- terms, deferral, thresholds.
- :class:`~repro.core.behavior.BehaviorType` and the classifier.
- :class:`~repro.core.utility.UtilityCounter` -- the optional app-supplied
  custom utility callback (Fig. 6).
- The per-service proxies in :mod:`repro.core.proxy`.
"""

from repro.core.behavior import BehaviorType, classify_term
from repro.core.lease import Lease, LeaseState
from repro.core.manager import LeaseManager
from repro.core.policy import LeasePolicy
from repro.core.stats import TermRecord, UtilityMetrics
from repro.core.utility import UtilityCounter

__all__ = [
    "BehaviorType",
    "classify_term",
    "Lease",
    "LeaseState",
    "LeaseManager",
    "LeasePolicy",
    "TermRecord",
    "UtilityMetrics",
    "UtilityCounter",
]
