"""Dynamic policy adjustment from app usage history (paper §8 extension).

The paper sets lease parameters statically and lists "adjust the
policies dynamically based on app usage history" as future work. This
tuner implements the obvious instance: a per-app *reputation* (the
exponentially weighted fraction of normal terms) scales the deferral
interval --

- a long-clean app's first offence is likely transient (a dead zone, a
  flaky server), so its deferral is shortened;
- a chronic offender's deferrals are lengthened beyond the static
  escalation schedule.

Install with :meth:`attach`; the manager consults the tuner through its
``deferral_advisor`` hook.
"""


class DynamicPolicyTuner:
    """Reputation-driven deferral scaling."""

    #: EMA smoothing for the per-app normal-term fraction.
    ALPHA = 0.2
    #: Deferral multipliers at the reputation extremes.
    MIN_MULTIPLIER = 0.5  # pristine reputation: gentle first deferral
    MAX_MULTIPLIER = 2.0  # chronic offender: harsher deferrals
    #: Terms observed before reputation is trusted at all.
    WARMUP_TERMS = 6

    def __init__(self):
        self._reputation = {}  # uid -> EMA of "term was normal"
        self._terms_seen = {}

    def attach(self, manager):
        manager.listeners.append(self._on_decision)
        manager.deferral_advisor = self
        return self

    # -- manager hooks ------------------------------------------------------

    def _on_decision(self, decision):
        if decision.action == "inactive":
            return
        uid = decision.lease.uid
        normal = 0.0 if decision.behavior.is_misbehavior else 1.0
        previous = self._reputation.get(uid, 1.0)
        self._reputation[uid] = (
            (1.0 - self.ALPHA) * previous + self.ALPHA * normal
        )
        self._terms_seen[uid] = self._terms_seen.get(uid, 0) + 1

    def deferral_multiplier(self, lease):
        """Scale factor applied to the policy's deferral interval."""
        uid = lease.uid
        if self._terms_seen.get(uid, 0) < self.WARMUP_TERMS:
            return 1.0
        reputation = self._reputation.get(uid, 1.0)
        # reputation 1.0 -> MIN, reputation 0.0 -> MAX, linear between.
        return self.MAX_MULTIPLIER + reputation * (
            self.MIN_MULTIPLIER - self.MAX_MULTIPLIER
        )

    def reputation(self, uid):
        return self._reputation.get(uid, 1.0)
