"""Utility scoring: generic heuristics plus the custom counter API.

Generic utility (paper §3.3) uses conservative signals the OS can observe
without app semantics: severe exceptions (low utility of a wakelock), the
distance moved (utility of GPS), UI updates and user interactions (high
utility of anything), plus data persisted by the app (the paper's fitness
-tracker example of what a *custom* counter would report; we also credit
it generically so headless-but-working apps like Haven score fairly).

Apps can refine this with a :class:`UtilityCounter` (Fig. 6). The
counter's score is only taken as a hint when the generic score is not too
low, preventing a misbehaving app from whitewashing itself (§3.3).
"""

from repro.droid.resources import ResourceType


class UtilityCounter:
    """Optional app-supplied custom utility callback (``IUtilityCounter``).

    Implementations return a 0-100 score describing how useful the
    resource has been to the user recently. Figure 6 of the paper shows
    TapAndTurn returning ``100 * clicks / rotations``.
    """

    def get_score(self):
        raise NotImplementedError


def clamp_score(score):
    return max(0.0, min(100.0, score))


#: Weights for the generic signals.
UI_UPDATE_CREDIT = 10.0
INTERACTION_CREDIT = 15.0
DATA_WRITE_CREDIT = 8.0
EXCEPTION_PENALTY = 25.0
#: Distance credit: metres/minute of movement observed via GPS. Walking
#: (~1.4 m/s = 84 m/min) saturates the 70-point distance component.
DISTANCE_CREDIT_PER_M_PER_MIN = 1.0
DISTANCE_CREDIT_CAP = 70.0
#: Neutral baseline for resources whose "work" is invisible to the OS.
NEUTRAL_BASE = 50.0


def generic_utility(rtype, duration_s, ui_updates=0, interactions=0,
                    exceptions=0, data_writes=0, distance_m=0.0):
    """Compute the generic 0-100 utility score over an observation window.

    All signals are counts over ``duration_s`` seconds of *honoured*
    resource time (the lease manager aggregates the current term with a
    few recent terms, so deferral gaps and slow-cadence useful output do
    not distort the rates). Credits are normalized per minute; the
    exception penalty per 5-second-term equivalent.
    """
    if duration_s <= 0:
        return NEUTRAL_BASE
    per_minute = 60.0 / duration_s
    credit = (UI_UPDATE_CREDIT * ui_updates
              + INTERACTION_CREDIT * interactions
              + DATA_WRITE_CREDIT * data_writes) * per_minute
    penalty = EXCEPTION_PENALTY * exceptions * 5.0 / duration_s

    if rtype is ResourceType.GPS:
        metres_per_min = distance_m * per_minute
        base = min(DISTANCE_CREDIT_CAP,
                   DISTANCE_CREDIT_PER_M_PER_MIN * metres_per_min)
    elif rtype in (ResourceType.SENSOR, ResourceType.BLUETOOTH):
        # Listener-based resources always "fire"; value must come from
        # visible outcomes (UI, interaction, persisted data). Small
        # benefit of the doubt as a base.
        base = 10.0
    else:
        base = NEUTRAL_BASE

    return clamp_score(base + credit - penalty)


def combine_utility(generic, custom, floor):
    """Apply the abuse guard: honour ``custom`` only if ``generic`` is
    not below ``floor``. Returns the final score."""
    if custom is None:
        return generic
    if generic < floor:
        return generic
    return clamp_score(custom)
