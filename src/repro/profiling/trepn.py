"""Trepn-like per-app profiler: samples a metric vector every interval.

Reproduces the §2.1 methodology: "a profiling tool that samples a vector
of per-app metrics every 60s, e.g., wakelock time, CPU usage". Each
sample row holds the *delta* over the past interval, which is what the
Figs. 1-4 plots show per one-minute measurement interval.
"""

from dataclasses import dataclass

from repro.droid.resources import ResourceType


@dataclass
class AppSample:
    """One per-app sample: deltas over the past interval."""

    time: float
    uid: int
    wakelock_time: float  # honoured partial-wakelock seconds
    screen_time: float  # honoured screen-lock seconds
    cpu_time: float  # busy core-seconds
    gps_search_time: float  # "GPS try duration" (Fig. 1's metric)
    gps_locked_time: float
    gps_fixes: int
    sensor_events: int
    power_mw: float  # average attributed draw over the interval

    @property
    def cpu_over_wakelock(self):
        """The Fig. 3/4 ratio; can exceed 1 with multi-core spinning."""
        if self.wakelock_time <= 0:
            return 0.0
        return self.cpu_time / self.wakelock_time


class TrepnSampler:
    """Samples one or more apps every ``interval_s`` simulated seconds."""

    def __init__(self, phone, uids, interval_s=60.0):
        self.phone = phone
        self.uids = list(uids)
        self.interval_s = interval_s
        self.samples = {uid: [] for uid in self.uids}
        self._previous = {}
        self._timer = None

    def start(self):
        for uid in self.uids:
            self._previous[uid] = self._snapshot(uid)
        self._timer = self.phone.sim.every(self.interval_s, self._sample)
        return self

    def stop(self):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def rows(self, uid):
        return list(self.samples[uid])

    # -- internals -------------------------------------------------------------

    def _snapshot(self, uid):
        phone = self.phone
        phone.power.settle_stats()
        phone.location.settle_stats()
        phone.sensors.settle_stats()
        phone.monitor.settle()
        wakelock = screen = 0.0
        for record in phone.power.records:
            if record.uid != uid:
                continue
            if record.rtype is ResourceType.SCREEN:
                screen += record.active_time
            else:
                wakelock += record.active_time
        search = locked = 0.0
        fixes = 0
        for record in phone.location.records:
            if record.uid == uid:
                search += record.search_time
                locked += record.locked_time
                fixes += record.fixes_delivered
        events = sum(
            r.events_delivered for r in phone.sensors.records
            if r.uid == uid
        )
        return {
            "wakelock": wakelock,
            "screen": screen,
            "cpu": phone.cpu.cpu_time(uid),
            "search": search,
            "locked": locked,
            "fixes": fixes,
            "events": events,
            "energy": phone.monitor.ledger.app_total_mj(uid),
        }

    def _sample(self):
        now = self.phone.sim.now
        for uid in self.uids:
            current = self._snapshot(uid)
            previous = self._previous[uid]
            self._previous[uid] = current
            self.samples[uid].append(AppSample(
                time=now,
                uid=uid,
                wakelock_time=current["wakelock"] - previous["wakelock"],
                screen_time=current["screen"] - previous["screen"],
                cpu_time=current["cpu"] - previous["cpu"],
                gps_search_time=current["search"] - previous["search"],
                gps_locked_time=current["locked"] - previous["locked"],
                gps_fixes=current["fixes"] - previous["fixes"],
                sensor_events=current["events"] - previous["events"],
                power_mw=(current["energy"] - previous["energy"])
                / self.interval_s,
            ))
