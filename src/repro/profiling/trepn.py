"""Trepn-like per-app profiler: samples a metric vector every interval.

Reproduces the §2.1 methodology: "a profiling tool that samples a vector
of per-app metrics every 60s, e.g., wakelock time, CPU usage". Each
sample row holds the *delta* over the past interval, which is what the
Figs. 1-4 plots show per one-minute measurement interval.

Snapshot cost is kept off the record population: the sampler maintains
per-uid record indices (fed by the services' ``on_*_created``
notifications, preserving creation order so float summation order -- and
therefore every golden figure -- is unchanged) and settles only the
records it actually reads, instead of walking and settling every record
of every app on each sample.
"""

from dataclasses import dataclass

from repro.droid.resources import ResourceType


@dataclass
class AppSample:
    """One per-app sample: deltas over the past interval."""

    time: float
    uid: int
    wakelock_time: float  # honoured partial-wakelock seconds
    screen_time: float  # honoured screen-lock seconds
    cpu_time: float  # busy core-seconds
    gps_search_time: float  # "GPS try duration" (Fig. 1's metric)
    gps_locked_time: float
    gps_fixes: int
    sensor_events: int
    power_mw: float  # average attributed draw over the interval

    @property
    def cpu_over_wakelock(self):
        """The Fig. 3/4 ratio; can exceed 1 with multi-core spinning."""
        if self.wakelock_time <= 0:
            return 0.0
        return self.cpu_time / self.wakelock_time


class TrepnSampler:
    """Samples one or more apps every ``interval_s`` simulated seconds."""

    def __init__(self, phone, uids, interval_s=60.0):
        self.phone = phone
        self.uids = list(uids)
        self.interval_s = interval_s
        self.samples = {uid: [] for uid in self.uids}
        self._previous = {}
        self._timer = None
        self._tracked = set(self.uids)
        # Per-uid record indices, in creation order (matches the append
        # order of the services' ``records`` lists, so per-uid float sums
        # are bit-identical to a filtered full walk).
        self._power_records = {uid: [] for uid in self.uids}
        self._location_records = {uid: [] for uid in self.uids}
        self._sensor_records = {uid: [] for uid in self.uids}

    def start(self):
        phone = self.phone
        for record in phone.power.records:
            self.on_wakelock_created(record)
        for record in phone.location.records:
            self.on_location_created(record)
        for record in phone.sensors.records:
            self.on_sensor_created(record)
        phone.power.listeners.append(self)
        phone.location.listeners.append(self)
        phone.sensors.listeners.append(self)
        for uid in self.uids:
            self._previous[uid] = self._snapshot(uid)
        self._timer = phone.sim.every(self.interval_s, self._sample)
        return self

    def stop(self):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for service in (self.phone.power, self.phone.location,
                        self.phone.sensors):
            if self in service.listeners:
                service.listeners.remove(self)

    def rows(self, uid):
        return list(self.samples[uid])

    # -- service notifications (index maintenance) ------------------------------

    def on_wakelock_created(self, record):
        if record.uid in self._tracked:
            self._power_records[record.uid].append(record)

    def on_location_created(self, record):
        if record.uid in self._tracked:
            self._location_records[record.uid].append(record)

    def on_sensor_created(self, record):
        if record.uid in self._tracked:
            self._sensor_records[record.uid].append(record)

    # -- internals -------------------------------------------------------------

    def _snapshot(self, uid):
        phone = self.phone
        # Location settle has service-level side effects (distance
        # integration, rail-owner refresh) the metrics depend on; power
        # records only need their own counters folded, and sensor event
        # counts are maintained eagerly on delivery -- no settle at all.
        phone.location.settle_stats()
        phone.monitor.settle()
        wakelock = screen = 0.0
        for record in self._power_records[uid]:
            record.settle()
            if record.rtype is ResourceType.SCREEN:
                screen += record.active_time
            else:
                wakelock += record.active_time
        search = locked = 0.0
        fixes = 0
        for record in self._location_records[uid]:
            search += record.search_time
            locked += record.locked_time
            fixes += record.fixes_delivered
        events = sum(r.events_delivered for r in self._sensor_records[uid])
        return {
            "wakelock": wakelock,
            "screen": screen,
            "cpu": phone.cpu.cpu_time(uid),
            "search": search,
            "locked": locked,
            "fixes": fixes,
            "events": events,
            "energy": phone.monitor.ledger.app_total_mj(uid),
        }

    def _sample(self):
        now = self.phone.sim.now
        for uid in self.uids:
            current = self._snapshot(uid)
            previous = self._previous[uid]
            self._previous[uid] = current
            self.samples[uid].append(AppSample(
                time=now,
                uid=uid,
                wakelock_time=current["wakelock"] - previous["wakelock"],
                screen_time=current["screen"] - previous["screen"],
                cpu_time=current["cpu"] - previous["cpu"],
                gps_search_time=current["search"] - previous["search"],
                gps_locked_time=current["locked"] - previous["locked"],
                gps_fixes=current["fixes"] - previous["fixes"],
                sensor_events=current["events"] - previous["events"],
                power_mw=(current["energy"] - previous["energy"])
                / self.interval_s,
            ))
