"""Monsoon-like system power monitor.

The hardware Monsoon samples total device draw at 100 ms; our power model
is piecewise-constant, so the monitor offers both a faithful sampler (for
time-series plots) and exact interval energy integration (for the
Fig. 13 averages, cheaper and noise-free).
"""


class MonsoonMonitor:
    """System-wide power measurement for a Phone."""

    def __init__(self, phone, sample_interval_s=1.0):
        self.phone = phone
        self.sample_interval_s = sample_interval_s
        self.samples = []  # (time, instantaneous system mW)
        self._timer = None
        self._marks = []

    # -- sampling -----------------------------------------------------------

    def start_sampling(self):
        self._timer = self.phone.sim.every(
            self.sample_interval_s, self._sample
        )
        return self

    def stop_sampling(self):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self):
        self.samples.append(
            (self.phone.sim.now, self.phone.monitor.instantaneous_power_mw())
        )

    # -- exact interval measurement ----------------------------------------------

    def mark(self):
        """Start an exact measurement window; returns a mark token."""
        self.phone.monitor.settle()
        token = (self.phone.sim.now, self.phone.monitor.ledger.total_mj())
        self._marks.append(token)
        return token

    def average_power_mw(self, mark):
        """Exact average system draw since ``mark``, in mW."""
        self.phone.monitor.settle()
        start_time, start_energy = mark
        elapsed = self.phone.sim.now - start_time
        if elapsed <= 0:
            return 0.0
        return (self.phone.monitor.ledger.total_mj() - start_energy) / elapsed
