"""Monsoon-like system power monitor.

The hardware Monsoon samples total device draw at 100 ms; our power model
is piecewise-constant, so the monitor offers both a faithful sampler (for
time-series plots) and exact interval energy integration (for the
Fig. 13 averages, cheaper and noise-free).

The sampler is *event-driven*: instead of a periodic timer polling
``instantaneous_power_mw`` (one dispatched event per sample, dominating
idle-device event counts), it subscribes to the power monitor's
rail-change notifications and lazily synthesizes the piecewise-constant
sample series on demand. Because total draw only changes at rail
changes, the synthesized series is exactly what the poller would have
recorded, at zero events on the simulator's queue.
"""


class MonsoonMonitor:
    """System-wide power measurement for a Phone."""

    def __init__(self, phone, sample_interval_s=1.0):
        self.phone = phone
        self.sample_interval_s = sample_interval_s
        self._samples = []  # materialized (time, mW) pairs
        self._marks = []
        self._active = False
        #: Power-level change points since the last materialization:
        #: (time, total mW), ascending, coalesced per instant.
        self._levels = []
        self._start_time = 0.0
        self._next_k = 1  # next sample index: t_k = start + k * interval

    # -- sampling -----------------------------------------------------------

    def start_sampling(self):
        """Begin recording the sample series from the current instant."""
        if self._active:
            return self
        monitor = self.phone.monitor
        self._active = True
        self._start_time = self.phone.sim.now
        self._next_k = 1
        self._levels = [(self._start_time, monitor.instantaneous_power_mw())]
        monitor.rail_listeners.append(self._on_rail_change)
        return self

    def stop_sampling(self):
        """Stop recording; samples up to the current instant are kept."""
        if not self._active:
            return
        self._materialize(self.phone.sim.now, inclusive=True)
        self.phone.monitor.rail_listeners.remove(self._on_rail_change)
        self._active = False

    @property
    def samples(self):
        """The ``(time, mW)`` series a 1/interval poller would have seen.

        Synthesized lazily from recorded power-level change points. A
        sample landing on the same instant as rail changes reads the
        level after all of that instant's changes (the poller's value
        depended on intra-instant event ordering; no consumer relies on
        it).
        """
        if self._active:
            self._materialize(self.phone.sim.now, inclusive=True)
        return self._samples

    def _on_rail_change(self, rail, power_mw, owners):
        now = self.phone.sim.now
        # Samples strictly before this change still read the old level.
        self._materialize(now, inclusive=False)
        total = self.phone.monitor.instantaneous_power_mw()
        last_time, last_total = self._levels[-1]
        if last_time == now:
            self._levels[-1] = (now, total)  # coalesce same-instant changes
        elif total != last_total:
            self._levels.append((now, total))

    def _materialize(self, limit, inclusive):
        """Synthesize pending samples with time < (or <=) ``limit``."""
        interval = self.sample_interval_s
        start = self._start_time
        levels = self._levels
        samples = self._samples
        k = self._next_k
        i = 0  # index of the level in effect at the current sample time
        while True:
            t = start + k * interval
            if t > limit or (t == limit and not inclusive):
                break
            while i + 1 < len(levels) and levels[i + 1][0] <= t:
                i += 1
            samples.append((t, levels[i][1]))
            k += 1
        self._next_k = k
        if i > 0:  # earlier change points can never matter again
            del levels[:i]

    # -- exact interval measurement ----------------------------------------------

    def mark(self):
        """Start an exact measurement window; returns a mark token."""
        self.phone.monitor.settle()
        token = (self.phone.sim.now, self.phone.monitor.ledger.total_mj())
        self._marks.append(token)
        return token

    def average_power_mw(self, mark):
        """Exact average system draw since ``mark``, in mW."""
        self.phone.monitor.settle()
        start_time, start_energy = mark
        elapsed = self.phone.sim.now - start_time
        if elapsed <= 0:
            return 0.0
        return (self.phone.monitor.ledger.total_mj() - start_energy) / elapsed
