"""Measurement tooling standing in for the paper's profilers.

- :class:`~repro.profiling.trepn.TrepnSampler` -- per-app metric sampling
  every 60 s (wakelock holding time, CPU usage, GPS try duration...),
  the source of the Figs. 1-4 time series.
- :class:`~repro.profiling.monsoon.MonsoonMonitor` -- system power
  sampling, the source of the Fig. 13 whole-device numbers.
"""

from repro.profiling.monsoon import MonsoonMonitor
from repro.profiling.trepn import AppSample, TrepnSampler

__all__ = ["TrepnSampler", "AppSample", "MonsoonMonitor"]
