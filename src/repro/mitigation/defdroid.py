"""DefDroid-style fine-grained throttling (paper §7.3 baseline).

DefDroid watches *per-app* resource holding and throttles apps whose use
of a resource class has run "too long": it forcibly pauses long-held
wakelocks / screen locks for a penalty period and duty-cycles
long-running GPS / sensor use. Accounting is per (app, resource class) --
an app cannot dodge the throttle by recycling fresh registrations (the
WHERE pattern).

Settings are deliberately conservative (the paper: "the mechanism
inherently cannot distinguish legitimate behavior from misbehavior so its
settings have to be conservative"), which is why it lags LeaseOS:
misbehaving apps run unthrottled until the threshold trips, and GPS
duty-cycling must stay gentle to avoid breaking navigation apps.
"""

from collections import defaultdict
from dataclasses import dataclass

from repro.droid.resources import ResourceType
from repro.mitigation.base import Mitigation, QuiescenceGuard


@dataclass(frozen=True)
class ThrottleRule:
    """After ``threshold_s`` of honoured holding (accumulated per app and
    resource class), revoke the app's objects of that class for
    ``revoke_s``, then restore and start accumulating again."""

    rtype: ResourceType
    threshold_s: float
    revoke_s: float


#: Conservative defaults, tuned per resource class like DefDroid's
#: per-resource policies. GPS is throttled most gently (duty cycling a
#: navigation app hard would break it), which is exactly why DefDroid is
#: weakest on the GPS rows of Table 5.
DEFAULT_RULES = {
    ResourceType.WAKELOCK: ThrottleRule(ResourceType.WAKELOCK, 60.0, 300.0),
    ResourceType.SCREEN: ThrottleRule(ResourceType.SCREEN, 60.0, 300.0),
    ResourceType.GPS: ThrottleRule(ResourceType.GPS, 70.0, 50.0),
    ResourceType.SENSOR: ThrottleRule(ResourceType.SENSOR, 60.0, 150.0),
    ResourceType.WIFI: ThrottleRule(ResourceType.WIFI, 60.0, 300.0),
    ResourceType.BLUETOOTH: ThrottleRule(ResourceType.BLUETOOTH, 60.0,
                                         150.0),
}


class DefDroid(Mitigation):
    """Per-app holding-time-threshold throttling."""

    name = "defdroid"

    SCAN_INTERVAL_S = 10.0

    def __init__(self, rules=None):
        self.rules = dict(DEFAULT_RULES)
        if rules:
            self.rules.update(rules)
        self.throttle_events = 0
        self._markers = defaultdict(float)  # (uid, rtype) -> settled s
        self._throttled = set()  # (uid, rtype) currently revoked

    def install(self, phone):
        self.phone = phone
        self.sim = phone.sim
        self._services = {
            ResourceType.WAKELOCK: phone.power,
            ResourceType.SCREEN: phone.power,
            ResourceType.GPS: phone.location,
            ResourceType.SENSOR: phone.sensors,
            ResourceType.WIFI: phone.wifi,
            ResourceType.BLUETOOTH: phone.bluetooth,
        }
        for service in (phone.power, phone.location, phone.sensors,
                        phone.wifi, phone.bluetooth):
            service.gates.append(self._gate)
        self._guard = QuiescenceGuard(
            (phone.power, phone.location, phone.sensors, phone.wifi,
             phone.bluetooth))
        self.sim.every(self.SCAN_INTERVAL_S, self._scan)

    def _gate(self, record):
        """Deny (pretend-succeed) acquires while the class is throttled."""
        return (record.uid, record.rtype) not in self._throttled

    # -- internals ----------------------------------------------------------

    def _all_records(self):
        for service in (self.phone.power, self.phone.location,
                        self.phone.sensors, self.phone.wifi,
                        self.phone.bluetooth):
            for record in service.records:
                yield record

    def _aggregate_active(self, uid, rtype):
        total = 0.0
        for record in self._all_records():
            if record.uid == uid and record.rtype is rtype:
                record.settle()
                total += record.active_time
        return total

    def _scan(self):
        if not self._guard.should_scan():
            return
        seen = set()
        for record in self._all_records():
            key = (record.uid, record.rtype)
            if key in seen or key in self._throttled or record.dead:
                continue
            seen.add(key)
            rule = self.rules.get(record.rtype)
            if rule is None:
                continue
            used = self._aggregate_active(*key) - self._markers[key]
            if used >= rule.threshold_s:
                self._throttle(key, rule)

    def _throttle(self, key, rule):
        uid, rtype = key
        service = self._services[rtype]
        for record in list(service.records):
            if record.uid == uid and record.rtype is rtype \
                    and record.os_active:
                service.revoke(record)
        self._throttled.add(key)
        self.throttle_events += 1
        self.sim.schedule(rule.revoke_s, lambda: self._restore(key))

    def _restore(self, key):
        uid, rtype = key
        self._throttled.discard(key)
        service = self._services[rtype]
        for record in list(service.records):
            if record.uid == uid and record.rtype is rtype \
                    and not record.dead:
                service.restore(record)
        self._markers[key] = self._aggregate_active(uid, rtype)
