"""Runtime mitigations: LeaseOS and the baselines it is evaluated against.

- :class:`~repro.mitigation.vanilla.Vanilla` -- stock ask-use-release.
- :class:`~repro.mitigation.leaseos.LeaseOS` -- the paper's mechanism.
- :class:`~repro.mitigation.doze.Doze` -- Android Doze (with the paper's
  forced-aggressive variant).
- :class:`~repro.mitigation.defdroid.DefDroid` -- threshold-based
  fine-grained throttling in the style of DefDroid.
- :class:`~repro.mitigation.throttle.TimedThrottle` -- pure time-based
  throttling, "essentially leases with only a single term" (§7.4).
"""

from repro.mitigation.amplify import Amplify
from repro.mitigation.base import Mitigation
from repro.mitigation.battery_saver import BatterySaver
from repro.mitigation.composite import Composite
from repro.mitigation.defdroid import DefDroid
from repro.mitigation.doze import Doze
from repro.mitigation.leaseos import LeaseOS
from repro.mitigation.throttle import TimedThrottle
from repro.mitigation.vanilla import Vanilla

__all__ = [
    "Mitigation",
    "Amplify",
    "BatterySaver",
    "Composite",
    "Vanilla",
    "LeaseOS",
    "Doze",
    "DefDroid",
    "TimedThrottle",
]
