"""Amplify-style wakelock rate limiting (§7.3's other throttler).

Amplify (the NlpUnbounce/Xposed module the paper cites alongside
DefDroid) caps how *often* an app may take a wakelock: acquires arriving
faster than the per-app budget are denied (pretend-success). It never
inspects utility and never touches an already-held lock, so it helps
against acquire-storms but does nothing for the long-holding leaks that
dominate Table 5 -- a useful contrast to both DefDroid and LeaseOS.
"""

from collections import defaultdict

from repro.droid.power_manager import WakeLockLevel
from repro.mitigation.base import Mitigation


class Amplify(Mitigation):
    """Per-app minimum spacing between honoured wakelock acquires."""

    name = "amplify"

    def __init__(self, min_interval_s=60.0):
        self.min_interval_s = min_interval_s
        self.denied = 0
        self._last_honoured = defaultdict(lambda: -float("inf"))

    def install(self, phone):
        self.phone = phone
        phone.power.gates.append(self._gate)

    def _gate(self, record):
        if record.level is WakeLockLevel.SCREEN_BRIGHT:
            return True
        now = self.phone.sim.now
        if now - self._last_honoured[record.uid] < self.min_interval_s:
            self.denied += 1
            return False
        self._last_honoured[record.uid] = now
        return True
