"""LeaseOS as an installable mitigation: manager + one proxy per service."""

from repro.core.manager import LeaseManager
from repro.core.proxy import (
    AudioLeaseProxy,
    BluetoothLeaseProxy,
    LocationLeaseProxy,
    SensorLeaseProxy,
    WakelockLeaseProxy,
    WifiLeaseProxy,
)
from repro.mitigation.base import Mitigation


class LeaseOS(Mitigation):
    """Installs the lease manager and the per-service lease proxies."""

    name = "leaseos"

    def __init__(self, policy=None):
        self.policy = policy
        self.manager = None
        self.proxies = {}

    def install(self, phone):
        self.phone = phone
        self.manager = LeaseManager(phone, self.policy)
        phone.lease_manager = self.manager
        self.proxies = {
            "power": WakelockLeaseProxy(self.manager, phone.power),
            "location": LocationLeaseProxy(self.manager, phone.location),
            "sensors": SensorLeaseProxy(self.manager, phone.sensors),
            "wifi": WifiLeaseProxy(self.manager, phone.wifi),
            "audio": AudioLeaseProxy(self.manager, phone.audio),
            "bluetooth": BluetoothLeaseProxy(self.manager,
                                             phone.bluetooth),
        }
