"""Composing mitigations: run several governors on one phone.

LeaseOS is per-lease and Doze is system-wide; on a real device they
would coexist (LeaseOS is built *on top of* stock Android, which ships
Doze). The composite installs each mitigation in order; the service
gate/revoke machinery already tolerates multiple governors because
``revoke``/``restore`` are idempotent on the ``os_active`` flag and
gates are conjunctive.
"""

from repro.mitigation.base import Mitigation


class Composite(Mitigation):
    """Install several mitigations on the same phone, in order."""

    name = "composite"

    def __init__(self, mitigations):
        if not mitigations:
            raise ValueError("composite needs at least one mitigation")
        self.mitigations = list(mitigations)
        self.name = "+".join(m.name for m in self.mitigations)

    def install(self, phone):
        self.phone = phone
        for mitigation in self.mitigations:
            mitigation.install(phone)

    def __repr__(self):
        return "Composite({})".format(self.name)
