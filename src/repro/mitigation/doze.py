"""Android Doze reimplementation (paper §7.3 baseline).

Doze is a *system-wide* idle mode: when the device has been unused for a
while (or immediately, in the paper's forced-aggressive variant), it
ignores background partial wakelocks, stops background location and
sensor delivery, defers background network and wakeup alarms, and only
periodically opens a maintenance window. Crucially it is all-or-nothing:
any non-trivial device activity (user touch, ambient events) interrupts
the deferral for everything, which is why the paper finds it much less
effective than per-lease deferral -- and why it cannot help at all with
screen wakelocks (Table 5: ConnectBot-screen 0.57%).
"""

import enum
import random

from repro.droid.power_manager import WakeLockLevel
from repro.mitigation.base import Mitigation


class DozeState(enum.Enum):
    ACTIVE = "active"  # not dozing
    DOZING = "dozing"
    MAINTENANCE = "maintenance"


class Doze(Mitigation):
    """System-wide background deferral with maintenance windows."""

    name = "doze"

    def __init__(self, aggressive=False, idle_threshold_s=1800.0,
                 reentry_delay_s=60.0, maintenance_interval_s=900.0,
                 maintenance_window_s=30.0, interruption_min_s=10.0,
                 interruption_max_s=30.0):
        self.aggressive = aggressive
        self.idle_threshold_s = idle_threshold_s
        self.reentry_delay_s = reentry_delay_s
        self.maintenance_interval_s = maintenance_interval_s
        self.maintenance_window_s = maintenance_window_s
        self.interruption_min_s = interruption_min_s
        self.interruption_max_s = interruption_max_s
        self.state = DozeState.ACTIVE
        self.doze_entries = 0
        self._revoked = []  # (service, record) pairs we revoked
        self._queued_alarms = []
        self._reentry_timer = None
        self._maintenance_timer = None

    # -- installation ---------------------------------------------------------

    def install(self, phone):
        self.phone = phone
        self.sim = phone.sim
        self._rng = random.Random(20190413)
        self._last_activity = self.sim.now
        phone.user_activity_listeners.append(self._on_user_activity)
        phone.ambient_listeners.append(self._on_ambient_event)
        phone.alarms.policy = self
        phone.jobs.policy = self
        phone.net.restrictor = self._network_allowed
        phone.power.gates.append(self._gate_wakelock)
        phone.location.gates.append(self._gate_generic)
        phone.sensors.gates.append(self._gate_generic)
        phone.wifi.gates.append(self._gate_generic)
        phone.bluetooth.gates.append(self._gate_generic)
        self.sim.every(30.0, self._idle_check)
        if self.aggressive:
            # The paper forces Doze on at the start of each experiment.
            self.sim.schedule(0.0, self._enter_doze)

    # -- exemptions ------------------------------------------------------------

    def _exempt(self, uid):
        app = self.phone.apps.get(uid)
        if app is None:
            return True  # system
        if app.foreground_service or app.foreground:
            return True
        return False

    # -- gates & policy hooks ------------------------------------------------------

    def _gate_wakelock(self, record):
        if self.state is not DozeState.DOZING:
            return True
        if record.level is WakeLockLevel.SCREEN_BRIGHT:
            return True  # Doze does not manage the screen
        if self._exempt(record.uid):
            return True
        self._remember(self.phone.power, record)
        return False

    def _gate_generic(self, record):
        if self.state is not DozeState.DOZING:
            return True
        if self._exempt(record.uid):
            return True
        services = {
            "gps": self.phone.location,
            "sensor": self.phone.sensors,
            "wifi": self.phone.wifi,
            "bluetooth": self.phone.bluetooth,
        }
        self._remember(services[record.rtype.value], record)
        return False

    def _network_allowed(self, uid):
        if self.state is not DozeState.DOZING:
            return True
        return self._exempt(uid)

    def intercept_alarm(self, alarm):
        """AlarmManager policy: defer background wakeups while dozing."""
        if self.state is not DozeState.DOZING:
            return False
        if self._exempt(alarm.uid):
            return False
        self._queued_alarms.append(alarm)
        return True

    def intercept_job(self, job):
        """JobScheduler policy: defer background jobs while dozing."""
        if self.state is not DozeState.DOZING:
            return False
        return not self._exempt(job.app.uid)

    # -- doze lifecycle ----------------------------------------------------------

    def _idle_check(self):
        if self.state is not DozeState.ACTIVE:
            return
        idle_for = self.sim.now - self._last_activity
        threshold = (self.reentry_delay_s if self.aggressive
                     else self.idle_threshold_s)
        if idle_for < threshold:
            return  # cheapest predicate first: most checks end here
        if self.phone.env.gps.speed_mps < 0.1 \
                and not self.phone.display.screen_on:
            self._enter_doze()

    def _enter_doze(self):
        if self.state is DozeState.DOZING:
            return
        if self.phone.display.screen_on and not self.aggressive:
            return
        self.state = DozeState.DOZING
        self.doze_entries += 1
        self._revoke_background()
        self._schedule_maintenance()

    def _exit_doze(self):
        if self.state is DozeState.ACTIVE:
            return
        self.state = DozeState.ACTIVE
        self._cancel_maintenance()
        self._restore_all()
        self._flush_alarms()
        self._last_activity = self.sim.now

    def _on_user_activity(self):
        self._last_activity = self.sim.now
        if self.state is not DozeState.ACTIVE:
            self._exit_doze()

    def _on_ambient_event(self):
        """Non-trivial device activity interrupts the deferral (§7.3)."""
        if self.state is DozeState.DOZING:
            self._exit_doze()
            # The activity keeps the device "in use" for a short while;
            # the idle check re-enters doze once it has been quiet for the
            # (re-entry) threshold again.
            hold = self._rng.uniform(self.interruption_min_s,
                                     self.interruption_max_s)
            self._last_activity = self.sim.now + hold

    # -- maintenance windows ------------------------------------------------------

    def _schedule_maintenance(self):
        self._maintenance_timer = self.sim.schedule(
            self.maintenance_interval_s, self._begin_maintenance
        )

    def _cancel_maintenance(self):
        if self._maintenance_timer is not None:
            self._maintenance_timer.cancel()
            self._maintenance_timer = None

    def _begin_maintenance(self):
        if self.state is not DozeState.DOZING:
            return
        self.state = DozeState.MAINTENANCE
        self._restore_all()
        self._flush_alarms()
        self.phone.suspend.hold_awake("doze-maintenance",
                                      self.maintenance_window_s)
        self._maintenance_timer = self.sim.schedule(
            self.maintenance_window_s, self._end_maintenance
        )

    def _end_maintenance(self):
        if self.state is not DozeState.MAINTENANCE:
            return
        self.state = DozeState.DOZING
        self._revoke_background()
        self._schedule_maintenance()

    # -- revocation bookkeeping ------------------------------------------------------

    def _remember(self, service, record):
        self._revoked.append((service, record))

    def _revoke_background(self):
        power = self.phone.power
        for record in list(power.honoured_records()):
            if record.level is WakeLockLevel.SCREEN_BRIGHT:
                continue
            if self._exempt(record.uid):
                continue
            power.revoke(record)
            self._remember(power, record)
        for service in (self.phone.location, self.phone.sensors,
                        self.phone.wifi, self.phone.bluetooth):
            for record in list(service.records):
                if record.os_active and not self._exempt(record.uid):
                    service.revoke(record)
                    self._remember(service, record)

    def _restore_all(self):
        revoked, self._revoked = self._revoked, []
        for service, record in revoked:
            service.restore(record)

    def _flush_alarms(self):
        queued, self._queued_alarms = self._queued_alarms, []
        for alarm in queued:
            self.phone.alarms.deliver_now(alarm)
        self.phone.jobs.flush_pending()
