"""Pure time-based throttling: "leases with only a single term" (§7.4).

Every resource gets a fixed budget of honoured time; when it runs out the
resource is revoked, with no utility check and no automatic restore. An
app that explicitly re-acquires gets a fresh budget (the re-acquire IPC
passes the gates and reactivates the object), but listener-style apps
that registered once -- fitness trackers, music streamers, monitors --
simply lose their resource mid-function. This is the §7.4 comparison
that shows why leases need the utilitarian feedback loop.
"""

from repro.mitigation.base import Mitigation, QuiescenceGuard


class TimedThrottle(Mitigation):
    """One fixed term per resource instance, then permanent revocation."""

    name = "timed-throttle"

    SCAN_INTERVAL_S = 5.0

    def __init__(self, term_s=300.0):
        self.term_s = term_s
        self.revocations = 0
        self._markers = {}  # record -> active_time at last (re-)acquire

    def install(self, phone):
        self.phone = phone
        self.sim = phone.sim
        self._services = [
            phone.power, phone.location, phone.sensors, phone.wifi,
            phone.bluetooth,
        ]
        # A fresh explicit acquire restarts the budget.
        phone.power.listeners.append(self)
        phone.wifi.listeners.append(self)
        self._guard = QuiescenceGuard(self._services)
        self.sim.every(self.SCAN_INTERVAL_S, self._scan)

    # acquire listeners: reset the marker so the new hold gets a new term
    def on_wakelock_acquire(self, record, allowed):
        record.settle()
        self._markers[record] = record.active_time

    def on_wifilock_acquire(self, record, allowed):
        record.settle()
        self._markers[record] = record.active_time

    def _scan(self):
        if not self._guard.should_scan():
            return
        for service in self._services:
            for record in service.records:
                if record.dead or not record.os_active:
                    continue
                record.settle()
                used = record.active_time - self._markers.get(record, 0.0)
                if used >= self.term_s:
                    service.revoke(record)
                    self.revocations += 1
