"""Vanilla Android: the unmodified ask-use-release model (no mitigation)."""

from repro.mitigation.base import Mitigation


class Vanilla(Mitigation):
    """Stock behaviour: resources persist until explicitly released."""

    name = "vanilla"

    def install(self, phone):
        self.phone = phone
