"""Mitigation interface: something installed into a Phone at boot."""


class Mitigation:
    """Base class; a mitigation hooks phone services when installed."""

    name = "mitigation"

    def install(self, phone):
        raise NotImplementedError

    def __repr__(self):
        return "{}()".format(type(self).__name__)
