"""Mitigation interface: something installed into a Phone at boot."""


class Mitigation:
    """Base class; a mitigation hooks phone services when installed."""

    name = "mitigation"

    def install(self, phone):
        raise NotImplementedError

    def __repr__(self):
        return "{}()".format(type(self).__name__)


class QuiescenceGuard:
    """Dirty-flag early-out for periodic resource scans.

    Governors that poll the services every few seconds (DefDroid,
    TimedThrottle) pay the full record walk even on a completely idle
    device. This guard answers "could this scan possibly act?" in O(#services):

    - if any service has an *active* (honoured) record, holding time is
      still accruing, so a threshold may trip -- scan;
    - otherwise, if any service gained records or flipped a record's
      honoured state since the last scan (the ``(len(records),
      transitions)`` fingerprint changed), aggregates may have moved --
      scan once more;
    - otherwise every per-record quantity the scan reads is frozen at
      values the previous scan already judged, so the scan is provably a
      no-op -- skip it.

    Skipped scans are *exactly* no-ops, not approximately: scans only act
    on accumulated ``active_time`` (frozen while nothing is active) and
    record-set membership (covered by the fingerprint).
    """

    def __init__(self, services):
        self._services = tuple(services)
        self._seen = None

    def should_scan(self):
        fingerprint = tuple(
            (len(s.records), s.transitions) for s in self._services
        )
        if fingerprint != self._seen:
            self._seen = fingerprint
            return True
        return any(s.active_count for s in self._services)
