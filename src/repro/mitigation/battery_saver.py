"""Android-style Battery Saver: a threshold-triggered blanket mode.

Another real runtime mechanism in the paper's design space: when the
battery falls below a threshold, the saver restricts background work
(wakelocks, location, jobs, background network) and dims the screen
until charge recovers (or, here, until disabled). Like Doze it is
utility-blind -- it punishes the K-9s and the RunKeepers alike -- which
is why it complements rather than replaces the lease mechanism.
"""

from repro.droid.power_manager import WakeLockLevel
from repro.mitigation.base import Mitigation


class BatterySaver(Mitigation):
    """Activates below a battery threshold; restricts background work."""

    name = "battery-saver"

    CHECK_INTERVAL_S = 30.0

    def __init__(self, threshold_level=0.15, dim_screen=True):
        self.threshold_level = threshold_level
        self.dim_screen = dim_screen
        self.active = False
        self.activations = 0
        self._revoked = []
        self._last_remaining_mj = None

    def install(self, phone):
        self.phone = phone
        self.sim = phone.sim
        phone.power.gates.append(self._gate_wakelock)
        phone.location.gates.append(self._gate_generic)
        phone.net.restrictor = self._network_allowed
        phone.jobs.policy = self
        self.sim.every(self.CHECK_INTERVAL_S, self._check)

    # -- hooks ---------------------------------------------------------------

    def _exempt(self, uid):
        app = self.phone.apps.get(uid)
        if app is None:
            return True
        return app.foreground_service or app.foreground

    def _gate_wakelock(self, record):
        if not self.active or self._exempt(record.uid):
            return True
        if record.level is WakeLockLevel.SCREEN_BRIGHT:
            return True
        self._revoked.append((self.phone.power, record))
        return False

    def _gate_generic(self, record):
        if not self.active or self._exempt(record.uid):
            return True
        self._revoked.append((self.phone.location, record))
        return False

    def _network_allowed(self, uid):
        return not self.active or self._exempt(uid)

    def intercept_job(self, job):
        return self.active and not self._exempt(job.app.uid)

    # -- state ---------------------------------------------------------------

    def _check(self):
        # The battery only moves at settle points; an unchanged charge
        # re-evaluates to the exact decision the previous check made.
        remaining = self.phone.battery.remaining_mj
        if remaining == self._last_remaining_mj:
            return
        self._last_remaining_mj = remaining
        should_be_active = self.phone.battery.level <= self.threshold_level
        if should_be_active and not self.active:
            self._activate()
        elif not should_be_active and self.active:
            self._deactivate()

    def _activate(self):
        self.active = True
        self.activations += 1
        power = self.phone.power
        for record in list(power.honoured_records()):
            if record.level is WakeLockLevel.SCREEN_BRIGHT:
                continue
            if self._exempt(record.uid):
                continue
            power.revoke(record)
            self._revoked.append((power, record))
        for record in list(self.phone.location.records):
            if record.os_active and not self._exempt(record.uid):
                self.phone.location.revoke(record)
                self._revoked.append((self.phone.location, record))
        if self.dim_screen:
            self.phone.display.set_dimmed(True)
        self.phone.broadcasts.publish("battery-low",
                                      {"level": self.phone.battery.level})

    def _deactivate(self):
        self.active = False
        revoked, self._revoked = self._revoked, []
        for service, record in revoked:
            service.restore(record)
        if self.dim_screen:
            self.phone.display.set_dimmed(False)
        self.phone.jobs.flush_pending()
