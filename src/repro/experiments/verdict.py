"""The reproduction scorecard: every paper claim, checked in one run.

``run()`` executes (scaled-down where safe) versions of all the
evaluation harnesses and grades each of the paper's quantitative claims
PASS/FAIL. This is the one-stop answer to "does the reproduction hold?",
and the benchmark writes it to ``results/verdict.txt``.
"""

import statistics

from dataclasses import dataclass


@dataclass
class Claim:
    section: str
    statement: str
    paper: str
    measured: str
    passed: bool


def _check_table5(claims):
    from repro.experiments import table5

    rows = table5.run(minutes=30.0)
    avg = table5.averages(rows)
    claims.append(Claim(
        "Table 5", "LeaseOS cuts wasted power ~92% on average",
        "92.6%", "{:.1f}%".format(avg["leaseos"]),
        85.0 <= avg["leaseos"] <= 99.0,
    ))
    claims.append(Claim(
        "Table 5", "Doze is much less effective (~70%)",
        "69.6%", "{:.1f}%".format(avg["doze"]),
        avg["doze"] < avg["leaseos"] - 15.0 and avg["doze"] > 40.0,
    ))
    claims.append(Claim(
        "Table 5", "DefDroid is much less effective (~62%)",
        "62.0%", "{:.1f}%".format(avg["defdroid"]),
        avg["defdroid"] < avg["leaseos"] - 15.0 and avg["defdroid"] > 40.0,
    ))
    by_key = {r.case.key: r for r in rows}
    screen = max(by_key["connectbot-screen"].doze_reduction,
                 by_key["standup-timer"].doze_reduction)
    claims.append(Claim(
        "Table 5", "Doze cannot mitigate screen-wakelock bugs",
        "0.57% / 4.33%", "{:.1f}% (worst screen row)".format(screen),
        screen < 10.0,
    ))
    gps = statistics.mean(r.defdroid_reduction for r in rows
                          if r.case.resource.value == "gps")
    claims.append(Claim(
        "Table 5", "DefDroid is weakest on GPS (blind duty cycling)",
        "26-65%", "{:.1f}% avg".format(gps), gps < 60.0,
    ))
    confirmed = sum(1 for r in rows if r.behavior_confirmed)
    claims.append(Claim(
        "Table 5", "every case classified with its paper behaviour",
        "20/20", "{}/20".format(confirmed), confirmed >= 19,
    ))


def _check_fig9(claims):
    from repro.experiments.lease_term import PAPER_FIG9A, run_fig9a

    results = run_fig9a()
    ok = all(
        abs(results[term] - expected) / expected < 0.05
        for term, expected in PAPER_FIG9A.items()
    )
    claims.append(Claim(
        "Fig. 9", "holding time follows the lease-term analysis",
        "904/1201/1560/1800 s",
        "/".join("{:.0f}".format(results[t])
                 for t in sorted(PAPER_FIG9A)), ok,
    ))


def _check_fig12(claims):
    from repro.experiments.lambda_sweep import PAPER_FIG12, run

    results = run(cases=120, slices_per_case=120)
    ok = all(abs(results[lam] - expected) < 0.05
             for lam, expected in PAPER_FIG12.items())
    claims.append(Claim(
        "Fig. 12", "reduction tracks lambda/(1+lambda)",
        "0.49/0.66/0.74/0.78/0.82",
        "/".join("{:.2f}".format(results[lam])
                 for lam in sorted(results)), ok,
    ))


def _check_usability(claims):
    from repro.experiments.usability import run

    rows = run(minutes=20.0)
    lease_clean = all(r.leaseos_disruptions == 0 for r in rows)
    throttle_broken = all(r.throttle_disruptions >= 1 for r in rows)
    claims.append(Claim(
        "7.4", "no usability disruption under LeaseOS",
        "0 disruptions", "{} total".format(
            sum(r.leaseos_disruptions for r in rows)), lease_clean,
    ))
    claims.append(Claim(
        "7.4", "single-term throttling disrupts every heavy normal app",
        "all disrupted", "{}/{} disrupted".format(
            sum(1 for r in rows if r.throttle_disruptions), len(rows)),
        throttle_broken,
    ))


def _check_overhead(claims):
    from repro.experiments import overhead

    rows = overhead.run(repeats=2)
    worst = max(
        abs(100.0 * (lease - base) / base) if base else 0.0
        for __, base, lease in rows
    )
    claims.append(Claim(
        "Fig. 13", "LeaseOS power overhead under 1%",
        "<1%", "{:.2f}% worst".format(worst), worst < 1.0,
    ))


def _check_latency(claims):
    from repro.experiments import latency

    results = latency.run(touches=8)
    worst = max(
        abs(with_lease - without) / without if without else 0.0
        for without, with_lease in results.values()
    )
    claims.append(Claim(
        "Fig. 14", "leases add negligible interaction latency",
        "within noise", "{:.2f}% worst".format(100.0 * worst),
        worst < 0.02,
    ))


def _check_battery(claims):
    from repro.experiments import battery_life

    result = battery_life.run(max_hours=30.0)
    claims.append(Claim(
        "7.6", "LeaseOS extends the buggy-GPS day's battery life",
        "~12 h -> ~15 h (+25%)",
        "{:.1f} h -> {:.1f} h ({:+.0f}%)".format(
            result.hours_vanilla, result.hours_leaseos,
            result.extension_pct),
        result.extension_pct > 15.0,
    ))


def _check_study(claims):
    from repro.study.cases import prevalence_findings, table2_counts

    counts = table2_counts()
    exact = (
        counts["FAB"]["total"] == 12 and counts["LHB"]["total"] == 23
        and counts["LUB"]["total"] == 28 and counts["EUB"]["total"] == 34
        and counts["N/A"]["total"] == 12
    )
    claims.append(Claim(
        "Table 2", "109-case marginals reproduce exactly",
        "12/23/28/34/12", "{}/{}/{}/{}/{}".format(
            counts["FAB"]["total"], counts["LHB"]["total"],
            counts["LUB"]["total"], counts["EUB"]["total"],
            counts["N/A"]["total"]), exact,
    ))
    clear, bug_share, eub_nonbug = prevalence_findings()
    claims.append(Claim(
        "2.5", "Findings 1-2 (58% clear misbehaviour; 80% bugs; "
               "77% EUB non-bug)",
        "58% / 80% / 77%",
        "{:.0f}% / {:.0f}% / {:.0f}%".format(
            clear * 100, bug_share * 100, eub_nonbug * 100),
        abs(clear - 0.58) < 0.02 and abs(bug_share - 0.80) < 0.03
        and abs(eub_nonbug - 0.77) < 0.03,
    ))


def _check_characterization(claims):
    from repro.experiments.characterization import (
        fig1_betterweather,
        fig4_k9_disconnected,
        five_phone_study,
    )

    phones = five_phone_study(minutes=10.0)
    ratios = [cpu / hold for hold, cpu in phones.values()]
    claims.append(Claim(
        "2.3", "the ultralow-utilization pattern is ecosystem-"
               "independent (five phones)",
        "consistent across phones",
        "utilization {:.1%}..{:.1%} on 5 phones".format(min(ratios),
                                                        max(ratios)),
        max(ratios) < 0.05,
    ))

    fig1 = fig1_betterweather(minutes=8.0)
    claims.append(Claim(
        "Fig. 1", "BetterWeather searches constantly, never locks",
        "~60% asking, 0 fixes",
        "{:.0f} s/min asking, {} fixes".format(
            statistics.mean(s.gps_search_time for s in fig1),
            sum(s.gps_fixes for s in fig1)),
        sum(s.gps_fixes for s in fig1) == 0,
    ))
    fig4 = fig4_k9_disconnected(minutes=5.0)
    ratio = statistics.mean(s.cpu_over_wakelock for s in fig4)
    claims.append(Claim(
        "Fig. 4", "CPU/wakelock ratio exceeds 100% while useless",
        ">100%", "{:.0f}%".format(ratio * 100.0), ratio > 1.0,
    ))


def _check_derived(claims):
    from repro.experiments import (
        containment,
        fix_comparison,
        misleading_classifier,
    )

    rows = misleading_classifier.run(minutes=15.0)
    buggy_ok = all(r.lease_deferrals > 0 for r in rows
                   if "(buggy)" in r.name)
    normal_ok = all(r.lease_deferrals == 0 for r in rows
                    if "(normal)" in r.name)
    throttle_blind = all(r.defdroid_throttled for r in rows)
    claims.append(Claim(
        "2.3",
        "holding time cannot separate bugs from heavy use; utility can",
        "Pandora/Transdroid/Flym also hold long",
        "lease: 3/3 bugs deferred, 0/3 normals; "
        "holding-time throttle hit 6/6",
        buggy_ok and normal_ok and throttle_blind,
    ))

    results = containment.run()
    by_name = {r.mitigation: r for r in results}
    vanilla_cpu = by_name["vanilla"].healthy_cpu_s
    lease = by_name["leaseos"]
    claims.append(Claim(
        "1/containment",
        "leases contain a new leak fast without touching healthy work",
        "blind throttling breaks functionality",
        "contained in {:.0f} s, {:.0f}% healthy work kept (Doze keeps "
        "{:.0f}%)".format(
            lease.latency_s if lease.latency_s else float("nan"),
            100.0 * lease.work_preserved(vanilla_cpu),
            100.0 * by_name["doze"].work_preserved(vanilla_cpu)),
        lease.latency_s is not None
        and lease.work_preserved(vanilla_cpu) > 0.95
        and by_name["doze"].work_preserved(vanilla_cpu) < 0.5,
    ))

    grid = fix_comparison.run(minutes=20.0)
    ok = True
    for label, __, __, __ in fix_comparison.PAIRS:
        blaze = grid[(label, "buggy", "vanilla")]
        ok = ok and grid[(label, "buggy", "leaseos")] < 0.1 * blaze
        ok = ok and grid[(label, "fixed", "leaseos")] <= \
            grid[(label, "fixed", "vanilla")] + 0.5
    claims.append(Claim(
        "2/fixes",
        "leases approximate the documented developer fixes for free",
        "fix notes in 2 / refs",
        "4/4 cases contained; 0 lease cost to any fixed app" if ok
        else "shape broken",
        ok,
    ))


def run():
    """Evaluate every claim; returns the list of Claims."""
    claims = []
    _check_study(claims)
    _check_characterization(claims)
    _check_fig9(claims)
    _check_fig12(claims)
    _check_table5(claims)
    _check_usability(claims)
    _check_overhead(claims)
    _check_latency(claims)
    _check_battery(claims)
    _check_derived(claims)
    return claims


def render(claims):
    from repro.experiments.runner import format_table

    rows = [
        [c.section, c.statement, c.paper, c.measured,
         "PASS" if c.passed else "FAIL"]
        for c in claims
    ]
    passed = sum(1 for c in claims if c.passed)
    table = format_table(
        ["where", "claim", "paper", "measured", "verdict"], rows,
        title="Reproduction scorecard",
    )
    return table + "\n\n{}/{} claims reproduced.".format(passed,
                                                         len(claims))


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
