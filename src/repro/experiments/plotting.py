"""Plain-text plotting: sparklines and bar charts for the artifacts.

The result files are text; these helpers make the figure artifacts
actually look like figures. No dependencies, deterministic output.
"""

_SPARK_LEVELS = "._:-=+*#%@"


def sparkline(values, width=None):
    """Render ``values`` as a one-line density sparkline.

    Values are scaled to the observed range; a flat series renders at
    mid-level. ``width`` resamples the series by simple striding.
    """
    values = list(values)
    if not values:
        return ""
    if width is not None and len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    span = hi - lo
    chars = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(labels, values, width=40, unit=""):
    """Horizontal bar chart with aligned labels and values."""
    labels = [str(label) for label in labels]
    values = list(values)
    if not values:
        return ""
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(value / peak * width)) if peak > 0 else 0
        lines.append("{:<{w}s} |{:<{bw}s} {:.2f}{}".format(
            label, "#" * filled, value, unit, w=label_width, bw=width))
    return "\n".join(lines)


def time_series_plot(samples, field, bucket_s=60.0, width=60):
    """Sparkline + range summary for a Trepn sample field."""
    values = [getattr(sample, field) for sample in samples]
    if not values:
        return "{}: (no samples)".format(field)
    return "{} [{:.2f}..{:.2f}]  {}".format(
        field, min(values), max(values), sparkline(values, width=width)
    )
