"""The developer fix vs the OS mechanism.

The paper notes, case by case, how the developers eventually fixed each
bug (backoff + prompt release for K-9, release-after-auth for Kontalk,
search timeout for BetterWeather, release-in-onPause for Standup Timer).
This harness runs the 2x2 per case: {buggy, fixed} x {vanilla, LeaseOS}.

The shape that must hold for every pair:

- buggy/vanilla blazes;
- buggy/LeaseOS lands within a few percent of the fixed app -- the OS
  supplies the discipline the developer forgot;
- fixed/LeaseOS ~= fixed/vanilla: leases cost a well-written app nothing.
"""

from repro.apps.buggy.cpu_apps import K9Mail, Kontalk
from repro.apps.buggy.gps_apps import BetterWeather
from repro.apps.buggy.screen_apps import StandupTimer
from repro.apps.normal.archetypes import K9MailFixed
from repro.apps.normal.fixed_apps import (
    BetterWeatherFixed,
    KontalkFixed,
    StandupTimerFixed,
)
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS

#: (case label, buggy factory, fixed factory, phone kwargs).
PAIRS = (
    ("K-9 (disconnected)",
     lambda: K9Mail(scenario="disconnected"), K9MailFixed,
     dict(connected=False)),
    ("Kontalk", Kontalk, KontalkFixed, {}),
    ("BetterWeather", BetterWeather, BetterWeatherFixed,
     dict(gps_quality=0.10)),
    ("Standup Timer", StandupTimer, StandupTimerFixed, {}),
)


def run(minutes=30.0, seed=19, pairs=PAIRS):
    """Returns {(case, variant, regime): mW} for the grid."""
    grid = {}
    for label, buggy_factory, fixed_factory, phone_kwargs in pairs:
        for variant, factory in (("buggy", buggy_factory),
                                 ("fixed", fixed_factory)):
            for regime, mitigation_factory in (("vanilla", lambda: None),
                                               ("leaseos", LeaseOS)):
                phone = Phone(seed=seed, mitigation=mitigation_factory(),
                              ambient=False, **phone_kwargs)
                app = phone.install(factory())
                mark = phone.energy_mark()
                phone.run_for(minutes=minutes)
                grid[(label, variant, regime)] = \
                    phone.power_since(mark, app.uid)
    return grid


def render(grid, pairs=PAIRS):
    rows = []
    for label, __, __, __ in pairs:
        blaze = grid[(label, "buggy", "vanilla")]
        contained = grid[(label, "buggy", "leaseos")]
        fixed = grid[(label, "fixed", "vanilla")]
        fixed_leased = grid[(label, "fixed", "leaseos")]
        rows.append([
            label, blaze, contained, fixed,
            "{:+.2f}".format(fixed_leased - fixed),
        ])
    table = format_table(
        ["case", "buggy/vanilla mW", "buggy/LeaseOS mW",
         "fixed/vanilla mW", "lease cost to fixed app"],
        rows,
        title="Developer fix vs OS mechanism (30 min per cell)",
    )
    note = ("\nIn every case the lease lands near the hand-written fix "
            "without any developer\neffort. The cost column is ~0 for "
            "well-behaved fixed apps (a negative value\nmeans the lease "
            "still trimmed residual waste the fix left behind).")
    return table + note


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
