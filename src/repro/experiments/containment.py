"""Time-to-containment: how fast each mitigation reacts to misbehaviour.

The paper argues the quick-drop observation (§2.4) lets LeaseOS "catch
energy misbehavior early on" with 5-second terms, while threshold-based
throttling must wait for its conservative budgets and Doze for its idle
heuristics. This harness makes that latency visible: an app behaves
normally for 5 minutes, then turns into an idle holder; we measure the
time from misbehaviour onset until the app's draw first falls below 20%
of the unmitigated bug draw (and stays contained for the rest of the
window).
"""

from dataclasses import dataclass

from repro.droid.app import App
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import DefDroid, Doze, LeaseOS


class TurnsBadApp(App):
    """Healthy 50%-duty worker that wedges at a fixed time."""

    app_name = "turnsbad"

    def __init__(self, healthy_s=300.0):
        super().__init__()
        self.healthy_s = healthy_s

    def run(self):
        self.lock = self.ctx.power.new_wakelock(self, "tb")
        self.lock.acquire()
        end = self.ctx.sim.now + self.healthy_s
        while self.ctx.sim.now < end:
            yield from self.compute(0.5)
            yield self.sleep(0.5)
        while True:  # wedged: holding, doing nothing
            yield self.sleep(600.0)


@dataclass
class ContainmentResult:
    mitigation: str
    onset_s: float
    contained_at_s: float  # None if never contained
    healthy_cpu_s: float  # useful CPU seconds completed before onset

    @property
    def latency_s(self):
        if self.contained_at_s is None:
            return None
        return self.contained_at_s - self.onset_s

    def work_preserved(self, vanilla_cpu_s):
        if vanilla_cpu_s <= 0:
            return 1.0
        return self.healthy_cpu_s / vanilla_cpu_s


def _measure(mitigation_factory, healthy_s=300.0, window_s=1200.0,
             seed=37, threshold_frac=0.2, sample_s=5.0):
    phone = Phone(seed=seed, mitigation=mitigation_factory(),
                  ambient=False)
    app = phone.install(TurnsBadApp(healthy_s))
    phone.run_for(seconds=healthy_s)
    healthy_cpu = phone.cpu.cpu_time(app.uid)
    bug_draw = phone.profile.cpu_awake_idle_mw  # the wedged hold's draw
    contained_at = None
    last_energy = phone.monitor.ledger.app_total_mj(app.uid)
    clock = healthy_s
    while clock < healthy_s + window_s:
        phone.run_for(seconds=sample_s)
        clock += sample_s
        phone.monitor.settle()
        energy = phone.monitor.ledger.app_total_mj(app.uid)
        draw = (energy - last_energy) / sample_s
        last_energy = energy
        if contained_at is None and draw < threshold_frac * bug_draw:
            contained_at = clock
    return ContainmentResult(
        mitigation=phone.mitigation.name if phone.mitigation else "vanilla",
        onset_s=healthy_s,
        contained_at_s=contained_at,
        healthy_cpu_s=healthy_cpu,
    )


def run(seed=37):
    """Containment latency per mitigation. Returns ContainmentResults."""
    results = []
    for factory in (lambda: None, LeaseOS,
                    lambda: Doze(aggressive=True), DefDroid):
        result = _measure(factory, seed=seed)
        if result.mitigation == "vanilla":
            result = ContainmentResult("vanilla", result.onset_s, None,
                                       result.healthy_cpu_s)
        results.append(result)
    return results


def render(results):
    vanilla_cpu = next(r.healthy_cpu_s for r in results
                       if r.mitigation == "vanilla")
    rows = []
    for result in results:
        latency = result.latency_s
        rows.append([
            result.mitigation,
            "never" if latency is None else "{:.0f} s".format(latency),
            "{:.0f}%".format(100.0 * result.work_preserved(vanilla_cpu)),
        ])
    table = format_table(
        ["mitigation", "time to contain", "healthy work preserved"],
        rows,
        title="Containment latency (healthy 5 min, then wedged)",
    )
    note = ("\nBlind mechanisms 'contain' instantly because they were "
            "already throttling the\nhealthy phase; only the utilitarian "
            "lease keeps 100% of the useful work AND\ncontains the wedge "
            "(at the cost of one adaptive-length term of latency, 5.2).")
    return table + note


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
