"""The mitigation zoo: every runtime mechanism on the same bugs.

Beyond the paper's Table 5 (Doze/DefDroid), this repository also
implements Amplify-style acquire rate limiting, pure single-term
throttling and an Android-style Battery Saver. One representative case
per bug class, every mechanism, side by side -- each mechanism's blind
spot in one table:

- Amplify only rate-limits *acquires*: useless against holds;
- TimedThrottle contains everything but breaks legitimate apps (§7.4);
- Battery Saver does nothing until the battery is already low;
- Doze cannot touch the screen; DefDroid must stay conservative;
- the utilitarian lease contains all three bug classes.
"""

from repro.apps.buggy import CASES_BY_KEY
from repro.experiments.runner import format_table, run_case
from repro.mitigation import (
    Amplify,
    BatterySaver,
    DefDroid,
    Doze,
    LeaseOS,
    TimedThrottle,
)

CASE_KEYS = ("torch", "connectbot-screen", "betterweather")

MITIGATIONS = (
    ("vanilla", lambda: None),
    ("LeaseOS", LeaseOS),
    ("Doze*", lambda: Doze(aggressive=True)),
    ("DefDroid", DefDroid),
    ("Amplify", Amplify),
    ("TimedThrottle", TimedThrottle),
    ("BatterySaver", lambda: BatterySaver(threshold_level=0.15)),
)


def run(minutes=20.0, seed=83, case_keys=CASE_KEYS):
    """Returns {(case, mitigation): mW}. Battery Saver runs at a full
    battery, so its (non-)effect at normal charge is what shows."""
    grid = {}
    for key in case_keys:
        case = CASES_BY_KEY[key]
        for name, factory in MITIGATIONS:
            result = run_case(case, factory, minutes=minutes, seed=seed)
            grid[(key, name)] = result.app_power_mw
    return grid


def render(grid, case_keys=CASE_KEYS):
    names = [name for name, __ in MITIGATIONS]
    rows = []
    for name in names:
        row = [name]
        for key in case_keys:
            vanilla = grid[(key, "vanilla")]
            power = grid[(key, name)]
            reduction = 100.0 * (1.0 - power / vanilla) if vanilla else 0.0
            row.append("{:.0f}%".format(reduction))
        rows.append(row)
    return format_table(
        ["mechanism"] + ["{} (red.)".format(k) for k in case_keys],
        rows,
        title="The mitigation zoo: reduction per mechanism per bug class "
              "(full battery, 20 min)",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
