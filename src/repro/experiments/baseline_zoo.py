"""The mitigation zoo: every runtime mechanism on the same bugs.

Beyond the paper's Table 5 (Doze/DefDroid), this repository also
implements Amplify-style acquire rate limiting, pure single-term
throttling and an Android-style Battery Saver. One representative case
per bug class, every mechanism, side by side -- each mechanism's blind
spot in one table:

- Amplify only rate-limits *acquires*: useless against holds;
- TimedThrottle contains everything but breaks legitimate apps (§7.4);
- Battery Saver does nothing until the battery is already low;
- Doze cannot touch the screen; DefDroid must stay conservative;
- the utilitarian lease contains all three bug classes.
"""

from repro.experiments.grid import GridRunner, JobSpec
from repro.experiments.runner import format_table

CASE_KEYS = ("torch", "connectbot-screen", "betterweather")

#: Display name -> grid-registry mitigation name.
MITIGATIONS = (
    ("vanilla", "vanilla"),
    ("LeaseOS", "leaseos"),
    ("Doze*", "doze-aggressive"),
    ("DefDroid", "defdroid"),
    ("Amplify", "amplify"),
    ("TimedThrottle", "throttle"),
    ("BatterySaver", "battery-saver-full"),
)


def run(minutes=20.0, seed=83, case_keys=CASE_KEYS, runner=None):
    """Returns {(case, mitigation): mW}. Battery Saver runs at a full
    battery, so its (non-)effect at normal charge is what shows."""
    runner = runner if runner is not None else GridRunner()
    specs = [
        JobSpec.make(key, mitigation=grid_name, minutes=minutes,
                     seed=seed)
        for key in case_keys
        for __, grid_name in MITIGATIONS
    ]
    results = runner.run(specs)
    grid = {}
    index = 0
    for key in case_keys:
        for name, __ in MITIGATIONS:
            grid[(key, name)] = results[index].app_power_mw
            index += 1
    return grid


def render(grid, case_keys=CASE_KEYS):
    names = [name for name, __ in MITIGATIONS]
    rows = []
    for name in names:
        row = [name]
        for key in case_keys:
            vanilla = grid[(key, "vanilla")]
            power = grid[(key, name)]
            reduction = 100.0 * (1.0 - power / vanilla) if vanilla else 0.0
            row.append("{:.0f}%".format(reduction))
        rows.append(row)
    return format_table(
        ["mechanism"] + ["{} (red.)".format(k) for k in case_keys],
        rows,
        title="The mitigation zoo: reduction per mechanism per bug class "
              "(full battery, 20 min)",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
