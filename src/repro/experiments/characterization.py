"""Figs. 1-4: the §2.3 runtime characterization of buggy apps.

All four figures come from running an unmitigated buggy app with the
Trepn-style 60-second sampler:

- Fig. 1 -- BetterWeather on a lightly-used phone, weak GPS: the per-
  minute "GPS try duration" stays high (~60% of each interval) while no
  fix ever arrives.
- Fig. 2 -- K-9 on a low-end phone, connected but with a failing mail
  server: long wakelock holds, near-zero CPU (ultralow utilization).
- Fig. 3 -- Kontalk on two phones (Nexus 6 vs Galaxy S4): long holds,
  CPU/wakelock ratio ~0, consistent across ecosystems.
- Fig. 4 -- K-9 on a Pixel XL, disconnected: wakelock time ~4x higher
  than Fig. 2 and the CPU/wakelock ratio can exceed 100%.
"""

import statistics

from repro.apps.buggy.cpu_apps import K9Mail, Kontalk
from repro.apps.buggy.gps_apps import BetterWeather
from repro.device.profiles import (
    GALAXY_S4,
    MOTO_G,
    NEXUS_4,
    NEXUS_6,
    PIXEL_XL,
)
from repro.droid.phone import Phone
from repro.env.network import ServerMode
from repro.experiments.grid import FuncSpec, GridRunner
from repro.profiling.trepn import TrepnSampler

#: The five §2.1 study phones (the Nexus 5X is the §7.1 Monsoon rig).
STUDY_PHONES = (PIXEL_XL, NEXUS_6, NEXUS_4, GALAXY_S4, MOTO_G)


def _profile_app(app, minutes, profile, seed, configure=None,
                 interval_s=60.0):
    phone = Phone(profile=profile, seed=seed)
    if configure is not None:
        configure(phone)
    phone.install(app)
    sampler = TrepnSampler(phone, [app.uid], interval_s=interval_s).start()
    phone.run_for(minutes=minutes)
    sampler.stop()
    return sampler.rows(app.uid)


def fig1_betterweather(minutes=55.0, seed=13):
    """GPS try duration per 60 s interval, weak-signal environment."""
    def configure(phone):
        phone.env.gps.set_quality(0.10)

    return _profile_app(BetterWeather(), minutes, NEXUS_6, seed, configure)


def fig2_k9_bad_server(minutes=55.0, seed=13):
    """Wakelock holding time vs CPU usage: connected, failing server."""
    def configure(phone):
        phone.env.network.set_server("mail-server", ServerMode.ERROR)

    return _profile_app(K9Mail(scenario="bad_server"), minutes, MOTO_G,
                        seed, configure)


def _kontalk_job(profile_name, minutes, seed):
    from repro.device.profiles import PROFILES

    return _profile_app(Kontalk(), minutes, PROFILES[profile_name], seed)


def fig3_kontalk(minutes=55.0, seed=13, runner=None):
    """Kontalk on two phones: {profile name: samples}."""
    runner = runner if runner is not None else GridRunner()
    profiles = (NEXUS_6, GALAXY_S4)
    samples = runner.run([
        FuncSpec.make(_kontalk_job, profile_name=profile.name,
                      minutes=minutes, seed=seed)
        for profile in profiles
    ])
    return {profile.name: rows
            for profile, rows in zip(profiles, samples)}


def fig4_k9_disconnected(minutes=12.0, seed=13):
    """K-9 with no connectivity: the CPU/wakelock ratio exceeds 100%."""
    def configure(phone):
        phone.env.network.set_connected(False)

    return _profile_app(K9Mail(scenario="disconnected"), minutes, PIXEL_XL,
                        seed, configure)


def _study_phone_job(profile_name, minutes, seed):
    """K-9 vs failing server on one phone: (mean hold, mean CPU)."""
    from repro.device.profiles import PROFILES

    def configure(phone):
        phone.env.network.set_server("mail-server", ServerMode.ERROR)

    samples = _profile_app(K9Mail(scenario="bad_server"), minutes,
                           PROFILES[profile_name], seed, configure)
    mean_hold = statistics.mean(s.wakelock_time for s in samples)
    mean_cpu = statistics.mean(s.cpu_time for s in samples)
    return (mean_hold, mean_cpu)


def five_phone_study(minutes=15.0, seed=13, runner=None):
    """The §2.1 setup: the same buggy app on all five study phones.

    Runs the Fig. 2 scenario (K-9 vs a failing mail server) on each
    phone and returns {phone name: (mean hold s/min, mean CPU s/min,
    exceptions/min)} -- absolute values vary with the ecosystem, the
    ultralow-utilization *pattern* does not (the paper's §2.3 point).
    """
    runner = runner if runner is not None else GridRunner()
    results = runner.run([
        FuncSpec.make(_study_phone_job, profile_name=profile.name,
                      minutes=minutes, seed=seed)
        for profile in STUDY_PHONES
    ])
    return {profile.name: measured
            for profile, measured in zip(STUDY_PHONES, results)}


def render_five_phone(results):
    from repro.experiments.runner import format_table

    rows = []
    for name, (hold, cpu) in results.items():
        ratio = cpu / hold if hold else 0.0
        rows.append([name, "{:.1f}".format(hold), "{:.2f}".format(cpu),
                     "{:.1%}".format(ratio)])
    return format_table(
        ["phone", "hold s/min", "CPU s/min", "utilization"],
        rows,
        title="K-9 (failing server) across the five study phones: the "
              "ultralow-utilization pattern is ecosystem-independent",
    )


def _variability_job(profile_name, minutes, seed):
    from repro.device.profiles import PROFILES

    phone = Phone(profile=PROFILES[profile_name], seed=seed,
                  connected=False, ambient=False)
    app = K9Mail(scenario="disconnected")
    phone.install(app)
    phone.run_for(minutes=minutes)
    return phone.exceptions.total(app.uid) / minutes


def cross_phone_variability(minutes=10.0, seed=13, runner=None):
    """§2.3's cross-ecosystem observation: the same buggy app's absolute
    behaviour differs ~2x between a high-end and a low-end phone.

    Runs the disconnected K-9 on the Pixel XL and the Moto G and returns
    {profile name: exceptions per minute} -- each retry cycle raises one
    exception, and cycles take ~2x longer on the slow phone.
    """
    runner = runner if runner is not None else GridRunner()
    profiles = (PIXEL_XL, MOTO_G)
    rates = runner.run([
        FuncSpec.make(_variability_job, profile_name=profile.name,
                      minutes=minutes, seed=seed)
        for profile in profiles
    ])
    return {profile.name: rate
            for profile, rate in zip(profiles, rates)}


def render_series(samples, fields):
    """Plain-text rendering of selected sample fields over time, with a
    sparkline summary per field."""
    from repro.experiments.plotting import time_series_plot

    lines = ["minute  " + "  ".join("{:>14s}".format(f) for f in fields)]
    for sample in samples:
        values = "  ".join(
            "{:14.2f}".format(getattr(sample, f)) for f in fields
        )
        lines.append("{:6.1f}  {}".format(sample.time / 60.0, values))
    lines.append("")
    for field in fields:
        lines.append(time_series_plot(samples, field))
    return "\n".join(lines)


def main(runner=None):
    print("Fig. 1 - BetterWeather GPS try duration (s per 60 s):")
    print(render_series(fig1_betterweather(), ["gps_search_time",
                                               "gps_fixes"]))
    print("\nFig. 2 - K-9 (bad server) wakelock vs CPU per interval:")
    print(render_series(fig2_k9_bad_server(),
                        ["wakelock_time", "cpu_time"]))
    print("\nFig. 3 - Kontalk on two phones:")
    for name, samples in fig3_kontalk(runner=runner).items():
        print(" ", name)
        print(render_series(samples, ["wakelock_time",
                                      "cpu_over_wakelock"]))
    print("\nFig. 4 - K-9 (disconnected):")
    print(render_series(fig4_k9_disconnected(),
                        ["wakelock_time", "cpu_time",
                         "cpu_over_wakelock"]))


if __name__ == "__main__":
    main()
