"""Table 5: power for the 20 buggy apps under four regimes.

For every case: vanilla Android (w/o lease), LeaseOS (w/ lease),
forced-aggressive Doze, and DefDroid-style throttling; 30 simulated
minutes each, per-app average power, plus the reduction percentages the
paper reports. ``run()`` returns one row per case with both our measured
values and the paper's, so EXPERIMENTS.md can be regenerated.
"""

import statistics

from dataclasses import dataclass

from repro.apps.buggy import BUGGY_CASES, CASES_BY_KEY
from repro.experiments.grid import GridRunner, JobSpec
from repro.experiments.runner import format_table, reduction_pct, run_case


@dataclass
class Table5Row:
    case: object
    vanilla_mw: float
    leaseos_mw: float
    doze_mw: float
    defdroid_mw: float
    disruptions: int
    observed_behaviors: frozenset = frozenset()

    @property
    def behavior_confirmed(self):
        """Did LeaseOS observe the behaviour the paper assigns the case?"""
        return self.case.behavior in self.observed_behaviors

    @property
    def leaseos_reduction(self):
        return reduction_pct(self.vanilla_mw, self.leaseos_mw)

    @property
    def doze_reduction(self):
        return reduction_pct(self.vanilla_mw, self.doze_mw)

    @property
    def defdroid_reduction(self):
        return reduction_pct(self.vanilla_mw, self.defdroid_mw)

    def paper_reduction(self, key):
        paper = self.case.paper_power
        return reduction_pct(paper["vanilla"], paper[key])


#: Column name -> grid-registry mitigation name (Doze runs aggressive,
#: matching the paper's forced-Doze methodology).
MITIGATIONS = [
    ("vanilla", "vanilla"),
    ("leaseos", "leaseos"),
    ("doze", "doze-aggressive"),
    ("defdroid", "defdroid"),
]


def grid_specs(cases, minutes=30.0, seed=7):
    """The declarative job grid: every case under every regime."""
    return [
        JobSpec.make(case, mitigation=grid_name, minutes=minutes,
                     seed=seed)
        for case in cases
        for __, grid_name in MITIGATIONS
    ]


def rows_from_results(cases, results):
    """Assemble Table5Rows from a flat result list in grid-spec order."""
    rows = []
    per_case = len(MITIGATIONS)
    for offset, case in enumerate(cases):
        chunk = results[offset * per_case:(offset + 1) * per_case]
        powers = {name: r.app_power_mw
                  for (name, __), r in zip(MITIGATIONS, chunk)}
        lease = chunk[[name for name, __ in MITIGATIONS].index("leaseos")]
        rows.append(Table5Row(
            case=case,
            vanilla_mw=powers["vanilla"],
            leaseos_mw=powers["leaseos"],
            doze_mw=powers["doze"],
            defdroid_mw=powers["defdroid"],
            disruptions=lease.disruptions,
            observed_behaviors=lease.observed_behaviors,
        ))
    return rows


def _run_direct(cases, minutes, seed):
    """In-process fallback for cases not in the Table 5 registry."""
    from repro.experiments.grid import resolve_mitigation_factory

    results = []
    for case in cases:
        for __, grid_name in MITIGATIONS:
            factory = resolve_mitigation_factory(grid_name)
            results.append(run_case(case, factory, minutes=minutes,
                                    seed=seed))
    return rows_from_results(cases, results)


def run(cases=None, minutes=30.0, seed=7, runner=None):
    """Run the full Table 5 grid; returns a list of Table5Row.

    ``runner`` is a :class:`~repro.experiments.grid.GridRunner`; the
    default runs serial and uncached, exactly like the historical loop.
    """
    cases = list(BUGGY_CASES if cases is None else cases)
    if any(CASES_BY_KEY.get(case.key) is not case for case in cases):
        return _run_direct(cases, minutes, seed)
    runner = runner if runner is not None else GridRunner()
    results = runner.run(grid_specs(cases, minutes=minutes, seed=seed))
    return rows_from_results(cases, results)


def averages(rows):
    """Average reduction percentages (the paper's bottom line)."""
    return {
        "leaseos": statistics.mean(r.leaseos_reduction for r in rows),
        "doze": statistics.mean(r.doze_reduction for r in rows),
        "defdroid": statistics.mean(r.defdroid_reduction for r in rows),
    }


def by_behavior(rows):
    """LeaseOS reduction per misbehaviour class (FAB / LHB / LUB)."""
    grouped = {}
    for row in rows:
        grouped.setdefault(row.case.behavior, []).append(
            row.leaseos_reduction)
    return {
        behavior: statistics.mean(values)
        for behavior, values in grouped.items()
    }


def render(rows):
    table_rows = []
    for r in rows:
        table_rows.append([
            r.case.app_factory().name if callable(r.case.app_factory)
            else r.case.key,
            r.case.category,
            r.case.resource.value,
            r.case.behavior.value,
            r.vanilla_mw,
            r.leaseos_mw,
            r.doze_mw,
            r.defdroid_mw,
            "{:.1f}".format(r.leaseos_reduction),
            "{:.1f}".format(r.doze_reduction),
            "{:.1f}".format(r.defdroid_reduction),
            "{:.1f}".format(r.paper_reduction("leaseos")),
            "yes" if r.behavior_confirmed else "NO",
        ])
    avg = averages(rows)
    per_class = by_behavior(rows)
    table = format_table(
        ["App", "Category", "Res.", "Behavior", "w/o lease", "w/ lease",
         "Doze*", "DefDroid", "LeaseOS%", "Doze%", "DefD%", "paperL%",
         "classified"],
        table_rows,
        title="Table 5: power (mW) and reduction (%) for 20 buggy apps",
    )
    footer = ("\nAverage reduction: LeaseOS {leaseos:.1f}%  "
              "Doze {doze:.1f}%  DefDroid {defdroid:.1f}%"
              "  (paper: 92.6 / 69.6 / 62.0)").format(**avg)
    footer += "\nLeaseOS by class: " + "  ".join(
        "{} {:.1f}%".format(behavior.value, value)
        for behavior, value in sorted(per_class.items(),
                                      key=lambda kv: kv[0].value)
    )
    return table + footer


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
