"""§2.3's central argument, as one table: holding time misleads.

"A long absolute holding time for a resource could be merely an artifact
of variations in different mobile systems or legitimate heavy resource
usage. Using it as a classifier can flag a normal app as misbehaving."

This harness runs three buggy long-holders (Torch, Kontalk, K-9) and the
three heavy-but-normal apps the paper names (Pandora, Transdroid, Flym)
for 20 minutes each. All six hold their wakelocks essentially 100% of
the time — a holding-time classifier cannot tell them apart. The
utilitarian metrics can: the table shows per-app holding time (nearly
identical), utilization, utility, LeaseOS's verdict, and what a
holding-time throttle (DefDroid) would have done to each.
"""

from dataclasses import dataclass

from repro.apps.buggy.cpu_apps import K9Mail, Kontalk, Torch
from repro.apps.normal.heavy_holders import Flym, Pandora, Transdroid
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import DefDroid, LeaseOS

SUBJECTS = (
    ("Torch (buggy)", Torch, dict()),
    ("Kontalk (buggy)", Kontalk, dict()),
    ("K-9 (buggy)", lambda: K9Mail(scenario="disconnected"),
     dict(connected=False)),
    ("Pandora (normal)", Pandora, dict()),
    ("Transdroid (normal)", Transdroid, dict()),
    ("Flym (normal)", Flym, dict()),
)


@dataclass
class SubjectRow:
    name: str
    hold_fraction: float  # honoured holding / wall time (vanilla)
    utilization: float  # last-term lease utilization
    utility: float  # last-term utility score
    lease_deferrals: int
    defdroid_throttled: bool


def _vanilla_hold_fraction(factory, phone_kwargs, minutes, seed):
    phone = Phone(seed=seed, ambient=False, **phone_kwargs)
    app = phone.install(factory())
    phone.run_for(minutes=minutes)
    phone.power.settle_stats()
    held = sum(r.active_time for r in phone.power.records
               if r.uid == app.uid)
    return held / phone.sim.now


def run(minutes=20.0, seed=91):
    rows = []
    for name, factory, phone_kwargs in SUBJECTS:
        hold = _vanilla_hold_fraction(factory, phone_kwargs, minutes, seed)

        mitigation = LeaseOS()
        phone = Phone(seed=seed, mitigation=mitigation, ambient=False,
                      **phone_kwargs)
        app = phone.install(factory())
        phone.run_for(minutes=minutes)
        leases = mitigation.manager.leases_for(app.uid)
        deferrals = sum(l.deferral_count for l in leases)
        judged = [l for l in leases if l.history]
        if judged:
            last = judged[0].history[-1].metrics
            utilization, utility = last.utilization, last.utility_score
        else:
            utilization, utility = float("nan"), float("nan")

        defdroid = DefDroid()
        phone = Phone(seed=seed, mitigation=defdroid, ambient=False,
                      **phone_kwargs)
        phone.install(factory())
        phone.run_for(minutes=minutes)

        rows.append(SubjectRow(
            name=name,
            hold_fraction=hold,
            utilization=utilization,
            utility=utility,
            lease_deferrals=deferrals,
            defdroid_throttled=defdroid.throttle_events > 0,
        ))
    return rows


def render(rows):
    table_rows = [
        [r.name,
         "{:.0%}".format(r.hold_fraction),
         "{:.2f}".format(r.utilization),
         "{:.0f}".format(r.utility),
         "deferred" if r.lease_deferrals else "renewed",
         "throttled" if r.defdroid_throttled else "spared"]
        for r in rows
    ]
    table = format_table(
        ["app", "hold time", "utilization", "utility", "LeaseOS",
         "holding-time throttle"],
        table_rows,
        title="2.3: holding time cannot separate bugs from heavy use; "
              "utility can",
    )
    note = ("\nEvery subject holds ~100% of the time. The holding-time "
            "throttle hits all six;\nthe utilitarian lease defers "
            "exactly the three bugs.")
    return table + note


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
