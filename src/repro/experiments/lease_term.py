"""Fig. 9: lease-term validation with the Long-Holding test app (§5.1).

The test app holds a wakelock idle for 30 minutes. We measure the
resource holding time (seconds the OS actually honoured the lock) under:

- (a) fixed deferral τ = 30 s with terms {30 s, 60 s, 180 s, ∞}:
  λ = {1, 0.5, 1/6, 0}; paper measures {904, 1201, 1560, 1800} s.
- (b) λ = 1 with the same terms (τ = term): paper measures
  {900, 900, 899, 1800} s -- the λ ratio, not the absolute term, decides.

Both sub-experiments pin τ, so deferral escalation and adaptive terms are
off (§5.1 runs a single fixed policy).
"""

from repro.apps.synthetic import LongHoldingTestApp
from repro.core.policy import LeasePolicy
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS

TERMS_S = (30.0, 60.0, 180.0, float("inf"))


def _policy(term_s, deferral_s):
    return LeasePolicy(
        initial_term_s=term_s,
        deferral_s=deferral_s,
        adaptive_enabled=False,
        escalation_enabled=False,
    )


def holding_time_under(term_s, deferral_s, minutes=30.0, seed=5):
    """Honoured holding seconds for the test app under one policy."""
    if term_s == float("inf"):
        mitigation = None  # no lease checks at all: plain ask-use-release
    else:
        mitigation = LeaseOS(policy=_policy(term_s, deferral_s))
    phone = Phone(seed=seed, mitigation=mitigation, ambient=False)
    app = LongHoldingTestApp(hold_duration_s=minutes * 60.0)
    phone.install(app)
    phone.run_for(minutes=minutes)
    return app.holding_time()


def run_fig9a(minutes=30.0, seed=5):
    """(a) fixed τ = 30 s across terms. Returns {term: holding_s}."""
    return {
        term: holding_time_under(term, 30.0, minutes=minutes, seed=seed)
        for term in TERMS_S
    }


def run_fig9b(minutes=30.0, seed=5):
    """(b) fixed λ = 1 (τ = term). Returns {term: holding_s}."""
    return {
        term: holding_time_under(
            term, term if term != float("inf") else 0.0,
            minutes=minutes, seed=seed,
        )
        for term in TERMS_S
    }


PAPER_FIG9A = {30.0: 904, 60.0: 1201, 180.0: 1560, float("inf"): 1800}
PAPER_FIG9B = {30.0: 900, 60.0: 900, 180.0: 899, float("inf"): 1800}


def render(results_a, results_b):
    def rows(results, paper):
        out = []
        for term in TERMS_S:
            label = "inf" if term == float("inf") else "{:.0f}s".format(term)
            out.append([label, results[term], paper[term]])
        return out

    a = format_table(["term", "holding (s)", "paper (s)"],
                     rows(results_a, PAPER_FIG9A),
                     title="Fig. 9(a): deferral fixed at 30 s")
    b = format_table(["term", "holding (s)", "paper (s)"],
                     rows(results_b, PAPER_FIG9B),
                     title="Fig. 9(b): lambda fixed at 1")
    return a + "\n\n" + b


def main():
    print(render(run_fig9a(), run_fig9b()))


if __name__ == "__main__":
    main()
