"""Fig. 13: system power overhead of LeaseOS under five settings (§7.6).

Settings, per the paper: (1) idle, screen off, stock apps only; (2) no
interaction, screen on, popular apps installed; (3) use YouTube; (4) use
10 apps in turn; (5) use 30 apps in turn. Each measured with and without
the lease service; the claim to preserve: overhead < 1%.
"""

from dataclasses import dataclass

from repro.apps.normal.background import Spotify, TrepnProfiler
from repro.apps.normal.interactive import popular_apps
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS
from repro.profiling.monsoon import MonsoonMonitor


@dataclass
class Setting:
    key: str
    label: str
    app_count: int
    screen_on: bool
    active_uids: object  # None (no interaction) or "all" / int count
    minutes: float = 20.0


SETTINGS = [
    Setting("idle", "Idle (screen off)", 0, False, None),
    Setting("no-interaction", "No interaction (screen on, apps idle)",
            10, True, None),
    Setting("youtube", "Use YouTube", 1, True, 1),
    Setting("apps-10", "Use 10 apps in turn", 10, True, 10),
    Setting("apps-30", "Use 30 apps in turn", 30, True, 30),
]


def _run_setting(setting, with_lease, seed):
    mitigation = LeaseOS() if with_lease else None
    phone = Phone(seed=seed, mitigation=mitigation)
    apps = popular_apps(setting.app_count) if setting.app_count else []
    for app in apps:
        phone.install(app)
    if setting.app_count >= 10:
        phone.install(Spotify())
        phone.install(TrepnProfiler())
    if setting.screen_on:
        phone.screen_on()
    if setting.active_uids is not None and apps:
        count = min(setting.active_uids, len(apps))
        uids = [a.uid for a in apps[:count]]
        phone.sim.spawn(
            phone.user.active_session(uids, setting.minutes * 60.0),
            name="user.active",
        )
    monsoon = MonsoonMonitor(phone)
    mark = monsoon.mark()
    phone.run_for(minutes=setting.minutes)
    return monsoon.average_power_mw(mark)


def run(settings=None, seed=31, repeats=3):
    """Returns rows: (setting, mean mW w/o lease, mean mW w/ lease)."""
    settings = settings or SETTINGS
    rows = []
    for setting in settings:
        without = [
            _run_setting(setting, False, seed + i) for i in range(repeats)
        ]
        with_lease = [
            _run_setting(setting, True, seed + i) for i in range(repeats)
        ]
        rows.append((
            setting,
            sum(without) / len(without),
            sum(with_lease) / len(with_lease),
        ))
    return rows


def overhead_pct(rows):
    return {
        setting.key: 100.0 * (lease - base) / base if base > 0 else 0.0
        for setting, base, lease in rows
    }


def render(rows):
    table_rows = []
    for setting, base, lease in rows:
        pct = 100.0 * (lease - base) / base if base > 0 else 0.0
        table_rows.append([setting.label, base, lease,
                           "{:+.2f}%".format(pct)])
    return format_table(
        ["setting", "w/o lease (mW)", "w/ lease (mW)", "overhead"],
        table_rows,
        title="Fig. 13: system power with and without LeaseOS "
              "(paper: < 1% overhead)",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
