"""Table 4: latency of major lease operations (§7.2).

Two complementary measurements:

- ``modelled_latencies_ms()`` -- the per-operation latencies LeaseOS
  models for its Android implementation (the paper's numbers live in the
  policy so the latency accounting of Fig. 14 uses them).
- ``measure_wall_clock_ms()`` -- actual wall-clock cost of *this
  implementation's* create / check / renew / update code paths, measured
  the way the paper does (drive an app that acquires and releases
  resources repeatedly, time each manager entry point). The shape to
  preserve: create/check/renew are cheap and similar; update is several
  times more expensive because it computes the utility metrics.

The pytest-benchmark suite (benchmarks/test_bench_table4_microbench.py) wraps the
same entry points for statistically robust numbers.
"""

import time

from repro.core.policy import LeasePolicy
from repro.droid.phone import Phone
from repro.droid.app import App
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS

PAPER_TABLE4_MS = {
    "create": 0.357,
    "check_accept": 0.498,
    "check_reject": 0.388,
    "update": 4.79,
}


class _ChurnApp(App):
    """Acquires and releases resources 20x (the paper's micro workload)."""

    app_name = "microbench"

    def run(self):
        for __ in range(20):
            lock = self.ctx.power.new_wakelock(self, "bench")
            lock.acquire()
            yield from self.compute(0.3)
            yield self.sleep(6.0)
            lock.release()
            yield self.sleep(2.0)


def modelled_latencies_ms(policy=None):
    policy = policy or LeasePolicy()
    return {op: latency * 1000.0
            for op, latency in policy.op_latency_s.items()}


def build_bench_phone(seed=3):
    """A phone with LeaseOS and one lease mid-life, for timing ops."""
    mitigation = LeaseOS()
    phone = Phone(seed=seed, mitigation=mitigation)
    app = phone.install(_ChurnApp())
    phone.run_for(seconds=30.0)
    return phone, mitigation.manager, app


def measure_wall_clock_ms(iterations=2000, seed=3):
    """Wall-clock microbenchmark of this implementation's op code paths."""
    phone, manager, app = build_bench_phone(seed)
    lease = next(iter(manager.leases.values()))

    def timed(func):
        start = time.perf_counter()
        for __ in range(iterations):
            func()
        return (time.perf_counter() - start) / iterations * 1000.0

    results = {}
    results["check_accept"] = timed(
        lambda: manager.check(lease.descriptor))
    results["check_reject"] = timed(lambda: manager.check(-1))
    results["renew"] = timed(lambda: manager.renew(lease.descriptor))
    # "update": the end-of-term stat collection + classification path.
    results["update"] = timed(lambda: manager._collect(lease))
    # "create": full lease creation (plus cleanup so the table stays flat).
    record = lease.record

    def create_remove():
        created = manager.create(record.rtype, app.uid, record, lease.proxy)
        manager.remove(created.descriptor)

    results["create"] = timed(create_remove) / 2.0  # create+remove pair
    return results


def render(wall_clock):
    rows = []
    for op in ("create", "check_accept", "check_reject", "renew", "update"):
        rows.append([
            op,
            "{:.4f}".format(wall_clock.get(op, float("nan"))),
            "{:.3f}".format(PAPER_TABLE4_MS.get(op, float("nan")))
            if op in PAPER_TABLE4_MS else "-",
        ])
    table = format_table(
        ["operation", "this impl (ms)", "paper Android impl (ms)"],
        rows,
        title="Table 4: lease operation latency",
    )
    # §7.2's framing: all lease ops sit below a plain resource-acquire
    # IPC (~2 ms on the paper's Android; the modelled value here).
    from repro.device.profiles import PIXEL_XL

    ipc_ms = PIXEL_XL.ipc_latency_s * 1000.0
    comparison = (
        "\nReference: a plain (non-lease) acquire IPC is modelled at "
        "{:.1f} ms;\nevery lease operation above is cheaper -- lease "
        "management stays off the app's critical path.".format(ipc_ms)
    )
    return table + comparison


def main():
    print(render(measure_wall_clock_ms()))


if __name__ == "__main__":
    main()
