"""Fig. 12: waste-reduction ratio vs λ for intermittent misbehaviour (§7.5).

The paper's method: generate 1000 misbehaviour slices and 1000 normal
slices, each of random length in (0, 10 min]; a combined trace is one
test case. Generate 1000 test cases, evaluate the reduction ratio of
wasted (misbehaving) holding time under λ in 1..5, and average. Paper
values: λ=1 -> 0.49, 2 -> 0.66, 3 -> 0.74, 4 -> 0.78, 5 -> 0.82 --
tracking the §5.1 closed form λ/(1+λ) with a small intermittency loss.

We implement the same evaluation with an analytic walk of the lease
state machine over a slice trace (fast enough for the full 1000x1000
setup), plus a simulator-backed cross-check used by the tests.
"""

import bisect
import random

from repro.apps.synthetic import random_slices
from repro.core.policy import waste_reduction_ratio
from repro.experiments.grid import FuncSpec, GridRunner
from repro.experiments.runner import format_table

PAPER_FIG12 = {1: 0.49, 2: 0.66, 3: 0.74, 4: 0.78, 5: 0.82}


class _Trace:
    """Slice trace with prefix sums for O(log n) misbehaviour queries."""

    def __init__(self, slices):
        self.bounds = [0.0]
        self.waste_prefix = [0.0]
        for kind, duration in slices:
            self.bounds.append(self.bounds[-1] + duration)
            waste = duration if kind == "misbehavior" else 0.0
            self.waste_prefix.append(self.waste_prefix[-1] + waste)
        self.total = self.bounds[-1]

    def _waste_before(self, t):
        index = bisect.bisect_right(self.bounds, t) - 1
        index = min(index, len(self.bounds) - 2)
        waste = self.waste_prefix[index]
        # partial slice [bounds[index], t)
        if self.waste_prefix[index + 1] > self.waste_prefix[index]:
            waste += max(0.0, min(t, self.bounds[index + 1])
                         - self.bounds[index])
        return waste

    def misbehavior_in(self, start, end):
        """Seconds of misbehaviour-slice time inside [start, end)."""
        if end <= start:
            return 0.0
        return self._waste_before(end) - self._waste_before(start)


def _misbehavior_in(slices, start, end):
    """Compatibility helper for one-off queries (tests)."""
    return _Trace(slices).misbehavior_in(start, end)


def trace_reduction(slices, term_s, deferral_s):
    """Analytic lease walk over a slice trace.

    Time alternates between ACTIVE terms (resource honoured; holding time
    accrues) and DEFERRED intervals (revoked; waste avoided). A term is
    judged misbehaving if most of its window lay in misbehaviour slices.
    Returns the reduction ratio of wasted holding time.
    """
    trace = slices if isinstance(slices, _Trace) else _Trace(slices)
    total = trace.total
    total_waste = trace.misbehavior_in(0.0, total)
    if total_waste <= 0:
        return 0.0
    incurred = 0.0
    clock = 0.0
    while clock < total:
        term_end = min(clock + term_s, total)
        waste = trace.misbehavior_in(clock, term_end)
        incurred += waste
        misbehaving = waste > 0.5 * (term_end - clock)
        clock = term_end
        if misbehaving:
            clock = min(clock + deferral_s, total)  # revoked: waste skipped
    return 1.0 - incurred / total_waste


def _lambda_job(lam, cases, slices_per_case, term_s, seed, max_slice_s):
    """One λ's average reduction ratio (a grid job; rebuilds the seeded
    trace set worker-locally, so every λ walks identical traces)."""
    rng = random.Random(seed)
    traces = [_Trace(random_slices(rng, slices_per_case, max_slice_s))
              for __ in range(cases)]
    deferral = lam * term_s
    ratios = [trace_reduction(trace, term_s, deferral)
              for trace in traces]
    return sum(ratios) / len(ratios)


def run(cases=200, slices_per_case=200, lams=(1, 2, 3, 4, 5),
        term_s=5.0, seed=2019, max_slice_s=600.0, runner=None):
    """Average reduction ratio per λ. Returns {λ: ratio}.

    Defaults are scaled down from the paper's 1000x1000 (the estimator
    concentrates quickly, and the 5 s term makes the full-size walk
    expensive in pure Python); pass ``cases=1000,
    slices_per_case=1000`` to run the paper-size experiment.
    """
    runner = runner if runner is not None else GridRunner()
    specs = [
        FuncSpec.make(_lambda_job, lam=lam, cases=cases,
                      slices_per_case=slices_per_case, term_s=term_s,
                      seed=seed, max_slice_s=max_slice_s)
        for lam in lams
    ]
    ratios = runner.run(specs)
    return dict(zip(lams, ratios))


def render(results):
    rows = []
    for lam in sorted(results):
        rows.append([
            lam,
            "{:.3f}".format(results[lam]),
            "{:.2f}".format(PAPER_FIG12.get(lam, float("nan"))),
            "{:.3f}".format(waste_reduction_ratio(lam)),
        ])
    return format_table(
        ["lambda", "reduction", "paper", "closed form l/(1+l)"],
        rows,
        title="Fig. 12: reduction ratio of wasted power vs lambda",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
