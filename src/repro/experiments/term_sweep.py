"""Term-length sensitivity on a real case (§5.1 trade-off, measured).

§5.1 argues a short lease term detects misbehaviour quickly but costs
lease-accounting overhead. This sweep runs the Torch case under initial
terms from 1 s to 60 s (fixed τ = 25 s, escalation off so the term is
the only variable) and reports, per term: the waste reduction, the
number of lease-stat updates (the overhead proxy), and the detection
latency of the first deferral.
"""

from dataclasses import dataclass

from repro.apps.buggy.cpu_apps import Torch
from repro.core.policy import LeasePolicy
from repro.droid.app import App
from repro.droid.phone import Phone
from repro.experiments.grid import FuncSpec, GridRunner
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS

TERMS_S = (1.0, 2.0, 5.0, 10.0, 30.0, 60.0)


class _SteadyWorker(App):
    """Always-normal 50%-duty worker (the overhead-side subject)."""

    app_name = "steady"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "s")
        lock.acquire()
        while True:
            yield from self.compute(0.5)
            yield self.sleep(0.5)


@dataclass
class TermSweepRow:
    term_s: float
    reduction_pct: float
    buggy_updates: int
    normal_updates: int
    first_deferral_s: float


def _vanilla_job(minutes, seed):
    """Unmitigated Torch power (the sweep's shared baseline)."""
    phone = Phone(seed=seed, ambient=False)
    app = phone.install(Torch())
    mark = phone.energy_mark()
    phone.run_for(minutes=minutes)
    return phone.power_since(mark, app.uid)


def _term_job(term, minutes, seed):
    """One term's buggy + steady runs; returns the scalar measurements."""
    policy = LeasePolicy(initial_term_s=term, adaptive_enabled=False,
                         escalation_enabled=False)
    mitigation = LeaseOS(policy=policy)
    phone = Phone(seed=seed, mitigation=mitigation, ambient=False)
    app = phone.install(Torch())
    mark = phone.energy_mark()
    phone.run_for(minutes=minutes)
    power = phone.power_since(mark, app.uid)
    defers = [d for d in mitigation.manager.decisions
              if d.action == "defer"]
    # The steady-state overhead side: the same term on a normal app.
    normal_mitigation = LeaseOS(policy=LeasePolicy(
        initial_term_s=term, adaptive_enabled=False,
        escalation_enabled=False))
    normal_phone = Phone(seed=seed, mitigation=normal_mitigation,
                         ambient=False)
    normal_phone.install(_SteadyWorker())
    normal_phone.run_for(minutes=minutes)
    return {
        "power": power,
        "buggy_updates": mitigation.manager.op_counts["update"],
        "normal_updates": normal_mitigation.manager.op_counts["update"],
        "first_deferral_s": defers[0].time if defers else float("nan"),
    }


def run(minutes=30.0, seed=67, terms=TERMS_S, runner=None):
    runner = runner if runner is not None else GridRunner()
    specs = [FuncSpec.make(_vanilla_job, minutes=minutes, seed=seed)]
    specs.extend(FuncSpec.make(_term_job, term=term, minutes=minutes,
                               seed=seed)
                 for term in terms)
    results = runner.run(specs)
    vanilla_mw = results[0]
    rows = []
    for term, measured in zip(terms, results[1:]):
        rows.append(TermSweepRow(
            term_s=term,
            reduction_pct=100.0 * (1.0 - measured["power"] / vanilla_mw),
            buggy_updates=measured["buggy_updates"],
            normal_updates=measured["normal_updates"],
            first_deferral_s=measured["first_deferral_s"],
        ))
    return rows


def render(rows):
    table_rows = [
        ["{:.0f} s".format(r.term_s),
         "{:.1f}%".format(r.reduction_pct),
         r.normal_updates,
         "{:.0f} s".format(r.first_deferral_s)]
        for r in rows
    ]
    table = format_table(
        ["term", "waste reduction", "normal-app updates / 30 min",
         "detection latency"],
        table_rows,
        title="Lease-term sweep on Torch (tau = 25 s fixed, "
              "escalation off)",
    )
    note = ("\nShort terms detect in seconds but multiply the "
            "accounting; long terms are\ncheap but slow to catch the "
            "leak and reduce less (r = t/(t+tau) holding\ngrows with "
            "t). The 5 s default + adaptive growth (5.2) takes the "
            "short-term\ndetection without the steady-state overhead.")
    return table + note


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
