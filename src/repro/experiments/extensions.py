"""§8 future-work extensions, demonstrated end to end.

Three experiments for the three §8 directions this reproduction
implements:

1. **DVFS-aware utility metrics** -- an app doing intense short bursts
   under a DVFS governor: time-based utilization underprices the bursts;
   the energy-normalized metric (``LeasePolicy.dvfs_aware``) reprices
   them with the device-state factor.
2. **Dynamic policy from usage history** -- a long-clean app's first
   offence draws a shorter deferral than a chronic offender's
   (:class:`~repro.core.adaptive.DynamicPolicyTuner`).
3. **Excessive-Use surfacing** -- the
   :class:`~repro.core.eub.ExcessiveUseAdvisor` report that lists
   heavy-but-useful apps without ever throttling them.
"""

from repro.core.adaptive import DynamicPolicyTuner
from repro.core.eub import ExcessiveUseAdvisor
from repro.core.policy import LeasePolicy
from repro.device.dvfs import DvfsGovernor
from repro.droid.app import App
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS

from repro.apps.buggy.cpu_apps import Torch


class BurstApp(App):
    """Intense multi-core blips at low duty: the DVFS repricing case."""

    app_name = "burst"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "burst")
        lock.acquire()
        while True:
            yield from self.compute(0.05, cores=4.0)
            yield self.sleep(0.95)


class HeavyGame(App):
    """Full-tilt but useful: the canonical Excessive-Use app."""

    app_name = "HeavyGame"

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "game")
        lock.acquire()
        while True:
            yield from self.compute(0.9)
            self.post_ui_update()
            yield self.sleep(0.1)


def run_dvfs(minutes=3.0, seed=61):
    """Return (time-based utilization, energy-based utilization)."""
    utilizations = {}
    from repro.droid.phone import Phone

    for label, aware in (("time-based", False), ("energy-based", True)):
        mitigation = LeaseOS(policy=LeasePolicy(dvfs_aware=aware))
        phone = Phone(seed=seed, mitigation=mitigation, ambient=False,
                      dvfs=DvfsGovernor())
        app = phone.install(BurstApp())
        phone.run_for(minutes=minutes)
        lease = mitigation.manager.leases_for(app.uid)[0]
        utilizations[label] = lease.history[-1].metrics.utilization
    return utilizations


class _TurnsBad(App):
    app_name = "turnsbad"

    def __init__(self, healthy_s):
        super().__init__()
        self.healthy_s = healthy_s

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "tb")
        lock.acquire()
        end = self.ctx.sim.now + self.healthy_s
        while self.ctx.sim.now < end:
            yield from self.compute(0.5)
            yield self.sleep(0.5)
        while True:
            yield self.sleep(600.0)


def run_dynamic_policy(minutes=12.0, seed=61):
    """First-offence deferral length: reputable vs chronic app."""
    from repro.droid.phone import Phone

    lengths = {}
    for label, healthy_s in (("reputable (2 min clean)", 120.0),
                             ("chronic (bad from boot)", 0.0)):
        mitigation = LeaseOS()
        phone = Phone(seed=seed, mitigation=mitigation, ambient=False)
        DynamicPolicyTuner().attach(mitigation.manager)
        app = phone.install(_TurnsBad(healthy_s))
        phone.run_for(minutes=minutes)
        defers = [d for d in mitigation.manager.decisions
                  if d.lease.uid == app.uid and d.action == "defer"]
        first = defers[0].time
        following = [d.time for d in mitigation.manager.decisions
                     if d.lease.uid == app.uid and d.time > first]
        lengths[label] = (following[0] - first) if following else None
    return lengths


def run_eub_report(minutes=5.0, seed=61):
    """The advisor lists the heavy game, not the idle Torch."""
    from repro.droid.phone import Phone

    mitigation = LeaseOS()
    phone = Phone(seed=seed, mitigation=mitigation, ambient=False)
    advisor = ExcessiveUseAdvisor(phone).attach(mitigation.manager)
    game = phone.install(HeavyGame())
    torch = phone.install(Torch())
    phone.run_for(minutes=minutes)
    return advisor, game, torch


def render():
    lines = []

    dvfs = run_dvfs()
    lines.append(format_table(
        ["metric", "utilization of intense bursts"],
        [[label, "{:.2f}".format(value)] for label, value in dvfs.items()],
        title="8.1 DVFS-aware utility: the same workload, repriced",
    ))

    dynamic = run_dynamic_policy()
    lines.append(format_table(
        ["app history", "first deferral + term (s)"],
        [[label, "{:.1f}".format(value)]
         for label, value in dynamic.items()],
        title="8.2 Dynamic policy: reputation scales the deferral",
    ))

    advisor, game, torch = run_eub_report()
    lines.append("8.3 Excessive-Use advisor report:")
    lines.append(advisor.render())
    entries = advisor.report()
    assert entries and entries[0].uid == game.uid
    assert all(entry.uid != torch.uid for entry in entries)

    return "\n\n".join(lines)


def main():
    print(render())


if __name__ == "__main__":
    main()
