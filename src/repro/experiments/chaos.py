"""Chaos experiment: the Table-5 subset under sampled fault plans.

The reproduction's headline numbers all come from the happy path of the
simulator. This harness re-runs a representative Table-5 subset while a
:class:`~repro.faults.injector.FaultInjector` perturbs the run -- binder
storms, GPS dropouts, network flaps, app crashes, power noise, event
jitter -- with the :mod:`~repro.faults.invariants` suite armed
throughout, and answers two questions:

1. **Does the simulator stay sound?** Any invariant violation fails the
   run and emits a minimal repro bundle (seed + fault plan JSON) that
   replays the failure in one command.
2. **Which mitigation verdicts flip under faults?** A mitigation is
   "effective" on a case when it cuts the app's power vs vanilla *under
   the same conditions* by at least :data:`EFFECTIVE_THRESHOLD_PCT`.
   Comparing the no-fault verdict with each fault plan's verdict shows
   which conclusions survive misbehaving environments (the paper's §7.6
   claim) and which are artifacts of a clean world.

Every job is a :class:`~repro.experiments.grid.FuncSpec`, so chaos grids
fan out and cache through the ordinary :class:`GridRunner`.
"""

import hashlib

from repro.experiments.grid import (
    FuncSpec,
    GridRunner,
    resolve_case,
    resolve_mitigation_factory,
)
from repro.experiments.runner import format_table, reduction_pct
from repro.faults.bundle import write_bundle
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan

#: Same representative slice as the robustness sweeps: one case per
#: resource class.
DEFAULT_SUBSET = ("torch", "k9", "connectbot-screen", "betterweather",
                  "tapandturn")

#: Regimes compared; vanilla is the in-condition baseline for verdicts.
MITIGATIONS = ("vanilla", "leaseos", "doze-aggressive", "defdroid")

#: A mitigation's verdict on a case is "effective" at or above this
#: reduction (vs vanilla under the same fault plan).
EFFECTIVE_THRESHOLD_PCT = 40.0

#: Default bundle directory for invariant-violation repros.
DEFAULT_BUNDLE_DIR = "results/chaos_bundles"


def run_chaos_case(case_key, mitigation="vanilla", minutes=10.0, seed=7,
                   plan_json="", invariant_interval_s=30.0):
    """One case under one mitigation with a fault plan armed.

    Module-level and scalar-kwarg-only so it runs as a
    :class:`~repro.experiments.grid.FuncSpec` (parallel workers, result
    cache). Returns a plain dict of scalars: powers, disruptions, fault
    and invariant accounting, and a sha256 fingerprint of the outcome --
    the determinism goldens assert the fingerprint bit-identical across
    runs and processes.
    """
    case = resolve_case(case_key)
    factory = resolve_mitigation_factory(mitigation)
    mit = factory() if factory else None
    phone = case.build_phone(mitigation=mit, seed=seed)
    app = case.make_app()
    phone.install(app)
    checker = InvariantChecker(phone, interval_s=invariant_interval_s)
    plan = FaultPlan.from_json(plan_json) if plan_json else FaultPlan()
    injector = FaultInjector(phone, plan, seed=seed, checker=checker,
                             target_uid=app.uid)
    injector.arm()
    mark = phone.energy_mark()
    crash = ""
    try:
        phone.run_for(minutes=minutes)
    except Exception as exc:  # a crash is itself an invariant failure
        crash = "{}: {}".format(type(exc).__name__, exc)
    checker.check_now()
    checker.detach()
    violations = [v.as_dict() for v in checker.violations]
    if crash:
        violations.append({"invariant": "no_uncaught_exception",
                           "time": phone.sim.now, "detail": crash,
                           "data": {}})
    result = {
        "case_key": case_key,
        "mitigation": mitigation,
        "seed": seed,
        "plan_seed": plan.seed,
        "minutes": minutes,
        "app_power_mw": phone.power_since(mark, app.uid),
        "system_power_mw": phone.power_since(mark),
        "disruptions": len(app.disruptions),
        "faults_applied": injector.applied_count,
        "ipc_failed_calls": phone.ipc.failed_calls,
        "invariant_checks": checker.checks_run,
        "violations": violations,
    }
    result["fingerprint"] = _fingerprint(result, phone)
    return result


def _fingerprint(result, phone):
    """sha256 over every observable scalar of the run."""
    text = "|".join([
        result["case_key"], result["mitigation"], str(result["seed"]),
        str(result["plan_seed"]),
        "{:.9f}".format(result["app_power_mw"]),
        "{:.9f}".format(result["system_power_mw"]),
        str(result["disruptions"]), str(result["faults_applied"]),
        str(result["ipc_failed_calls"]),
        str(phone.ipc.call_count()), str(phone.sim.dispatched),
        "{:.6f}".format(phone.battery.remaining_mj),
        ";".join("{}@{:.3f}".format(v["invariant"], v["time"])
                 for v in result["violations"]),
    ])
    return hashlib.sha256(text.encode()).hexdigest()


class ChaosReport:
    """Everything one chaos sweep produced, ready to render."""

    def __init__(self, case_keys, plans, baseline, by_plan, minutes, seed):
        self.case_keys = tuple(case_keys)
        self.plans = plans  # {plan_seed: FaultPlan}
        self.baseline = baseline  # {(case, mitigation): result}
        self.by_plan = by_plan  # {plan_seed: {(case, mitigation): result}}
        self.minutes = minutes
        self.seed = seed

    # -- verdicts ----------------------------------------------------------

    @staticmethod
    def _verdict(results, case_key, mitigation):
        """True/False effectiveness, or None when either side of the
        comparison was quarantined (no result to judge)."""
        vanilla = results.get((case_key, "vanilla"))
        mitigated = results.get((case_key, mitigation))
        if vanilla is None or mitigated is None:
            return None
        return reduction_pct(vanilla["app_power_mw"],
                             mitigated["app_power_mw"]) \
            >= EFFECTIVE_THRESHOLD_PCT

    def flips(self):
        """Every (case, mitigation, plan_seed) whose verdict flipped.

        Comparisons involving a quarantined run are skipped -- a
        missing result is reported as FAILED, never as a flip.
        """
        out = []
        for case_key in self.case_keys:
            for mitigation in MITIGATIONS[1:]:
                base = self._verdict(self.baseline, case_key, mitigation)
                if base is None:
                    continue
                for plan_seed, results in sorted(self.by_plan.items()):
                    under = self._verdict(results, case_key, mitigation)
                    if under is not None and under != base:
                        out.append((case_key, mitigation, plan_seed,
                                    base, under))
        return out

    def failed_runs(self):
        """(case, mitigation, plan_seed) for every quarantined job;
        plan_seed is None for the no-fault baseline grid."""
        out = []
        tables = [(None, self.baseline)] + sorted(self.by_plan.items())
        for plan_seed, results in tables:
            for (case_key, mitigation), result in sorted(results.items()):
                if result is None:
                    out.append((case_key, mitigation, plan_seed))
        return out

    def violating_runs(self):
        """Every result dict that recorded invariant violations."""
        runs = [r for r in self.baseline.values()
                if r is not None and r["violations"]]
        for results in self.by_plan.values():
            runs.extend(r for r in results.values()
                        if r is not None and r["violations"])
        return runs

    @property
    def total_violations(self):
        return sum(len(r["violations"]) for r in self.violating_runs())

    def write_bundles(self, directory=DEFAULT_BUNDLE_DIR):
        """One repro bundle per violating run; returns the paths."""
        paths = []
        for result in self.violating_runs():
            plan = self.plans.get(result["plan_seed"])
            kwargs = {
                "case_key": result["case_key"],
                "mitigation": result["mitigation"],
                "minutes": result["minutes"],
                "seed": result["seed"],
                "plan_json": plan.to_json() if plan is not None else "",
            }
            paths.append(write_bundle(directory, kwargs, result))
        return paths


def run(case_keys=DEFAULT_SUBSET, plan_seeds=(1, 2, 3), minutes=10.0,
        seed=7, runner=None):
    """The chaos sweep: baseline + every plan, one flat cached grid."""
    runner = runner if runner is not None else GridRunner()
    plans = {ps: FaultPlan.sample(ps, horizon_s=minutes * 60.0)
             for ps in plan_seeds}
    conditions = [(None, "")] + [(ps, plans[ps].to_json())
                                 for ps in plan_seeds]
    specs, labels = [], []
    for plan_seed, plan_json in conditions:
        tag = "base" if plan_seed is None else "plan{}".format(plan_seed)
        for case_key in case_keys:
            for mitigation in MITIGATIONS:
                specs.append(FuncSpec.make(
                    run_chaos_case, case_key=case_key,
                    mitigation=mitigation, minutes=float(minutes),
                    seed=int(seed), plan_json=plan_json))
                labels.append("chaos:{}:{}:{}".format(
                    case_key, mitigation, tag))
    flat = runner.run(specs, labels=labels)
    per_condition = len(case_keys) * len(MITIGATIONS)
    tables = {}
    for offset, (plan_seed, __) in enumerate(conditions):
        chunk = flat[offset * per_condition:(offset + 1) * per_condition]
        table = {}
        index = 0
        for case_key in case_keys:
            for mitigation in MITIGATIONS:
                table[(case_key, mitigation)] = chunk[index]
                index += 1
        tables[plan_seed] = table
    baseline = tables.pop(None)
    return ChaosReport(case_keys, plans, baseline, tables, minutes, seed)


def render(report):
    plan_seeds = sorted(report.plans)
    lines = ["Chaos sweep: {} cases x {} regimes x {} fault plans "
             "({}+baseline grids of {:.0f} simulated minutes, seed {})"
             .format(len(report.case_keys), len(MITIGATIONS),
                     len(plan_seeds), len(plan_seeds), report.minutes,
                     report.seed)]
    for plan_seed in plan_seeds:
        lines.append("  plan {}: {!r}".format(plan_seed,
                                              report.plans[plan_seed]))
    headers = ["case", "mitigation", "base"] + [
        "plan {}".format(ps) for ps in plan_seeds]
    def mark_of(verdict):
        if verdict is None:
            return "FAILED"
        return "eff" if verdict else "ineff"

    rows = []
    for case_key in report.case_keys:
        for mitigation in MITIGATIONS[1:]:
            base = report._verdict(report.baseline, case_key, mitigation)
            cells = [case_key, mitigation, mark_of(base)]
            for plan_seed in plan_seeds:
                under = report._verdict(report.by_plan[plan_seed],
                                        case_key, mitigation)
                mark = mark_of(under)
                if None not in (base, under) and under != base:
                    mark += " *FLIP*"
                cells.append(mark)
            rows.append(cells)
    lines.append("")
    lines.append(format_table(
        headers, rows,
        title="Verdicts (effective = >={:.0f}% app-power reduction vs "
              "vanilla under the same faults)".format(
                  EFFECTIVE_THRESHOLD_PCT)))
    flips = report.flips()
    lines.append("")
    if flips:
        lines.append("{} verdict flip(s) under faults:".format(len(flips)))
        for case_key, mitigation, plan_seed, base, under in flips:
            lines.append("  {} / {}: {} -> {} under plan {}".format(
                case_key, mitigation,
                "effective" if base else "ineffective",
                "effective" if under else "ineffective", plan_seed))
    else:
        lines.append("no verdict flips: every mitigation conclusion "
                     "survives every sampled fault plan")
    failed = report.failed_runs()
    if failed:
        lines.append("")
        lines.append("{} job(s) quarantined under supervision (no "
                     "result; see the failure manifest):".format(
                         len(failed)))
        for case_key, mitigation, plan_seed in failed:
            lines.append("  {} / {} under {}".format(
                case_key, mitigation,
                "baseline" if plan_seed is None
                else "plan {}".format(plan_seed)))
    if report.total_violations:
        lines.append("")
        lines.append("INVARIANT VIOLATIONS: {} across {} run(s) -- repro "
                     "bundles written; replay with "
                     "`python -m repro chaos --replay <bundle>`".format(
                         report.total_violations,
                         len(report.violating_runs())))
        for result in report.violating_runs():
            for violation in result["violations"]:
                lines.append("  {}/{} [{}] t={:.1f}: {}".format(
                    result["case_key"], result["mitigation"],
                    violation["invariant"], violation["time"],
                    violation["detail"]))
    else:
        lines.append("invariants: all held ({} sampled checks across the "
                     "grid)".format(sum(
                         r["invariant_checks"]
                         for t in [report.baseline] +
                         list(report.by_plan.values())
                         for r in t.values() if r is not None)))
    return "\n".join(lines)


def main():
    report = run()
    print(render(report))
    if report.total_violations:
        report.write_bundles()
        raise SystemExit(1)


if __name__ == "__main__":
    main()
