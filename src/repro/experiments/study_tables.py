"""Tables 1 and 2: the misbehaviour taxonomy and the 109-case study."""

from repro.core.behavior import BehaviorType
from repro.experiments.runner import format_table
from repro.study.cases import prevalence_findings, table2_counts
from repro.study.taxonomy import applicability_matrix


def render_table1():
    matrix = applicability_matrix()
    order = [BehaviorType.FAB, BehaviorType.LHB, BehaviorType.LUB,
             BehaviorType.EUB, BehaviorType.NORMAL]
    rows = []
    for group, row in matrix.items():
        rows.append([group] + [row[b] for b in order])
    return format_table(
        ["Resource", "FAB", "LHB", "LUB", "EUB", "Normal"],
        rows,
        title="Table 1: energy misbehaviour applicability per resource "
              "(yes* = different semantic)",
    )


def render_table2():
    counts = table2_counts()
    rows = []
    for label in ("FAB", "LHB", "LUB", "EUB", "N/A"):
        row = counts[label]
        total = sum(r["total"] for r in counts.values())
        rows.append([
            label, row["bug"], row["config"], row["enhance"], row["n/a"],
            row["total"], "{:.0f}%".format(100.0 * row["total"] / total),
        ])
    table = format_table(
        ["Type", "Bug", "Config.", "Enhance.", "N/A", "Total", "Pct."],
        rows,
        title="Table 2: prevalence of misbehaviour types (109 cases)",
    )
    clear, bug_share, eub_nonbug = prevalence_findings()
    findings = (
        "\nFinding 1: FAB+LHB+LUB cover {:.0f}% of cases (paper: 58%), "
        "EUB {:.0f}% (paper: 31%).\n"
        "Finding 2: {:.0f}% of FAB/LHB/LUB are Bugs (paper: 80%); "
        "{:.0f}% of EUB are non-Bug (paper: 77%)."
    ).format(clear * 100.0,
             table2_counts()["EUB"]["total"] / 1.09,
             bug_share * 100.0, eub_nonbug * 100.0)
    return table + findings


def render_resource_crosstab():
    """Resource x behaviour cross-tab over the 109-case dataset (an
    extension view: the paper reports only the behaviour marginals)."""
    from collections import Counter

    from repro.study.cases import CASES

    counts = Counter((c.resource, c.behavior) for c in CASES)
    resources = sorted({c.resource for c in CASES})
    order = [BehaviorType.FAB, BehaviorType.LHB, BehaviorType.LUB,
             BehaviorType.EUB, None]
    rows = []
    for resource in resources:
        row = [resource]
        for behavior in order:
            row.append(counts.get((resource, behavior), 0))
        row.append(sum(counts.get((resource, b), 0) for b in order))
        rows.append(row)
    return format_table(
        ["Resource", "FAB", "LHB", "LUB", "EUB", "N/A", "Total"],
        rows,
        title="Resource x behaviour cross-tab (109 cases; extension "
              "view of Table 2)",
    )


def main():
    print(render_table1())
    print()
    print(render_table2())
    print()
    print(render_resource_crosstab())


if __name__ == "__main__":
    main()
