"""Fig. 14: end-to-end interaction latency with and without leases (§7.6).

Three probe apps exercise interaction flows whose resources are backed by
leases (sensor registration -> first reading -> UI; wakelock-backed
compute + network -> UI; GPS request -> first fix -> UI). The user
touches the app repeatedly; we report the mean touch-to-UI-update
latency. The claim to preserve: the lease machinery adds only a very
small latency (lease operations sit off the app's critical path).
"""

from repro.apps.normal.interactive import LatencyProbeApp
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS

KINDS = ("sensor", "wakelock", "gps")


def _measure(kind, with_lease, touches=12, gap_s=30.0, seed=17):
    mitigation = LeaseOS() if with_lease else None
    phone = Phone(seed=seed, mitigation=mitigation, gps_quality=0.9)
    probe = LatencyProbeApp(kind)
    phone.install(probe)
    phone.screen_on()
    phone.set_foreground(probe.uid)
    for __ in range(touches):
        phone.touch(probe.uid)
        phone.run_for(seconds=gap_s)
    return probe.mean_latency_ms()


def run(touches=12, seed=17):
    """Returns {kind: (ms w/o lease, ms w/ lease)}."""
    results = {}
    for kind in KINDS:
        without = _measure(kind, False, touches=touches, seed=seed)
        with_lease = _measure(kind, True, touches=touches, seed=seed)
        results[kind] = (without, with_lease)
    return results


def render(results):
    rows = []
    for kind in KINDS:
        without, with_lease = results[kind]
        delta = with_lease - without
        pct = 100.0 * delta / without if without else 0.0
        rows.append(["{} app".format(kind), without, with_lease,
                     "{:+.2f} ms ({:+.2f}%)".format(delta, pct)])
    return format_table(
        ["flow", "w/o lease (ms)", "w/ lease (ms)", "lease overhead"],
        rows,
        title="Fig. 14: end-to-end interaction latency",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
