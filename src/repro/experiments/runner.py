"""Shared experiment plumbing: case runs and plain-text tables."""

from dataclasses import dataclass


@dataclass
class CaseRun:
    """Result of running one case under one mitigation."""

    case_key: str
    mitigation: str
    app_power_mw: float
    system_power_mw: float
    disruptions: int
    app: object
    phone: object
    #: Misbehaviour classes the lease manager observed for this app
    #: (empty unless LeaseOS was the mitigation).
    observed_behaviors: frozenset = frozenset()


def run_case(case, mitigation_factory=None, minutes=30.0, seed=7,
             warmup_s=0.0, **phone_overrides):
    """Run a :class:`~repro.apps.spec.CaseSpec` for ``minutes``.

    ``mitigation_factory`` is a callable returning a fresh Mitigation (or
    None for vanilla). Power is averaged over the window after
    ``warmup_s``.
    """
    mitigation = mitigation_factory() if mitigation_factory else None
    phone = case.build_phone(mitigation=mitigation, seed=seed,
                             **phone_overrides)
    app = case.make_app()
    phone.install(app)
    if warmup_s:
        phone.run_for(seconds=warmup_s)
    mark = phone.energy_mark()
    phone.run_for(minutes=minutes)
    observed = frozenset()
    if phone.lease_manager is not None:
        observed = frozenset(
            d.behavior for d in phone.lease_manager.decisions
            if d.lease.uid == app.uid and d.behavior.is_misbehavior
        )
    return CaseRun(
        case_key=case.key,
        mitigation=mitigation.name if mitigation else "vanilla",
        app_power_mw=phone.power_since(mark, app.uid),
        system_power_mw=phone.power_since(mark),
        disruptions=len(app.disruptions),
        app=app,
        phone=phone,
        observed_behaviors=observed,
    )


def reduction_pct(baseline, value):
    """Percent reduction of ``value`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - value / baseline)


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table (strings or numbers)."""
    def fmt(cell):
        if isinstance(cell, float):
            return "{:.2f}".format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows))
        if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)
