"""§7.4: usability impact on normal, resource-heavy background apps.

RunKeeper (GPS + sensors, user running), Spotify (audio + streaming) and
Haven (continuous sensor monitoring) run for 30 minutes under LeaseOS and
under pure time-based throttling ("leases with only a single term"). The
paper's finding to preserve: zero disruptions under LeaseOS (the
resources earn their keep, every term renews), while all three break
under throttling. The Trepn profiler app shows the same contrast.
"""

from dataclasses import dataclass

from repro.apps.normal.background import (
    Haven,
    RunKeeper,
    Spotify,
    TrepnProfiler,
)
from repro.droid.phone import Phone
from repro.experiments.runner import format_table
from repro.mitigation import LeaseOS, TimedThrottle

SUBJECTS = [
    (RunKeeper, dict(gps_quality=0.95, movement_mps=2.5)),
    (Spotify, dict(connected=True)),
    (Haven, dict()),
    (TrepnProfiler, dict()),
]


@dataclass
class UsabilityRow:
    app_name: str
    leaseos_disruptions: int
    throttle_disruptions: int
    leaseos_deferrals: int
    details: list


def _run(app_factory, phone_kwargs, mitigation, minutes, seed):
    phone = Phone(seed=seed, mitigation=mitigation, **phone_kwargs)
    app = app_factory()
    phone.install(app)
    phone.run_for(minutes=minutes)
    deferrals = 0
    if phone.lease_manager is not None:
        deferrals = sum(
            l.deferral_count for l in phone.lease_manager.leases_for(app.uid)
        )
    return app, deferrals


def run(minutes=30.0, seed=41, throttle_term_s=300.0):
    rows = []
    for app_factory, phone_kwargs in SUBJECTS:
        lease_app, deferrals = _run(
            app_factory, phone_kwargs, LeaseOS(), minutes, seed
        )
        throttle_app, __ = _run(
            app_factory, phone_kwargs, TimedThrottle(term_s=throttle_term_s),
            minutes, seed,
        )
        rows.append(UsabilityRow(
            app_name=lease_app.name,
            leaseos_disruptions=len(lease_app.disruptions),
            throttle_disruptions=len(throttle_app.disruptions),
            leaseos_deferrals=deferrals,
            details=[d for __, d in throttle_app.disruptions],
        ))
    return rows


def render(rows):
    table_rows = [
        [r.app_name, r.leaseos_disruptions, r.throttle_disruptions,
         r.leaseos_deferrals,
         r.details[0] if r.details else "-"]
        for r in rows
    ]
    return format_table(
        ["app", "LeaseOS disruptions", "throttle disruptions",
         "LeaseOS deferrals", "first throttle disruption"],
        table_rows,
        title="Usability (7.4): normal heavy apps under LeaseOS vs "
              "single-term throttling",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
