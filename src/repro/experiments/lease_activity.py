"""Fig. 11: lease activity under normal usage (§7.2).

The paper actively uses popular apps (games, social, news, music) for 30
minutes, then leaves the phone untouched for 30 minutes, and plots the
number of active leases over the hour. It reports: 160 leases created in
total, most short-lived (median active period 5 s, max 18 min), average
4 terms per lease (max 52).

We reproduce the session with the seeded user model over a fleet of
interactive apps plus the Spotify/RunKeeper-style background services,
sampling the lease manager's active count.
"""

import statistics

from dataclasses import dataclass

from repro.apps.normal.background import Spotify, TrepnProfiler
from repro.apps.normal.interactive import popular_apps
from repro.droid.phone import Phone
from repro.mitigation import LeaseOS


@dataclass
class LeaseActivityResult:
    samples: list  # (time_s, active_lease_count)
    created_total: int
    term_counts: list  # terms per lease (leases seen by the manager)
    active_periods: list  # seconds each lease spent with resources held

    @property
    def median_active_period_s(self):
        return statistics.median(self.active_periods) \
            if self.active_periods else 0.0

    @property
    def max_active_period_s(self):
        return max(self.active_periods) if self.active_periods else 0.0

    @property
    def mean_terms(self):
        return statistics.mean(self.term_counts) if self.term_counts else 0.0

    @property
    def max_terms(self):
        return max(self.term_counts) if self.term_counts else 0


def run(active_minutes=30.0, idle_minutes=30.0, app_count=8, seed=23,
        sample_interval_s=30.0):
    mitigation = LeaseOS()
    phone = Phone(seed=seed, mitigation=mitigation)
    apps = popular_apps(app_count)
    for app in apps:
        phone.install(app)
    phone.install(Spotify())
    phone.install(TrepnProfiler())

    manager = mitigation.manager
    samples = []
    sampler = phone.sim.every(
        sample_interval_s,
        lambda: samples.append((phone.sim.now,
                                manager.active_lease_count())),
    )
    uids = [a.uid for a in apps]
    phone.sim.spawn(
        phone.user.active_session(uids, active_minutes * 60.0,
                                  touch_interval=8.0),
        name="user.active",
    )
    phone.run_for(minutes=active_minutes + idle_minutes)
    sampler.cancel()

    # Lease lifetime stats: leases removed from the table are gone, so we
    # collect from the decision log plus the live table.
    term_counts = [l.term_index for l in manager.leases.values()]
    periods = []
    for lease in manager.leases.values():
        record = lease.record
        record.settle()
        periods.append(record.active_time)
    return LeaseActivityResult(
        samples=samples,
        created_total=manager.created_total,
        term_counts=term_counts,
        active_periods=periods,
    )


def render(result):
    lines = ["Fig. 11: active leases over one hour "
             "(30 min active use + 30 min idle)"]
    for time_s, count in result.samples:
        bar = "#" * count
        lines.append("{:5.1f} min  {:3d}  {}".format(
            time_s / 60.0, count, bar))
    lines.append("")
    lines.append("created total: {} (paper: 160)".format(
        result.created_total))
    lines.append("median active period: {:.1f} s (paper: 5 s); max: "
                 "{:.1f} min (paper: 18 min)".format(
                     result.median_active_period_s,
                     result.max_active_period_s / 60.0))
    lines.append("terms per lease: mean {:.1f} (paper: 4), max {} "
                 "(paper: 52)".format(result.mean_terms, result.max_terms))
    return "\n".join(lines)


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
