"""Robustness checks: seeds and hardware profiles.

The paper argues its observations are stable across runs and across
phone ecosystems (§2.3 runs five phones; §7.6 repeats each overhead
experiment 8 times). These harnesses make the same argument for the
reproduction:

- :func:`seed_sweep` -- the Table 5 headline averages across independent
  seeds: the LeaseOS > Doze ≈ DefDroid ordering must hold for every
  seed, with small dispersion.
- :func:`profile_sweep` -- a Table 5 subset across phone profiles
  (high-end Pixel XL vs low-end Moto G): reductions are a property of
  the mechanism, not the hardware.
"""

import statistics

from repro.apps.buggy import CASES_BY_KEY
from repro.device.profiles import MOTO_G, NEXUS_6, PIXEL_XL
from repro.experiments import table5
from repro.experiments.grid import GridRunner, JobSpec
from repro.experiments.runner import format_table

#: A representative slice: one case per resource class.
DEFAULT_SUBSET = ("torch", "k9", "connectbot-screen", "betterweather",
                  "tapandturn")


def seed_sweep(seeds=(7, 21, 99), case_keys=DEFAULT_SUBSET, minutes=15.0,
               runner=None):
    """Per-seed Table 5 averages. Returns {seed: averages dict}.

    All seeds' grids are submitted through the runner as one batch, so
    the whole sweep fans out (and caches) at once.
    """
    runner = runner if runner is not None else GridRunner()
    cases = [CASES_BY_KEY[k] for k in case_keys]
    specs = []
    for seed in seeds:
        specs.extend(table5.grid_specs(cases, minutes=minutes, seed=seed))
    flat = runner.run(specs)
    per_seed = len(cases) * len(table5.MITIGATIONS)
    results = {}
    for offset, seed in enumerate(seeds):
        chunk = flat[offset * per_seed:(offset + 1) * per_seed]
        rows = table5.rows_from_results(cases, chunk)
        results[seed] = table5.averages(rows)
    return results


def profile_sweep(profiles=(PIXEL_XL, NEXUS_6, MOTO_G),
                  case_keys=DEFAULT_SUBSET, minutes=15.0, seed=7,
                  runner=None):
    """LeaseOS reduction per phone profile. Returns {name: avg pct}."""
    runner = runner if runner is not None else GridRunner()
    cases = [CASES_BY_KEY[k] for k in case_keys]
    specs = [
        JobSpec.make(case, mitigation=mitigation, minutes=minutes,
                     seed=seed, profile=profile.name)
        for profile in profiles
        for case in cases
        for mitigation in ("vanilla", "leaseos")
    ]
    flat = runner.run(specs)
    results = {}
    per_profile = 2 * len(cases)
    for offset, profile in enumerate(profiles):
        chunk = flat[offset * per_profile:(offset + 1) * per_profile]
        reductions = []
        for index in range(len(cases)):
            vanilla = chunk[2 * index]
            leased = chunk[2 * index + 1]
            if vanilla.app_power_mw > 0:
                reductions.append(
                    100.0 * (1.0 - leased.app_power_mw
                             / vanilla.app_power_mw))
        results[profile.name] = statistics.mean(reductions)
    return results


def render(seed_results, profile_results):
    seed_rows = [
        [seed, "{:.1f}".format(avg["leaseos"]),
         "{:.1f}".format(avg["doze"]), "{:.1f}".format(avg["defdroid"])]
        for seed, avg in sorted(seed_results.items())
    ]
    lease_values = [avg["leaseos"] for avg in seed_results.values()]
    spread = max(lease_values) - min(lease_values)
    seed_table = format_table(
        ["seed", "LeaseOS %", "Doze %", "DefDroid %"], seed_rows,
        title="Seed robustness (subset averages; LeaseOS spread "
              "{:.1f} points)".format(spread),
    )
    profile_rows = [
        [name, "{:.1f}".format(value)]
        for name, value in profile_results.items()
    ]
    profile_table = format_table(
        ["phone", "LeaseOS reduction %"], profile_rows,
        title="Hardware robustness (same mechanism, different phones)",
    )
    return seed_table + "\n\n" + profile_table


def main():
    print(render(seed_sweep(), profile_sweep()))


if __name__ == "__main__":
    main()
