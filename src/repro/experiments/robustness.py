"""Robustness checks: seeds and hardware profiles.

The paper argues its observations are stable across runs and across
phone ecosystems (§2.3 runs five phones; §7.6 repeats each overhead
experiment 8 times). These harnesses make the same argument for the
reproduction:

- :func:`seed_sweep` -- the Table 5 headline averages across independent
  seeds: the LeaseOS > Doze ≈ DefDroid ordering must hold for every
  seed, with small dispersion.
- :func:`profile_sweep` -- a Table 5 subset across phone profiles
  (high-end Pixel XL vs low-end Moto G): reductions are a property of
  the mechanism, not the hardware.
"""

import statistics

from repro.apps.buggy import CASES_BY_KEY
from repro.device.profiles import MOTO_G, NEXUS_6, PIXEL_XL
from repro.experiments import table5
from repro.experiments.runner import format_table, run_case
from repro.mitigation import LeaseOS

#: A representative slice: one case per resource class.
DEFAULT_SUBSET = ("torch", "k9", "connectbot-screen", "betterweather",
                  "tapandturn")


def seed_sweep(seeds=(7, 21, 99), case_keys=DEFAULT_SUBSET, minutes=15.0):
    """Per-seed Table 5 averages. Returns {seed: averages dict}."""
    cases = [CASES_BY_KEY[k] for k in case_keys]
    results = {}
    for seed in seeds:
        rows = table5.run(cases=cases, minutes=minutes, seed=seed)
        results[seed] = table5.averages(rows)
    return results


def profile_sweep(profiles=(PIXEL_XL, NEXUS_6, MOTO_G),
                  case_keys=DEFAULT_SUBSET, minutes=15.0, seed=7):
    """LeaseOS reduction per phone profile. Returns {name: avg pct}."""
    cases = [CASES_BY_KEY[k] for k in case_keys]
    results = {}
    for profile in profiles:
        reductions = []
        for case in cases:
            vanilla = run_case(case, None, minutes=minutes, seed=seed,
                               profile=profile)
            leased = run_case(case, LeaseOS, minutes=minutes, seed=seed,
                              profile=profile)
            if vanilla.app_power_mw > 0:
                reductions.append(
                    100.0 * (1.0 - leased.app_power_mw
                             / vanilla.app_power_mw))
        results[profile.name] = statistics.mean(reductions)
    return results


def render(seed_results, profile_results):
    seed_rows = [
        [seed, "{:.1f}".format(avg["leaseos"]),
         "{:.1f}".format(avg["doze"]), "{:.1f}".format(avg["defdroid"])]
        for seed, avg in sorted(seed_results.items())
    ]
    lease_values = [avg["leaseos"] for avg in seed_results.values()]
    spread = max(lease_values) - min(lease_values)
    seed_table = format_table(
        ["seed", "LeaseOS %", "Doze %", "DefDroid %"], seed_rows,
        title="Seed robustness (subset averages; LeaseOS spread "
              "{:.1f} points)".format(spread),
    )
    profile_rows = [
        [name, "{:.1f}".format(value)]
        for name, value in profile_results.items()
    ]
    profile_table = format_table(
        ["phone", "LeaseOS reduction %"], profile_rows,
        title="Hardware robustness (same mechanism, different phones)",
    )
    return seed_table + "\n\n" + profile_table


def main():
    print(render(seed_sweep(), profile_sweep()))


if __name__ == "__main__":
    main()
