"""Deployment estimate: what LeaseOS would buy a population of users.

A derived, clearly-labelled back-of-envelope built *only* from measured
quantities in this reproduction:

- the §2.5 study says a popular-app issue is FAB/LHB/LUB (the classes
  LeaseOS mitigates) in 58% of cases;
- the Table 5 grid gives the measured per-class vanilla draw and
  LeaseOS reduction;
- the §7.6 day gives the baseline (bug-free) device draw.

We simulate a population of devices, each afflicted with 0..k bugs drawn
from the study's class distribution, and report the distribution of
standby-drain savings LeaseOS delivers. This quantifies the soundness
reviewers' "limited deployment impact" question: most devices gain
little (they have no triggered bug), but the affected tail gains a lot
-- exactly the profile of a reliability mechanism.
"""

import random
import statistics

from dataclasses import dataclass

from repro.core.behavior import BehaviorType
from repro.experiments import table5
from repro.experiments.runner import format_table
from repro.study.cases import CASES

#: Idle standby draw of a healthy device (measured: Fig. 13 idle row).
HEALTHY_STANDBY_MW = 23.0


@dataclass
class DeploymentEstimate:
    affliction_rate: float
    savings_mw: list  # per simulated device

    @property
    def mean_savings_mw(self):
        return statistics.mean(self.savings_mw)

    @property
    def p95_savings_mw(self):
        ordered = sorted(self.savings_mw)
        return ordered[int(0.95 * (len(ordered) - 1))]

    @property
    def share_with_savings(self):
        return sum(1 for s in self.savings_mw if s > 1.0) \
            / len(self.savings_mw)


def _per_class_measurements(rows):
    """(vanilla mW, leaseos mW) averaged per misbehaviour class."""
    sums = {}
    for row in rows:
        entry = sums.setdefault(row.case.behavior, [0.0, 0.0, 0])
        entry[0] += row.vanilla_mw
        entry[1] += row.leaseos_mw
        entry[2] += 1
    return {
        behavior: (v / n, l / n)
        for behavior, (v, l, n) in sums.items()
    }


def run(devices=2000, affliction_rate=0.2, seed=2019, rows=None):
    """Simulate a device population.

    ``affliction_rate``: probability an installed popular app currently
    has a *triggered* energy issue (triggering needs both the defect and
    the environment; the rate is an assumption, reported as such).
    """
    rows = rows if rows is not None else table5.run(minutes=10.0)
    per_class = _per_class_measurements(rows)
    mitigated = [c.behavior for c in CASES
                 if c.behavior is not None
                 and c.behavior.is_misbehavior]
    all_classified = [c.behavior for c in CASES if c.behavior is not None]

    rng = random.Random(seed)
    savings = []
    for __ in range(devices):
        device_savings = 0.0
        # Each device runs a handful of background-capable apps.
        for __ in range(rng.randint(3, 10)):
            if rng.random() >= affliction_rate:
                continue
            behavior = rng.choice(all_classified)
            if behavior is BehaviorType.EUB:
                continue  # LeaseOS deliberately leaves EUB alone
            vanilla, leased = per_class[behavior]
            device_savings += vanilla - leased
        savings.append(device_savings)
    return DeploymentEstimate(affliction_rate, savings)


def render(estimate):
    rows = [
        ["devices with measurable savings",
         "{:.0f}%".format(100.0 * estimate.share_with_savings)],
        ["mean standby savings", "{:.1f} mW".format(
            estimate.mean_savings_mw)],
        ["p95 standby savings", "{:.1f} mW".format(
            estimate.p95_savings_mw)],
        ["healthy-device standby draw (reference)",
         "{:.1f} mW".format(HEALTHY_STANDBY_MW)],
    ]
    table = format_table(
        ["population metric", "value"], rows,
        title="Deployment estimate ({} devices, {:.0%} triggered-issue "
              "rate per app -- an assumption)".format(
                  len(estimate.savings_mw), estimate.affliction_rate),
    )
    note = ("\nThe distribution is heavy-tailed, as expected of a "
            "reliability mechanism: many\ndevices gain nothing (no "
            "triggered bug), while an afflicted device's standby\ndrain "
            "drops by several times the healthy baseline.")
    return table + note


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
