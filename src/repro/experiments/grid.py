"""Parallel experiment grid runner with deterministic result caching.

Every headline artifact of the reproduction (Table 5, the sweeps, the
robustness seeds, the battery projection) is a grid of *independent*
simulations. This module makes that structure first-class:

- a job is a declarative, hashable spec -- either a :class:`JobSpec`
  (one ``run_case`` invocation, referenced by case key and mitigation
  name) or a :class:`FuncSpec` (a module-level function plus scalar
  kwargs);
- :class:`GridRunner` fans specs out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` argument, or the
  ``REPRO_JOBS`` environment variable; ``jobs=1`` or an unavailable pool
  degrades gracefully to in-process serial execution) and always returns
  results in *spec order*, regardless of completion order;
- completed jobs are memoised in a content-addressed on-disk cache
  (JSON files under ``results/.cache/`` by default) keyed by a stable
  hash of the spec plus a code-version salt, so re-running a sweep after
  an unrelated edit is near-instant.

Only the *scalar* fields of a case run cross process boundaries (see
:class:`JobResult`); app and phone objects stay worker-local. Callers
that need live objects (e.g. ``lease_activity`` sampling the lease
manager) keep calling :func:`repro.experiments.runner.run_case` directly,
or pass ``full=True`` to :meth:`GridRunner.run` which forces serial,
uncached, in-process execution and returns full ``CaseRun`` objects.
"""

import hashlib
import importlib
import json
import os
import sys
import tempfile

from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum

from repro.version import __version__ as PACKAGE_VERSION

#: Bump when simulation semantics change in a way that invalidates cached
#: results. Unrelated edits leave it alone, which is what makes a warm
#: cache survive ordinary development. The package version
#: (``repro.version.__version__``) is hashed alongside, so a release
#: bump also invalidates every cached entry cleanly -- stale results
#: from before a code change are never served. ``REPRO_CACHE_SALT``
#: adds an operator-controlled component on top.
CODE_VERSION = "1"

#: Default on-disk cache location (relative to the working directory,
#: overridable with ``REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")


def _mitigation_factories():
    """Name -> factory for every mitigation a grid job can name.

    Resolved lazily (and in the worker process) so importing this module
    stays cheap and the registry never pickles factory callables.
    """
    from repro.mitigation import (
        Amplify,
        BatterySaver,
        DefDroid,
        Doze,
        LeaseOS,
        TimedThrottle,
    )

    return {
        "vanilla": None,
        "leaseos": LeaseOS,
        "doze": Doze,
        "doze-aggressive": lambda: Doze(aggressive=True),
        "defdroid": DefDroid,
        "amplify": Amplify,
        "throttle": TimedThrottle,
        "battery-saver": BatterySaver,
        "battery-saver-full": lambda: BatterySaver(threshold_level=0.15),
    }


MITIGATION_NAMES = (
    "vanilla", "leaseos", "doze", "doze-aggressive", "defdroid",
    "amplify", "throttle", "battery-saver", "battery-saver-full",
)


def resolve_case(key):
    """Look a case key up in the shared case registry (worker-side).

    Covers all three tiers -- Table 5, extensions, and generated
    scenario cases (the latter require the catalog to have been
    instantiated in this process first).
    """
    from repro.apps.buggy import resolve_case as registry_resolve

    return registry_resolve(key)


def resolve_mitigation_factory(name):
    factories = _mitigation_factories()
    if name not in factories:
        raise KeyError("unknown mitigation {!r}; known: {}".format(
            name, ", ".join(sorted(factories))))
    return factories[name]


def _import_obj(path):
    """Import ``"package.module:Qual.Name"`` back into an object."""
    module_name, __, qualname = path.partition(":")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _obj_path(obj):
    return "{}:{}".format(obj.__module__, obj.__qualname__)


# -- JSON codec for results ---------------------------------------------------
#
# Cache files are JSON; results may contain tuples, enums, frozensets and
# flat dataclasses (rows). The codec round-trips those through tagged
# dicts so a cache hit reconstructs exactly what the worker returned.

def encode_result(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Enum):
        return {"__enum__": _obj_path(type(value)), "name": value.name}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_result(v) for v in value]}
    if isinstance(value, list):
        return [encode_result(v) for v in value]
    if isinstance(value, (frozenset, set)):
        items = sorted((encode_result(v) for v in value), key=repr)
        return {"__frozenset__": items}
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _obj_path(type(value)),
            "fields": {
                f.name: encode_result(getattr(value, f.name))
                for f in fields(value)
            },
        }
    if isinstance(value, dict):
        return {"__map__": [[encode_result(k), encode_result(v)]
                            for k, v in value.items()]}
    raise TypeError("cannot encode {!r} for the result cache".format(value))


def decode_result(value):
    if isinstance(value, list):
        return [decode_result(v) for v in value]
    if not isinstance(value, dict):
        return value
    if "__enum__" in value:
        return getattr(_import_obj(value["__enum__"]), value["name"])
    if "__tuple__" in value:
        return tuple(decode_result(v) for v in value["__tuple__"])
    if "__frozenset__" in value:
        return frozenset(decode_result(v) for v in value["__frozenset__"])
    if "__dataclass__" in value:
        cls = _import_obj(value["__dataclass__"])
        return cls(**{k: decode_result(v)
                      for k, v in value["fields"].items()})
    if "__map__" in value:
        return {decode_result(k): decode_result(v)
                for k, v in value["__map__"]}
    return {k: decode_result(v) for k, v in value.items()}


# -- job specs ----------------------------------------------------------------

@dataclass(frozen=True)
class JobResult:
    """The scalar fields of a ``CaseRun`` -- all that crosses processes."""

    case_key: str
    mitigation: str
    app_power_mw: float
    system_power_mw: float
    disruptions: int
    observed_behaviors: frozenset = frozenset()


@dataclass(frozen=True)
class JobSpec:
    """One declarative ``run_case`` invocation, hashable and cacheable.

    ``phone_overrides`` is a sorted tuple of ``(name, value)`` pairs with
    JSON-scalar values; device profiles are referenced by name so the
    spec never captures live objects.
    """

    case_key: str
    mitigation: str = "vanilla"
    minutes: float = 30.0
    seed: int = 7
    warmup_s: float = 0.0
    phone_overrides: tuple = ()

    @classmethod
    def make(cls, case, mitigation="vanilla", minutes=30.0, seed=7,
             warmup_s=0.0, **phone_overrides):
        """Build a spec from a case (object or key) plus overrides."""
        key = case if isinstance(case, str) else case.key
        normalized = []
        for name, value in sorted(phone_overrides.items()):
            if name == "profile" and not isinstance(value, str):
                value = value.name
            if not isinstance(value, (type(None), bool, int, float, str)):
                raise TypeError(
                    "phone override {}={!r} is not a JSON scalar; pass "
                    "profiles by name and keep overrides declarative"
                    .format(name, value))
            normalized.append((name, value))
        return cls(case_key=key, mitigation=mitigation,
                   minutes=float(minutes), seed=int(seed),
                   warmup_s=float(warmup_s),
                   phone_overrides=tuple(normalized))

    def cache_token(self):
        return {
            "kind": "case",
            "case_key": self.case_key,
            "mitigation": self.mitigation,
            "minutes": self.minutes,
            "seed": self.seed,
            "warmup_s": self.warmup_s,
            "phone_overrides": [list(pair) for pair in self.phone_overrides],
        }

    def _resolved_overrides(self):
        from repro.device.profiles import PROFILES

        overrides = dict(self.phone_overrides)
        if isinstance(overrides.get("profile"), str):
            overrides["profile"] = PROFILES[overrides["profile"]]
        return overrides

    def execute(self, full=False):
        """Run the case. ``full=True`` returns the live ``CaseRun``."""
        from repro.experiments.runner import run_case

        case = resolve_case(self.case_key)
        factory = resolve_mitigation_factory(self.mitigation)
        result = run_case(case, factory, minutes=self.minutes,
                          seed=self.seed, warmup_s=self.warmup_s,
                          **self._resolved_overrides())
        if full:
            return result
        return JobResult(
            case_key=result.case_key,
            mitigation=result.mitigation,
            app_power_mw=result.app_power_mw,
            system_power_mw=result.system_power_mw,
            disruptions=result.disruptions,
            observed_behaviors=result.observed_behaviors,
        )


@dataclass(frozen=True)
class FuncSpec:
    """A module-level function plus scalar kwargs, as a declarative job.

    The function is referenced by import path (``module:qualname``), so
    the spec pickles cheaply and hashes stably; the callable itself is
    resolved inside the worker.
    """

    func: str
    kwargs: tuple = ()

    @classmethod
    def make(cls, func, **kwargs):
        path = func if isinstance(func, str) else _obj_path(func)
        if not isinstance(func, str):
            try:
                resolved = _import_obj(path)
            except (ImportError, AttributeError):
                resolved = None
            if resolved is not func:
                raise ValueError(
                    "{!r} is not importable as {!r}; grid jobs must be "
                    "module-level functions".format(func, path))
        for name, value in kwargs.items():
            if not isinstance(value, (type(None), bool, int, float, str,
                                      tuple)):
                raise TypeError(
                    "kwarg {}={!r} is not declarative (scalars and "
                    "tuples of scalars only)".format(name, value))
        return cls(func=path, kwargs=tuple(sorted(kwargs.items())))

    def cache_token(self):
        return {
            "kind": "func",
            "func": self.func,
            "kwargs": [[k, list(v) if isinstance(v, tuple) else v]
                       for k, v in self.kwargs],
        }

    def execute(self, full=False):
        return _import_obj(self.func)(**dict(self.kwargs))


def _execute_spec(spec):
    """Module-level trampoline so specs run under a process pool."""
    return spec.execute()


# -- the cache ----------------------------------------------------------------

class ResultCache:
    """Content-addressed JSON store for completed grid jobs."""

    def __init__(self, directory=None, salt=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR",
                                       DEFAULT_CACHE_DIR)
        if salt is None:
            salt = os.environ.get("REPRO_CACHE_SALT", "")
        self.directory = directory
        self.salt = salt

    def key_for(self, spec):
        token = json.dumps(
            {"v": CODE_VERSION, "pkg": PACKAGE_VERSION, "salt": self.salt,
             "spec": spec.cache_token()},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:32]

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def load(self, spec):
        """The decoded cached result, or None on miss/corruption.

        A miss (no file) is silent; a *corrupt or undecodable* file is
        discarded on the spot so the entry is rebuilt cleanly instead of
        being re-parsed (and re-failed) on every subsequent lookup.
        """
        path = self._path(self.key_for(spec))
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._discard(path)
            return None
        try:
            return decode_result(payload["result"])
        except (ValueError, KeyError, AttributeError, ImportError,
                TypeError):
            self._discard(path)
            return None

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    def store(self, spec, result):
        try:
            payload = {"spec": spec.cache_token(),
                       "result": encode_result(result)}
        except TypeError:
            return False  # result not cache-serialisable; run uncached
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(self.key_for(spec))
        # Atomic publish so concurrent runners never read a torn file.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return False
        return True


# -- the runner ---------------------------------------------------------------

@dataclass
class RunnerStats:
    """Counters for one runner's lifetime (summed over ``run`` calls)."""

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_batches: int = 0
    serial_batches: int = 0
    pool_fallbacks: int = 0
    supervised_batches: int = 0
    failed: int = 0  # supervised jobs that ended in quarantine

    def as_dict(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _default_jobs():
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


class GridRunner:
    """Fans declarative job specs out over workers, with memoisation.

    ``jobs``: worker count; ``None`` reads ``REPRO_JOBS`` (default 1 ==
    serial in-process). ``cache``: ``None``/``False`` disables caching,
    ``True`` uses the default directory, a string is a directory, or
    pass a :class:`ResultCache`. ``REPRO_CACHE=0`` force-disables.
    ``supervisor``: an optional :class:`~repro.resilience.supervisor.
    Supervisor`; when set, every executed batch runs under its
    deadline/retry/quarantine state machine and jobs that end in
    quarantine come back as ``None`` entries (recorded in
    ``supervisor.manifest``) instead of failing the whole run.
    """

    def __init__(self, jobs=None, cache=None, salt=None, supervisor=None):
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        if os.environ.get("REPRO_CACHE", "1") == "0":
            cache = None
        if cache is True:
            cache = ResultCache(salt=salt)
        elif isinstance(cache, str):
            cache = ResultCache(cache, salt=salt)
        elif cache is False:
            cache = None
        self.cache = cache
        self.supervisor = supervisor
        self.stats = RunnerStats()
        #: Why the last pool bootstrap failed, or None (structured
        #: counterpart of the one-time stderr fallback log).
        self.pool_fallback_reason = None
        self._pool_fallback_logged = False

    def run(self, specs, full=False, labels=None, on_result=None):
        """Execute ``specs``; results come back in spec order.

        ``full=True`` is the live-object opt-out: serial, in-process,
        uncached, for callers that need ``CaseRun.phone``/``app``.
        ``labels`` (parallel to ``specs``) names jobs for supervision
        and harness-fault matching. ``on_result(index, spec, result)``
        fires per completed spec -- for cache hits immediately, for
        fresh results the moment they are computed and cached, so
        callers can checkpoint incrementally and an interrupted run
        keeps everything that finished. Under a supervisor, quarantined
        specs yield ``None`` results and never fire ``on_result``.
        """
        specs = list(specs)
        self.stats.submitted += len(specs)
        if full:
            self.stats.serial_batches += 1
            self.stats.executed += len(specs)
            out = []
            for index, spec in enumerate(specs):
                result = spec.execute(full=True)
                out.append(result)
                if on_result is not None:
                    on_result(index, spec, result)
            return out

        results = [None] * len(specs)
        pending = {}  # spec -> [indices]; dedups repeats within a batch
        label_for = {}
        for index, spec in enumerate(specs):
            if self.cache is not None and spec not in pending:
                cached = self.cache.load(spec)
                if cached is not None:
                    self.stats.cache_hits += 1
                    results[index] = cached
                    if on_result is not None:
                        on_result(index, spec, cached)
                    continue
                self.stats.cache_misses += 1
            pending.setdefault(spec, []).append(index)
            if labels is not None:
                label_for.setdefault(spec, labels[index])

        if pending:
            def _complete(spec, result):
                if self.cache is not None:
                    self.cache.store(spec, result)
                if on_result is not None:
                    for index in pending[spec]:
                        on_result(index, spec, result)

            fresh = self._execute(list(pending), label_for, _complete)
            for spec, result in fresh.items():
                for index in pending[spec]:
                    results[index] = result
        return results

    def run_one(self, spec, full=False):
        return self.run([spec], full=full)[0]

    # -- internals ---------------------------------------------------------

    @property
    def effective_jobs(self):
        """Worker count after clamping to the machine's core count.

        Fanning four workers out on a single core only adds pool and
        pickling overhead on top of the same serial compute (observed as
        a bogus <1.0 "speedup" in BENCH_grid.json on 1-core machines).
        """
        return min(self.jobs, os.cpu_count() or 1)

    def _execute(self, specs, label_for=None, on_complete=None):
        """Run deduped specs; ``{spec: result}`` for the successes.

        ``on_complete(spec, result)`` is invoked exactly once per
        successful spec, in completion order (it writes the cache and
        feeds the caller's ``on_result``).
        """
        on_complete = on_complete or (lambda spec, result: None)
        if self.supervisor is not None:
            return self._execute_supervised(specs, label_for, on_complete)
        workers = min(self.effective_jobs, len(specs))
        if workers > 1:
            try:
                return self._execute_pool(specs, workers, on_complete)
            except _pool_unavailable_errors() as exc:
                self.stats.pool_fallbacks += 1
                self._note_pool_fallback(exc)
        self.stats.serial_batches += 1
        out = {}
        for spec in specs:
            result = spec.execute()
            self.stats.executed += 1
            out[spec] = result
            on_complete(spec, result)
        return out

    def _execute_pool(self, specs, workers, on_complete):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {spec: pool.submit(_execute_spec, spec)
                       for spec in specs}
            out = {spec: future.result()
                   for spec, future in futures.items()}
        self.stats.pool_batches += 1
        self.stats.executed += len(specs)
        for spec, result in out.items():
            on_complete(spec, result)
        return out

    def _execute_supervised(self, specs, label_for, on_complete):
        self.stats.supervised_batches += 1
        labels = None
        if label_for:
            labels = [label_for.get(spec,
                                    self.supervisor.label_for(spec, index))
                      for index, spec in enumerate(specs)]
        out = self.supervisor.execute(
            specs, labels=labels, workers=self.effective_jobs,
            on_result=on_complete)
        self.stats.executed += len(out)
        self.stats.failed += len(specs) - len(out)
        return out

    def _note_pool_fallback(self, exc):
        self.pool_fallback_reason = "{}: {}".format(type(exc).__name__,
                                                    exc)
        if not self._pool_fallback_logged:
            self._pool_fallback_logged = True
            print("grid: process pool unavailable ({}); falling back to "
                  "serial in-process execution".format(
                      self.pool_fallback_reason), file=sys.stderr)


def _pool_unavailable_errors():
    """The exception classes that mean "no process pool here".

    Deliberately narrow: a job's own exception (bad spec, simulation
    bug) must propagate, not silently re-run serially. Pool-bootstrap
    failures are import errors (no ``_multiprocessing``), OS errors
    (no ``/dev/shm``, seccomp-blocked ``sem_open``), or a pool whose
    workers were killed before finishing (``BrokenExecutor``).
    """
    from concurrent.futures import BrokenExecutor

    return (ImportError, NotImplementedError, OSError, BrokenExecutor)


def runner_from_args(args):
    """Build a runner from CLI args (``--jobs/--no-cache/--cache-dir``).

    The CLI caches by default (under ``results/.cache``); library calls
    that construct ``GridRunner()`` themselves default to uncached so
    programmatic behaviour is unchanged unless opted in. Subcommands
    that declare supervision flags (``--job-timeout``, ``--max-retries``,
    ``--fail-fast``/``--degrade``: currently ``chaos`` and ``fleet``)
    get a supervised runner; the rest keep the unsupervised fast path.
    """
    no_cache = getattr(args, "no_cache", False)
    cache_dir = getattr(args, "cache_dir", None)
    cache = None if no_cache else (cache_dir or True)
    return GridRunner(jobs=getattr(args, "jobs", None), cache=cache,
                      supervisor=supervisor_from_args(args))


def supervisor_from_args(args):
    """A Supervisor from CLI supervision flags, or ``None``.

    Only subcommands whose parser declared the flags (marked by the
    ``supervised`` attribute) run supervised, so plain grid commands
    keep their historical dispatch path.
    """
    if not getattr(args, "supervised", False):
        return None
    from repro.resilience.hooks import HarnessFaults
    from repro.resilience.supervisor import Supervisor
    from repro.sim.engine import RunBudget

    faults_json = getattr(args, "harness_faults", None)
    faults = HarnessFaults.from_json(faults_json) if faults_json else None
    max_events = getattr(args, "max_events", None)
    budget = RunBudget(max_events=max_events) if max_events else None
    return Supervisor(
        job_timeout_s=getattr(args, "job_timeout", None),
        max_retries=getattr(args, "max_retries", 2),
        fail_fast=getattr(args, "fail_fast", False),
        harness_faults=faults,
        sim_budget=budget,
        verbose=getattr(args, "supervise_verbose", False),
    )
