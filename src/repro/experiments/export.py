"""CSV export: plotting-ready data for every reproduced artifact.

The text tables in ``results/`` are human-readable; these helpers write
the same data as CSV so the figures can be re-plotted with any tool.
"""

import csv


def write_csv(path, headers, rows):
    """Write ``rows`` (iterables) under ``headers`` to ``path``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path


def samples_csv(path, samples, fields):
    """Export Trepn :class:`AppSample` rows (Figs. 1-4 series)."""
    headers = ["time_s"] + list(fields)
    rows = (
        [sample.time] + [getattr(sample, field) for field in fields]
        for sample in samples
    )
    return write_csv(path, headers, rows)


def table5_csv(path, rows):
    """Export Table 5 rows with measured and paper values."""
    headers = [
        "case", "category", "resource", "behavior",
        "vanilla_mw", "leaseos_mw", "doze_mw", "defdroid_mw",
        "leaseos_reduction_pct", "doze_reduction_pct",
        "defdroid_reduction_pct",
        "paper_vanilla_mw", "paper_leaseos_mw",
    ]
    data = []
    for row in rows:
        paper = row.case.paper_power
        data.append([
            row.case.key, row.case.category, row.case.resource.value,
            row.case.behavior.value,
            row.vanilla_mw, row.leaseos_mw, row.doze_mw, row.defdroid_mw,
            row.leaseos_reduction, row.doze_reduction,
            row.defdroid_reduction,
            paper.get("vanilla", ""), paper.get("leaseos", ""),
        ])
    return write_csv(path, headers, data)


def lambda_csv(path, results):
    """Export the Fig. 12 sweep."""
    from repro.core.policy import waste_reduction_ratio
    from repro.experiments.lambda_sweep import PAPER_FIG12

    headers = ["lambda", "reduction", "paper", "closed_form"]
    rows = (
        [lam, results[lam], PAPER_FIG12.get(lam, ""),
         waste_reduction_ratio(lam)]
        for lam in sorted(results)
    )
    return write_csv(path, headers, rows)


def lease_activity_csv(path, result):
    """Export the Fig. 11 active-lease time series."""
    return write_csv(path, ["time_s", "active_leases"], result.samples)
