"""Experiment harnesses: one module per paper table/figure.

Every module exposes a ``run(...)`` returning structured results and a
``main()`` that prints the same rows/series the paper reports. The
mapping to paper artifacts:

========================  =====================================
Module                    Paper artifact
========================  =====================================
``characterization``      Figs. 1-4 (§2.3 study)
``study_tables``          Tables 1 and 2 (+ resource cross-tab)
``lease_term``            Fig. 9 (a)/(b)
``microbench``            Table 4 + Fig. 11's companion stats
``lease_activity``        Fig. 11
``table5``                Table 5
``usability``             §7.4
``lambda_sweep``          Fig. 12
``overhead``              Fig. 13
``latency``               Fig. 14
``battery_life``          §7.6 end-to-end battery test
``ablations``             design-choice ablations (DESIGN.md §6)
``extensions``            the §8 future-work features
``robustness``            seed + hardware sweeps
``term_sweep``            the §5.1 trade-off, measured
``fix_comparison``        documented developer fixes vs the lease
``containment``           reaction latency vs work preserved
``verdict``               the full reproduction scorecard
========================  =====================================

Support modules: ``runner`` (case running + tables), ``export`` (CSV),
``plotting`` (sparklines/bars for the text artifacts).
"""

from repro.experiments.runner import format_table, run_case

__all__ = ["format_table", "run_case"]
