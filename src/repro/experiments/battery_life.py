"""§7.6 end-to-end battery test.

The paper: with one buggy GPS app installed, "we play music for 2 hours,
watch YouTube for 1 hour, browse for 30 mins and keep the phone on
standby. Android w/o lease runs out of battery after around 12 hours,
while LeaseOS lasts for 15 hours."

We script the same day with the user model: a Spotify session, a YouTube
(streaming) session, a browsing session, then standby, with GPSLogger's
leaked registration draining in the background throughout. Because the
simulator's component model is leaner than a real phone's (no SoC
housekeeping, cameras, cell standby churn), absolute hours differ; the
battery is scaled (``battery_level``) so the vanilla run lands near the
paper's half-day order of magnitude, and the reproduced quantity is the
*extra lifetime LeaseOS buys* (paper: +3 h, i.e. +25%).
"""

from dataclasses import dataclass

from repro.apps.buggy.gps_apps import GPSLogger
from repro.apps.normal.interactive import InteractiveApp
from repro.droid.phone import Phone
from repro.experiments.grid import FuncSpec, GridRunner


@dataclass
class BatteryLifeResult:
    hours_vanilla: float
    hours_leaseos: float
    hours_saver: float = None  # Android-style battery saver, if measured

    @property
    def extension_hours(self):
        return self.hours_leaseos - self.hours_vanilla

    @property
    def extension_pct(self):
        return 100.0 * self.extension_hours / self.hours_vanilla


def _run_day(mitigation, seed, battery_level, max_hours,
             baseline_mw=250.0):
    phone = Phone(seed=seed, mitigation=mitigation,
                  battery_level=battery_level, gps_quality=0.95)
    # Constant device baseline: cell standby, OS housekeeping, ambient
    # screen-ons -- real-phone draws our component model omits, without
    # which standby life would be implausibly long for every regime.
    phone.monitor.set_rail("device_baseline", baseline_mw, ())
    # The buggy GPS app (leaked registration) runs all day.
    phone.install(GPSLogger())
    music = phone.install(InteractiveApp(
        "Music", media_streaming=True, touch_compute_s=0.1,
        touch_payload_s=0.2, sync_interval_s=None,
    ))
    youtube = phone.install(InteractiveApp(
        "YouTube", media_streaming=True, touch_compute_s=0.4,
        touch_payload_s=1.0, sync_interval_s=None,
    ))
    browser = phone.install(InteractiveApp(
        "Chrome", touch_compute_s=0.5, touch_payload_s=0.8,
        sync_interval_s=None,
    ))

    def scripted_day():
        # 2 h of music (touch-driven streaming keeps playing while the
        # user nudges the app; it stops when the session ends).
        yield from phone.user.active_session([music.uid], 2 * 3600.0,
                                             touch_interval=45.0)
        # 1 h YouTube, screen on, actively watched.
        yield from phone.user.active_session([youtube.uid], 3600.0,
                                             touch_interval=45.0)
        # 30 min browsing.
        yield from phone.user.active_session([browser.uid], 1800.0,
                                             touch_interval=8.0)
        # Standby for the rest of the day.

    phone.sim.spawn(scripted_day(), name="user.day")

    step_s = 300.0
    while not phone.battery.empty and phone.sim.now < max_hours * 3600.0:
        phone.run_for(seconds=step_s)
    return phone.sim.now / 3600.0


def _day_job(regime, seed, battery_level, max_hours):
    """One scripted day under one regime; returns hours until empty."""
    if regime == "vanilla":
        mitigation = None
    elif regime == "leaseos":
        from repro.mitigation import LeaseOS

        mitigation = LeaseOS()
    elif regime == "saver":
        from repro.mitigation import BatterySaver

        mitigation = BatterySaver()
    else:
        raise ValueError("unknown regime {!r}".format(regime))
    return _run_day(mitigation, seed, battery_level, max_hours)


def run(seed=47, battery_level=0.52, max_hours=48.0, with_saver=False,
        runner=None):
    """Hours until empty, vanilla vs LeaseOS (vs Battery Saver with
    ``with_saver``). ``battery_level`` scales capacity so the vanilla
    run lands near the paper's ~12 h."""
    runner = runner if runner is not None else GridRunner()
    regimes = ["vanilla", "leaseos"] + (["saver"] if with_saver else [])
    specs = [
        FuncSpec.make(_day_job, regime=regime, seed=seed,
                      battery_level=battery_level, max_hours=max_hours)
        for regime in regimes
    ]
    hours = runner.run(specs)
    hours_saver = hours[2] if with_saver else None
    return BatteryLifeResult(hours[0], hours[1], hours_saver)


def render(result):
    text = (
        "Battery life with one buggy GPS app (scaled battery):\n"
        "  vanilla Android: {:.1f} h (paper: ~12 h)\n"
        "  LeaseOS:         {:.1f} h (paper: ~15 h)\n"
        "  LeaseOS extends life by {:.1f} h ({:+.0f}%; paper: +3 h, +25%)"
    ).format(result.hours_vanilla, result.hours_leaseos,
             result.extension_hours, result.extension_pct)
    if result.hours_saver is not None:
        text += (
            "\n  Battery Saver:   {:.1f} h (helps only once the battery "
            "is already low)"
        ).format(result.hours_saver)
    return text


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
