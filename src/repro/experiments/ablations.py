"""Ablations of LeaseOS design choices (DESIGN.md §6).

Four knobs, each exercised on the workload that shows its effect:

1. **Deferral escalation** on/off -- a persistent Long-Holding app: the
   escalating τ is what pushes reductions from the 1/(1+λ) bound (~83%)
   into the paper's 98% territory.
2. **Adaptive lease terms** on/off -- a well-behaved app: growing terms
   cut the number of lease-stat updates (overhead) by an order of
   magnitude with no change in behaviour.
3. **Custom-utility abuse guard** on/off -- a misbehaving app lying with
   a perfect custom score: the guard must keep the deferrals coming.
4. **Utility smoothing window** 1 vs default -- a slow-cadence useful app
   (Haven): without smoothing it gets wrongly deferred.
"""

from dataclasses import dataclass

from repro.apps.buggy.cpu_apps import Torch
from repro.apps.normal.background import Haven, Spotify
from repro.core.policy import LeasePolicy
from repro.core.utility import UtilityCounter
from repro.droid.app import App
from repro.droid.exceptions import AppException
from repro.droid.phone import Phone
from repro.droid.resources import ResourceType
from repro.experiments.grid import FuncSpec, GridRunner
from repro.experiments.runner import format_table, reduction_pct
from repro.mitigation import LeaseOS


@dataclass
class AblationRow:
    name: str
    variant: str
    metric: str
    value: float


def _app_power(app_factory, policy, minutes=20.0, seed=53, **phone_kwargs):
    mitigation = LeaseOS(policy=policy) if policy is not None else None
    phone = Phone(seed=seed, mitigation=mitigation, **phone_kwargs)
    app = phone.install(app_factory())
    mark = phone.energy_mark()
    phone.run_for(minutes=minutes)
    return phone, app, phone.power_since(mark, app.uid)


def _torch_power_job(escalate, minutes, seed):
    """Torch power: unmitigated (escalate=None) or fixed/escalating τ."""
    policy = None if escalate is None \
        else LeasePolicy(escalation_enabled=escalate)
    __, __, power = _app_power(Torch, policy, minutes, seed)
    return power


def _adaptive_job(adaptive, minutes, seed):
    policy = LeasePolicy(adaptive_enabled=adaptive)
    phone, __, __ = _app_power(Spotify, policy, minutes, seed)
    return float(phone.lease_manager.op_counts["update"])


def _guard_job(floor, minutes, seed):
    policy = LeasePolicy(custom_utility_floor=floor)
    phone, app, __ = _app_power(_LyingApp, policy, minutes, seed)
    return float(sum(l.deferral_count
                     for l in phone.lease_manager.leases_for(app.uid)))


def _smoothing_job(terms, minutes, seed):
    policy = LeasePolicy(utility_smoothing_terms=terms)
    phone, app, __ = _app_power(Haven, policy, minutes, seed)
    return float(sum(l.deferral_count
                     for l in phone.lease_manager.leases_for(app.uid)))


def ablate_escalation(minutes=20.0, seed=53, runner=None):
    """Reduction on a persistent LHB app, fixed vs escalating deferral."""
    runner = runner if runner is not None else GridRunner()
    variants = (("fixed tau", False), ("escalating tau", True))
    specs = [FuncSpec.make(_torch_power_job, escalate=None,
                           minutes=minutes, seed=seed)]
    specs.extend(FuncSpec.make(_torch_power_job, escalate=escalate,
                               minutes=minutes, seed=seed)
                 for __, escalate in variants)
    results = runner.run(specs)
    vanilla = results[0]
    return [
        AblationRow("escalation", label, "reduction %",
                    reduction_pct(vanilla, power))
        for (label, __), power in zip(variants, results[1:])
    ]


def ablate_adaptive_terms(minutes=30.0, seed=53, runner=None):
    """Lease-stat updates for a normal app, fixed vs adaptive terms."""
    runner = runner if runner is not None else GridRunner()
    variants = (("fixed 5 s term", False), ("adaptive terms", True))
    results = runner.run([
        FuncSpec.make(_adaptive_job, adaptive=adaptive, minutes=minutes,
                      seed=seed)
        for __, adaptive in variants
    ])
    return [
        AblationRow("adaptive terms", label, "stat updates / 30 min",
                    updates)
        for (label, __), updates in zip(variants, results)
    ]


class _LyingCounter(UtilityCounter):
    """A malicious counter claiming perfect utility."""

    def get_score(self):
        return 100.0


class _LyingApp(App):
    """Exception-storm LUB app that registers a perfect custom counter.

    Its generic utility collapses to ~0 (severe exceptions), so with the
    abuse guard on the lying counter must be ignored.
    """

    app_name = "lying-app"

    def on_start(self):
        self.set_utility_counter(ResourceType.WAKELOCK, _LyingCounter())

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "lying")
        lock.acquire()
        while True:
            yield from self.compute(0.4)
            self.note_exception(AppException("spinning uselessly"))
            yield self.sleep(0.3)


def ablate_custom_utility_guard(minutes=20.0, seed=53, runner=None):
    """Deferral count for a lying app, with and without the floor guard."""
    runner = runner if runner is not None else GridRunner()
    variants = (("guard on (floor 20)", 20.0), ("guard off (floor 0)", 0.0))
    results = runner.run([
        FuncSpec.make(_guard_job, floor=floor, minutes=minutes, seed=seed)
        for __, floor in variants
    ])
    return [
        AblationRow("custom-utility guard", label, "deferrals", deferrals)
        for (label, __), deferrals in zip(variants, results)
    ]


def ablate_smoothing(minutes=20.0, seed=53, runner=None):
    """Wrongful deferrals of a slow-cadence useful app vs smoothing."""
    runner = runner if runner is not None else GridRunner()
    variants = (("no smoothing (1 term)", 1), ("smoothing (12 terms)", 12))
    results = runner.run([
        FuncSpec.make(_smoothing_job, terms=terms, minutes=minutes,
                      seed=seed)
        for __, terms in variants
    ])
    return [
        AblationRow("utility smoothing", label, "wrongful deferrals",
                    deferrals)
        for (label, __), deferrals in zip(variants, results)
    ]


def run(runner=None):
    runner = runner if runner is not None else GridRunner()
    rows = []
    rows.extend(ablate_escalation(runner=runner))
    rows.extend(ablate_adaptive_terms(runner=runner))
    rows.extend(ablate_custom_utility_guard(runner=runner))
    rows.extend(ablate_smoothing(runner=runner))
    return rows


def render(rows):
    return format_table(
        ["ablation", "variant", "metric", "value"],
        [[r.name, r.variant, r.metric, r.value] for r in rows],
        title="LeaseOS design-choice ablations",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
