"""Ablations of LeaseOS design choices (DESIGN.md §6).

Four knobs, each exercised on the workload that shows its effect:

1. **Deferral escalation** on/off -- a persistent Long-Holding app: the
   escalating τ is what pushes reductions from the 1/(1+λ) bound (~83%)
   into the paper's 98% territory.
2. **Adaptive lease terms** on/off -- a well-behaved app: growing terms
   cut the number of lease-stat updates (overhead) by an order of
   magnitude with no change in behaviour.
3. **Custom-utility abuse guard** on/off -- a misbehaving app lying with
   a perfect custom score: the guard must keep the deferrals coming.
4. **Utility smoothing window** 1 vs default -- a slow-cadence useful app
   (Haven): without smoothing it gets wrongly deferred.
"""

from dataclasses import dataclass

from repro.apps.buggy.cpu_apps import Torch
from repro.apps.normal.background import Haven, Spotify
from repro.core.policy import LeasePolicy
from repro.core.utility import UtilityCounter
from repro.droid.app import App
from repro.droid.exceptions import AppException
from repro.droid.phone import Phone
from repro.droid.resources import ResourceType
from repro.experiments.runner import format_table, reduction_pct
from repro.mitigation import LeaseOS


@dataclass
class AblationRow:
    name: str
    variant: str
    metric: str
    value: float


def _app_power(app_factory, policy, minutes=20.0, seed=53, **phone_kwargs):
    mitigation = LeaseOS(policy=policy) if policy is not None else None
    phone = Phone(seed=seed, mitigation=mitigation, **phone_kwargs)
    app = phone.install(app_factory())
    mark = phone.energy_mark()
    phone.run_for(minutes=minutes)
    return phone, app, phone.power_since(mark, app.uid)


def ablate_escalation(minutes=20.0, seed=53):
    """Reduction on a persistent LHB app, fixed vs escalating deferral."""
    __, __, vanilla = _app_power(Torch, None, minutes, seed)
    rows = []
    for label, escalate in (("fixed tau", False), ("escalating tau", True)):
        policy = LeasePolicy(escalation_enabled=escalate)
        __, __, power = _app_power(Torch, policy, minutes, seed)
        rows.append(AblationRow("escalation", label, "reduction %",
                                reduction_pct(vanilla, power)))
    return rows


def ablate_adaptive_terms(minutes=30.0, seed=53):
    """Lease-stat updates for a normal app, fixed vs adaptive terms."""
    rows = []
    for label, adaptive in (("fixed 5 s term", False),
                            ("adaptive terms", True)):
        policy = LeasePolicy(adaptive_enabled=adaptive)
        phone, __, __ = _app_power(Spotify, policy, minutes, seed)
        updates = phone.lease_manager.op_counts["update"]
        rows.append(AblationRow("adaptive terms", label,
                                "stat updates / 30 min", float(updates)))
    return rows


class _LyingCounter(UtilityCounter):
    """A malicious counter claiming perfect utility."""

    def get_score(self):
        return 100.0


class _LyingApp(App):
    """Exception-storm LUB app that registers a perfect custom counter.

    Its generic utility collapses to ~0 (severe exceptions), so with the
    abuse guard on the lying counter must be ignored.
    """

    app_name = "lying-app"

    def on_start(self):
        self.set_utility_counter(ResourceType.WAKELOCK, _LyingCounter())

    def run(self):
        lock = self.ctx.power.new_wakelock(self, "lying")
        lock.acquire()
        while True:
            yield from self.compute(0.4)
            self.note_exception(AppException("spinning uselessly"))
            yield self.sleep(0.3)


def ablate_custom_utility_guard(minutes=20.0, seed=53):
    """Deferral count for a lying app, with and without the floor guard."""
    rows = []
    for label, floor in (("guard on (floor 20)", 20.0),
                         ("guard off (floor 0)", 0.0)):
        policy = LeasePolicy(custom_utility_floor=floor)
        phone, app, __ = _app_power(_LyingApp, policy, minutes, seed)
        deferrals = sum(
            l.deferral_count
            for l in phone.lease_manager.leases_for(app.uid)
        )
        rows.append(AblationRow("custom-utility guard", label,
                                "deferrals", float(deferrals)))
    return rows


def ablate_smoothing(minutes=20.0, seed=53):
    """Wrongful deferrals of a slow-cadence useful app vs smoothing."""
    rows = []
    for label, terms in (("no smoothing (1 term)", 1),
                         ("smoothing (12 terms)", 12)):
        policy = LeasePolicy(utility_smoothing_terms=terms)
        phone, app, __ = _app_power(Haven, policy, minutes, seed)
        deferrals = sum(
            l.deferral_count
            for l in phone.lease_manager.leases_for(app.uid)
        )
        rows.append(AblationRow("utility smoothing", label,
                                "wrongful deferrals", float(deferrals)))
    return rows


def run():
    rows = []
    rows.extend(ablate_escalation())
    rows.extend(ablate_adaptive_terms())
    rows.extend(ablate_custom_utility_guard())
    rows.extend(ablate_smoothing())
    return rows


def render(rows):
    return format_table(
        ["ablation", "variant", "metric", "value"],
        [[r.name, r.variant, r.metric, r.value] for r in rows],
        title="LeaseOS design-choice ablations",
    )


def main():
    print(render(run()))


if __name__ == "__main__":
    main()
