"""The versioned telemetry event schema and its validator.

A telemetry stream is JSON Lines: one event object per line, appended
crash-safely by :mod:`repro.telemetry.writer`. Every event carries the
same envelope --

- ``v`` -- the schema version (:data:`SCHEMA_VERSION`);
- ``event`` -- one of :data:`EVENT_FIELDS`;
- ``stream`` -- the logical stream name (``"run"`` for the fleet
  runner / supervisor / CLI, ``"shard-NNNNNN"`` for one shard);
- ``seq`` -- a per-writer monotonic sequence number starting at 0,
  gapless within one stream file;
- ``fp`` -- the 12-hex run fingerprint (population fingerprint prefix)
  tagging every event with the run it belongs to;
- ``t_wall`` -- the wall-clock emission time (unix seconds).

Everything *except* the fields named in :data:`WALLCLOCK_FIELDS` is
deterministic: two serial runs of the same population produce
byte-identical streams once those fields are stripped
(:func:`strip_wallclock`), which is what the stream goldens pin. The
validator (:func:`validate_events`, :func:`validate_stream_dir`) is
shared by the tests, ``tools/check_telemetry_schema.py`` and the
telemetry-smoke CI job: every line must parse, event types must be
known, required fields must be present, and sequence numbers must be
gapless per (file, stream).
"""

import json
import os

#: Bump on incompatible stream changes; events carry it as ``v``.
SCHEMA_VERSION = 1

#: Envelope fields present on every event, in addition to the
#: per-event required fields below.
ENVELOPE_FIELDS = ("v", "event", "stream", "seq", "fp", "t_wall")

#: Event type -> required payload fields. Extra fields are allowed
#: (the schema is open for additions); unknown *event types* are not.
EVENT_FIELDS = {
    # One per fresh run, first record of the runner's stream: the full
    # population (sampling law), resolved/requested execution mode.
    "run_started": ("population", "mode", "requested_mode", "devices",
                    "shards"),
    # Emitted *instead of* run_started when valid checkpoints already
    # existed: finished shards are never re-emitted, the aggregator
    # finds them in the earlier run's stream files in the same dir.
    "run_resumed": ("population", "mode", "requested_mode", "devices",
                    "shards", "shards_resumed"),
    # First record of a shard's own stream (worker process).
    "shard_started": ("shard", "start", "stop", "mode"),
    # Periodic in-shard snapshot, time-gated (>= PROGRESS_INTERVAL_S
    # apart by default): partial mergeable stats only.
    "shard_progress": ("shard", "devices_done", "devices_total",
                       "device_days", "fallbacks", "crashed",
                       "energy_mw"),
    # Emitted by the *runner* the moment a shard's checkpoint lands
    # (so cache hits and supervised retries are covered exactly once);
    # ``stats`` is the shard's full per-mitigation FleetStats payload,
    # the mergeable partial the watch aggregator folds.
    "shard_finished": ("shard", "start", "stop", "mode", "stats",
                       "crashes"),
    # A fast-path/vector device fell back to the kernel. Gated by the
    # same one-time-per-reason set as the stderr warning.
    "fallback": ("shard", "reason", "device"),
    # One per *failed* supervisor attempt, recovery or quarantine.
    "supervisor_attempt": ("label", "attempt", "outcome", "error"),
    # A RunBudget abort observed by the supervisor.
    "budget": ("label", "attempt", "error"),
    # Terminal record of a completed run: execution provenance and the
    # sha256 of the canonical report it must agree with.
    "run_finished": ("shards_total", "shards_run", "shards_resumed",
                     "shards_quarantined", "devices", "execution",
                     "report_sha256"),
    # One scheduled sweep of the crash-safe lease authority
    # (repro.service): how many leases expired, what stayed active,
    # and the cadence position (seeded-deterministic sweep index).
    "service_sweep": ("swept", "active", "sweep_index"),
    # One LeaseService.recover(): what the storage backend salvaged
    # and the canonical-state fingerprint the replay reconstructed.
    "service_recovered": ("snapshot_seq", "records_replayed",
                          "records_dropped", "leases", "state_fp",
                          "degraded"),
}

#: The only non-deterministic fields an event may carry. Everything
#: else must be a pure function of (population, shard boundaries,
#: execution mode), so streams golden once these are stripped.
WALLCLOCK_FIELDS = frozenset({"t_wall", "elapsed_s", "rate_dd_s",
                              "eta_s"})

#: Events that may legally terminate a run stream.
TERMINAL_EVENTS = frozenset({"run_finished"})


def strip_wallclock(event):
    """A copy of ``event`` without its wall-clock fields."""
    return {key: value for key, value in event.items()
            if key not in WALLCLOCK_FIELDS}


def canonical_events(events):
    """Deterministic canonical form of a whole stream directory.

    Wall-clock fields stripped, sorted by ``(stream, seq)`` -- the
    order is then independent of shard dispatch/completion order and
    of which file each record landed in, so goldens can pin a digest.
    """
    stripped = [strip_wallclock(event) for event in events]
    return sorted(stripped,
                  key=lambda e: (e.get("stream", ""), e.get("seq", -1)))


def canonical_json(events):
    """Canonical bytes of a stream (for digests and goldens)."""
    return "\n".join(json.dumps(event, sort_keys=True,
                                separators=(",", ":"))
                     for event in canonical_events(events))


def validate_event(event, source="<stream>"):
    """Problems with one parsed event (empty list == valid)."""
    problems = []
    if not isinstance(event, dict):
        return ["{}: event is not an object".format(source)]
    for field in ENVELOPE_FIELDS:
        if field not in event:
            problems.append("{}: missing envelope field {!r}".format(
                source, field))
    kind = event.get("event")
    if kind is not None and kind not in EVENT_FIELDS:
        problems.append("{}: unknown event type {!r}".format(source, kind))
    elif kind is not None:
        for field in EVENT_FIELDS[kind]:
            if field not in event:
                problems.append("{}: {} missing required field {!r}"
                                .format(source, kind, field))
    version = event.get("v")
    if version is not None and version != SCHEMA_VERSION:
        problems.append("{}: schema version {} != {}".format(
            source, version, SCHEMA_VERSION))
    return problems


def parse_lines(lines, source="<stream>"):
    """Parse JSONL lines; returns ``(events, problems)``.

    Every line must parse -- the writer emits one complete line per
    record, so a torn line means a corrupted stream, not a crash.
    """
    events, problems = [], []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError as exc:
            problems.append("{}:{}: unparsable line ({})".format(
                source, number, exc))
    return events, problems


def validate_events(events, source="<stream>"):
    """Schema + sequencing problems for one *file's* events.

    Within one file, each logical stream's sequence numbers must be
    gapless from 0 in file order (the writer appends, never seeks),
    and every event must carry the same run fingerprint.
    """
    problems = []
    next_seq = {}
    fingerprints = set()
    for position, event in enumerate(events):
        problems.extend(validate_event(
            event, "{}[{}]".format(source, position)))
        if not isinstance(event, dict):
            continue
        stream = event.get("stream")
        seq = event.get("seq")
        if isinstance(stream, str) and isinstance(seq, int):
            expected = next_seq.get(stream, 0)
            if seq != expected:
                problems.append(
                    "{}[{}]: stream {!r} seq {} != expected {} "
                    "(gap or reorder)".format(source, position, stream,
                                              seq, expected))
            next_seq[stream] = max(expected, seq) + 1
        if "fp" in event:
            fingerprints.add(event["fp"])
    if len(fingerprints) > 1:
        problems.append("{}: mixed run fingerprints {}".format(
            source, sorted(fingerprints)))
    return problems


def validate_stream_file(path, require_finished=False):
    """Validate one ``.jsonl`` stream file; returns problems."""
    with open(path) as handle:
        events, problems = parse_lines(handle, source=path)
    problems.extend(validate_events(events, source=path))
    if require_finished:
        if not events or events[-1].get("event") not in TERMINAL_EVENTS:
            problems.append("{}: no terminal run_finished record"
                            .format(path))
    return problems


def stream_files(directory):
    """The stream files of a run directory, sorted by name."""
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory) if name.endswith(".jsonl"))


def validate_stream_dir(directory, require_finished=False):
    """Validate every stream file of a run directory.

    ``require_finished=True`` additionally demands (a) at least one
    ``run_started``/``run_resumed`` record and (b) at least one run
    stream whose final record is ``run_finished`` -- the shape of a
    run that ran to completion.
    """
    paths = stream_files(directory)
    if not paths:
        return ["{}: no telemetry stream files".format(directory)]
    problems = []
    started = finished = False
    fingerprints = set()
    for path in paths:
        with open(path) as handle:
            events, parse_problems = parse_lines(handle, source=path)
        problems.extend(parse_problems)
        problems.extend(validate_events(events, source=path))
        for event in events:
            if isinstance(event, dict) and "fp" in event:
                fingerprints.add(event["fp"])
        kinds = [e.get("event") for e in events if isinstance(e, dict)]
        if "run_started" in kinds or "run_resumed" in kinds:
            started = True
        if events and events[-1].get("event") in TERMINAL_EVENTS:
            finished = True
    if len(fingerprints) > 1:
        problems.append("{}: mixed run fingerprints {}".format(
            directory, sorted(fingerprints)))
    if require_finished:
        if not started:
            problems.append("{}: no run_started/run_resumed record"
                            .format(directory))
        if not finished:
            problems.append("{}: no stream ends with run_finished"
                            .format(directory))
    return problems


def load_stream_dir(directory):
    """Every event of a run directory, with per-file parse problems.

    Returns ``(events, problems)``; events keep file order within a
    file, files are visited in sorted-name order. The watch aggregator
    is order-insensitive (it keys on ``stream``/``seq``/``shard``), so
    this is sufficient for both snapshots and goldens.
    """
    events, problems = [], []
    for path in stream_files(directory):
        with open(path) as handle:
            parsed, file_problems = parse_lines(handle, source=path)
        events.extend(parsed)
        problems.extend(file_problems)
    return events, problems
