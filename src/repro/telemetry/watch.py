"""`repro watch`: aggregate and render a live telemetry stream.

The aggregator is a pure fold over the stream directory: every
``shard_finished`` event carries the shard's full per-mitigation
:class:`~repro.fleet.stats.FleetStats` payload (the same dict the
checkpoint stores), and :func:`RunView.merged_stats` folds them **in
shard-index order** -- the identical merge sequence
:meth:`repro.fleet.shard.FleetRunner.merged_stats` performs, so a
finished run's snapshot equals the canonical ``fleet_*.json`` report
to the byte (:func:`check_report` enforces it). Unfinished shards
contribute their latest ``shard_progress`` partial (devices done,
device-days/s, fallback/crash counters, streaming mean energy), so a
half-done overnight run still renders fleet-level numbers.
"""

import hashlib
import json
import os
import time

from repro.fleet.stats import FleetStats, Moments
from repro.telemetry.emit import DEFAULT_TELEMETRY_ROOT
from repro.telemetry.schema import load_stream_dir


def resolve_run(run=None, root=DEFAULT_TELEMETRY_ROOT):
    """The stream directory for ``run``: a directory path, a
    fingerprint prefix under ``root``, or (None) the most recently
    modified run under ``root``."""
    if run and os.path.isdir(run):
        return run
    if not os.path.isdir(root):
        raise FileNotFoundError(
            "no telemetry root {} (run `repro fleet --telemetry` "
            "first)".format(root))
    candidates = sorted(
        name for name in os.listdir(root)
        if os.path.isdir(os.path.join(root, name)))
    if run:
        matches = [name for name in candidates if name.startswith(run)]
        if not matches:
            raise FileNotFoundError(
                "no run matching {!r} under {} (have: {})".format(
                    run, root, ", ".join(candidates) or "none"))
        if len(matches) > 1:
            raise ValueError("ambiguous run {!r}: matches {}".format(
                run, ", ".join(matches)))
        return os.path.join(root, matches[0])
    if not candidates:
        raise FileNotFoundError("no runs under {}".format(root))
    return os.path.join(
        root, max(candidates, key=lambda name: os.path.getmtime(
            os.path.join(root, name))))


class RunView:
    """One consistent reading of a stream directory's events."""

    def __init__(self, events):
        self.events = events
        self.meta = None  # latest run_started / run_resumed
        self.run_finished = None
        self.finished = {}  # shard -> shard_finished event
        self.progress = {}  # shard -> best shard_progress event
        self.fallback_reasons = {}  # reason -> first event
        self.supervisor = {}  # outcome -> count
        self.budget_events = 0
        def newer(current, candidate):
            # File visit order is name-sorted (pid-based), so "latest"
            # must come from the emission timestamp where present.
            if current is None:
                return True
            return candidate.get("t_wall", 0) >= current.get("t_wall", 0)

        for event in events:
            kind = event.get("event")
            if kind in ("run_started", "run_resumed"):
                if newer(self.meta, event):
                    self.meta = event
            elif kind == "run_finished":
                if newer(self.run_finished, event):
                    self.run_finished = event
            elif kind == "shard_finished":
                self.finished[event["shard"]] = event
            elif kind == "shard_progress":
                shard = event["shard"]
                best = self.progress.get(shard)
                # Furthest snapshot wins (retries restart from zero;
                # the completed attempt's final snapshot dominates).
                if best is None or (
                        (event["devices_done"], event["device_days"])
                        >= (best["devices_done"],
                            best["device_days"])):
                    self.progress[shard] = event
            elif kind == "fallback":
                self.fallback_reasons.setdefault(event["reason"], event)
            elif kind == "supervisor_attempt":
                outcome = event["outcome"]
                self.supervisor[outcome] = \
                    self.supervisor.get(outcome, 0) + 1
            elif kind == "budget":
                self.budget_events += 1

    # -- aggregation -------------------------------------------------------

    def population(self):
        from repro.fleet.population import PopulationSpec

        if self.meta is None:
            raise ValueError("stream has no run_started/run_resumed "
                             "record yet")
        return PopulationSpec.from_json(self.meta["population"])

    def shard_count(self):
        return self.meta["shards"] if self.meta else \
            (max(self.finished) + 1 if self.finished else 0)

    def merged_stats(self):
        """Fold finished shards' stats in shard-index order -- the
        exact merge sequence ``FleetRunner.merged_stats`` runs, so
        floats agree bitwise. Returns ``(merged, missing_shards)``."""
        if self.meta is not None:
            mitigations = self.population().mitigations
        else:
            mitigations = ()
            if self.finished:
                first = self.finished[min(self.finished)]
                mitigations = tuple(sorted(first["stats"]))
        merged = {name: FleetStats() for name in mitigations}
        missing = []
        for shard in range(self.shard_count()):
            event = self.finished.get(shard)
            if event is None:
                missing.append(shard)
                continue
            for name, data in event["stats"].items():
                merged[name] = merged[name].merge(
                    FleetStats.from_dict(data))
        return merged, missing

    def partial_totals(self):
        """In-flight totals from unfinished shards' latest snapshots:
        ``(devices_done, device_days, fallbacks, crashed, energy)``."""
        devices = days = fallbacks = crashed = 0
        energy = Moments()
        for shard, event in sorted(self.progress.items()):
            if shard in self.finished:
                continue
            devices += event["devices_done"]
            days += event["device_days"]
            fallbacks += event["fallbacks"]
            crashed += event["crashed"]
            energy = energy.merge(
                Moments.from_dict(event["energy_mw"]))
        return devices, days, fallbacks, crashed, energy

    def wall_span(self):
        stamps = [event["t_wall"] for event in self.events
                  if isinstance(event.get("t_wall"), (int, float))]
        if not stamps:
            return 0.0
        return max(stamps) - min(stamps)


def load_view(directory):
    """``(RunView, parse problems)`` for one stream directory."""
    events, problems = load_stream_dir(directory)
    return RunView(events), problems


# -- report agreement ----------------------------------------------------------

def reconstruct_report(view):
    """The canonical report dict implied by a finished run's stream.

    Uses the stream's own population JSON, the bitwise shard-stats
    fold, and the ``run_finished`` record's execution/degraded blocks
    -- every deterministic input the CLI's ``build_report`` call had.
    """
    from repro.fleet.report import build_report

    if view.run_finished is None:
        raise ValueError("run has no run_finished record (still in "
                         "flight, or interrupted)")
    merged, missing = view.merged_stats()
    report = build_report(view.population(), merged,
                          execution=view.run_finished["execution"])
    degraded = view.run_finished.get("degraded")
    if degraded is not None:
        report["degraded"] = degraded
    return report


def check_report(view, report_path):
    """Byte-compare the stream's implied report with the canonical
    artifact; returns a problem string or None."""
    from repro.fleet.report import report_json

    try:
        reconstructed = report_json(reconstruct_report(view))
    except ValueError as exc:
        return str(exc)
    try:
        with open(report_path) as handle:
            on_disk = handle.read().rstrip("\n")
    except OSError as exc:
        return "cannot read {}: {}".format(report_path, exc)
    if reconstructed != on_disk:
        return ("telemetry aggregate disagrees with {} ({} vs {} "
                "bytes)".format(report_path, len(reconstructed),
                                len(on_disk)))
    digest = hashlib.sha256(
        reconstructed.encode("utf-8")).hexdigest()
    expected = view.run_finished["report_sha256"]
    if expected and digest != expected:
        return ("report sha256 {} != run_finished.report_sha256 {}"
                .format(digest, expected))
    return None


# -- rendering -----------------------------------------------------------------

def _fmt(value, pattern="{:.2f}"):
    return pattern.format(value) if value is not None else "-"


def render_snapshot(view, directory=""):
    """The live table: run header, per-mitigation rows, supervision."""
    from repro.experiments.runner import format_table

    lines = []
    if view.meta is None:
        return "telemetry: no run_started record yet in {}".format(
            directory or "stream")
    meta = view.meta
    shard_count = view.shard_count()
    finished = len([s for s in view.finished if s < shard_count])
    devices, days, fallbacks, crashed, energy = view.partial_totals()
    merged, missing = view.merged_stats()
    for stats in merged.values():
        devices += stats.counters.get("devices", 0)
    state = "finished" if view.run_finished is not None else "running"
    header = ("run {} [{}]: mode={} devices={} shards {}/{} done"
              .format(meta["fp"], state, meta["mode"], meta["devices"],
                      finished, shard_count))
    if meta["event"] == "run_resumed":
        header += " (resumed, {} from checkpoints)".format(
            meta["shards_resumed"])
    lines.append(header)

    span = view.wall_span()
    total_days = days + sum(
        stats.counters.get("devices", 0) for stats in merged.values())
    if span > 0 and view.run_finished is None and total_days:
        rate = total_days / span
        remaining = meta["devices"] * max(
            len(view.population().mitigations), 1) - total_days
        lines.append(
            "throughput ~{:.1f} device-days/s, eta ~{:.0f}s for {} "
            "device-day(s) left".format(rate, remaining / rate
                                        if rate > 0 else 0.0,
                                        remaining))
    if view.progress and view.run_finished is None:
        lines.append(
            "in-flight: {} device(s) done, {} device-day(s), mean "
            "energy {} mW over {} sample(s)".format(
                devices, days, _fmt(energy.mean, "{:.1f}")
                if energy.count else "-", energy.count))

    if any(stats.counters for stats in merged.values()):
        headers = ["mitigation", "devices", "battery h (mean)",
                   "power mW (mean)", "deferrals", "fallbacks",
                   "crashed"]
        rows = []
        for name, stats in merged.items():
            counters = stats.counters
            life = stats.metrics.get("battery_life_h")
            power = stats.metrics.get("system_power_mw")
            rows.append([
                name,
                str(counters.get("devices", 0)),
                _fmt(life.moments.mean) if life else "-",
                _fmt(power.moments.mean, "{:.1f}") if power else "-",
                str(counters.get("deferrals", 0)),
                str(counters.get("fastpath_fallbacks", 0)),
                str(counters.get("crashed", 0)),
            ])
        lines.append(format_table(
            headers, rows,
            title="merged over {} finished shard(s)".format(finished)))
    if missing and view.run_finished is not None:
        lines.append("degraded: shard(s) {} missing from the merge"
                     .format(", ".join(str(s) for s in missing)))
    if view.supervisor or view.budget_events:
        parts = ["{} {}".format(count, outcome) for outcome, count
                 in sorted(view.supervisor.items())]
        if view.budget_events:
            parts.append("{} budget abort(s)".format(
                view.budget_events))
        lines.append("supervision: " + ", ".join(parts))
    if view.fallback_reasons:
        lines.append("fallback reasons: " + ", ".join(
            sorted(view.fallback_reasons)))
    if view.run_finished is not None:
        rf = view.run_finished
        lines.append(
            "run_finished: {} executed, {} resumed, {} quarantined, "
            "report sha256 {}".format(
                rf["shards_run"], rf["shards_resumed"],
                rf["shards_quarantined"], rf["report_sha256"][:12]))
    return "\n".join(lines)


def follow(directory, interval=2.0, timeout=None, render=None,
           clock=time.monotonic, sleep=time.sleep):
    """Re-render ``directory`` every ``interval`` seconds until its
    run finishes (or ``timeout`` elapses). ``render`` receives each
    snapshot text; injectable clock/sleep keep this testable."""
    if render is None:
        render = print
    deadline = clock() + timeout if timeout is not None else None
    while True:
        view, __ = load_view(directory)
        render(render_snapshot(view, directory))
        if view.run_finished is not None:
            return view
        if deadline is not None and clock() >= deadline:
            return view
        sleep(interval)
