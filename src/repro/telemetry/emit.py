"""Telemetry emission hooks for fleet shards and the fleet runner.

Plumbing is by *environment variable*, never by function kwargs:
``run_shard`` dispatches as a content-addressed
:class:`~repro.experiments.grid.FuncSpec`, so a telemetry kwarg would
change every shard's cache key and orphan every warm cache. Instead the
:class:`~repro.fleet.shard.FleetRunner` exports :data:`ENV_DIR` /
:data:`ENV_FP` around its dispatch; workers (forked per batch or per
supervised attempt, so they inherit the environment) open their own
per-process stream files. A worker whose population fingerprint does
not match :data:`ENV_FP` stays silent -- a stale variable from an
unrelated run must never pollute another run's stream.

Emission cost discipline: progress snapshots are time-gated
(:data:`PROGRESS_INTERVAL_S` apart at least, tunable via
:data:`ENV_PROGRESS`), counters and the streaming energy mean update
in O(1) per device-day, and nothing here allocates per-event except at
actual emission time. ``REPRO_TELEMETRY_PROGRESS_S=0`` removes the
time gate (a snapshot per device -- the deterministic mode the stream
goldens use); any negative value disables progress snapshots entirely.
"""

import os
import time

from repro.fleet.stats import Moments
from repro.telemetry.writer import TelemetryWriter

#: Stream directory of the active run; unset => telemetry off.
ENV_DIR = "REPRO_TELEMETRY_DIR"

#: 12-hex fingerprint of the run the directory belongs to; a worker
#: simulating a different population stays silent.
ENV_FP = "REPRO_TELEMETRY_FP"

#: Seconds between in-shard progress snapshots (default
#: :data:`PROGRESS_INTERVAL_S`; ``0`` => every device, ``<0`` => none).
ENV_PROGRESS = "REPRO_TELEMETRY_PROGRESS_S"

#: Default minimum spacing of ``shard_progress`` records -- keeps
#: emission far off the hot path (a kernel shard manages ~4
#: device-days/s; the vector engine folds whole shards in one call).
PROGRESS_INTERVAL_S = 1.0

#: Default root for per-run stream directories.
DEFAULT_TELEMETRY_ROOT = os.path.join("results", ".telemetry")


def default_telemetry_dir(population):
    """``results/.telemetry/<fp12>/`` for one population."""
    return os.path.join(DEFAULT_TELEMETRY_ROOT,
                        population.fingerprint()[:12])


def progress_interval():
    raw = os.environ.get(ENV_PROGRESS, "")
    try:
        return float(raw) if raw else PROGRESS_INTERVAL_S
    except ValueError:
        return PROGRESS_INTERVAL_S


#: The shard telemetry of the currently-executing shard in this
#: process, if any -- the hook :func:`repro.fleet.fastpath.
#: _log_fallback_once` reaches through to attribute fallbacks without
#: any signature change on the replay paths.
_ACTIVE_SHARD = None


def active_shard_telemetry():
    return _ACTIVE_SHARD


class ShardTelemetry:
    """Per-shard emission state, owned by one ``run_shard`` call.

    All counters are O(1) updates; the only per-device float work is
    one Welford ``add`` on the streaming energy mean (``add_many`` on
    the vector path). Snapshots carry *mergeable partials* -- a watcher
    can fold any subset of shards' latest snapshots into fleet-level
    numbers without waiting for anything to finish.
    """

    def __init__(self, writer, shard, start, stop, mode):
        self.writer = writer
        self.shard = shard
        self.start = start
        self.stop = stop
        self.mode = mode
        self.interval = progress_interval()
        self.devices_done = 0
        self.device_days = 0
        self.fallbacks = 0
        self.crashed = 0
        #: Scenario family -> device-day count; stays empty (and off
        #: the wire) for catalog-free populations.
        self.families = {}
        self.energy = Moments()
        self._t0 = time.monotonic()
        self._last_progress = None

    def started(self):
        self.writer.emit("shard_started", shard=self.shard,
                         start=self.start, stop=self.stop,
                         mode=self.mode)

    def observe(self, summary):
        """Fold one device-day summary (kernel and fast paths)."""
        self.energy.add(summary["system_power_mw"])
        self.device_days += 1
        self.crashed += summary["crashed"]

    def observe_batch(self, power_values, device_days, crashed):
        """Fold a whole composed shard at once (vector path)."""
        if device_days:
            self.energy.add_many(power_values)
        self.device_days += device_days
        self.crashed += crashed

    def observe_families(self, families, count=1):
        """Attribute ``count`` device-days to each scenario family."""
        for name in families:
            self.families[name] = self.families.get(name, 0) + count

    def device_done(self, count=1):
        self.devices_done += count
        self._maybe_progress()

    def fallback(self, reason, device, emit):
        """Count a kernel fallback; emit the event only on the first
        occurrence of ``reason`` (the caller shares the stderr
        warning's one-time-per-reason gate)."""
        self.fallbacks += 1
        if emit:
            self.writer.emit("fallback", shard=self.shard,
                             reason=reason, device=device)

    def _maybe_progress(self, force=False):
        if self.interval < 0:
            return
        now = time.monotonic()
        if not force and self._last_progress is not None \
                and now - self._last_progress < self.interval:
            return
        self._last_progress = now
        elapsed = now - self._t0
        rate = self.device_days / elapsed if elapsed > 0 else 0.0
        fields = {}
        if self.families:
            # Conditional so catalog-free streams keep their exact
            # historical record bytes (the stream goldens pin them).
            fields["scenario_families"] = dict(
                sorted(self.families.items()))
        self.writer.emit(
            "shard_progress", shard=self.shard,
            devices_done=self.devices_done,
            devices_total=self.stop - self.start,
            device_days=self.device_days, fallbacks=self.fallbacks,
            crashed=self.crashed, energy_mw=self.energy.to_dict(),
            # Wall-clock-derived fields, stripped by stream goldens.
            elapsed_s=round(elapsed, 3), rate_dd_s=round(rate, 3),
            **fields)

    def finished(self):
        """Final snapshot so the stream's last partial is complete."""
        self._maybe_progress(force=True)

    def close(self):
        global _ACTIVE_SHARD
        if _ACTIVE_SHARD is self:
            _ACTIVE_SHARD = None
        self.writer.close()


def shard_telemetry(population, shard_index, start, stop, mode):
    """The shard's emitter, or None when telemetry is off (or the
    inherited environment belongs to a different run)."""
    global _ACTIVE_SHARD
    directory = os.environ.get(ENV_DIR)
    if not directory:
        return None
    fp = population.fingerprint()[:12]
    expected = os.environ.get(ENV_FP, "")
    if expected and expected != fp:
        return None
    writer = TelemetryWriter(directory,
                             "shard-{:06d}".format(shard_index), fp)
    telemetry = ShardTelemetry(writer, shard_index, start, stop, mode)
    _ACTIVE_SHARD = telemetry
    return telemetry


class RunTelemetry:
    """The runner-side stream: run lifecycle, shard completions,
    supervision outcomes.

    ``shard_finished`` fires from the runner's checkpoint hook, so a
    cache-hit shard (whose worker never ran) is still announced exactly
    once -- and a *resumed* shard (checkpoint already on disk before
    the run) is deliberately never re-announced: its record lives in
    the stream files of the run that computed it.
    """

    def __init__(self, directory, fp):
        self.directory = directory
        self.fp = fp
        self.writer = TelemetryWriter(directory, "run", fp)

    def run_started(self, population, mode, requested_mode,
                    shards_resumed=0):
        fields = dict(population=population.to_json(), mode=mode,
                      requested_mode=requested_mode,
                      devices=population.devices,
                      shards=population.shard_count)
        if shards_resumed:
            self.writer.emit("run_resumed",
                             shards_resumed=shards_resumed, **fields)
        else:
            self.writer.emit("run_started", **fields)

    def shard_finished(self, shard_index, summary):
        self.writer.emit(
            "shard_finished", shard=shard_index,
            start=summary["start"], stop=summary["stop"],
            mode=summary["mode"], stats=summary["stats"],
            crashes=summary["crashes"])

    def supervisor_attempt(self, label, attempt, outcome, error):
        self.writer.emit("supervisor_attempt", label=label,
                         attempt=attempt, outcome=outcome, error=error)

    def budget(self, label, attempt, error):
        self.writer.emit("budget", label=label, attempt=attempt,
                         error=error)

    def run_finished(self, run_summary, devices, execution,
                     report_sha256, degraded=None):
        fields = dict(
            shards_total=run_summary["shards_total"],
            shards_run=run_summary["shards_run"],
            shards_resumed=run_summary["shards_resumed"],
            shards_quarantined=run_summary["shards_quarantined"],
            devices=devices, execution=execution,
            report_sha256=report_sha256)
        if degraded is not None:
            fields["degraded"] = degraded
        self.writer.emit("run_finished", **fields)

    def close(self):
        self.writer.close()
