"""repro.telemetry: versioned JSONL run telemetry + live aggregation.

- :mod:`repro.telemetry.schema` -- the event schema, wall-clock field
  tagging, and the stream validator;
- :mod:`repro.telemetry.writer` -- the crash-safe append-only,
  fork-safe per-process stream writer;
- :mod:`repro.telemetry.emit` -- shard/runner emission hooks, plumbed
  by environment variable so grid cache keys never change;
- :mod:`repro.telemetry.watch` -- the `repro watch` aggregator whose
  finished-run snapshot equals the canonical fleet report to the byte.
"""

from repro.telemetry.emit import (
    DEFAULT_TELEMETRY_ROOT,
    ENV_DIR,
    ENV_FP,
    ENV_PROGRESS,
    PROGRESS_INTERVAL_S,
    RunTelemetry,
    ShardTelemetry,
    active_shard_telemetry,
    default_telemetry_dir,
    shard_telemetry,
)
from repro.telemetry.schema import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    WALLCLOCK_FIELDS,
    canonical_events,
    canonical_json,
    load_stream_dir,
    strip_wallclock,
    validate_event,
    validate_events,
    validate_stream_dir,
    validate_stream_file,
)
from repro.telemetry.watch import (
    RunView,
    check_report,
    follow,
    load_view,
    reconstruct_report,
    render_snapshot,
    resolve_run,
)
from repro.telemetry.writer import TelemetryWriter

__all__ = [
    "DEFAULT_TELEMETRY_ROOT",
    "ENV_DIR",
    "ENV_FP",
    "ENV_PROGRESS",
    "EVENT_FIELDS",
    "PROGRESS_INTERVAL_S",
    "RunTelemetry",
    "RunView",
    "SCHEMA_VERSION",
    "ShardTelemetry",
    "TelemetryWriter",
    "WALLCLOCK_FIELDS",
    "active_shard_telemetry",
    "canonical_events",
    "canonical_json",
    "check_report",
    "default_telemetry_dir",
    "follow",
    "load_stream_dir",
    "load_view",
    "reconstruct_report",
    "render_snapshot",
    "resolve_run",
    "shard_telemetry",
    "strip_wallclock",
    "validate_event",
    "validate_events",
    "validate_stream_dir",
    "validate_stream_file",
]
