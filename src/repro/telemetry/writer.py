"""Crash-safe append-only JSONL writer for telemetry streams.

One writer owns one stream file. Records are serialised to a single
line and written with one ``write()`` call on a line-buffered handle,
so each record is atomic with respect to crashes (a killed process
leaves only whole lines behind; POSIX appends of one short line do not
interleave). Fork-safety comes from file *naming*, not locking: every
writer embeds ``os.getpid()`` plus a per-process counter in its file
name, so a forked shard worker and its parent (or two runs in the same
process) can never share a file -- and per-file sequence numbers stay
gapless from 0.
"""

import itertools
import json
import os
import time

from repro.telemetry.schema import SCHEMA_VERSION

# Distinguishes successive writers for the same stream within one
# process (e.g. two FleetRunner runs back to back).
_FILE_COUNTER = itertools.count()


class TelemetryWriter:
    """Appends events of one logical stream to its own JSONL file.

    Parameters
    ----------
    directory:
        The run's stream directory (``results/.telemetry/<fp>/``).
    stream:
        Logical stream name: ``"run"`` or ``"shard-NNNNNN"``.
    fp:
        The 12-hex run fingerprint stamped on every event.
    """

    def __init__(self, directory, stream, fp):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.stream = stream
        self.fp = fp
        self.seq = 0
        name = "{}-p{}-{:02d}.jsonl".format(
            stream, os.getpid(), next(_FILE_COUNTER))
        self.path = os.path.join(directory, name)
        # Line buffering => one flush per record, no torn lines, and
        # no unbounded buffering between progress snapshots.
        self._handle = open(self.path, "a", buffering=1)

    def emit(self, event, **fields):
        """Append one event; envelope fields are filled in here."""
        if self._handle is None:
            return
        record = {"v": SCHEMA_VERSION, "event": event,
                  "stream": self.stream, "seq": self.seq,
                  "fp": self.fp, "t_wall": round(time.time(), 3)}
        record.update(fields)
        self._handle.write(
            json.dumps(record, sort_keys=True,
                       separators=(",", ":")) + "\n")
        self.seq += 1

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
